//! Uncertainty decomposition utilities (paper Eq. 7; Figs. 9–10).

use crate::mc::GaussianForecast;
use stuq_tensor::Tensor;

/// Per-horizon mean standard deviations of each uncertainty component —
/// the series plotted in Fig. 10.
#[derive(Clone, Debug)]
pub struct HorizonUncertainty {
    /// Mean aleatoric σ per forecast step.
    pub aleatoric: Vec<f64>,
    /// Mean epistemic σ per forecast step.
    pub epistemic: Vec<f64>,
    /// Mean total σ per forecast step.
    pub total: Vec<f64>,
}

/// Averages the decomposition of one forecast (`[N, τ]`) over sensors.
///
/// `sigma_scale` converts normalised σ to raw units (the dataset scaler's
/// std); `temperature` applies the calibration of Eq. 17.
pub fn horizon_decomposition(
    forecast: &GaussianForecast,
    sigma_scale: f64,
    temperature: f32,
) -> HorizonUncertainty {
    let (n, tau) = (forecast.mu.rows(), forecast.mu.cols());
    let var_total = forecast.var_total(temperature);
    let inv_t2 = 1.0 / (temperature as f64 * temperature as f64);
    let mut out = HorizonUncertainty {
        aleatoric: vec![0.0; tau],
        epistemic: vec![0.0; tau],
        total: vec![0.0; tau],
    };
    for h in 0..tau {
        let (mut a, mut e, mut t) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..n {
            a += (forecast.var_aleatoric.get(i, h) as f64 * inv_t2).sqrt();
            e += (forecast.var_epistemic.get(i, h) as f64).sqrt();
            t += (var_total.get(i, h) as f64).sqrt();
        }
        out.aleatoric[h] = sigma_scale * a / n as f64;
        out.epistemic[h] = sigma_scale * e / n as f64;
        out.total[h] = sigma_scale * t / n as f64;
    }
    out
}

/// Accumulates [`HorizonUncertainty`] over many forecasts (Fig. 10 averages
/// across the whole test split).
#[derive(Clone, Debug)]
pub struct HorizonUncertaintyAccumulator {
    sums: HorizonUncertainty,
    count: usize,
}

impl HorizonUncertaintyAccumulator {
    /// Creates an accumulator for `tau` forecast steps.
    pub fn new(tau: usize) -> Self {
        Self {
            sums: HorizonUncertainty {
                aleatoric: vec![0.0; tau],
                epistemic: vec![0.0; tau],
                total: vec![0.0; tau],
            },
            count: 0,
        }
    }

    /// Adds one forecast's decomposition.
    pub fn update(&mut self, forecast: &GaussianForecast, sigma_scale: f64, temperature: f32) {
        let d = horizon_decomposition(forecast, sigma_scale, temperature);
        for h in 0..self.sums.aleatoric.len() {
            self.sums.aleatoric[h] += d.aleatoric[h];
            self.sums.epistemic[h] += d.epistemic[h];
            self.sums.total[h] += d.total[h];
        }
        self.count += 1;
    }

    /// The mean decomposition.
    pub fn mean(&self) -> HorizonUncertainty {
        assert!(self.count > 0, "no forecasts accumulated");
        let c = self.count as f64;
        HorizonUncertainty {
            aleatoric: self.sums.aleatoric.iter().map(|x| x / c).collect(),
            epistemic: self.sums.epistemic.iter().map(|x| x / c).collect(),
            total: self.sums.total.iter().map(|x| x / c).collect(),
        }
    }
}

/// Extracts a single sensor's forecast trace with both uncertainty bands —
/// the data behind Fig. 9.
#[derive(Clone, Debug)]
pub struct SensorTrace {
    /// Point forecast per step (raw scale).
    pub mu: Vec<f64>,
    /// Aleatoric σ per step (raw scale, temperature-calibrated).
    pub sigma_aleatoric: Vec<f64>,
    /// Epistemic σ per step (raw scale).
    pub sigma_epistemic: Vec<f64>,
    /// Total σ per step (raw scale).
    pub sigma_total: Vec<f64>,
}

/// Builds a [`SensorTrace`] for sensor `node`; `mu_raw` must already be in
/// raw units while the forecast variances are normalised.
pub fn sensor_trace(
    forecast: &GaussianForecast,
    mu_raw: &Tensor,
    node: usize,
    sigma_scale: f64,
    temperature: f32,
) -> SensorTrace {
    let tau = forecast.mu.cols();
    assert!(node < forecast.mu.rows(), "sensor index out of range");
    let var_total = forecast.var_total(temperature);
    let inv_t2 = 1.0 / (temperature as f64 * temperature as f64);
    let mut out = SensorTrace {
        mu: Vec::with_capacity(tau),
        sigma_aleatoric: Vec::with_capacity(tau),
        sigma_epistemic: Vec::with_capacity(tau),
        sigma_total: Vec::with_capacity(tau),
    };
    for h in 0..tau {
        out.mu.push(mu_raw.get(node, h) as f64);
        out.sigma_aleatoric
            .push(sigma_scale * (forecast.var_aleatoric.get(node, h) as f64 * inv_t2).sqrt());
        out.sigma_epistemic.push(sigma_scale * (forecast.var_epistemic.get(node, h) as f64).sqrt());
        out.sigma_total.push(sigma_scale * (var_total.get(node, h) as f64).sqrt());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_forecast() -> GaussianForecast {
        // 2 sensors × 3 steps with known variances.
        GaussianForecast {
            mu: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]),
            var_aleatoric: Tensor::from_vec(vec![1.0, 4.0, 9.0, 1.0, 4.0, 9.0], &[2, 3]),
            var_epistemic: Tensor::from_vec(vec![0.25; 6], &[2, 3]),
            n_samples: 5,
        }
    }

    #[test]
    fn decomposition_at_unit_temperature() {
        let d = horizon_decomposition(&toy_forecast(), 1.0, 1.0);
        assert!((d.aleatoric[0] - 1.0).abs() < 1e-6);
        assert!((d.aleatoric[1] - 2.0).abs() < 1e-6);
        assert!((d.aleatoric[2] - 3.0).abs() < 1e-6);
        for h in 0..3 {
            assert!((d.epistemic[h] - 0.5).abs() < 1e-6);
            // total σ = sqrt(var_a + var_e) ≥ each component.
            assert!(d.total[h] >= d.aleatoric[h] && d.total[h] >= d.epistemic[h]);
        }
    }

    #[test]
    fn sigma_scale_converts_units() {
        let d1 = horizon_decomposition(&toy_forecast(), 1.0, 1.0);
        let d10 = horizon_decomposition(&toy_forecast(), 10.0, 1.0);
        for h in 0..3 {
            assert!((d10.total[h] - 10.0 * d1.total[h]).abs() < 1e-9);
        }
    }

    #[test]
    fn temperature_shrinks_only_aleatoric() {
        let d = horizon_decomposition(&toy_forecast(), 1.0, 2.0);
        assert!((d.aleatoric[0] - 0.5).abs() < 1e-6, "σ_a/T");
        assert!((d.epistemic[0] - 0.5).abs() < 1e-6, "epistemic untouched");
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = HorizonUncertaintyAccumulator::new(3);
        acc.update(&toy_forecast(), 1.0, 1.0);
        acc.update(&toy_forecast(), 3.0, 1.0);
        let m = acc.mean();
        // Average of 1× and 3× the same decomposition = 2×.
        assert!((m.aleatoric[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sensor_trace_extracts_one_row() {
        let f = toy_forecast();
        let mu_raw = f.mu.scale(100.0);
        let t = sensor_trace(&f, &mu_raw, 1, 1.0, 1.0);
        assert_eq!(t.mu, vec![400.0, 500.0, 600.0]);
        assert!((t.sigma_aleatoric[2] - 3.0).abs() < 1e-6);
    }
}
