//! Vanilla deep ensembles (Lakshminarayanan et al., 2017).
//!
//! The paper motivates AWA as a cheap *approximation* of deep ensembling
//! (§IV-C2): a true ensemble trains and stores `M` independent models. This
//! module implements that reference point so the approximation can be
//! quantified (the `ablations` bench compares AWA's single model against
//! the M-model ensemble at matched and unmatched budgets).

use crate::mc::GaussianForecast;
use crate::trainer::{train, LossKind};
use crate::TrainConfig;
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, Prediction};
use stuq_nn::layers::FwdCtx;
use stuq_nn::loss::{LOGVAR_MAX, LOGVAR_MIN};
use stuq_tensor::{StuqRng, Tape, Tensor};
use stuq_traffic::SplitDataset;

/// An ensemble of independently initialised and trained base models.
pub struct DeepEnsemble {
    members: Vec<Agcrn>,
}

impl DeepEnsemble {
    /// Trains `m` members from independent initialisations (seeds
    /// `seed, seed+1, …`) with the combined loss.
    ///
    /// Members are embarrassingly parallel: each is seeded independently, so
    /// the trained ensemble is identical whether members run concurrently on
    /// the `stuq-parallel` pool or one after another.
    pub fn train(
        base: &AgcrnConfig,
        ds: &SplitDataset,
        train_cfg: &TrainConfig,
        m: usize,
        seed: u64,
    ) -> Self {
        assert!(m >= 1, "need at least one member");
        let members = stuq_parallel::par_map(m, |i| {
            let mut rng = StuqRng::new(seed.wrapping_add(i as u64));
            let mut model = Agcrn::new(base.clone(), &mut rng);
            let kind = match base.head {
                stuq_models::HeadKind::Gaussian => LossKind::Combined { lambda: train_cfg.lambda },
                _ => LossKind::Mae,
            };
            train(&mut model, ds, train_cfg, kind, &mut rng).expect("member training failed");
            model
        });
        Self { members }
    }

    /// Number of stored models (the memory cost AWA avoids).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never after `train`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total stored scalar parameters across members.
    pub fn n_scalars(&self) -> usize {
        self.members.iter().map(|m| m.params().n_scalars()).sum()
    }

    /// Ensemble forecast: across-member mean, mean aleatoric variance, and
    /// across-member (epistemic) variance — the same decomposition as
    /// MC dropout, with models in place of dropout masks. Members run
    /// data-parallel with one forked RNG stream each; the reduction is
    /// ordered, so the result is thread-count independent.
    pub fn forecast(&self, x: &Tensor, rng: &mut StuqRng) -> GaussianForecast {
        let first = &self.members[0];
        let shape = [first.n_nodes(), first.horizon()];
        let streams = crate::mc::fork_streams(rng, self.members.len());
        let samples = stuq_parallel::par_map(self.members.len(), |j| {
            let mut r = streams[j].clone();
            let mut tape = Tape::new();
            let mut ctx = FwdCtx::eval(&mut r);
            let pred = self.members[j].forward(&mut tape, x, &mut ctx);
            let mu = tape.value(pred.point()).clone();
            let var = if let Prediction::Gaussian { logvar, .. } = pred {
                Some(tape.value(logvar).map(|lv| lv.clamp(LOGVAR_MIN, LOGVAR_MAX).exp()))
            } else {
                None
            };
            (mu, var)
        });
        crate::mc::reduce_samples(samples, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_models::HeadKind;
    use stuq_traffic::Preset;

    fn setup() -> (SplitDataset, AgcrnConfig, TrainConfig) {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(61);
        let base = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(8, 3, 1)
            .with_dropout(0.0, 0.0)
            .with_head(HeadKind::Gaussian);
        let cfg = TrainConfig::scaled(1, 8);
        (ds, base, cfg)
    }

    #[test]
    fn members_disagree_giving_positive_epistemic_variance() {
        let (ds, base, cfg) = setup();
        let ens = DeepEnsemble::train(&base, &ds, &cfg, 3, 61);
        assert_eq!(ens.len(), 3);
        let w = ds.window(0);
        let mut rng = StuqRng::new(1);
        let f = ens.forecast(&w.x, &mut rng);
        assert!(f.var_epistemic.mean() > 0.0, "independent members must disagree");
        assert!(f.var_aleatoric.min() > 0.0);
    }

    #[test]
    fn single_member_has_zero_epistemic() {
        let (ds, base, cfg) = setup();
        let ens = DeepEnsemble::train(&base, &ds, &cfg, 1, 61);
        let w = ds.window(0);
        let mut rng = StuqRng::new(1);
        let f = ens.forecast(&w.x, &mut rng);
        assert_eq!(f.var_epistemic.sum(), 0.0);
    }

    #[test]
    fn memory_cost_scales_with_members() {
        let (ds, base, cfg) = setup();
        let e1 = DeepEnsemble::train(&base, &ds, &cfg, 1, 61);
        let e3 = DeepEnsemble::train(&base, &ds, &cfg, 3, 61);
        assert_eq!(e3.n_scalars(), 3 * e1.n_scalars(), "the storage AWA avoids");
    }
}
