//! Conformal baselines (paper Table II: "Conformal" and "CFRNN").
//!
//! * [`LocallyWeightedConformal`] — split conformal prediction with the
//!   locally weighted score `s = |y − μ| / σ` (Lei et al., 2018): the
//!   calibration quantile `q̂` of the scores turns `μ ± q̂·σ` into an interval
//!   with finite-sample marginal coverage `≥ 1 − α`.
//! * [`Cfrnn`] — conformal forecasting for multi-horizon RNNs
//!   (Stankevičiūtė et al., 2021): per-horizon absolute-residual quantiles
//!   with a Bonferroni-corrected level `α/H`, giving simultaneous coverage
//!   across the horizon.

/// The split-conformal quantile index: the `⌈(n+1)(1−α)⌉`-th smallest score.
/// Returns `None` when the calibration set is too small for the level.
fn conformal_quantile(scores: &mut [f64], alpha: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
    let n = scores.len();
    if n == 0 {
        return None;
    }
    let rank = ((n as f64 + 1.0) * (1.0 - alpha)).ceil() as usize;
    if rank > n {
        return None; // not enough calibration data for this level
    }
    scores.sort_by(|a, b| a.total_cmp(b));
    Some(scores[rank - 1])
}

/// Locally weighted split conformal prediction over Gaussian forecasts.
#[derive(Clone, Debug)]
pub struct LocallyWeightedConformal {
    qhat: f64,
    alpha: f64,
    n_calibration: usize,
}

impl LocallyWeightedConformal {
    /// Fits the score quantile from calibration triples `(y, μ, σ)`.
    pub fn fit(triples: impl IntoIterator<Item = (f64, f64, f64)>, alpha: f64) -> Self {
        let mut scores: Vec<f64> =
            triples.into_iter().map(|(y, mu, sigma)| (y - mu).abs() / sigma.max(1e-9)).collect();
        let n_calibration = scores.len();
        let qhat = conformal_quantile(&mut scores, alpha)
            .expect("calibration set too small for the requested level");
        Self { qhat, alpha, n_calibration }
    }

    /// The fitted score quantile `q̂`.
    pub fn qhat(&self) -> f64 {
        self.qhat
    }

    /// The miscoverage level the predictor was fit at.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of calibration points used.
    pub fn n_calibration(&self) -> usize {
        self.n_calibration
    }

    /// The conformalised interval `μ ± q̂·σ`.
    pub fn interval(&self, mu: f64, sigma: f64) -> (f64, f64) {
        let half = self.qhat * sigma.max(1e-9);
        (mu - half, mu + half)
    }
}

/// CFRNN-style multi-horizon conformal prediction: one absolute-residual
/// quantile per forecast step at level `α/H`.
#[derive(Clone, Debug)]
pub struct Cfrnn {
    qhat: Vec<f64>,
    alpha: f64,
}

impl Cfrnn {
    /// Fits per-horizon quantiles from `(h, |y − μ|)` residual pairs.
    pub fn fit(
        residuals: impl IntoIterator<Item = (usize, f64)>,
        horizon: usize,
        alpha: f64,
    ) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        let mut per_h: Vec<Vec<f64>> = vec![Vec::new(); horizon];
        for (h, r) in residuals {
            assert!(h < horizon, "horizon index {h} out of range");
            per_h[h].push(r.abs());
        }
        let bonferroni = alpha / horizon as f64;
        let qhat = per_h
            .iter_mut()
            .enumerate()
            .map(|(h, scores)| {
                assert!(!scores.is_empty(), "no calibration residuals at horizon {h}");
                // With Bonferroni correction and a small calibration set the
                // exact level can be unreachable; fall back to the maximum
                // residual — the most conservative valid choice.
                conformal_quantile(scores, bonferroni)
                    .unwrap_or_else(|| scores.iter().fold(0.0f64, |a, &b| a.max(b)))
            })
            .collect();
        Self { qhat, alpha }
    }

    /// The per-horizon half-widths.
    pub fn qhat(&self) -> &[f64] {
        &self.qhat
    }

    /// The simultaneous miscoverage level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The interval at horizon `h`: `μ ± q̂_h`.
    pub fn interval(&self, h: usize, mu: f64) -> (f64, f64) {
        (mu - self.qhat[h], mu + self.qhat[h])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_tensor::StuqRng;

    #[test]
    fn quantile_indexing_matches_definition() {
        // n=9, alpha=0.5 → rank = ceil(10·0.5) = 5 → the 5th smallest.
        let mut scores: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let q = conformal_quantile(&mut scores, 0.5).unwrap();
        assert_eq!(q, 5.0);
    }

    #[test]
    fn small_calibration_set_is_rejected() {
        // n=5, alpha=0.05 → rank 6 > 5.
        let mut scores = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(conformal_quantile(&mut scores, 0.05).is_none());
    }

    #[test]
    fn coverage_guarantee_holds_empirically() {
        // Heteroscedastic data with a *mis-specified* σ model: conformal must
        // still deliver ≥ 1−α coverage on fresh draws.
        let mut rng = StuqRng::new(42);
        let alpha = 0.1;
        let gen = |rng: &mut StuqRng| {
            let x = rng.uniform_f64() * 4.0;
            let sigma_true = 0.5 + x; // true spread grows with x
            let y = 2.0 * x + sigma_true * rng.normal_f64();
            let mu_model = 2.0 * x;
            let sigma_model = 1.0; // wrong on purpose
            (y, mu_model, sigma_model)
        };
        let calib: Vec<_> = (0..500).map(|_| gen(&mut rng)).collect();
        let cp = LocallyWeightedConformal::fit(calib, alpha);
        let n_test = 4000;
        let mut covered = 0;
        for _ in 0..n_test {
            let (y, mu, sigma) = gen(&mut rng);
            let (lo, hi) = cp.interval(mu, sigma);
            if y >= lo && y <= hi {
                covered += 1;
            }
        }
        let rate = covered as f64 / n_test as f64;
        assert!(rate >= 1.0 - alpha - 0.02, "coverage {rate} below 1−α");
    }

    #[test]
    fn wider_sigma_means_wider_interval() {
        let calib: Vec<_> = (0..100).map(|i| (i as f64 * 0.01, 0.0, 1.0)).collect();
        let cp = LocallyWeightedConformal::fit(calib, 0.1);
        let (lo1, hi1) = cp.interval(0.0, 1.0);
        let (lo2, hi2) = cp.interval(0.0, 3.0);
        assert!(hi2 - lo2 > hi1 - lo1);
        assert!((hi1 + lo1).abs() < 1e-12, "symmetric around μ");
    }

    #[test]
    fn cfrnn_per_horizon_widths_fit_residuals() {
        // Residuals grow with horizon; the fitted widths must too.
        let mut rng = StuqRng::new(7);
        let horizon = 4;
        let mut residuals = Vec::new();
        for _ in 0..600 {
            for h in 0..horizon {
                residuals.push((h, (1.0 + h as f64) * rng.normal_f64()));
            }
        }
        let cf = Cfrnn::fit(residuals, horizon, 0.2);
        for h in 1..horizon {
            assert!(
                cf.qhat()[h] > cf.qhat()[h - 1],
                "widths must grow with horizon: {:?}",
                cf.qhat()
            );
        }
        let (lo, hi) = cf.interval(2, 10.0);
        assert!((hi + lo) / 2.0 - 10.0 < 1e-9);
    }

    #[test]
    fn cfrnn_bonferroni_fallback_is_conservative() {
        // Tiny calibration set: α/H unreachable → width falls back to the
        // max residual.
        let residuals = vec![(0usize, 1.0), (0, 2.0), (0, 3.0)];
        let cf = Cfrnn::fit(residuals, 1, 0.05);
        assert_eq!(cf.qhat()[0], 3.0);
    }
}
