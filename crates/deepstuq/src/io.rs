//! Saving and loading trained DeepSTUQ models.
//!
//! The on-disk format is a plain-text header (architecture + temperature)
//! followed by the bit-exact parameter blob of [`stuq_nn::serialize`], sealed
//! with a `checksum fnv1a64 …` trailer and written atomically
//! (temp file + fsync + rename, via [`stuq_artifact`]) so a crash can never
//! leave a half-written model on disk. Loading verifies the checksum first,
//! then reconstructs the architecture and validates every parameter name and
//! shape against it, so a truncated, bit-flipped or wrong-architecture file
//! each fails loudly with a distinct error.
//!
//! Training *checkpoints* (mid-run snapshots including optimiser moments,
//! guard state and the RNG stream) use the sibling `deepstuq-checkpoint v1`
//! format in [`crate::checkpoint`]; this module's `deepstuq-model v1` format
//! stores only the finished artifact: architecture, temperature and weights.

use crate::pipeline::DeepStuq;
use std::io::{self, BufRead, Write};
use std::path::Path;
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind};
use stuq_nn::serialize::{load_into, read_params, write_params};
use stuq_tensor::StuqRng;

const MAGIC: &str = "deepstuq-model v1";

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one line (without trailing newline), erroring at end of input.
pub(crate) fn next_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(bad("unexpected end of file"));
    }
    Ok(line.trim_end().to_string())
}

/// Reads a `key value` line, returning the value.
pub(crate) fn field(r: &mut impl BufRead, key: &str) -> io::Result<String> {
    let l = next_line(r)?;
    l.strip_prefix(key)
        .map(|s| s.trim().to_string())
        .ok_or_else(|| bad(format!("expected field {key:?}, got {l:?}")))
}

fn usize_field(r: &mut impl BufRead, key: &str) -> io::Result<usize> {
    field(r, key)?.parse().map_err(|_| bad(format!("bad {key}")))
}

fn bits_field(r: &mut impl BufRead, key: &str) -> io::Result<u32> {
    u32::from_str_radix(&field(r, key)?, 16).map_err(|_| bad(format!("bad {key}")))
}

pub(crate) fn head_name(head: HeadKind) -> &'static str {
    match head {
        HeadKind::Point => "point",
        HeadKind::Gaussian => "gaussian",
        HeadKind::Quantile => "quantile",
    }
}

pub(crate) fn head_from_name(name: &str) -> io::Result<HeadKind> {
    match name {
        "point" => Ok(HeadKind::Point),
        "gaussian" => Ok(HeadKind::Gaussian),
        "quantile" => Ok(HeadKind::Quantile),
        other => Err(bad(format!("unknown head kind {other:?}"))),
    }
}

/// Writes the architecture fields shared by the model and checkpoint formats.
pub(crate) fn write_arch(w: &mut impl Write, cfg: &AgcrnConfig) -> io::Result<()> {
    writeln!(w, "n_nodes {}", cfg.n_nodes)?;
    writeln!(w, "horizon {}", cfg.horizon)?;
    writeln!(w, "hidden {}", cfg.hidden)?;
    writeln!(w, "embed_dim {}", cfg.embed_dim)?;
    writeln!(w, "n_layers {}", cfg.n_layers)?;
    writeln!(w, "encoder_dropout_bits {:08x}", cfg.encoder_dropout.to_bits())?;
    writeln!(w, "decoder_dropout_bits {:08x}", cfg.decoder_dropout.to_bits())?;
    writeln!(w, "head {}", head_name(cfg.head))?;
    writeln!(w, "covariates {}", cfg.n_covariates)
}

/// Reads the architecture fields written by [`write_arch`].
pub(crate) fn read_arch(r: &mut impl BufRead) -> io::Result<AgcrnConfig> {
    let n_nodes = usize_field(r, "n_nodes")?;
    let horizon = usize_field(r, "horizon")?;
    let hidden = usize_field(r, "hidden")?;
    let embed_dim = usize_field(r, "embed_dim")?;
    let n_layers = usize_field(r, "n_layers")?;
    let enc_bits = bits_field(r, "encoder_dropout_bits")?;
    let dec_bits = bits_field(r, "decoder_dropout_bits")?;
    let head = head_from_name(&field(r, "head")?)?;
    let n_covariates = usize_field(r, "covariates")?;
    Ok(AgcrnConfig::new(n_nodes, horizon)
        .with_capacity(hidden, embed_dim, n_layers)
        .with_dropout(f32::from_bits(enc_bits), f32::from_bits(dec_bits))
        .with_head(head)
        .with_covariates(n_covariates))
}

/// Compares two architectures field by field; `Err` names the first
/// disagreement (the distinct wrong-architecture failure of DESIGN.md §8).
pub(crate) fn check_arch(file: &AgcrnConfig, model: &AgcrnConfig) -> Result<(), String> {
    let fields: [(&str, String, String); 9] = [
        ("n_nodes", file.n_nodes.to_string(), model.n_nodes.to_string()),
        ("horizon", file.horizon.to_string(), model.horizon.to_string()),
        ("hidden", file.hidden.to_string(), model.hidden.to_string()),
        ("embed_dim", file.embed_dim.to_string(), model.embed_dim.to_string()),
        ("n_layers", file.n_layers.to_string(), model.n_layers.to_string()),
        (
            "encoder_dropout",
            format!("{:08x}", file.encoder_dropout.to_bits()),
            format!("{:08x}", model.encoder_dropout.to_bits()),
        ),
        (
            "decoder_dropout",
            format!("{:08x}", file.decoder_dropout.to_bits()),
            format!("{:08x}", model.decoder_dropout.to_bits()),
        ),
        ("head", head_name(file.head).into(), head_name(model.head).into()),
        ("covariates", file.n_covariates.to_string(), model.n_covariates.to_string()),
    ];
    for (name, a, b) in fields {
        if a != b {
            return Err(format!("architecture mismatch: {name} is {a} in file, {b} expected"));
        }
    }
    Ok(())
}

/// Writes `model` to `path` atomically with a checksum trailer (creating
/// parent directories).
pub fn save_model(model: &DeepStuq, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w: Vec<u8> = Vec::new();
    writeln!(w, "{MAGIC}")?;
    write_arch(&mut w, model.model().config())?;
    writeln!(w, "temperature_bits {:08x}", model.temperature().to_bits())?;
    writeln!(w, "mc_samples {}", model.mc_samples())?;
    write_params(model.model().params(), &mut w)?;
    stuq_artifact::write_atomic_checksummed(path, &w)
}

/// Loads a model written by [`save_model`], verifying its checksum.
pub fn load_model(path: impl AsRef<Path>) -> io::Result<DeepStuq> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    load_model_bytes(&bytes).map_err(|e| bad(format!("{}: {e}", path.display())))
}

/// [`load_model`] over in-memory bytes (checksum trailer included).
///
/// The hot-reload validator uses this so the checksum it reports and the
/// model it swaps in come from the *same* read — a concurrent writer can
/// never slip a different file in between.
pub fn load_model_bytes(bytes: &[u8]) -> io::Result<DeepStuq> {
    let payload = stuq_artifact::verify(bytes)?;
    let mut r = payload;
    if next_line(&mut r)? != MAGIC {
        return Err(bad("not a deepstuq-model file"));
    }
    let cfg = read_arch(&mut r)?;
    let t_bits = bits_field(&mut r, "temperature_bits")?;
    let mc_samples = usize_field(&mut r, "mc_samples")?;

    // Parameter values are immediately overwritten; the seed is irrelevant.
    let mut model = Agcrn::new(cfg, &mut StuqRng::new(0));
    let entries = read_params(&mut r)?;
    load_into(model.params_mut(), &entries)?;
    let temperature = f32::from_bits(t_bits);
    if !(temperature.is_finite() && temperature > 0.0) {
        return Err(bad(format!("invalid temperature {temperature}")));
    }
    Ok(DeepStuq::from_parts(model, temperature, mc_samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DeepStuqConfig;
    use stuq_traffic::{Preset, Split};

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(55);
        let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        let model = crate::pipeline::DeepStuq::train(&ds, cfg, 55);

        let dir = std::env::temp_dir().join("deepstuq_io_test");
        let path = dir.join("model.stuq");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();

        assert_eq!(loaded.temperature().to_bits(), model.temperature().to_bits());
        assert_eq!(loaded.mc_samples(), model.mc_samples());

        // Deterministic predictions must agree bit-for-bit.
        let w = ds.window(ds.window_starts(Split::Test)[0]);
        let mut r1 = StuqRng::new(9);
        let mut r2 = StuqRng::new(9);
        let f1 = model.predict_with_samples(&w.x, ds.scaler(), 1, &mut r1);
        let f2 = loaded.predict_with_samples(&w.x, ds.scaler(), 1, &mut r2);
        assert_eq!(f1.mu.data(), f2.mu.data());
        assert_eq!(f1.sigma_total.data(), f2.sigma_total.data());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_garbage_fails() {
        let dir = std::env::temp_dir().join("deepstuq_io_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.stuq");
        std::fs::write(&path, "not a model").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arch_check_reports_first_mismatch() {
        let a = AgcrnConfig::new(10, 12).with_capacity(16, 4, 2);
        let b = AgcrnConfig::new(10, 12).with_capacity(32, 4, 2);
        let err = check_arch(&a, &b).unwrap_err();
        assert!(err.contains("architecture mismatch: hidden"), "{err}");
        assert!(check_arch(&a, &a.clone()).is_ok());
    }
}
