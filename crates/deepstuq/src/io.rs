//! Saving and loading trained DeepSTUQ models.
//!
//! The on-disk format is a plain-text header (architecture + temperature)
//! followed by the bit-exact parameter blob of
//! [`stuq_nn::serialize`]. Loading reconstructs the architecture, then
//! validates every parameter name and shape against it, so a file from a
//! different architecture fails loudly instead of silently mis-loading.

use crate::pipeline::DeepStuq;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind};
use stuq_nn::serialize::{load_into, read_params, write_params};
use stuq_tensor::StuqRng;

const MAGIC: &str = "deepstuq-model v1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes `model` to `path` (creating parent directories).
pub fn save_model(model: &DeepStuq, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    let cfg = model.model().config();
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "n_nodes {}", cfg.n_nodes)?;
    writeln!(w, "horizon {}", cfg.horizon)?;
    writeln!(w, "hidden {}", cfg.hidden)?;
    writeln!(w, "embed_dim {}", cfg.embed_dim)?;
    writeln!(w, "n_layers {}", cfg.n_layers)?;
    writeln!(w, "encoder_dropout_bits {:08x}", cfg.encoder_dropout.to_bits())?;
    writeln!(w, "decoder_dropout_bits {:08x}", cfg.decoder_dropout.to_bits())?;
    let head = match cfg.head {
        HeadKind::Point => "point",
        HeadKind::Gaussian => "gaussian",
        HeadKind::Quantile => "quantile",
    };
    writeln!(w, "head {head}")?;
    writeln!(w, "temperature_bits {:08x}", model.temperature().to_bits())?;
    writeln!(w, "mc_samples {}", model.mc_samples())?;
    write_params(model.model().params(), &mut w)
}

/// Loads a model written by [`save_model`].
pub fn load_model(path: impl AsRef<Path>) -> io::Result<DeepStuq> {
    let mut r = BufReader::new(std::fs::File::open(path.as_ref())?);
    let mut line = String::new();
    let mut next = |r: &mut BufReader<std::fs::File>| -> io::Result<String> {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("unexpected end of file"));
        }
        Ok(line.trim().to_string())
    };
    if next(&mut r)? != MAGIC {
        return Err(bad("not a deepstuq-model file"));
    }
    let mut field = |r: &mut BufReader<std::fs::File>, key: &str| -> io::Result<String> {
        let l = next(r)?;
        l.strip_prefix(key)
            .map(|s| s.trim().to_string())
            .ok_or_else(|| bad(format!("expected field {key:?}, got {l:?}")))
    };
    let n_nodes: usize = field(&mut r, "n_nodes")?.parse().map_err(|_| bad("bad n_nodes"))?;
    let horizon: usize = field(&mut r, "horizon")?.parse().map_err(|_| bad("bad horizon"))?;
    let hidden: usize = field(&mut r, "hidden")?.parse().map_err(|_| bad("bad hidden"))?;
    let embed_dim: usize = field(&mut r, "embed_dim")?.parse().map_err(|_| bad("bad embed_dim"))?;
    let n_layers: usize = field(&mut r, "n_layers")?.parse().map_err(|_| bad("bad n_layers"))?;
    let enc_bits = u32::from_str_radix(&field(&mut r, "encoder_dropout_bits")?, 16)
        .map_err(|_| bad("bad encoder_dropout_bits"))?;
    let dec_bits = u32::from_str_radix(&field(&mut r, "decoder_dropout_bits")?, 16)
        .map_err(|_| bad("bad decoder_dropout_bits"))?;
    let head = match field(&mut r, "head")?.as_str() {
        "point" => HeadKind::Point,
        "gaussian" => HeadKind::Gaussian,
        "quantile" => HeadKind::Quantile,
        other => return Err(bad(format!("unknown head kind {other:?}"))),
    };
    let t_bits = u32::from_str_radix(&field(&mut r, "temperature_bits")?, 16)
        .map_err(|_| bad("bad temperature_bits"))?;
    let mc_samples: usize =
        field(&mut r, "mc_samples")?.parse().map_err(|_| bad("bad mc_samples"))?;

    let cfg = AgcrnConfig::new(n_nodes, horizon)
        .with_capacity(hidden, embed_dim, n_layers)
        .with_dropout(f32::from_bits(enc_bits), f32::from_bits(dec_bits))
        .with_head(head);
    // Parameter values are immediately overwritten; the seed is irrelevant.
    let mut model = Agcrn::new(cfg, &mut StuqRng::new(0));
    let entries = read_params(&mut r)?;
    load_into(model.params_mut(), &entries)?;
    let temperature = f32::from_bits(t_bits);
    if !(temperature.is_finite() && temperature > 0.0) {
        return Err(bad(format!("invalid temperature {temperature}")));
    }
    Ok(DeepStuq::from_parts(model, temperature, mc_samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DeepStuqConfig;
    use stuq_traffic::{Preset, Split};

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(55);
        let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        let model = crate::pipeline::DeepStuq::train(&ds, cfg, 55);

        let dir = std::env::temp_dir().join("deepstuq_io_test");
        let path = dir.join("model.stuq");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();

        assert_eq!(loaded.temperature().to_bits(), model.temperature().to_bits());
        assert_eq!(loaded.mc_samples(), model.mc_samples());

        // Deterministic predictions must agree bit-for-bit.
        let w = ds.window(ds.window_starts(Split::Test)[0]);
        let mut r1 = StuqRng::new(9);
        let mut r2 = StuqRng::new(9);
        let f1 = model.predict_with_samples(&w.x, ds.scaler(), 1, &mut r1);
        let f2 = loaded.predict_with_samples(&w.x, ds.scaler(), 1, &mut r2);
        assert_eq!(f1.mu.data(), f2.mu.data());
        assert_eq!(f1.sigma_total.data(), f2.sigma_total.data());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_garbage_fails() {
        let dir = std::env::temp_dir().join("deepstuq_io_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.stuq");
        std::fs::write(&path, "not a model").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
