//! The uncertainty-quantification method zoo of Table II.
//!
//! Every method shares the same AGCRN base architecture (the paper's "fair
//! comparison" setup, §V-C2) and differs only in head, dropout regime,
//! training loss and post-processing:
//!
//! | method | head | dropout | loss | post-processing |
//! |---|---|---|---|---|
//! | Point | point | off | MAE | — |
//! | Quantile | 3-quantile | off | pinball | — |
//! | MVE | Gaussian | off | Eq. 9 | — |
//! | MCDO | point | on | MAE | MC sampling |
//! | Combined | Gaussian | on | Eq. 14 | MC sampling |
//! | TS | Gaussian | off | Eq. 9 | temperature |
//! | FGE | point | off | MAE | snapshot ensemble |
//! | Conformal | Gaussian | off | Eq. 9 | locally weighted CP |
//! | CFRNN | point | off | MAE | per-horizon CP |
//! | DeepSTUQ/S | Gaussian | on | Eq. 14 | AWA + T, 1 sample |
//! | DeepSTUQ | Gaussian | on | Eq. 14 | AWA + T, MC sampling |

use crate::awa::awa_retrain;
use crate::calibrate::calibrate_on_validation;
use crate::config::{AwaConfig, CalibConfig, TrainConfig};
use crate::conformal::{Cfrnn, LocallyWeightedConformal};
use crate::eval::{evaluate, EvalResult, RawForecast};
use crate::mc::{ensemble_forecast, mc_forecast, GaussianForecast};
use crate::trainer::{train, train_epoch, LossKind};
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind};
use stuq_nn::opt::Adam;
use stuq_nn::sched::CosineSchedule;
use stuq_tensor::{StuqRng, Tensor};
use stuq_traffic::{Scaler, Split, SplitDataset};

/// The eleven methods compared in Tables III–IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Deterministic point prediction (the AGCRN baseline).
    Point,
    /// Distribution-free quantile regression.
    Quantile,
    /// Mean–variance estimation (aleatoric only).
    Mve,
    /// Monte-Carlo dropout (epistemic only).
    Mcdo,
    /// MC dropout + heteroscedastic head (Kendall & Gal).
    Combined,
    /// Temperature scaling on top of MVE.
    Ts,
    /// Fast Geometric Ensembling (epistemic only).
    Fge,
    /// Locally weighted conformal prediction on top of MVE.
    Conformal,
    /// Conformal forecasting RNN (per-horizon, Bonferroni).
    Cfrnn,
    /// DeepSTUQ with a single deterministic pass.
    DeepStuqS,
    /// Full DeepSTUQ (MC sampling).
    DeepStuq,
}

impl Method {
    /// All methods in the paper's Table IV column order.
    pub fn all() -> [Method; 11] {
        [
            Method::Point,
            Method::Quantile,
            Method::Mve,
            Method::Mcdo,
            Method::Combined,
            Method::Ts,
            Method::Fge,
            Method::Conformal,
            Method::Cfrnn,
            Method::DeepStuqS,
            Method::DeepStuq,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Point => "Point",
            Method::Quantile => "Quantile",
            Method::Mve => "MVE",
            Method::Mcdo => "MCDO",
            Method::Combined => "Combined",
            Method::Ts => "TS",
            Method::Fge => "FGE",
            Method::Conformal => "Conformal",
            Method::Cfrnn => "CFRNN",
            Method::DeepStuqS => "DeepSTUQ/S",
            Method::DeepStuq => "DeepSTUQ",
        }
    }

    /// Paradigm label (Table II).
    pub fn paradigm(&self) -> &'static str {
        match self {
            Method::Point => "deterministic",
            Method::Quantile | Method::Cfrnn => "distribution-free",
            Method::Mve | Method::Ts | Method::Conformal => "frequentist",
            Method::Mcdo | Method::Combined => "Bayesian",
            Method::Fge => "ensembling",
            Method::DeepStuqS | Method::DeepStuq => "Bayesian + ensembling",
        }
    }

    /// Uncertainty type label (Table II).
    pub fn uncertainty_type(&self) -> &'static str {
        match self {
            Method::Point => "no",
            Method::Quantile | Method::Mve | Method::Ts | Method::Conformal | Method::Cfrnn => {
                "aleatoric"
            }
            Method::Mcdo | Method::Fge => "epistemic",
            Method::Combined | Method::DeepStuqS | Method::DeepStuq => "aleatoric + epistemic",
        }
    }

    fn head(&self) -> HeadKind {
        match self {
            Method::Point | Method::Mcdo | Method::Fge | Method::Cfrnn => HeadKind::Point,
            Method::Quantile => HeadKind::Quantile,
            _ => HeadKind::Gaussian,
        }
    }

    fn uses_dropout(&self) -> bool {
        matches!(self, Method::Mcdo | Method::Combined | Method::DeepStuqS | Method::DeepStuq)
    }

    fn loss(&self, lambda: f32) -> LossKind {
        match self.head() {
            HeadKind::Point => LossKind::Mae,
            HeadKind::Quantile => LossKind::Pinball3,
            HeadKind::Gaussian => LossKind::Combined { lambda },
        }
    }
}

/// Shared experiment configuration for the method zoo.
#[derive(Clone, Debug)]
pub struct MethodConfig {
    /// Pre-training stage.
    pub train: TrainConfig,
    /// AWA stage (DeepSTUQ only).
    pub awa: AwaConfig,
    /// Calibration stage (TS and DeepSTUQ).
    pub calib: CalibConfig,
    /// MC samples at test time (paper: 10).
    pub mc_samples: usize,
    /// FGE snapshots (paper: 10), one per cosine cycle-epoch.
    pub fge_snapshots: usize,
    /// Base-model hidden width.
    pub hidden: usize,
    /// Base-model embedding dimension.
    pub embed_dim: usize,
    /// Base-model recurrent layers.
    pub n_layers: usize,
    /// Encoder (graph-conv) dropout for dropout methods.
    pub encoder_dropout: f32,
    /// Decoder dropout for dropout methods.
    pub decoder_dropout: f32,
    /// Stride over validation windows for conformal/CFRNN fitting.
    pub val_stride: usize,
}

impl MethodConfig {
    /// Paper-faithful settings at full scale.
    pub fn paper(n_nodes: usize) -> Self {
        Self {
            train: TrainConfig::default(),
            awa: AwaConfig::default(),
            calib: CalibConfig::default(),
            mc_samples: 10,
            fge_snapshots: 10,
            hidden: 32,
            embed_dim: 8.min(n_nodes / 2).max(2),
            n_layers: 2,
            encoder_dropout: if n_nodes < 200 { 0.05 } else { 0.1 },
            decoder_dropout: 0.2,
            val_stride: 1,
        }
    }

    /// Scaled-down settings for the experiment harness.
    pub fn fast(n_nodes: usize, epochs: usize, batch: usize) -> Self {
        Self {
            train: TrainConfig::scaled(epochs, batch),
            awa: AwaConfig::scaled(((epochs / 2).max(1) * 2).min(6), batch),
            calib: CalibConfig { mc_samples: 5, max_iters: 300, stride: 5 },
            mc_samples: 5,
            fge_snapshots: 4,
            hidden: 16,
            embed_dim: 6.min(n_nodes / 2).max(2),
            n_layers: 1,
            encoder_dropout: 0.05,
            decoder_dropout: 0.15,
            val_stride: 5,
        }
    }

    fn base_config(&self, method: Method, n_nodes: usize, horizon: usize) -> AgcrnConfig {
        let (enc, dec) = if method.uses_dropout() {
            (self.encoder_dropout, self.decoder_dropout)
        } else {
            (0.0, 0.0)
        };
        AgcrnConfig::new(n_nodes, horizon)
            .with_capacity(self.hidden, self.embed_dim, self.n_layers)
            .with_dropout(enc, dec)
            .with_head(method.head())
    }
}

/// A trained instance of one method, ready for evaluation.
pub struct TrainedMethod {
    method: Method,
    cfg: MethodConfig,
    model: Agcrn,
    temperature: f32,
    conformal: Option<LocallyWeightedConformal>,
    cfrnn: Option<Cfrnn>,
    snapshots: Option<Vec<Vec<Tensor>>>,
    rng: StuqRng,
}

impl TrainedMethod {
    /// Trains `method` on the dataset's training split (plus whichever
    /// validation-split post-processing the method requires).
    pub fn train(method: Method, ds: &SplitDataset, cfg: MethodConfig, seed: u64) -> Self {
        let mut rng = StuqRng::new(seed);
        let base = cfg.base_config(method, ds.n_nodes(), ds.horizon());
        let mut model = Agcrn::new(base, &mut rng);
        let kind = method.loss(cfg.train.lambda);
        train(&mut model, ds, &cfg.train, kind, &mut rng).expect("baseline pre-training failed");

        let mut temperature = 1.0f32;
        let mut conformal = None;
        let mut cfrnn = None;
        let mut snapshots = None;

        match method {
            Method::DeepStuqS | Method::DeepStuq => {
                awa_retrain(&mut model, ds, &cfg.awa, kind, cfg.train.weight_decay, &mut rng)
                    .expect("AWA re-training failed");
                temperature = calibrate_on_validation(&model, ds, &cfg.calib, &mut rng)
                    .expect("calibration failed");
            }
            Method::Ts => {
                // TS calibrates the *deterministic* MVE variance.
                let c = CalibConfig { mc_samples: 1, ..cfg.calib };
                temperature =
                    calibrate_on_validation(&model, ds, &c, &mut rng).expect("calibration failed");
            }
            Method::Conformal => {
                conformal = Some(fit_conformal(&model, ds, cfg.val_stride, &mut rng));
            }
            Method::Cfrnn => {
                cfrnn = Some(fit_cfrnn(&model, ds, cfg.val_stride, &mut rng));
            }
            Method::Fge => {
                snapshots = Some(fge_snapshots(&mut model, ds, &cfg, kind, &mut rng));
            }
            _ => {}
        }

        Self { method, cfg, model, temperature, conformal, cfrnn, snapshots, rng }
    }

    /// The method this instance implements.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Fitted temperature (1.0 unless the method calibrates).
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Raw-scale forecast for one normalised window.
    pub fn forecast(&mut self, x: &Tensor, scaler: &Scaler) -> RawForecast {
        let std = scaler.std() as f32;
        match self.method {
            Method::Point => {
                let f = mc_forecast(&self.model, x, 1, &mut self.rng);
                RawForecast { mu: raw_mu(&f, scaler), sigma: None, bounds: None }
            }
            Method::Quantile => self.quantile_forecast(x, scaler),
            Method::Mve => {
                let f = mc_forecast(&self.model, x, 1, &mut self.rng);
                let sigma = f.var_aleatoric.map(|v| v.max(0.0).sqrt() * std);
                RawForecast { mu: raw_mu(&f, scaler), sigma: Some(sigma), bounds: None }
            }
            Method::Mcdo | Method::Combined => {
                let f = mc_forecast(&self.model, x, self.cfg.mc_samples, &mut self.rng);
                let sigma = f.sigma_total(1.0).scale(std);
                RawForecast { mu: raw_mu(&f, scaler), sigma: Some(sigma), bounds: None }
            }
            Method::Ts => {
                let f = mc_forecast(&self.model, x, 1, &mut self.rng);
                let t = self.temperature;
                let sigma = f.var_aleatoric.map(|v| v.max(0.0).sqrt() / t * std);
                RawForecast { mu: raw_mu(&f, scaler), sigma: Some(sigma), bounds: None }
            }
            Method::Fge => {
                let snaps = self.snapshots.as_ref().expect("FGE has snapshots").clone();
                let f = ensemble_forecast(&mut self.model, &snaps, x, &mut self.rng);
                let sigma = f.var_epistemic.map(|v| v.max(0.0).sqrt() * std);
                RawForecast { mu: raw_mu(&f, scaler), sigma: Some(sigma), bounds: None }
            }
            Method::Conformal => {
                let f = mc_forecast(&self.model, x, 1, &mut self.rng);
                let mu = raw_mu(&f, scaler);
                let sigma = f.var_aleatoric.map(|v| v.max(0.0).sqrt() * std);
                let cp = self.conformal.as_ref().expect("conformal fitted");
                let mut lo = mu.clone();
                let mut hi = mu.clone();
                for i in 0..mu.len() {
                    let (l, h) = cp.interval(mu.data()[i] as f64, sigma.data()[i] as f64);
                    lo.data_mut()[i] = l as f32;
                    hi.data_mut()[i] = h as f32;
                }
                RawForecast { mu, sigma: Some(sigma), bounds: Some((lo, hi)) }
            }
            Method::Cfrnn => {
                let f = mc_forecast(&self.model, x, 1, &mut self.rng);
                let mu = raw_mu(&f, scaler);
                let cf = self.cfrnn.as_ref().expect("cfrnn fitted");
                let (n, tau) = (mu.rows(), mu.cols());
                let mut lo = mu.clone();
                let mut hi = mu.clone();
                for i in 0..n {
                    for h in 0..tau {
                        let (l, u) = cf.interval(h, mu.get(i, h) as f64);
                        lo.set(i, h, l as f32);
                        hi.set(i, h, u as f32);
                    }
                }
                RawForecast { mu, sigma: None, bounds: Some((lo, hi)) }
            }
            Method::DeepStuqS => {
                let f = mc_forecast(&self.model, x, 1, &mut self.rng);
                let sigma = f.sigma_total(self.temperature).scale(std);
                RawForecast { mu: raw_mu(&f, scaler), sigma: Some(sigma), bounds: None }
            }
            Method::DeepStuq => {
                let f = mc_forecast(&self.model, x, self.cfg.mc_samples, &mut self.rng);
                let sigma = f.sigma_total(self.temperature).scale(std);
                RawForecast { mu: raw_mu(&f, scaler), sigma: Some(sigma), bounds: None }
            }
        }
    }

    fn quantile_forecast(&mut self, x: &Tensor, scaler: &Scaler) -> RawForecast {
        use stuq_models::Prediction;
        use stuq_nn::layers::FwdCtx;
        let mut tape = stuq_tensor::Tape::new();
        let mut ctx = FwdCtx::eval(&mut self.rng);
        let pred = self.model.forward(&mut tape, x, &mut ctx);
        let Prediction::Quantiles { lo, mid, hi } = pred else {
            panic!("quantile method requires a quantile head")
        };
        let inv = |t: &Tensor| t.map(|v| scaler.inverse(v));
        let lo_r = inv(tape.value(lo));
        let hi_r = inv(tape.value(hi));
        // Quantile crossing can occur; repair by sorting the pair.
        let lo_fixed = lo_r.zip(&hi_r, f32::min);
        let hi_fixed = lo_r.zip(&hi_r, f32::max);
        RawForecast { mu: inv(tape.value(mid)), sigma: None, bounds: Some((lo_fixed, hi_fixed)) }
    }

    /// Evaluates the trained method over a split.
    pub fn evaluate(&mut self, ds: &SplitDataset, split: Split, stride: usize) -> EvalResult {
        let scaler = *ds.scaler();
        // Borrow-splitting: evaluation calls `self.forecast` per window.
        let this = self;
        evaluate(ds, split, stride, move |x, _| this.forecast(x, &scaler))
    }
}

fn raw_mu(f: &GaussianForecast, scaler: &Scaler) -> Tensor {
    f.mu.map(|v| scaler.inverse(v))
}

fn fit_conformal(
    model: &Agcrn,
    ds: &SplitDataset,
    stride: usize,
    rng: &mut StuqRng,
) -> LocallyWeightedConformal {
    let std = ds.scaler().std() as f32;
    let mut triples = Vec::new();
    for &s in ds.window_starts(Split::Val).iter().step_by(stride.max(1)) {
        let w = ds.window(s);
        let f = mc_forecast(model, &w.x, 1, rng);
        let mu = raw_mu(&f, ds.scaler());
        let sigma = f.var_aleatoric.map(|v| v.max(0.0).sqrt() * std);
        let (n, tau) = (mu.rows(), mu.cols());
        for i in 0..n {
            for h in 0..tau {
                triples.push((
                    w.y_raw.get(h, i) as f64,
                    mu.get(i, h) as f64,
                    sigma.get(i, h) as f64,
                ));
            }
        }
    }
    LocallyWeightedConformal::fit(triples, 0.05)
}

fn fit_cfrnn(model: &Agcrn, ds: &SplitDataset, stride: usize, rng: &mut StuqRng) -> Cfrnn {
    let mut residuals = Vec::new();
    for &s in ds.window_starts(Split::Val).iter().step_by(stride.max(1)) {
        let w = ds.window(s);
        let f = mc_forecast(model, &w.x, 1, rng);
        let mu = raw_mu(&f, ds.scaler());
        let (n, tau) = (mu.rows(), mu.cols());
        for i in 0..n {
            for h in 0..tau {
                residuals.push((h, (w.y_raw.get(h, i) - mu.get(i, h)) as f64));
            }
        }
    }
    Cfrnn::fit(residuals, ds.horizon(), 0.05)
}

/// FGE: one cosine cycle per snapshot epoch, snapshotting at each minimum.
fn fge_snapshots(
    model: &mut Agcrn,
    ds: &SplitDataset,
    cfg: &MethodConfig,
    kind: LossKind,
    rng: &mut StuqRng,
) -> Vec<Vec<Tensor>> {
    let n_iters = ds.window_starts(Split::Train).len().div_ceil(cfg.train.batch_size).max(1);
    let mut opt = Adam::new(cfg.awa.lr_max, cfg.train.weight_decay);
    let mut snaps = Vec::with_capacity(cfg.fge_snapshots);
    for _ in 0..cfg.fge_snapshots {
        let sched = CosineSchedule::new(cfg.awa.lr_max, cfg.awa.lr_min, n_iters);
        let mut hook = |it: usize| sched.lr_at(it);
        train_epoch(
            model,
            ds,
            cfg.train.batch_size,
            kind,
            &mut opt,
            cfg.train.grad_clip,
            rng,
            Some(&mut hook),
        )
        .expect("FGE snapshot epoch failed");
        snaps.push(model.params().snapshot());
    }
    snaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_traffic::Preset;

    fn tiny_ds(seed: u64) -> SplitDataset {
        Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(seed)
    }

    #[test]
    fn table2_metadata_is_complete() {
        for m in Method::all() {
            assert!(!m.name().is_empty());
            assert!(!m.paradigm().is_empty());
            assert!(!m.uncertainty_type().is_empty());
        }
        assert_eq!(Method::DeepStuq.paradigm(), "Bayesian + ensembling");
        assert_eq!(Method::Mcdo.uncertainty_type(), "epistemic");
    }

    #[test]
    fn point_method_has_no_uq_metrics() {
        let ds = tiny_ds(41);
        let cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        let mut tm = TrainedMethod::train(Method::Point, &ds, cfg, 41);
        let r = tm.evaluate(&ds, Split::Test, 9);
        assert!(r.uq.is_none());
        assert!(r.point.mae.is_finite() && r.point.mae > 0.0);
    }

    #[test]
    fn mve_and_ts_produce_gaussian_uq() {
        let ds = tiny_ds(42);
        let cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        let mut mve = TrainedMethod::train(Method::Mve, &ds, cfg.clone(), 42);
        let r = mve.evaluate(&ds, Split::Test, 9);
        let uq = r.uq.expect("MVE has UQ");
        assert!(uq.mnll.is_finite());
        assert!((0.0..=100.0).contains(&uq.picp));
        assert!(uq.mpiw > 0.0);

        let mut ts = TrainedMethod::train(Method::Ts, &ds, cfg, 42);
        assert!(ts.temperature() > 0.0 && (ts.temperature() - 1.0).abs() > 1e-6);
        let r2 = ts.evaluate(&ds, Split::Test, 9);
        assert!(r2.uq.unwrap().mnll.is_finite());
    }

    #[test]
    fn mcdo_underestimates_variance_relative_to_mve() {
        // The paper's headline qualitative finding: epistemic-only methods
        // (MCDO) produce far narrower intervals than aleatoric-aware ones.
        let ds = tiny_ds(43);
        let cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        let mut mcdo = TrainedMethod::train(Method::Mcdo, &ds, cfg.clone(), 43);
        let mut mve = TrainedMethod::train(Method::Mve, &ds, cfg, 43);
        let r_mcdo = mcdo.evaluate(&ds, Split::Test, 9);
        let r_mve = mve.evaluate(&ds, Split::Test, 9);
        let (u1, u2) = (r_mcdo.uq.unwrap(), r_mve.uq.unwrap());
        assert!(
            u1.mpiw < u2.mpiw,
            "MCDO width {:.2} should be below MVE width {:.2}",
            u1.mpiw,
            u2.mpiw
        );
        assert!(u1.picp < u2.picp, "MCDO must under-cover relative to MVE");
    }

    #[test]
    fn conformal_reaches_nominal_coverage() {
        let ds = tiny_ds(44);
        let mut cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        cfg.val_stride = 2;
        let mut cp = TrainedMethod::train(Method::Conformal, &ds, cfg, 44);
        let r = cp.evaluate(&ds, Split::Test, 5);
        let uq = r.uq.unwrap();
        // Finite-sample guarantee is on calibration-exchangeable data; allow
        // slack for distribution drift across splits.
        assert!(uq.picp > 88.0, "conformal PICP {:.1} too low", uq.picp);
    }

    #[test]
    fn cfrnn_bounds_and_no_mnll() {
        let ds = tiny_ds(45);
        let mut cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        cfg.val_stride = 2;
        let mut cf = TrainedMethod::train(Method::Cfrnn, &ds, cfg, 45);
        let r = cf.evaluate(&ds, Split::Test, 5);
        let uq = r.uq.unwrap();
        assert!(uq.mnll.is_nan(), "CFRNN is distribution-free: MNLL undefined");
        assert!(uq.picp > 85.0, "Bonferroni CFRNN should over-cover, got {:.1}", uq.picp);
    }

    #[test]
    fn fge_builds_requested_snapshot_count() {
        let ds = tiny_ds(46);
        let mut cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        cfg.fge_snapshots = 3;
        let mut fge = TrainedMethod::train(Method::Fge, &ds, cfg, 46);
        assert_eq!(fge.snapshots.as_ref().unwrap().len(), 3);
        let r = fge.evaluate(&ds, Split::Test, 9);
        assert!(r.uq.unwrap().mpiw > 0.0);
    }

    #[test]
    fn deepstuq_full_beats_its_own_interval_sanity() {
        let ds = tiny_ds(47);
        let cfg = MethodConfig::fast(ds.n_nodes(), 1, 8);
        let mut m = TrainedMethod::train(Method::DeepStuq, &ds, cfg, 47);
        assert!(m.temperature() > 0.0);
        let r = m.evaluate(&ds, Split::Test, 9);
        let uq = r.uq.unwrap();
        assert!(uq.mnll.is_finite());
        assert!(uq.picp > 50.0, "calibrated DeepSTUQ should cover most points");
    }
}
