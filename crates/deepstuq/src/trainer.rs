//! Generic mini-batch training over any [`Forecaster`].
//!
//! One autodiff tape is recorded per *sample* and its gradients merged into
//! the batch gradient; this keeps peak memory at a single window's graph and
//! matches averaging the per-sample losses exactly.
//!
//! The per-sample loop itself stays sequential — that fixes the RNG draw
//! order the guard snapshots and checkpoints depend on — but every pass
//! through it runs on the parallel training engine: the reverse sweep is the
//! level-scheduled [`Tape::backward`] (DESIGN.md §9) and the optimiser step
//! fans parameter slots onto the pool, both bit-identical to their serial
//! forms for any `STUQ_THREADS` setting. All three pipeline stages
//! (pre-train, AWA re-training, calibration) inherit this because they all
//! route through here.
//!
//! Every stage routes through the divergence guard (DESIGN.md §8): each
//! batch's loss and gradient norm are checked before the optimiser step, bad
//! batches are skipped, and sustained divergence rewinds to an in-memory
//! last-good snapshot with a backed-off learning rate. Failures surface as
//! typed [`TrainError`]s instead of panics.

use crate::config::TrainConfig;
use crate::error::{Stage, TrainError};
use crate::guard::{GuardConfig, GuardState};
use stuq_models::{Forecaster, Prediction};
use stuq_nn::layers::FwdCtx;
use stuq_nn::loss;
use stuq_nn::opt::{Optimizer, OptimizerState};
use stuq_tensor::{GradStore, NodeId, StuqRng, Tape, Tensor};
use stuq_traffic::{BatchIter, Split, SplitDataset};

/// Which training loss to apply to the model's head output.
#[derive(Clone, Copy, Debug)]
pub enum LossKind {
    /// Mean absolute error on the point output (deterministic baselines,
    /// MCDO, FGE).
    Mae,
    /// The paper's combined loss (Eq. 9 / Eq. 14) with weight `λ`.
    Combined {
        /// Relative NLL weight.
        lambda: f32,
    },
    /// Three-quantile pinball loss (0.025 / 0.5 / 0.975) for the quantile
    /// baseline.
    Pinball3,
}

/// Builds the loss node for one sample's prediction.
///
/// Falling back to MAE for a mismatched head would silently train the wrong
/// objective, so incompatible combinations return
/// [`TrainError::HeadMismatch`].
pub fn loss_node(
    tape: &mut Tape,
    pred: &Prediction,
    target: NodeId,
    kind: LossKind,
) -> Result<NodeId, TrainError> {
    match (kind, pred) {
        (LossKind::Mae, p) => Ok(loss::mae(tape, p.point(), target)),
        (LossKind::Combined { lambda }, Prediction::Gaussian { mu, logvar }) => {
            Ok(loss::combined(tape, *mu, *logvar, target, lambda))
        }
        (LossKind::Combined { .. }, _) => Err(TrainError::HeadMismatch {
            requirement: "Combined loss requires a Gaussian head".into(),
        }),
        (LossKind::Pinball3, Prediction::Quantiles { lo, mid, hi }) => {
            let l_lo = loss::pinball(tape, *lo, target, 0.025);
            let l_mid = loss::pinball(tape, *mid, target, 0.5);
            let l_hi = loss::pinball(tape, *hi, target, 0.975);
            let s = tape.add(l_lo, l_mid);
            Ok(tape.add(s, l_hi))
        }
        (LossKind::Pinball3, _) => Err(TrainError::HeadMismatch {
            requirement: "Pinball3 loss requires a quantile head".into(),
        }),
    }
}

/// Computes the gradient and loss of one sample.
fn sample_grad(
    model: &dyn Forecaster,
    ds: &SplitDataset,
    start: usize,
    kind: LossKind,
    rng: &mut StuqRng,
) -> Result<(GradStore, f64), TrainError> {
    let w = ds.window(start);
    let y_norm = ds.normalize_target(&w.y_raw).transpose(); // [N, τ]
    let mut tape = Tape::new();
    let mut ctx = FwdCtx::train(rng);
    let pred = model.forward_with_cov(&mut tape, &w.x, w.cov.as_ref(), &mut ctx);
    let target = tape.constant(y_norm);
    let l = loss_node(&mut tape, &pred, target, kind)?;
    let value = tape.value(l).get(0, 0) as f64;
    Ok((tape.backward(l), value))
}

/// The guard's in-memory last-good snapshot: everything a rewind restores.
struct Snapshot {
    params: Vec<Tensor>,
    opt: OptimizerState,
    rng: StuqRng,
    batch_idx: usize,
    total: f64,
    count: usize,
}

impl Snapshot {
    fn capture(
        model: &dyn Forecaster,
        opt: &dyn Optimizer,
        rng: &StuqRng,
        batch_idx: usize,
        total: f64,
        count: usize,
    ) -> Self {
        Self {
            params: model.params().snapshot(),
            opt: opt.export_state(),
            rng: rng.clone(),
            batch_idx,
            total,
            count,
        }
    }

    /// Restores the snapshot, or reports why the optimiser rejected it.
    ///
    /// The optimiser state is imported *first*: a mismatch (e.g. a caller
    /// swapped algorithms mid-stage) must not leave restored parameters
    /// paired with stale moments.
    fn restore(
        &self,
        model: &mut dyn Forecaster,
        opt: &mut dyn Optimizer,
        rng: &mut StuqRng,
    ) -> Result<(), String> {
        opt.import_state(&self.opt)?;
        model.params_mut().load_snapshot(&self.params);
        *rng = self.rng.clone();
        Ok(())
    }
}

/// Runs one guarded epoch over the training split; returns the mean training
/// loss over the batches that were actually applied.
///
/// `lr_per_iter`, when provided, is consulted before each batch — this is how
/// AWA's within-epoch cosine schedule (Eq. 16) is driven. The effective rate
/// each batch is `raw · gstate.lr_scale`, so a rewound stage keeps its
/// backed-off rate across epochs.
#[allow(clippy::too_many_arguments)] // mirrors the paper's training-loop knobs
pub fn train_epoch_guarded(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    batch_size: usize,
    kind: LossKind,
    opt: &mut dyn Optimizer,
    grad_clip: f64,
    rng: &mut StuqRng,
    mut lr_per_iter: Option<&mut dyn FnMut(usize) -> f32>,
    stage: Stage,
    guard: &GuardConfig,
    gstate: &mut GuardState,
) -> Result<f64, TrainError> {
    let starts = ds.window_starts(Split::Train);
    if starts.is_empty() {
        return Err(TrainError::EmptySplit { what: "training windows".into() });
    }
    // The shuffle happens once here (consuming RNG); collecting the batch
    // list up front lets a rewind jump back without re-drawing the order.
    let batches: Vec<Vec<usize>> = BatchIter::new(starts, batch_size, rng).collect();
    let base_lr = opt.lr();
    let mut snap = Snapshot::capture(model, opt, rng, 0, 0.0, 0);
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut consecutive_trips = 0usize;
    let mut healthy_since_snap = 0usize;
    let mut last_raw_lr = base_lr;
    let mut it = 0usize;
    while it < batches.len() {
        let batch = &batches[it];
        let raw_lr = match lr_per_iter.as_mut() {
            Some(f) => f(it),
            None => base_lr,
        };
        last_raw_lr = raw_lr;
        opt.set_lr(raw_lr * gstate.lr_scale);

        let t_batch = stuq_obs::trace_enabled().then(std::time::Instant::now);
        let mut grads = GradStore::default();
        let mut batch_loss = 0.0f64;
        for &s in batch {
            let (g, l) = sample_grad(model, ds, s, kind, rng)?;
            grads.merge(g);
            batch_loss += l;
        }
        grads.scale(1.0 / batch.len() as f32);
        let mean_loss = batch_loss / batch.len() as f64;
        let grad_norm = grads.global_norm();
        let healthy = mean_loss.is_finite()
            && mean_loss.abs() <= guard.max_abs_loss
            && grad_norm.is_finite()
            && grad_norm <= guard.max_grad_norm;

        // Telemetry is a pure observer: nothing below feeds back into the
        // batch loop, the RNG, or the guard's decisions.
        if stuq_obs::summary_enabled() {
            let m = stuq_obs::metrics();
            m.train_batches.inc();
            if !mean_loss.is_finite() || !grad_norm.is_finite() {
                m.train_nonfinite_batches.inc();
            }
            m.train_loss.set(mean_loss);
            m.train_grad_norm.set(grad_norm);
            m.train_grad_norm_hist.record(grad_norm);
            if let Some(t) = t_batch {
                m.train_batch_seconds.record(t.elapsed().as_secs_f64());
            }
        }

        if healthy {
            if grad_clip > 0.0 {
                grads.clip_global_norm(grad_clip);
            }
            opt.step(model.params_mut(), &grads);
            total += batch_loss;
            count += batch.len();
            consecutive_trips = 0;
            healthy_since_snap += 1;
            it += 1;
            if healthy_since_snap >= guard.snapshot_every {
                snap = Snapshot::capture(model, opt, rng, it, total, count);
                healthy_since_snap = 0;
            }
        } else {
            gstate.trips += 1;
            crate::guard::record_trip();
            consecutive_trips += 1;
            if consecutive_trips >= guard.max_consecutive_skips {
                // The trajectory (not an isolated batch) has diverged.
                if gstate.rewinds_used >= guard.max_rewinds {
                    opt.set_lr(base_lr);
                    return Err(TrainError::DivergenceBudgetExhausted {
                        stage,
                        rewinds: gstate.rewinds_used,
                        last_loss: mean_loss,
                    });
                }
                gstate.rewinds_used += 1;
                gstate.lr_scale *= guard.backoff;
                if gstate.lr_scale <= 0.0 || !gstate.lr_scale.is_finite() {
                    // The backed-off rate underflowed: replaying at lr 0
                    // freezes the trajectory and the guard would trip (and
                    // rewind) forever. Give up with a typed error instead.
                    opt.set_lr(base_lr);
                    return Err(TrainError::BackoffExhausted {
                        stage,
                        rewinds: gstate.rewinds_used,
                    });
                }
                crate::guard::record_rewind(guard, mean_loss, grad_norm, gstate);
                consecutive_trips = 0;
                healthy_since_snap = 0;
                if let Err(reason) = snap.restore(model, opt, rng) {
                    opt.set_lr(base_lr);
                    return Err(TrainError::RewindFailed { stage, reason });
                }
                total = snap.total;
                count = snap.count;
                it = snap.batch_idx;
            } else {
                gstate.skipped += 1;
                crate::guard::record_skip(guard, mean_loss, grad_norm, consecutive_trips);
                it += 1;
            }
        }
    }
    opt.set_lr(last_raw_lr);
    if count == 0 {
        return Err(TrainError::EmptySplit {
            what: "healthy training batches (every batch tripped the divergence guard)".into(),
        });
    }
    Ok(total / count as f64)
}

/// [`train_epoch_guarded`] with the default guard policy and fresh
/// bookkeeping — for single-epoch callers that don't thread stage state.
#[allow(clippy::too_many_arguments)] // mirrors the paper's training-loop knobs
pub fn train_epoch(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    batch_size: usize,
    kind: LossKind,
    opt: &mut dyn Optimizer,
    grad_clip: f64,
    rng: &mut StuqRng,
    lr_per_iter: Option<&mut dyn FnMut(usize) -> f32>,
) -> Result<f64, TrainError> {
    train_epoch_guarded(
        model,
        ds,
        batch_size,
        kind,
        opt,
        grad_clip,
        rng,
        lr_per_iter,
        Stage::Pretrain,
        &GuardConfig::default(),
        &mut GuardState::default(),
    )
}

/// Runs the full pre-training stage; returns the per-epoch loss history.
pub fn train(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &TrainConfig,
    kind: LossKind,
    rng: &mut StuqRng,
) -> Result<Vec<f64>, TrainError> {
    train_guarded(model, ds, cfg, kind, rng, &GuardConfig::default(), &mut GuardState::default())
}

/// [`train`] with an explicit guard policy and sticky per-stage state (the
/// pipeline threads this so checkpoints can persist it).
pub fn train_guarded(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &TrainConfig,
    kind: LossKind,
    rng: &mut StuqRng,
    guard: &GuardConfig,
    gstate: &mut GuardState,
) -> Result<Vec<f64>, TrainError> {
    let mut opt = stuq_nn::opt::Adam::new(cfg.lr, cfg.weight_decay);
    let mut history = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        history.push(train_epoch_guarded(
            model,
            ds,
            cfg.batch_size,
            kind,
            &mut opt,
            cfg.grad_clip,
            rng,
            None,
            Stage::Pretrain,
            guard,
            gstate,
        )?);
    }
    Ok(history)
}

/// Mean loss over a split without updating parameters (dropout off).
pub fn eval_loss(
    model: &dyn Forecaster,
    ds: &SplitDataset,
    split: Split,
    kind: LossKind,
    stride: usize,
    rng: &mut StuqRng,
) -> Result<f64, TrainError> {
    let starts = ds.window_starts(split);
    if starts.is_empty() {
        return Err(TrainError::EmptySplit { what: "windows in split".into() });
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for &s in starts.iter().step_by(stride.max(1)) {
        let w = ds.window(s);
        let y_norm = ds.normalize_target(&w.y_raw).transpose();
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(rng);
        let pred = model.forward_with_cov(&mut tape, &w.x, w.cov.as_ref(), &mut ctx);
        let target = tape.constant(y_norm);
        let l = loss_node(&mut tape, &pred, target, kind)?;
        total += tape.value(l).get(0, 0) as f64;
        count += 1;
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_models::{Agcrn, AgcrnConfig, HeadKind};
    use stuq_traffic::Preset;

    fn tiny_setup() -> (SplitDataset, Agcrn, StuqRng) {
        let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
        let ds = spec.generate(11);
        let mut rng = StuqRng::new(11);
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(12, 4, 1)
            .with_dropout(0.05, 0.1);
        let model = Agcrn::new(cfg, &mut rng);
        (ds, model, rng)
    }

    #[test]
    fn training_reduces_combined_loss() {
        let (ds, mut model, mut rng) = tiny_setup();
        let kind = LossKind::Combined { lambda: 0.1 };
        let before = eval_loss(&model, &ds, Split::Train, kind, 11, &mut rng).unwrap();
        let cfg = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let history = train(&mut model, &ds, &cfg, kind, &mut rng).unwrap();
        let after = eval_loss(&model, &ds, Split::Train, kind, 11, &mut rng).unwrap();
        assert_eq!(history.len(), 2);
        assert!(
            after < before,
            "loss should drop: before {before:.4}, after {after:.4}, history {history:?}"
        );
        assert!(model.params().all_finite());
    }

    /// Training one epoch with the replay engine must leave every parameter
    /// bit-identical to training with replay disabled: the dispatcher's
    /// engine choice (and the plan cache, including the final partial
    /// batch's second plan) can never leak into model weights. This is the
    /// in-process twin of the CI determinism gate's `STUQ_REPLAY=0` train.
    #[test]
    fn one_epoch_train_bitwise_identical_replay_on_off() {
        let run = |disable_replay: bool| {
            let (ds, mut model, mut rng) = tiny_setup();
            let mut opt = stuq_nn::opt::Adam::new(0.003, 0.0);
            let kind = LossKind::Combined { lambda: 0.1 };
            let mut epoch =
                || train_epoch(&mut model, &ds, 8, kind, &mut opt, 5.0, &mut rng, None).unwrap();
            let loss = if disable_replay {
                stuq_tensor::with_replay_disabled(&mut epoch)
            } else {
                epoch()
            };
            (loss, model.params().snapshot())
        };
        let (loss_on, snap_on) = run(false);
        let (loss_off, snap_off) = run(true);
        assert_eq!(loss_on.to_bits(), loss_off.to_bits(), "epoch loss must be bit-identical");
        assert_eq!(snap_on.len(), snap_off.len());
        for (slot, (a, b)) in snap_on.iter().zip(&snap_off).enumerate() {
            assert_eq!(a.shape(), b.shape(), "slot {slot} shape");
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "slot {slot} diverged");
            }
        }
    }

    #[test]
    fn lr_override_hook_is_consulted() {
        let (ds, mut model, mut rng) = tiny_setup();
        let mut seen = Vec::new();
        let mut opt = stuq_nn::opt::Adam::new(1.0, 0.0);
        let mut hook = |it: usize| {
            let lr = 0.001 / (it + 1) as f32;
            seen.push(lr);
            lr
        };
        let _ = train_epoch(
            &mut model,
            &ds,
            32,
            LossKind::Combined { lambda: 0.1 },
            &mut opt,
            5.0,
            &mut rng,
            Some(&mut hook),
        )
        .unwrap();
        assert!(!seen.is_empty());
        assert_eq!(opt.lr(), *seen.last().unwrap());
    }

    #[test]
    fn combined_loss_rejects_point_head() {
        let (ds, _, mut rng) = tiny_setup();
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(8, 3, 1)
            .with_head(HeadKind::Point);
        let model = Agcrn::new(cfg, &mut rng);
        let w = ds.window(0);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::train(&mut rng);
        let pred = model.forward(&mut tape, &w.x, &mut ctx);
        let t = tape.constant(ds.normalize_target(&w.y_raw).transpose());
        let err = loss_node(&mut tape, &pred, t, LossKind::Combined { lambda: 0.5 }).unwrap_err();
        assert!(
            matches!(err, TrainError::HeadMismatch { .. }),
            "expected HeadMismatch, got {err:?}"
        );
        assert!(err.to_string().contains("requires a Gaussian head"));
    }

    #[test]
    fn pinball_trains_quantile_head() {
        let (ds, _, mut rng) = tiny_setup();
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(8, 3, 1)
            .with_dropout(0.0, 0.0)
            .with_head(HeadKind::Quantile);
        let mut model = Agcrn::new(cfg, &mut rng);
        let kind = LossKind::Pinball3;
        let before = eval_loss(&model, &ds, Split::Train, kind, 17, &mut rng).unwrap();
        let cfg = TrainConfig { epochs: 1, batch_size: 8, ..Default::default() };
        let _ = train(&mut model, &ds, &cfg, kind, &mut rng).unwrap();
        let after = eval_loss(&model, &ds, Split::Train, kind, 17, &mut rng).unwrap();
        assert!(after < before, "pinball loss should drop ({before:.4} → {after:.4})");
    }

    /// Poisons every reading in the training segment so *every* batch trips
    /// the guard from the very first one.
    fn poison_train_split(ds: &mut SplitDataset) {
        let (lo, hi) = ds.segment(Split::Train);
        let n = ds.n_nodes();
        for t in lo..hi {
            for node in 0..n {
                ds.data_mut().set(t, node, f32::NAN);
            }
        }
    }

    #[test]
    fn trip_on_the_first_batch_rewinds_to_epoch_start_without_panicking() {
        // The guard trips before any snapshot refresh has happened. The only
        // rewind target is the eagerly captured epoch-start snapshot; the
        // rewind must use it (not unwrap on a missing one) and exhaustion
        // must surface as a typed error.
        let (mut ds, mut model, mut rng) = tiny_setup();
        poison_train_split(&mut ds);
        let guard = GuardConfig { max_consecutive_skips: 1, max_rewinds: 1, ..Default::default() };
        let mut gstate = GuardState::default();
        let mut opt = stuq_nn::opt::Adam::new(0.003, 0.0);
        let err = train_epoch_guarded(
            &mut model,
            &ds,
            8,
            LossKind::Combined { lambda: 0.1 },
            &mut opt,
            5.0,
            &mut rng,
            None,
            Stage::Pretrain,
            &guard,
            &mut gstate,
        )
        .unwrap_err();
        assert!(
            matches!(err, TrainError::DivergenceBudgetExhausted { rewinds: 1, .. }),
            "expected budget exhaustion after the one allowed rewind, got {err:?}"
        );
        assert_eq!(gstate.rewinds_used, 1);
        assert!(model.params().snapshot().iter().all(|t| t.all_finite()), "rewind restored params");
    }

    #[test]
    fn backoff_underflow_is_a_typed_error_not_a_hang() {
        // With a huge rewind budget and a brutal backoff the lr scale
        // underflows to zero long before the budget runs out; the guard must
        // detect the underflow and give up with a typed error instead of
        // rewinding forever at lr 0.
        let (mut ds, mut model, mut rng) = tiny_setup();
        poison_train_split(&mut ds);
        let guard = GuardConfig {
            max_consecutive_skips: 1,
            max_rewinds: 1_000_000,
            backoff: 1e-30,
            ..Default::default()
        };
        let mut gstate = GuardState::default();
        let mut opt = stuq_nn::opt::Adam::new(0.003, 0.0);
        let err = train_epoch_guarded(
            &mut model,
            &ds,
            8,
            LossKind::Combined { lambda: 0.1 },
            &mut opt,
            5.0,
            &mut rng,
            None,
            Stage::Awa,
            &guard,
            &mut gstate,
        )
        .unwrap_err();
        assert!(
            matches!(err, TrainError::BackoffExhausted { stage: Stage::Awa, rewinds: 2 }),
            "1e-30² underflows f32 on the second rewind, got {err:?}"
        );
        assert!(err.to_string().contains("backoff exhausted"));
    }

    #[test]
    fn rewind_into_mismatched_optimiser_is_a_typed_failure() {
        // Snapshot::restore must refuse (not unwrap) when the captured
        // optimiser state no longer matches the live optimiser, and must not
        // touch the parameters when it refuses.
        let (_, mut model, rng) = tiny_setup();
        let adam = stuq_nn::opt::Adam::new(0.01, 0.0);
        let snap = Snapshot::capture(&model, &adam, &rng, 0, 0.0, 0);
        let before = model.params().snapshot();
        let mut sgd = stuq_nn::opt::Sgd::new(0.01, 0.0, 0.0);
        let mut rng2 = rng.clone();
        let err = snap.restore(&mut model, &mut sgd, &mut rng2).unwrap_err();
        assert!(err.contains("mismatch"), "got: {err}");
        let after = model.params().snapshot();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data(), "failed restore must leave params untouched");
        }
    }

    #[test]
    fn guard_path_is_bit_identical_when_clean() {
        // The guard must be a pure observer on a healthy run: training with
        // an explicit guard config produces the exact same parameters as the
        // default path for the same seed.
        let kind = LossKind::Combined { lambda: 0.1 };
        let cfg = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let run = |snapshot_every: usize| {
            let (ds, mut model, mut rng) = tiny_setup();
            let guard = GuardConfig { snapshot_every, ..Default::default() };
            let mut gstate = GuardState::default();
            train_guarded(&mut model, &ds, &cfg, kind, &mut rng, &guard, &mut gstate).unwrap();
            assert!(gstate.is_clean(), "healthy run must not trip: {gstate:?}");
            model.params().snapshot()
        };
        let a = run(1); // snapshot after every batch
        let b = run(1000); // effectively never re-snapshot
        for (x, y) in a.iter().zip(&b) {
            for (p, q) in x.data().iter().zip(y.data()) {
                assert_eq!(p.to_bits(), q.to_bits(), "snapshot cadence changed the trajectory");
            }
        }
    }
}
