//! Generic mini-batch training over any [`Forecaster`].
//!
//! One autodiff tape is recorded per *sample* and its gradients merged into
//! the batch gradient; this keeps peak memory at a single window's graph and
//! matches averaging the per-sample losses exactly.

use crate::config::TrainConfig;
use stuq_models::{Forecaster, Prediction};
use stuq_nn::layers::FwdCtx;
use stuq_nn::loss;
use stuq_nn::opt::Optimizer;
use stuq_tensor::{GradStore, NodeId, StuqRng, Tape};
use stuq_traffic::{BatchIter, Split, SplitDataset};

/// Which training loss to apply to the model's head output.
#[derive(Clone, Copy, Debug)]
pub enum LossKind {
    /// Mean absolute error on the point output (deterministic baselines,
    /// MCDO, FGE).
    Mae,
    /// The paper's combined loss (Eq. 9 / Eq. 14) with weight `λ`.
    Combined {
        /// Relative NLL weight.
        lambda: f32,
    },
    /// Three-quantile pinball loss (0.025 / 0.5 / 0.975) for the quantile
    /// baseline.
    Pinball3,
}

/// Builds the loss node for one sample's prediction.
pub fn loss_node(tape: &mut Tape, pred: &Prediction, target: NodeId, kind: LossKind) -> NodeId {
    match (kind, pred) {
        (LossKind::Mae, p) => loss::mae(tape, p.point(), target),
        (LossKind::Combined { lambda }, Prediction::Gaussian { mu, logvar }) => {
            loss::combined(tape, *mu, *logvar, target, lambda)
        }
        (LossKind::Combined { .. }, p) => {
            // Falling back to MAE for non-Gaussian heads would silently train
            // the wrong objective; fail loudly instead.
            let _ = p;
            panic!("Combined loss requires a Gaussian head")
        }
        (LossKind::Pinball3, Prediction::Quantiles { lo, mid, hi }) => {
            let l_lo = loss::pinball(tape, *lo, target, 0.025);
            let l_mid = loss::pinball(tape, *mid, target, 0.5);
            let l_hi = loss::pinball(tape, *hi, target, 0.975);
            let s = tape.add(l_lo, l_mid);
            tape.add(s, l_hi)
        }
        (LossKind::Pinball3, _) => panic!("Pinball3 loss requires a quantile head"),
    }
}

/// Computes the gradient and loss of one sample.
fn sample_grad(
    model: &dyn Forecaster,
    ds: &SplitDataset,
    start: usize,
    kind: LossKind,
    rng: &mut StuqRng,
) -> (GradStore, f64) {
    let w = ds.window(start);
    let y_norm = ds.normalize_target(&w.y_raw).transpose(); // [N, τ]
    let mut tape = Tape::new();
    let mut ctx = FwdCtx::train(rng);
    let pred = model.forward_with_cov(&mut tape, &w.x, w.cov.as_ref(), &mut ctx);
    let target = tape.constant(y_norm);
    let l = loss_node(&mut tape, &pred, target, kind);
    let value = tape.value(l).get(0, 0) as f64;
    (tape.backward(l), value)
}

/// Runs one epoch over the training split; returns the mean training loss.
///
/// `lr_per_iter`, when provided, is consulted before each batch — this is how
/// AWA's within-epoch cosine schedule (Eq. 16) is driven.
#[allow(clippy::too_many_arguments)] // mirrors the paper's training-loop knobs
pub fn train_epoch(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    batch_size: usize,
    kind: LossKind,
    opt: &mut dyn Optimizer,
    grad_clip: f64,
    rng: &mut StuqRng,
    mut lr_per_iter: Option<&mut dyn FnMut(usize) -> f32>,
) -> f64 {
    let starts = ds.window_starts(Split::Train);
    assert!(!starts.is_empty(), "no training windows");
    let batches = BatchIter::new(starts, batch_size, rng);
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (it, batch) in batches.enumerate() {
        if let Some(f) = lr_per_iter.as_mut() {
            opt.set_lr(f(it));
        }
        let mut grads = GradStore::default();
        let mut batch_loss = 0.0f64;
        for &s in &batch {
            let (g, l) = sample_grad(model, ds, s, kind, rng);
            grads.merge(g);
            batch_loss += l;
        }
        grads.scale(1.0 / batch.len() as f32);
        if grad_clip > 0.0 {
            grads.clip_global_norm(grad_clip);
        }
        opt.step(model.params_mut(), &grads);
        total += batch_loss;
        count += batch.len();
    }
    total / count as f64
}

/// Runs the full pre-training stage; returns the per-epoch loss history.
pub fn train(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &TrainConfig,
    kind: LossKind,
    rng: &mut StuqRng,
) -> Vec<f64> {
    let mut opt = stuq_nn::opt::Adam::new(cfg.lr, cfg.weight_decay);
    (0..cfg.epochs)
        .map(|_| {
            train_epoch(model, ds, cfg.batch_size, kind, &mut opt, cfg.grad_clip, rng, None)
        })
        .collect()
}

/// Mean loss over a split without updating parameters (dropout off).
pub fn eval_loss(
    model: &dyn Forecaster,
    ds: &SplitDataset,
    split: Split,
    kind: LossKind,
    stride: usize,
    rng: &mut StuqRng,
) -> f64 {
    let starts = ds.window_starts(split);
    assert!(!starts.is_empty(), "no windows in split");
    let mut total = 0.0f64;
    let mut count = 0usize;
    for &s in starts.iter().step_by(stride.max(1)) {
        let w = ds.window(s);
        let y_norm = ds.normalize_target(&w.y_raw).transpose();
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(rng);
        let pred = model.forward_with_cov(&mut tape, &w.x, w.cov.as_ref(), &mut ctx);
        let target = tape.constant(y_norm);
        let l = loss_node(&mut tape, &pred, target, kind);
        total += tape.value(l).get(0, 0) as f64;
        count += 1;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_models::{Agcrn, AgcrnConfig, HeadKind};
    use stuq_traffic::Preset;

    fn tiny_setup() -> (SplitDataset, Agcrn, StuqRng) {
        let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
        let ds = spec.generate(11);
        let mut rng = StuqRng::new(11);
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(12, 4, 1)
            .with_dropout(0.05, 0.1);
        let model = Agcrn::new(cfg, &mut rng);
        (ds, model, rng)
    }

    #[test]
    fn training_reduces_combined_loss() {
        let (ds, mut model, mut rng) = tiny_setup();
        let kind = LossKind::Combined { lambda: 0.1 };
        let before = eval_loss(&model, &ds, Split::Train, kind, 11, &mut rng);
        let cfg = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let history = train(&mut model, &ds, &cfg, kind, &mut rng);
        let after = eval_loss(&model, &ds, Split::Train, kind, 11, &mut rng);
        assert_eq!(history.len(), 2);
        assert!(
            after < before,
            "loss should drop: before {before:.4}, after {after:.4}, history {history:?}"
        );
        assert!(model.params().all_finite());
    }

    #[test]
    fn lr_override_hook_is_consulted() {
        let (ds, mut model, mut rng) = tiny_setup();
        let mut seen = Vec::new();
        let mut opt = stuq_nn::opt::Adam::new(1.0, 0.0);
        let mut hook = |it: usize| {
            let lr = 0.001 / (it + 1) as f32;
            seen.push(lr);
            lr
        };
        let _ = train_epoch(
            &mut model,
            &ds,
            32,
            LossKind::Combined { lambda: 0.1 },
            &mut opt,
            5.0,
            &mut rng,
            Some(&mut hook),
        );
        assert!(!seen.is_empty());
        assert_eq!(opt.lr(), *seen.last().unwrap());
    }

    #[test]
    #[should_panic(expected = "requires a Gaussian head")]
    fn combined_loss_rejects_point_head() {
        let (ds, _, mut rng) = tiny_setup();
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(8, 3, 1)
            .with_head(HeadKind::Point);
        let model = Agcrn::new(cfg, &mut rng);
        let w = ds.window(0);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::train(&mut rng);
        let pred = model.forward(&mut tape, &w.x, &mut ctx);
        let t = tape.constant(ds.normalize_target(&w.y_raw).transpose());
        let _ = loss_node(&mut tape, &pred, t, LossKind::Combined { lambda: 0.5 });
    }

    #[test]
    fn pinball_trains_quantile_head() {
        let (ds, _, mut rng) = tiny_setup();
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(8, 3, 1)
            .with_dropout(0.0, 0.0)
            .with_head(HeadKind::Quantile);
        let mut model = Agcrn::new(cfg, &mut rng);
        let kind = LossKind::Pinball3;
        let before = eval_loss(&model, &ds, Split::Train, kind, 17, &mut rng);
        let cfg = TrainConfig { epochs: 1, batch_size: 8, ..Default::default() };
        let _ = train(&mut model, &ds, &cfg, kind, &mut rng);
        let after = eval_loss(&model, &ds, Split::Train, kind, 17, &mut rng);
        assert!(after < before, "pinball loss should drop ({before:.4} → {after:.4})");
    }
}
