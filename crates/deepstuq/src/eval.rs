//! The evaluation protocol of §V: sliding test windows, raw-scale metrics.

use stuq_metrics::{PointAccumulator, PointMetrics, UqAccumulator, UqMetrics, Z_95};
use stuq_tensor::Tensor;
use stuq_traffic::{Split, SplitDataset};

/// One raw-scale forecast for a window.
///
/// `sigma` (when present) is the Gaussian predictive standard deviation used
/// for MNLL and, absent explicit `bounds`, for the 95 % interval.
/// `bounds` (when present) overrides the interval used for PICP/MPIW —
/// that is how the conformal and quantile baselines report coverage while
/// (for Conformal) MNLL still reflects the underlying Gaussian σ, matching
/// the paper's Table IV.
#[derive(Clone, Debug)]
pub struct RawForecast {
    /// Point forecast, `[N, τ]`, raw units.
    pub mu: Tensor,
    /// Optional Gaussian predictive σ, `[N, τ]`, raw units.
    pub sigma: Option<Tensor>,
    /// Optional explicit `(lower, upper)` interval bounds, `[N, τ]` each.
    pub bounds: Option<(Tensor, Tensor)>,
}

/// Aggregated evaluation output for one method on one dataset.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Headline point metrics (all horizons pooled).
    pub point: PointMetrics,
    /// Headline UQ metrics; `None` for point-only methods.
    pub uq: Option<UqMetrics>,
    /// Per-horizon point metrics (Fig. 7).
    pub point_by_horizon: Vec<PointMetrics>,
    /// Per-horizon UQ metrics (Fig. 10 companion).
    pub uq_by_horizon: Option<Vec<UqMetrics>>,
    /// Number of windows evaluated.
    pub n_windows: usize,
}

/// Evaluates `predict` over the test split with the given window stride.
///
/// The closure receives the normalised history window `[t_h, N]` and the
/// window start index, and returns a raw-scale [`RawForecast`].
pub fn evaluate(
    ds: &SplitDataset,
    split: Split,
    stride: usize,
    mut predict: impl FnMut(&Tensor, usize) -> RawForecast,
) -> EvalResult {
    let starts: Vec<usize> =
        ds.window_starts(split).iter().copied().step_by(stride.max(1)).collect();
    let forecasts: Vec<RawForecast> = starts.iter().map(|&s| predict(&ds.window(s).x, s)).collect();
    score_forecasts(ds, &starts, forecasts)
}

/// [`evaluate`] under sensor faults (DESIGN.md §8): the predictor sees the
/// **corrupted** history from `fs`, while the metrics score against the
/// clean ground-truth targets. Comparing this result with [`evaluate`] on
/// the same model quantifies how gracefully its accuracy and uncertainty
/// estimates degrade when the input feed fails.
pub fn evaluate_faulted(
    ds: &SplitDataset,
    split: Split,
    stride: usize,
    fs: &stuq_traffic::FaultedSeries,
    mut predict: impl FnMut(&Tensor, usize) -> RawForecast,
) -> EvalResult {
    let starts: Vec<usize> =
        ds.window_starts(split).iter().copied().step_by(stride.max(1)).collect();
    let forecasts: Vec<RawForecast> =
        starts.iter().map(|&s| predict(&ds.faulted_window(s, fs).x, s)).collect();
    score_forecasts(ds, &starts, forecasts)
}

/// Data-parallel [`evaluate`]: forward passes for all test windows fan out
/// over the `stuq-parallel` pool, then metrics accumulate in window order.
///
/// Requires a `Fn` predictor (stateless per call, e.g. driving an eval-mode
/// model or an MC forecast from a per-window forked RNG); methods that must
/// mutate state between windows keep using the sequential [`evaluate`].
pub fn evaluate_par(
    ds: &SplitDataset,
    split: Split,
    stride: usize,
    predict: impl Fn(&Tensor, usize) -> RawForecast + Sync,
) -> EvalResult {
    let starts: Vec<usize> =
        ds.window_starts(split).iter().copied().step_by(stride.max(1)).collect();
    let forecasts = stuq_parallel::par_map(starts.len(), |i| {
        let s = starts[i];
        predict(&ds.window(s).x, s)
    });
    score_forecasts(ds, &starts, forecasts)
}

/// Ordered metric accumulation shared by [`evaluate`] and [`evaluate_par`].
fn score_forecasts(ds: &SplitDataset, starts: &[usize], forecasts: Vec<RawForecast>) -> EvalResult {
    assert!(!starts.is_empty(), "no windows in split");
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().eval_windows.add(starts.len() as u64);
    }
    let tau = ds.horizon();
    let n = ds.n_nodes();
    let mut point = PointAccumulator::new(tau);
    let mut nll = UqAccumulator::new(tau);
    let mut interval = UqAccumulator::new(tau);
    let mut any_sigma = false;
    let mut any_bounds = false;
    let mut n_windows = 0usize;

    for (&s, f) in starts.iter().zip(forecasts) {
        let w = ds.window(s);
        assert_eq!(f.mu.shape(), &[n, tau], "forecast shape mismatch");
        n_windows += 1;
        for h in 0..tau {
            for i in 0..n {
                let truth = w.y_raw.get(h, i) as f64;
                let mu = f.mu.get(i, h) as f64;
                point.update(h, mu as f32, truth as f32);
                if let Some(sig) = &f.sigma {
                    any_sigma = true;
                    nll.update(h, mu, sig.get(i, h) as f64, truth);
                }
                match (&f.bounds, &f.sigma) {
                    (Some((lo, hi)), _) => {
                        any_bounds = true;
                        interval.update_interval(
                            h,
                            lo.get(i, h) as f64,
                            hi.get(i, h) as f64,
                            truth,
                        );
                    }
                    (None, Some(sig)) => {
                        let sd = sig.get(i, h) as f64;
                        interval.update_interval(h, mu - Z_95 * sd, mu + Z_95 * sd, truth);
                    }
                    (None, None) => {}
                }
            }
        }
    }

    let has_uq = any_sigma || any_bounds;
    let compose = |h: Option<usize>| -> UqMetrics {
        let (nm, im) = match h {
            Some(h) => {
                (if any_sigma { nll.at_horizon(h).mnll } else { f64::NAN }, interval.at_horizon(h))
            }
            None => (if any_sigma { nll.overall().mnll } else { f64::NAN }, interval.overall()),
        };
        UqMetrics { mnll: nm, picp: im.picp, mpiw: im.mpiw }
    };

    EvalResult {
        point: point.overall(),
        uq: has_uq.then(|| compose(None)),
        point_by_horizon: point.horizon_series(),
        uq_by_horizon: has_uq.then(|| (0..tau).map(|h| compose(Some(h))).collect()),
        n_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_traffic::Preset;

    fn tiny_ds() -> SplitDataset {
        Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(3)
    }

    /// An oracle that predicts the truth exactly with constant σ.
    fn oracle(ds: &SplitDataset, sigma: f32) -> impl FnMut(&Tensor, usize) -> RawForecast + '_ {
        move |_, start| {
            let w = ds.window(start);
            RawForecast {
                mu: w.y_raw.transpose(),
                sigma: Some(Tensor::full(&[ds.n_nodes(), ds.horizon()], sigma)),
                bounds: None,
            }
        }
    }

    #[test]
    fn oracle_has_zero_point_error_and_full_coverage() {
        let ds = tiny_ds();
        let r = evaluate(&ds, Split::Test, 7, oracle(&ds, 5.0));
        assert!(r.point.mae < 1e-4, "oracle MAE {}", r.point.mae);
        let uq = r.uq.unwrap();
        assert!((uq.picp - 100.0).abs() < 1e-9);
        assert!((uq.mpiw - 2.0 * Z_95 * 5.0).abs() < 1e-3);
        assert_eq!(r.point_by_horizon.len(), ds.horizon());
    }

    #[test]
    fn point_only_forecast_has_no_uq() {
        let ds = tiny_ds();
        let r = evaluate(&ds, Split::Test, 7, |_, start| RawForecast {
            mu: ds.window(start).y_raw.transpose(),
            sigma: None,
            bounds: None,
        });
        assert!(r.uq.is_none());
        assert!(r.uq_by_horizon.is_none());
    }

    #[test]
    fn explicit_bounds_override_sigma_interval() {
        let ds = tiny_ds();
        let (n, tau) = (ds.n_nodes(), ds.horizon());
        let r = evaluate(&ds, Split::Test, 7, |_, start| {
            let w = ds.window(start);
            let mu = w.y_raw.transpose();
            // Tiny σ but huge explicit bounds → PICP from bounds, MNLL from σ.
            let lo = mu.map(|v| v - 1000.0);
            let hi = mu.map(|v| v + 1000.0);
            RawForecast { mu, sigma: Some(Tensor::full(&[n, tau], 0.1)), bounds: Some((lo, hi)) }
        });
        let uq = r.uq.unwrap();
        assert!((uq.picp - 100.0).abs() < 1e-9);
        assert!((uq.mpiw - 2000.0).abs() < 1e-3);
        assert!(uq.mnll.is_finite());
    }

    #[test]
    fn evaluate_par_matches_sequential_evaluate() {
        let ds = tiny_ds();
        let seq = evaluate(&ds, Split::Test, 3, oracle(&ds, 2.0));
        let par = evaluate_par(&ds, Split::Test, 3, |_, start| {
            let w = ds.window(start);
            RawForecast {
                mu: w.y_raw.transpose(),
                sigma: Some(Tensor::full(&[ds.n_nodes(), ds.horizon()], 2.0)),
                bounds: None,
            }
        });
        assert_eq!(seq.n_windows, par.n_windows);
        assert_eq!(seq.point.mae.to_bits(), par.point.mae.to_bits());
        let (su, pu) = (seq.uq.unwrap(), par.uq.unwrap());
        assert_eq!(su.mnll.to_bits(), pu.mnll.to_bits());
        assert_eq!(su.picp.to_bits(), pu.picp.to_bits());
    }

    #[test]
    fn stride_reduces_window_count() {
        let ds = tiny_ds();
        let r1 = evaluate(&ds, Split::Test, 1, oracle(&ds, 1.0));
        let r5 = evaluate(&ds, Split::Test, 5, oracle(&ds, 1.0));
        assert!(r5.n_windows < r1.n_windows);
        assert_eq!(r5.n_windows, r1.n_windows.div_ceil(5));
    }

    #[test]
    fn biased_oracle_has_expected_mae() {
        let ds = tiny_ds();
        let r = evaluate(&ds, Split::Test, 7, |_, start| {
            let w = ds.window(start);
            RawForecast { mu: w.y_raw.transpose().map(|v| v + 3.0), sigma: None, bounds: None }
        });
        assert!((r.point.mae - 3.0).abs() < 1e-4);
    }
}
