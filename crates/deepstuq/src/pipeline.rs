//! The user-facing DeepSTUQ pipeline (paper §IV-D).
//!
//! [`DeepStuq::fit`] runs the three stages end-to-end on a [`SplitDataset`]:
//! pre-training with the combined loss, AWA re-training, and temperature
//! calibration on the validation split. It threads the divergence guard of
//! DESIGN.md §8 through every stage, can write crash-safe checkpoints at
//! epoch boundaries, and can pause after an epoch budget and later resume
//! **bit-for-bit** — an interrupted-then-resumed run produces exactly the
//! parameters and temperature of an uninterrupted one. [`DeepStuq::train`]
//! is the panicking convenience wrapper. [`DeepStuq::predict`] performs
//! MC-dropout inference and returns a raw-scale [`Forecast`] with the full
//! uncertainty decomposition and 95 % interval.

use crate::awa::AwaState;
use crate::calibrate::calibrate_on_validation;
use crate::checkpoint::{load_checkpoint, save_checkpoint, StageSnapshot};
use crate::config::{AwaConfig, CalibConfig, TrainConfig};
use crate::error::{Stage, TrainError};
use crate::guard::{GuardConfig, GuardState};
use crate::mc::{mc_forecast_with_cov, GaussianForecast};
use crate::trainer::{train_epoch_guarded, LossKind};
use std::path::{Path, PathBuf};
use stuq_metrics::Z_95;
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind};
use stuq_nn::opt::{Adam, Optimizer, OptimizerState};
use stuq_nn::params::ParamSet;
use stuq_nn::serialize::load_into;
use stuq_tensor::{StuqRng, Tensor};
use stuq_traffic::{Scaler, SplitDataset};

/// File name used for training checkpoints inside `checkpoint_dir`.
pub const CHECKPOINT_FILE: &str = "train.ckpt";

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct DeepStuqConfig {
    /// Base-model architecture.
    pub base: AgcrnConfig,
    /// Stage 1: pre-training.
    pub train: TrainConfig,
    /// Stage 2: AWA re-training. `None` skips the stage (the "No AWA"
    /// ablation of Table V).
    pub awa: Option<AwaConfig>,
    /// Stage 3: calibration. `None` skips it (the "No Calibration" ablation
    /// of Table VI).
    pub calib: Option<CalibConfig>,
    /// Monte-Carlo samples at inference (paper: 10).
    pub mc_samples: usize,
}

impl DeepStuqConfig {
    /// Paper-faithful settings (§V-B) at full scale.
    pub fn paper(n_nodes: usize, horizon: usize) -> Self {
        let small_graph = n_nodes < 200;
        let enc_dropout = if small_graph { 0.05 } else { 0.1 };
        Self {
            base: AgcrnConfig::new(n_nodes, horizon).with_dropout(enc_dropout, 0.2),
            train: TrainConfig::default(),
            awa: Some(AwaConfig::default()),
            calib: Some(CalibConfig::default()),
            mc_samples: 10,
        }
    }

    /// A heavily scaled-down configuration for demos, doctests and CI.
    pub fn fast_demo(n_nodes: usize, horizon: usize) -> Self {
        Self {
            base: AgcrnConfig::new(n_nodes, horizon)
                .with_capacity(12, 4, 1)
                .with_dropout(0.05, 0.1),
            train: TrainConfig::scaled(2, 8),
            awa: Some(AwaConfig::scaled(2, 8)),
            calib: Some(CalibConfig { mc_samples: 3, max_iters: 200, stride: 11 }),
            mc_samples: 3,
        }
    }

    /// Total training epochs across the pre-train and AWA stages.
    pub fn total_epochs(&self) -> usize {
        self.train.epochs + self.awa.as_ref().map_or(0, |a| a.epochs)
    }
}

/// Fault-tolerance knobs for [`DeepStuq::fit`] (DESIGN.md §8).
#[derive(Clone, Debug)]
pub struct FitOptions {
    /// Divergence-guard policy shared by all stages.
    pub guard: GuardConfig,
    /// Directory for crash-safe checkpoints; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in epochs (a checkpoint is also written at every
    /// stage boundary and on pause).
    pub checkpoint_every: usize,
    /// Resume from `checkpoint_dir/train.ckpt` instead of starting fresh.
    pub resume: bool,
    /// Pause (with a checkpoint) after at most this many training epochs in
    /// this invocation. Requires `checkpoint_dir`.
    pub epoch_budget: Option<usize>,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            guard: GuardConfig::default(),
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            epoch_budget: None,
        }
    }
}

/// Result of [`DeepStuq::fit`]: either a trained model or a paused run whose
/// checkpoint can be resumed later.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Complete carries the model by design
pub enum FitOutcome {
    /// All stages finished; `guard` reports any trips/rewinds survived.
    Complete { model: DeepStuq, guard: GuardState },
    /// The epoch budget ran out; state was checkpointed for `--resume`.
    Paused { stage: Stage, epochs_done: usize, guard: GuardState },
}

impl FitOutcome {
    /// Unwraps the trained model, panicking on a paused run.
    pub fn expect_complete(self) -> DeepStuq {
        match self {
            FitOutcome::Complete { model, .. } => model,
            FitOutcome::Paused { stage, epochs_done, .. } => {
                panic!("training paused in {stage} after {epochs_done} epochs")
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // flat view of one checkpoint record
fn save_stage_checkpoint(
    path: &Path,
    arch: &AgcrnConfig,
    stage: Stage,
    epochs_done: usize,
    guard: GuardState,
    rng: &StuqRng,
    opt: OptimizerState,
    averager: Option<(usize, Vec<Tensor>)>,
    params: &ParamSet,
) -> Result<(), TrainError> {
    let snap = StageSnapshot {
        arch,
        stage,
        epochs_done,
        guard,
        rng: rng.export_state(),
        opt,
        averager,
        params,
    };
    save_checkpoint(&snap, path).map_err(|e| TrainError::Checkpoint(e.to_string()))?;
    stuq_obs::emit(stuq_obs::Event::new("checkpoint").str("path", path.display().to_string()));
    Ok(())
}

/// Opens a stage for telemetry: stamps the recorder context, emits
/// `stage_start`, and returns the span guard (dropping it records the phase
/// timing — also on the early pause/error returns) plus the stage clock.
fn stage_telemetry(stage: Stage) -> (stuq_obs::SpanGuard, std::time::Instant) {
    stuq_obs::set_stage(stage.as_str());
    stuq_obs::emit(stuq_obs::Event::new("stage_start").str("stage", stage.as_str()));
    (stuq_obs::SpanGuard::enter(stage.as_str()), std::time::Instant::now())
}

/// Emits `stage_end` on normal stage completion (paused runs deliberately
/// leave the stage open in the event log).
fn stage_done(stage: Stage, t0: std::time::Instant) {
    stuq_obs::emit(
        stuq_obs::Event::new("stage_end")
            .str("stage", stage.as_str())
            .num("seconds", t0.elapsed().as_secs_f64()),
    );
}

/// Per-epoch telemetry: epoch gauge, wall-clock histogram, `epoch_end` event.
fn record_epoch(epoch: usize, loss: f64, t0: std::time::Instant) {
    if !stuq_obs::summary_enabled() {
        return;
    }
    let seconds = t0.elapsed().as_secs_f64();
    let m = stuq_obs::metrics();
    m.train_epoch.set(epoch as f64);
    m.train_epoch_seconds.record(seconds);
    stuq_obs::emit(stuq_obs::Event::new("epoch_end").num("loss", loss).num("seconds", seconds));
}

/// A raw-scale probabilistic forecast: mean, decomposed uncertainty and the
/// 95 % prediction interval.
#[derive(Clone, Debug)]
pub struct Forecast {
    /// Point forecast, `[N, τ]` raw units.
    pub mu: Tensor,
    /// Total predictive σ (aleatoric/T + epistemic), `[N, τ]` raw units.
    pub sigma_total: Tensor,
    /// Calibrated aleatoric σ, `[N, τ]`.
    pub sigma_aleatoric: Tensor,
    /// Epistemic σ, `[N, τ]`.
    pub sigma_epistemic: Tensor,
    /// Lower 95 % bound (`μ − 1.96 σ_total`).
    pub lower: Tensor,
    /// Upper 95 % bound.
    pub upper: Tensor,
}

/// A trained DeepSTUQ model.
#[derive(Clone, Debug)]
pub struct DeepStuq {
    model: Agcrn,
    temperature: f32,
    mc_samples: usize,
}

impl DeepStuq {
    /// Runs the three training stages with fault tolerance: the divergence
    /// guard wraps every batch, checkpoints are written at epoch boundaries
    /// when `opts.checkpoint_dir` is set, and `opts.resume` continues a
    /// paused or interrupted run bit-for-bit.
    pub fn fit(
        ds: &SplitDataset,
        cfg: DeepStuqConfig,
        seed: u64,
        opts: &FitOptions,
    ) -> Result<FitOutcome, TrainError> {
        if cfg.base.n_nodes != ds.n_nodes() {
            return Err(TrainError::InvalidConfig(format!(
                "config/dataset node mismatch: model {} vs data {}",
                cfg.base.n_nodes,
                ds.n_nodes()
            )));
        }
        if cfg.base.horizon != ds.horizon() {
            return Err(TrainError::InvalidConfig(format!(
                "config/dataset horizon mismatch: model {} vs data {}",
                cfg.base.horizon,
                ds.horizon()
            )));
        }
        if cfg.base.head != HeadKind::Gaussian {
            return Err(TrainError::HeadMismatch {
                requirement: "DeepSTUQ needs the Gaussian head".into(),
            });
        }
        if opts.checkpoint_every == 0 {
            return Err(TrainError::InvalidConfig("checkpoint_every must be at least 1".into()));
        }
        if opts.epoch_budget.is_some() && opts.checkpoint_dir.is_none() {
            return Err(TrainError::InvalidConfig(
                "an epoch budget requires a checkpoint dir to pause into".into(),
            ));
        }
        if opts.resume && opts.checkpoint_dir.is_none() {
            return Err(TrainError::InvalidConfig("resume requires a checkpoint dir".into()));
        }

        let ckpt_path = opts.checkpoint_dir.as_ref().map(|d| d.join(CHECKPOINT_FILE));
        let kind = LossKind::Combined { lambda: cfg.train.lambda };

        let mut rng = StuqRng::new(seed);
        let mut model = Agcrn::new(cfg.base.clone(), &mut rng);
        let mut gstate = GuardState::default();
        let mut pre_epoch = 0usize;
        let mut pre_opt = Adam::new(cfg.train.lr, cfg.train.weight_decay);
        let mut awa_state: Option<AwaState> = None;

        if opts.resume {
            let path = ckpt_path.as_ref().expect("validated above");
            let cp = load_checkpoint(path).map_err(|e| TrainError::Checkpoint(e.to_string()))?;
            cp.validate_arch(&cfg.base).map_err(TrainError::Checkpoint)?;
            // The fresh-init draws above are discarded wholesale: parameters
            // come from the checkpoint and the RNG is restored to the exact
            // stream position at save time.
            load_into(model.params_mut(), &cp.params)
                .map_err(|e| TrainError::Checkpoint(e.to_string()))?;
            rng = StuqRng::from_state(cp.rng);
            gstate = cp.guard;
            stuq_obs::emit(stuq_obs::Event::new("resume").str("path", path.display().to_string()));
            match cp.stage {
                Stage::Pretrain => {
                    pre_epoch = cp.epochs_done;
                    pre_opt.import_state(&cp.opt).map_err(TrainError::Checkpoint)?;
                }
                Stage::Awa => {
                    pre_epoch = cfg.train.epochs;
                    let awa_cfg = cfg.awa.as_ref().ok_or_else(|| {
                        TrainError::Checkpoint(
                            "checkpoint is in the AWA stage but the config has no AWA stage".into(),
                        )
                    })?;
                    let (n_models, avg) = cp.averager.ok_or_else(|| {
                        TrainError::Checkpoint("AWA checkpoint missing averager block".into())
                    })?;
                    awa_state = Some(AwaState::import(
                        awa_cfg,
                        cfg.train.weight_decay,
                        &cp.opt,
                        n_models,
                        avg,
                        cp.epochs_done,
                    )?);
                }
                Stage::Calibrate => {
                    return Err(TrainError::Checkpoint(
                        "checkpoint stage 'calibrate' is not resumable".into(),
                    ));
                }
            }
        }

        let budget = opts.epoch_budget.unwrap_or(usize::MAX);
        let mut ran = 0usize;

        // Stage 1: variational pre-training (Eq. 14).
        let (pre_span, pre_t0) = stage_telemetry(Stage::Pretrain);
        while pre_epoch < cfg.train.epochs {
            stuq_obs::set_epoch(pre_epoch as u64);
            if ran >= budget {
                let path = ckpt_path.as_ref().expect("budget requires a checkpoint dir");
                save_stage_checkpoint(
                    path,
                    &cfg.base,
                    Stage::Pretrain,
                    pre_epoch,
                    gstate,
                    &rng,
                    pre_opt.export_state(),
                    None,
                    model.params(),
                )?;
                return Ok(FitOutcome::Paused {
                    stage: Stage::Pretrain,
                    epochs_done: pre_epoch,
                    guard: gstate,
                });
            }
            let epoch_t0 = std::time::Instant::now();
            let epoch_span = stuq_obs::SpanGuard::enter("epoch");
            let loss = train_epoch_guarded(
                &mut model,
                ds,
                cfg.train.batch_size,
                kind,
                &mut pre_opt,
                cfg.train.grad_clip,
                &mut rng,
                None,
                Stage::Pretrain,
                &opts.guard,
                &mut gstate,
            )?;
            drop(epoch_span);
            record_epoch(pre_epoch, loss, epoch_t0);
            pre_epoch += 1;
            ran += 1;
            if let Some(path) = &ckpt_path {
                if pre_epoch.is_multiple_of(opts.checkpoint_every) || pre_epoch == cfg.train.epochs
                {
                    save_stage_checkpoint(
                        path,
                        &cfg.base,
                        Stage::Pretrain,
                        pre_epoch,
                        gstate,
                        &rng,
                        pre_opt.export_state(),
                        None,
                        model.params(),
                    )?;
                }
            }
        }
        drop(pre_span);
        stage_done(Stage::Pretrain, pre_t0);

        // Stage 2: AWA re-training (Algorithm 1).
        if let Some(awa_cfg) = &cfg.awa {
            let (awa_span, awa_t0) = stage_telemetry(Stage::Awa);
            let mut st = match awa_state.take() {
                Some(st) => st,
                None => AwaState::new(awa_cfg, cfg.train.weight_decay)?,
            };
            while st.epochs_done() < awa_cfg.epochs {
                stuq_obs::set_epoch((cfg.train.epochs + st.epochs_done()) as u64);
                if ran >= budget {
                    let path = ckpt_path.as_ref().expect("budget requires a checkpoint dir");
                    let (opt_state, n_models, avg, epoch) = st.export();
                    save_stage_checkpoint(
                        path,
                        &cfg.base,
                        Stage::Awa,
                        epoch,
                        gstate,
                        &rng,
                        opt_state,
                        Some((n_models, avg)),
                        model.params(),
                    )?;
                    return Ok(FitOutcome::Paused {
                        stage: Stage::Awa,
                        epochs_done: epoch,
                        guard: gstate,
                    });
                }
                let epoch_t0 = std::time::Instant::now();
                let epoch_span = stuq_obs::SpanGuard::enter("epoch");
                let loss = st.run_epoch(
                    &mut model,
                    ds,
                    awa_cfg,
                    kind,
                    &mut rng,
                    &opts.guard,
                    &mut gstate,
                )?;
                drop(epoch_span);
                record_epoch(cfg.train.epochs + st.epochs_done() - 1, loss, epoch_t0);
                ran += 1;
                if let Some(path) = &ckpt_path {
                    let done = st.epochs_done();
                    if done % opts.checkpoint_every == 0 || done == awa_cfg.epochs {
                        let (opt_state, n_models, avg, epoch) = st.export();
                        save_stage_checkpoint(
                            path,
                            &cfg.base,
                            Stage::Awa,
                            epoch,
                            gstate,
                            &rng,
                            opt_state,
                            Some((n_models, avg)),
                            model.params(),
                        )?;
                    }
                }
            }
            let _report = st.finish(&mut model);
            drop(awa_span);
            stage_done(Stage::Awa, awa_t0);
        }

        // Stage 3: temperature calibration on the validation split (Eq. 18).
        let temperature = match &cfg.calib {
            Some(c) => {
                let (cal_span, cal_t0) = stage_telemetry(Stage::Calibrate);
                let t = calibrate_on_validation(&model, ds, c, &mut rng)?;
                drop(cal_span);
                stage_done(Stage::Calibrate, cal_t0);
                t
            }
            None => 1.0,
        };

        Ok(FitOutcome::Complete {
            model: Self { model, temperature, mc_samples: cfg.mc_samples },
            guard: gstate,
        })
    }

    /// [`DeepStuq::fit`] with default fault-tolerance options, returning the
    /// trained model or the first typed error.
    pub fn try_train(
        ds: &SplitDataset,
        cfg: DeepStuqConfig,
        seed: u64,
    ) -> Result<Self, TrainError> {
        match Self::fit(ds, cfg, seed, &FitOptions::default())? {
            FitOutcome::Complete { model, .. } => Ok(model),
            FitOutcome::Paused { .. } => unreachable!("no epoch budget was set"),
        }
    }

    /// Runs the three training stages on `ds` with the experiment `seed`,
    /// panicking on any [`TrainError`] (the original pipeline contract; use
    /// [`DeepStuq::fit`] or [`DeepStuq::try_train`] for typed errors).
    pub fn train(ds: &SplitDataset, cfg: DeepStuqConfig, seed: u64) -> Self {
        Self::try_train(ds, cfg, seed).unwrap_or_else(|e| panic!("DeepSTUQ training failed: {e}"))
    }

    /// Wraps an externally trained base model (used by the ablation benches).
    pub fn from_parts(model: Agcrn, temperature: f32, mc_samples: usize) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        Self { model, temperature, mc_samples }
    }

    /// The fitted temperature `T`.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Number of MC samples drawn by [`DeepStuq::predict`].
    pub fn mc_samples(&self) -> usize {
        self.mc_samples
    }

    /// The underlying base model.
    pub fn model(&self) -> &Agcrn {
        &self.model
    }

    /// Mutable base model access (ablations).
    pub fn model_mut(&mut self) -> &mut Agcrn {
        &mut self.model
    }

    /// Normalised-unit MC forecast with `n_samples` override.
    pub fn forecast_normalized(
        &self,
        x: &Tensor,
        n_samples: usize,
        rng: &mut StuqRng,
    ) -> GaussianForecast {
        mc_forecast_with_cov(&self.model, x, None, n_samples, rng)
    }

    /// Raw-scale forecast for a dataset [`stuq_traffic::Window`], passing its
    /// exogenous covariates (when present) to a covariate-aware base model.
    pub fn predict_window(
        &self,
        w: &stuq_traffic::Window,
        scaler: &Scaler,
        rng: &mut StuqRng,
    ) -> Forecast {
        self.predict_impl(&w.x, w.cov.as_ref(), scaler, self.mc_samples, rng)
    }

    /// Raw-scale probabilistic forecast for one normalised window `[t_h, N]`.
    pub fn predict(&self, x: &Tensor, scaler: &Scaler, rng: &mut StuqRng) -> Forecast {
        self.predict_with_samples(x, scaler, self.mc_samples, rng)
    }

    /// [`DeepStuq::predict`] with an explicit MC sample count (Fig. 11 sweep;
    /// `1` is the deterministic DeepSTUQ/S mode).
    pub fn predict_with_samples(
        &self,
        x: &Tensor,
        scaler: &Scaler,
        n_samples: usize,
        rng: &mut StuqRng,
    ) -> Forecast {
        self.predict_impl(x, None, scaler, n_samples, rng)
    }

    fn predict_impl(
        &self,
        x: &Tensor,
        cov: Option<&Tensor>,
        scaler: &Scaler,
        n_samples: usize,
        rng: &mut StuqRng,
    ) -> Forecast {
        let f = mc_forecast_with_cov(&self.model, x, cov, n_samples, rng);
        let std = scaler.std() as f32;
        let t = self.temperature;
        let mu = f.mu.map(|v| scaler.inverse(v));
        let sigma_total = f.sigma_total(t).scale(std);
        let sigma_aleatoric = f.var_aleatoric.map(|v| (v.max(0.0)).sqrt() / t * std);
        let sigma_epistemic = f.var_epistemic.map(|v| v.max(0.0).sqrt() * std);
        let z = Z_95 as f32;
        let lower = mu.zip(&sigma_total, |m, s| m - z * s);
        let upper = mu.zip(&sigma_total, |m, s| m + z * s);
        Forecast { mu, sigma_total, sigma_aleatoric, sigma_epistemic, lower, upper }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_traffic::{Preset, Split};

    fn tiny() -> (SplitDataset, DeepStuq) {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(31);
        let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        let model = DeepStuq::train(&ds, cfg, 31);
        (ds, model)
    }

    #[test]
    fn end_to_end_pipeline_produces_sane_forecasts() {
        let (ds, model) = tiny();
        assert!(model.temperature() > 0.0 && model.temperature().is_finite());
        let starts = ds.window_starts(Split::Test);
        let w = ds.window(starts[starts.len() / 2]);
        let mut rng = StuqRng::new(1);
        let f = model.predict(&w.x, ds.scaler(), &mut rng);
        let (n, tau) = (ds.n_nodes(), ds.horizon());
        assert_eq!(f.mu.shape(), &[n, tau]);
        assert!(f.mu.all_finite());
        assert!(f.sigma_total.min() > 0.0, "total σ must be positive");
        // Interval geometry.
        for i in 0..f.mu.len() {
            assert!(f.lower.data()[i] <= f.mu.data()[i]);
            assert!(f.upper.data()[i] >= f.mu.data()[i]);
        }
        // Decomposition consistency: σ_total² ≈ σ_a² + σ_e².
        for i in 0..f.mu.len() {
            let lhs = (f.sigma_total.data()[i] as f64).powi(2);
            let rhs = (f.sigma_aleatoric.data()[i] as f64).powi(2)
                + (f.sigma_epistemic.data()[i] as f64).powi(2);
            assert!((lhs - rhs).abs() < 1e-2 * lhs.max(1.0), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn single_sample_mode_is_deterministic() {
        let (ds, model) = tiny();
        let starts = ds.window_starts(Split::Test);
        let w = ds.window(starts[0]);
        let mut r1 = StuqRng::new(5);
        let mut r2 = StuqRng::new(99);
        let f1 = model.predict_with_samples(&w.x, ds.scaler(), 1, &mut r1);
        let f2 = model.predict_with_samples(&w.x, ds.scaler(), 1, &mut r2);
        assert_eq!(f1.mu.data(), f2.mu.data());
        assert_eq!(f1.sigma_epistemic.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "Gaussian head")]
    fn rejects_point_head_config() {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(1);
        let mut cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        cfg.base = cfg.base.with_head(HeadKind::Point);
        let _ = DeepStuq::train(&ds, cfg, 1);
    }

    #[test]
    fn fit_rejects_budget_without_checkpoint_dir() {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(2);
        let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        let opts = FitOptions { epoch_budget: Some(1), ..Default::default() };
        let err = DeepStuq::fit(&ds, cfg, 2, &opts).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn checkpointing_run_matches_plain_run_bit_for_bit() {
        // Writing checkpoints must never perturb the training trajectory.
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(37);
        let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        let plain = DeepStuq::train(&ds, cfg.clone(), 37);

        let dir = std::env::temp_dir().join("deepstuq_pipeline_ckpt_test");
        let opts = FitOptions { checkpoint_dir: Some(dir.clone()), ..Default::default() };
        let ckpt = DeepStuq::fit(&ds, cfg, 37, &opts).unwrap().expect_complete();

        assert_eq!(plain.temperature().to_bits(), ckpt.temperature().to_bits());
        for (a, b) in plain.model().params().snapshot().iter().zip(ckpt.model().params().snapshot())
        {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "checkpointing perturbed training");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
