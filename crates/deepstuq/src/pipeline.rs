//! The user-facing DeepSTUQ pipeline (paper §IV-D).
//!
//! [`DeepStuq::train`] runs the three stages end-to-end on a
//! [`SplitDataset`]: pre-training with the combined loss, AWA re-training,
//! and temperature calibration on the validation split. [`DeepStuq::predict`]
//! performs MC-dropout inference and returns a raw-scale [`Forecast`] with
//! the full uncertainty decomposition and 95 % interval.

use crate::awa::awa_retrain;
use crate::calibrate::calibrate_on_validation;
use crate::config::{AwaConfig, CalibConfig, TrainConfig};
use crate::mc::{mc_forecast_with_cov, GaussianForecast};
use crate::trainer::{train, LossKind};
use stuq_metrics::Z_95;
use stuq_models::{Agcrn, AgcrnConfig, HeadKind};
use stuq_tensor::{StuqRng, Tensor};
use stuq_traffic::{Scaler, SplitDataset};

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct DeepStuqConfig {
    /// Base-model architecture.
    pub base: AgcrnConfig,
    /// Stage 1: pre-training.
    pub train: TrainConfig,
    /// Stage 2: AWA re-training. `None` skips the stage (the "No AWA"
    /// ablation of Table V).
    pub awa: Option<AwaConfig>,
    /// Stage 3: calibration. `None` skips it (the "No Calibration" ablation
    /// of Table VI).
    pub calib: Option<CalibConfig>,
    /// Monte-Carlo samples at inference (paper: 10).
    pub mc_samples: usize,
}

impl DeepStuqConfig {
    /// Paper-faithful settings (§V-B) at full scale.
    pub fn paper(n_nodes: usize, horizon: usize) -> Self {
        let small_graph = n_nodes < 200;
        let enc_dropout = if small_graph { 0.05 } else { 0.1 };
        Self {
            base: AgcrnConfig::new(n_nodes, horizon).with_dropout(enc_dropout, 0.2),
            train: TrainConfig::default(),
            awa: Some(AwaConfig::default()),
            calib: Some(CalibConfig::default()),
            mc_samples: 10,
        }
    }

    /// A heavily scaled-down configuration for demos, doctests and CI.
    pub fn fast_demo(n_nodes: usize, horizon: usize) -> Self {
        Self {
            base: AgcrnConfig::new(n_nodes, horizon)
                .with_capacity(12, 4, 1)
                .with_dropout(0.05, 0.1),
            train: TrainConfig::scaled(2, 8),
            awa: Some(AwaConfig::scaled(2, 8)),
            calib: Some(CalibConfig { mc_samples: 3, max_iters: 200, stride: 11 }),
            mc_samples: 3,
        }
    }
}

/// A raw-scale probabilistic forecast: mean, decomposed uncertainty and the
/// 95 % prediction interval.
#[derive(Clone, Debug)]
pub struct Forecast {
    /// Point forecast, `[N, τ]` raw units.
    pub mu: Tensor,
    /// Total predictive σ (aleatoric/T + epistemic), `[N, τ]` raw units.
    pub sigma_total: Tensor,
    /// Calibrated aleatoric σ, `[N, τ]`.
    pub sigma_aleatoric: Tensor,
    /// Epistemic σ, `[N, τ]`.
    pub sigma_epistemic: Tensor,
    /// Lower 95 % bound (`μ − 1.96 σ_total`).
    pub lower: Tensor,
    /// Upper 95 % bound.
    pub upper: Tensor,
}

/// A trained DeepSTUQ model.
#[derive(Clone, Debug)]
pub struct DeepStuq {
    model: Agcrn,
    temperature: f32,
    mc_samples: usize,
}

impl DeepStuq {
    /// Runs the three training stages on `ds` with the experiment `seed`.
    pub fn train(ds: &SplitDataset, cfg: DeepStuqConfig, seed: u64) -> Self {
        assert_eq!(cfg.base.n_nodes, ds.n_nodes(), "config/dataset node mismatch");
        assert_eq!(cfg.base.horizon, ds.horizon(), "config/dataset horizon mismatch");
        assert_eq!(cfg.base.head, HeadKind::Gaussian, "DeepSTUQ needs the Gaussian head");
        let mut rng = StuqRng::new(seed);
        let mut model = Agcrn::new(cfg.base.clone(), &mut rng);
        let kind = LossKind::Combined { lambda: cfg.train.lambda };

        // Stage 1: variational pre-training (Eq. 14).
        let _history = train(&mut model, ds, &cfg.train, kind, &mut rng);

        // Stage 2: AWA re-training (Algorithm 1).
        if let Some(awa) = &cfg.awa {
            let _report = awa_retrain(&mut model, ds, awa, kind, cfg.train.weight_decay, &mut rng);
        }

        // Stage 3: temperature calibration on the validation split (Eq. 18).
        let temperature = match &cfg.calib {
            Some(c) => calibrate_on_validation(&model, ds, c, &mut rng),
            None => 1.0,
        };

        Self { model, temperature, mc_samples: cfg.mc_samples }
    }

    /// Wraps an externally trained base model (used by the ablation benches).
    pub fn from_parts(model: Agcrn, temperature: f32, mc_samples: usize) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        Self { model, temperature, mc_samples }
    }

    /// The fitted temperature `T`.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Number of MC samples drawn by [`DeepStuq::predict`].
    pub fn mc_samples(&self) -> usize {
        self.mc_samples
    }

    /// The underlying base model.
    pub fn model(&self) -> &Agcrn {
        &self.model
    }

    /// Mutable base model access (ablations).
    pub fn model_mut(&mut self) -> &mut Agcrn {
        &mut self.model
    }

    /// Normalised-unit MC forecast with `n_samples` override.
    pub fn forecast_normalized(
        &self,
        x: &Tensor,
        n_samples: usize,
        rng: &mut StuqRng,
    ) -> GaussianForecast {
        mc_forecast_with_cov(&self.model, x, None, n_samples, rng)
    }

    /// Raw-scale forecast for a dataset [`stuq_traffic::Window`], passing its
    /// exogenous covariates (when present) to a covariate-aware base model.
    pub fn predict_window(
        &self,
        w: &stuq_traffic::Window,
        scaler: &Scaler,
        rng: &mut StuqRng,
    ) -> Forecast {
        self.predict_impl(&w.x, w.cov.as_ref(), scaler, self.mc_samples, rng)
    }

    /// Raw-scale probabilistic forecast for one normalised window `[t_h, N]`.
    pub fn predict(&self, x: &Tensor, scaler: &Scaler, rng: &mut StuqRng) -> Forecast {
        self.predict_with_samples(x, scaler, self.mc_samples, rng)
    }

    /// [`DeepStuq::predict`] with an explicit MC sample count (Fig. 11 sweep;
    /// `1` is the deterministic DeepSTUQ/S mode).
    pub fn predict_with_samples(
        &self,
        x: &Tensor,
        scaler: &Scaler,
        n_samples: usize,
        rng: &mut StuqRng,
    ) -> Forecast {
        self.predict_impl(x, None, scaler, n_samples, rng)
    }

    fn predict_impl(
        &self,
        x: &Tensor,
        cov: Option<&Tensor>,
        scaler: &Scaler,
        n_samples: usize,
        rng: &mut StuqRng,
    ) -> Forecast {
        let f = mc_forecast_with_cov(&self.model, x, cov, n_samples, rng);
        let std = scaler.std() as f32;
        let t = self.temperature;
        let mu = f.mu.map(|v| scaler.inverse(v));
        let sigma_total = f.sigma_total(t).scale(std);
        let sigma_aleatoric = f.var_aleatoric.map(|v| (v.max(0.0)).sqrt() / t * std);
        let sigma_epistemic = f.var_epistemic.map(|v| v.max(0.0).sqrt() * std);
        let z = Z_95 as f32;
        let lower = mu.zip(&sigma_total, |m, s| m - z * s);
        let upper = mu.zip(&sigma_total, |m, s| m + z * s);
        Forecast { mu, sigma_total, sigma_aleatoric, sigma_epistemic, lower, upper }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_traffic::{Preset, Split};

    fn tiny() -> (SplitDataset, DeepStuq) {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(31);
        let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        let model = DeepStuq::train(&ds, cfg, 31);
        (ds, model)
    }

    #[test]
    fn end_to_end_pipeline_produces_sane_forecasts() {
        let (ds, model) = tiny();
        assert!(model.temperature() > 0.0 && model.temperature().is_finite());
        let starts = ds.window_starts(Split::Test);
        let w = ds.window(starts[starts.len() / 2]);
        let mut rng = StuqRng::new(1);
        let f = model.predict(&w.x, ds.scaler(), &mut rng);
        let (n, tau) = (ds.n_nodes(), ds.horizon());
        assert_eq!(f.mu.shape(), &[n, tau]);
        assert!(f.mu.all_finite());
        assert!(f.sigma_total.min() > 0.0, "total σ must be positive");
        // Interval geometry.
        for i in 0..f.mu.len() {
            assert!(f.lower.data()[i] <= f.mu.data()[i]);
            assert!(f.upper.data()[i] >= f.mu.data()[i]);
        }
        // Decomposition consistency: σ_total² ≈ σ_a² + σ_e².
        for i in 0..f.mu.len() {
            let lhs = (f.sigma_total.data()[i] as f64).powi(2);
            let rhs = (f.sigma_aleatoric.data()[i] as f64).powi(2)
                + (f.sigma_epistemic.data()[i] as f64).powi(2);
            assert!((lhs - rhs).abs() < 1e-2 * lhs.max(1.0), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn single_sample_mode_is_deterministic() {
        let (ds, model) = tiny();
        let starts = ds.window_starts(Split::Test);
        let w = ds.window(starts[0]);
        let mut r1 = StuqRng::new(5);
        let mut r2 = StuqRng::new(99);
        let f1 = model.predict_with_samples(&w.x, ds.scaler(), 1, &mut r1);
        let f2 = model.predict_with_samples(&w.x, ds.scaler(), 1, &mut r2);
        assert_eq!(f1.mu.data(), f2.mu.data());
        assert_eq!(f1.sigma_epistemic.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "Gaussian head")]
    fn rejects_point_head_config() {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(1);
        let mut cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
        cfg.base = cfg.base.with_head(HeadKind::Point);
        let _ = DeepStuq::train(&ds, cfg, 1);
    }
}
