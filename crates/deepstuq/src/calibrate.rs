//! Post-hoc temperature calibration (paper §IV-C3, Eq. 17–18).
//!
//! A single positive temperature `T` rescales the predicted standard
//! deviation to `σ/T`. `T` is fit on the **validation** split by maximising
//! the calibrated Gaussian log-likelihood, which reduces (Eq. 18) to
//!
//! ```text
//! T* = argmin_T  mean( −log T² + T² · r² ),   r² = (y − μ)² / σ²
//! ```
//!
//! solved with L-BFGS as in the paper. The objective has the closed form
//! optimum `T* = 1 / rms(r)`, which the tests use as an oracle.

use crate::config::CalibConfig;
use crate::error::TrainError;
use crate::mc::mc_forecast_with_cov;
use stuq_models::Forecaster;
use stuq_nn::lbfgs::{minimize, LbfgsOptions};
use stuq_tensor::StuqRng;
use stuq_traffic::{Split, SplitDataset};

/// Fits the temperature from standardised squared residuals `r²`.
///
/// The objective of Eq. 18 is optimised in log-space (`T = e^u`), where it
/// is smooth, convex and unconstrained — the positivity constraint on `T`
/// then never interacts with the line search. Degenerate residuals and a
/// diverged optimiser surface as typed [`TrainError`]s so a long pipeline
/// run can report (or checkpoint around) the failure instead of aborting.
pub fn fit_temperature(residual_sq: &[f64], max_iters: usize) -> Result<f32, TrainError> {
    if residual_sq.is_empty() {
        return Err(TrainError::EmptySplit { what: "residuals to calibrate on".into() });
    }
    let n = residual_sq.len() as f64;
    let mean_r2 = residual_sq.iter().sum::<f64>() / n;
    if !(mean_r2.is_finite() && mean_r2 > 0.0) {
        return Err(TrainError::CalibrationDegenerate { mean_r2 });
    }
    let result = minimize(
        |u| {
            // J(u) = −2u + e^{2u}·mean(r²);  dJ/du = −2 + 2 e^{2u}·mean(r²).
            let e2u = (2.0 * u[0]).exp();
            (-2.0 * u[0] + e2u * mean_r2, vec![-2.0 + 2.0 * e2u * mean_r2])
        },
        &[0.0],
        &LbfgsOptions { max_iters, ..Default::default() },
    );
    let t = result.x[0].exp();
    if !(t.is_finite() && t > 0.0) {
        return Err(TrainError::CalibrationDiverged { t });
    }
    Ok(t as f32)
}

/// Collects standardised residuals of `model` on the validation split and
/// fits `T`. Uses `cfg.mc_samples` MC passes per window (paper: 10) so the
/// calibrated quantity is the same predictive distribution used at test time.
pub fn calibrate_on_validation(
    model: &dyn Forecaster,
    ds: &SplitDataset,
    cfg: &CalibConfig,
    rng: &mut StuqRng,
) -> Result<f32, TrainError> {
    let starts = ds.window_starts(Split::Val);
    if starts.is_empty() {
        return Err(TrainError::EmptySplit { what: "validation windows".into() });
    }
    let mut residual_sq = Vec::new();
    for &s in starts.iter().step_by(cfg.stride.max(1)) {
        let w = ds.window(s);
        let f = mc_forecast_with_cov(model, &w.x, w.cov.as_ref(), cfg.mc_samples, rng);
        let y_norm = ds.normalize_target(&w.y_raw).transpose(); // [N, τ]
                                                                // r² uses the *total* uncalibrated variance, matching Eq. 18 where
                                                                // σ² comes from the Monte-Carlo estimate.
        let var = f.var_total(1.0);
        for i in 0..y_norm.len() {
            let mu = f.mu.data()[i] as f64;
            let v = (var.data()[i] as f64).max(1e-9);
            let y = y_norm.data()[i] as f64;
            residual_sq.push((y - mu).powi(2) / v);
        }
    }
    let t = fit_temperature(&residual_sq, cfg.max_iters)?;
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().calib_temperature.set(t as f64);
        stuq_obs::emit(stuq_obs::Event::new("calibrate").num("temperature", t as f64));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let residual_sq: Vec<f64> = (1..=50).map(|i| 0.1 * i as f64).collect();
        let mean_r2 = residual_sq.iter().sum::<f64>() / residual_sq.len() as f64;
        let expected = (1.0 / mean_r2).sqrt() as f32;
        let t = fit_temperature(&residual_sq, 500).unwrap();
        assert!((t - expected).abs() < 1e-4, "T {t} vs closed form {expected}");
    }

    #[test]
    fn overconfident_model_gets_t_below_one() {
        // r² ≫ 1 means σ underestimates the residuals → T < 1 widens σ/T.
        let residual_sq = vec![4.0; 100];
        let t = fit_temperature(&residual_sq, 500).unwrap();
        assert!(t < 1.0, "T {t}");
        assert!((t - 0.5).abs() < 1e-4, "closed form is 1/2");
    }

    #[test]
    fn underconfident_model_gets_t_above_one() {
        let residual_sq = vec![0.25; 100];
        let t = fit_temperature(&residual_sq, 500).unwrap();
        assert!((t - 2.0).abs() < 1e-4, "T {t}");
    }

    #[test]
    fn perfectly_calibrated_model_keeps_t_one() {
        let residual_sq = vec![1.0; 64];
        let t = fit_temperature(&residual_sq, 500).unwrap();
        assert!((t - 1.0).abs() < 1e-5, "T {t}");
    }

    #[test]
    fn degenerate_residuals_are_a_typed_error() {
        let err = fit_temperature(&[0.0; 8], 100).unwrap_err();
        assert!(matches!(err, TrainError::CalibrationDegenerate { .. }), "{err:?}");
        let err = fit_temperature(&[f64::NAN; 8], 100).unwrap_err();
        assert!(matches!(err, TrainError::CalibrationDegenerate { .. }), "{err:?}");
        let err = fit_temperature(&[], 100).unwrap_err();
        assert!(matches!(err, TrainError::EmptySplit { .. }), "{err:?}");
    }

    #[test]
    fn calibration_improves_validation_nll() {
        // Synthetic Gaussians with σ under-estimated by 2×: calibration must
        // roughly halve T and reduce the NLL of the calibrated predictions.
        let mut rng = StuqRng::new(9);
        let n = 2000;
        let sigma_true = 2.0f64;
        let sigma_pred = 1.0f64;
        let residual_sq: Vec<f64> = (0..n)
            .map(|_| {
                let y = sigma_true * rng.normal_f64();
                (y / sigma_pred).powi(2)
            })
            .collect();
        let t = fit_temperature(&residual_sq, 500).unwrap() as f64;
        assert!((t - 0.5).abs() < 0.05, "T {t} should be ≈ 1/2");
        let nll = |scale: f64| {
            residual_sq
                .iter()
                .map(|r2| 0.5 * ((sigma_pred / scale).powi(2).ln() + r2 * scale * scale))
                .sum::<f64>()
                / n as f64
        };
        assert!(nll(t) < nll(1.0), "calibrated NLL must improve");
    }
}
