//! **DeepSTUQ** — Deep Spatio-Temporal Uncertainty Quantification.
//!
//! A from-scratch Rust reproduction of *"Uncertainty Quantification for
//! Traffic Forecasting: A Unified Approach"* (Qian et al., ICDE 2023). The
//! crate implements the paper's unified pipeline:
//!
//! 1. **Pre-training** (§IV-C, Eq. 14): an adaptive-graph recurrent model
//!    with a heteroscedastic Gaussian head is trained with the combined
//!    loss — `λ`-weighted Gaussian NLL + L1 — under MC dropout (variational
//!    learning of epistemic uncertainty) and L2 weight decay.
//! 2. **AWA re-training** (§IV-C2, Algorithm 1): cosine "escape" epochs
//!    alternate with constant-rate fine-tuning epochs; the fine-tuned weights
//!    are folded into a running average (Eq. 15), approximating a deep
//!    ensemble with a single stored model.
//! 3. **Calibration** (§IV-C3, Eq. 17–18): a single temperature `T` is fit
//!    on the validation split with L-BFGS, rescaling the aleatoric variance.
//!
//! At inference time, `N_MC` Monte-Carlo dropout samples provide the
//! predictive mean and the decomposition of Eq. 7 / Eq. 19: aleatoric
//! variance (mean of per-sample variances, temperature-scaled) plus
//! epistemic variance (variance of per-sample means).
//!
//! [`methods`] additionally implements every uncertainty baseline of the
//! paper's Table II (Point, Quantile, MVE, MCDO, Combined, TS, FGE,
//! locally-weighted Conformal, CFRNN) on the same base model, and [`eval`]
//! reproduces the evaluation protocol of §V.
//!
//! # Quickstart
//!
//! ```
//! use deepstuq::pipeline::{DeepStuq, DeepStuqConfig};
//! use stuq_traffic::{DatasetSpec, Preset};
//!
//! // A tiny scaled-down PEMS08-like dataset (fast enough for doctests).
//! let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
//! let ds = spec.generate(7);
//! let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
//! let model = DeepStuq::train(&ds, cfg, 7);
//! let starts = ds.window_starts(stuq_traffic::Split::Test);
//! let w = ds.window(starts[0]);
//! let mut rng = stuq_tensor::StuqRng::new(1);
//! let f = model.predict(&w.x, ds.scaler(), &mut rng);
//! assert_eq!(f.mu.shape(), &[ds.n_nodes(), ds.horizon()]);
//! assert!(f.sigma_total.data().iter().all(|&s| s > 0.0));
//! ```

pub mod awa;
pub mod calibrate;
pub mod checkpoint;
pub mod config;
pub mod conformal;
pub mod decompose;
pub mod early_stop;
pub mod ensemble;
pub mod error;
pub mod eval;
pub mod guard;
pub mod io;
pub mod mc;
pub mod methods;
pub mod pipeline;
pub mod trainer;

pub use config::{AwaConfig, CalibConfig, TrainConfig};
pub use error::{Stage, TrainError};
pub use guard::{GuardConfig, GuardState};
pub use io::{load_model, load_model_bytes, save_model};
pub use mc::{
    mc_forecast, mc_forecast_anytime, mc_forecast_anytime_batch, mc_forecast_batch,
    AnytimeForecast, BatchObserver, BatchSampleBudget, GaussianForecast, McBatchItem, SampleBudget,
    UnlimitedBudget,
};
pub use pipeline::{DeepStuq, DeepStuqConfig, FitOptions, FitOutcome, Forecast};
