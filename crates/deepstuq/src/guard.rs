//! Divergence-guard policy and state (DESIGN.md §8).
//!
//! The trainer checks every batch's loss and gradient norm before applying
//! the optimiser step. The guard's state machine has three reactions:
//!
//! 1. **healthy** — loss and gradient norm are finite and below the
//!    configured ceilings: step normally, and periodically refresh the
//!    in-memory last-good snapshot (params + optimiser moments + RNG);
//! 2. **trip → skip** — an isolated bad batch (e.g. corrupted targets) is
//!    skipped without an update; the epoch continues;
//! 3. **trip → rewind** — `max_consecutive_skips` consecutive trips indicate
//!    the *trajectory* has diverged, not the data: parameters, optimiser
//!    moments and RNG are restored from the last-good snapshot and the run
//!    retries from there with the learning rate scaled down by `backoff`.
//!    After `max_rewinds` rewinds the stage gives up with
//!    [`crate::error::TrainError::DivergenceBudgetExhausted`].
//!
//! The distinction matters because the rewind restores the RNG too (that is
//! what keeps resumed runs bit-reproducible): a batch whose *data* is bad
//! trips identically on every replay, so only the skip path can get past it,
//! while genuine optimiser divergence is trajectory-dependent and is what
//! the backed-off retry repairs.

/// Tunable limits of the divergence guard.
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// Consecutive trips that trigger a rewind (the issue's `k`).
    pub max_consecutive_skips: usize,
    /// Total rewinds allowed per stage before giving up.
    pub max_rewinds: usize,
    /// Multiplicative learning-rate back-off applied at each rewind.
    pub backoff: f32,
    /// Ceiling on `|mean batch loss|`; larger values trip the guard.
    pub max_abs_loss: f64,
    /// Ceiling on the global gradient norm (pre-clipping).
    pub max_grad_norm: f64,
    /// Healthy batches between refreshes of the last-good snapshot.
    pub snapshot_every: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            max_consecutive_skips: 3,
            max_rewinds: 4,
            backoff: 0.5,
            max_abs_loss: 1e8,
            max_grad_norm: 1e8,
            snapshot_every: 8,
        }
    }
}

/// Mutable guard bookkeeping, sticky across the epochs of one stage.
///
/// `lr_scale` in particular must survive epoch boundaries (a diverging run
/// that was rescued at a lower learning rate should not snap back the next
/// epoch) and is persisted in checkpoints so resumed runs replay it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardState {
    /// Current multiplicative learning-rate scale (1.0 when undisturbed).
    pub lr_scale: f32,
    /// Rewinds consumed so far in this stage.
    pub rewinds_used: usize,
    /// Total guard trips observed (skips and rewind triggers).
    pub trips: usize,
    /// Batches skipped without an update.
    pub skipped: usize,
}

impl Default for GuardState {
    fn default() -> Self {
        Self { lr_scale: 1.0, rewinds_used: 0, trips: 0, skipped: 0 }
    }
}

impl GuardState {
    /// True when the guard never fired.
    pub fn is_clean(&self) -> bool {
        self.trips == 0 && self.rewinds_used == 0 && self.skipped == 0
    }
}

/// Records a guard trip (shared by the skip and rewind paths).
///
/// Guard decisions used to be visible only in the transient [`GuardState`],
/// which a rewind partially erases; these hooks persist every decision to the
/// telemetry stream the moment it is taken, so post-mortems do not need a
/// re-run. Purely observational: never read back by the trainer.
pub(crate) fn record_trip() {
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().guard_trips.inc();
    }
}

/// Records a skipped batch with the loss/threshold context that caused it.
/// The current stage and epoch are stamped by the recorder.
pub(crate) fn record_skip(cfg: &GuardConfig, loss: f64, grad_norm: f64, consecutive: usize) {
    if !stuq_obs::summary_enabled() {
        return;
    }
    stuq_obs::metrics().guard_skips.inc();
    stuq_obs::emit(
        stuq_obs::Event::new("guard_skip")
            .num("loss", loss)
            .num("grad_norm", grad_norm)
            .num("max_abs_loss", cfg.max_abs_loss)
            .num("max_grad_norm", cfg.max_grad_norm)
            .uint("consecutive_skips", consecutive as u64),
    );
}

/// Records a rewind (snapshot restore + learning-rate back-off).
pub(crate) fn record_rewind(cfg: &GuardConfig, loss: f64, grad_norm: f64, state: &GuardState) {
    if !stuq_obs::summary_enabled() {
        return;
    }
    let m = stuq_obs::metrics();
    m.guard_rewinds.inc();
    m.guard_lr_scale.set(state.lr_scale as f64);
    stuq_obs::emit(
        stuq_obs::Event::new("guard_rewind")
            .num("loss", loss)
            .num("grad_norm", grad_norm)
            .num("max_abs_loss", cfg.max_abs_loss)
            .num("max_grad_norm", cfg.max_grad_norm)
            .num("lr_scale", state.lr_scale as f64)
            .uint("rewinds_used", state.rewinds_used as u64),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let g = GuardConfig::default();
        assert!(g.max_consecutive_skips >= 1);
        assert!(g.backoff > 0.0 && g.backoff < 1.0);
        let s = GuardState::default();
        assert_eq!(s.lr_scale, 1.0);
        assert!(s.is_clean());
    }
}
