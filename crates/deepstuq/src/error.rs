//! Typed training-failure reporting.
//!
//! The fault-tolerance runtime (DESIGN.md §8) replaces the trainer's and
//! calibrator's panics with [`TrainError`], so the CLI and library callers
//! can report a failed stage — or resume from a checkpoint — instead of
//! aborting the process.

use std::fmt;

/// Which pipeline stage an error (or checkpoint) belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: variational pre-training (Eq. 14).
    Pretrain,
    /// Stage 2: AWA re-training (Algorithm 1).
    Awa,
    /// Stage 3: temperature calibration (Eq. 18).
    Calibrate,
}

impl Stage {
    /// Stable name used in checkpoint files and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Pretrain => "pretrain",
            Stage::Awa => "awa",
            Stage::Calibrate => "calibrate",
        }
    }

    /// Inverse of [`Stage::as_str`].
    pub fn by_name(s: &str) -> Option<Self> {
        match s {
            "pretrain" => Some(Stage::Pretrain),
            "awa" => Some(Stage::Awa),
            "calibrate" => Some(Stage::Calibrate),
            _ => None,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed training failure.
#[derive(Clone, Debug)]
pub enum TrainError {
    /// The loss kind is incompatible with the model's prediction head
    /// (e.g. the combined loss on a point head).
    HeadMismatch {
        /// Human-readable requirement, e.g. `"Combined loss requires a
        /// Gaussian head"`.
        requirement: String,
    },
    /// A split needed by the stage contains no windows.
    EmptySplit {
        /// What was being iterated (e.g. `"training windows"`).
        what: String,
    },
    /// The divergence guard exhausted its rewind budget: training kept
    /// producing non-finite or exploding losses/gradients even after
    /// repeated rewinds with backed-off learning rates.
    DivergenceBudgetExhausted {
        /// Stage that gave up.
        stage: Stage,
        /// Rewinds consumed (equals the configured budget).
        rewinds: usize,
        /// The last observed (offending) loss value.
        last_loss: f64,
    },
    /// A divergence rewind could not restore the last-good snapshot (e.g.
    /// the captured optimiser state no longer matches the live optimiser).
    /// The model may hold restored parameters but stale optimiser moments,
    /// so the stage must stop rather than continue on a half-applied rewind.
    RewindFailed {
        /// Stage whose rewind failed.
        stage: Stage,
        /// What the restore rejected.
        reason: String,
    },
    /// Repeated rewinds backed the learning rate off until the scale
    /// underflowed to zero: further retries cannot change the trajectory.
    BackoffExhausted {
        /// Stage that gave up.
        stage: Stage,
        /// Rewinds consumed when the scale hit zero.
        rewinds: usize,
    },
    /// Calibration residuals were degenerate (non-finite or non-positive
    /// mean r²), so no temperature can be fit.
    CalibrationDegenerate {
        /// The offending mean squared standardised residual.
        mean_r2: f64,
    },
    /// The temperature optimiser diverged to a non-finite or non-positive T.
    CalibrationDiverged {
        /// The offending temperature.
        t: f64,
    },
    /// A checkpoint could not be written, read or validated.
    Checkpoint(String),
    /// The requested configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::HeadMismatch { requirement } => f.write_str(requirement),
            TrainError::EmptySplit { what } => write!(f, "no {what}"),
            TrainError::DivergenceBudgetExhausted { stage, rewinds, last_loss } => write!(
                f,
                "{stage} diverged: rewind budget exhausted after {rewinds} rewinds (last loss {last_loss})"
            ),
            TrainError::RewindFailed { stage, reason } => {
                write!(f, "{stage} rewind failed: {reason}")
            }
            TrainError::BackoffExhausted { stage, rewinds } => write!(
                f,
                "{stage} diverged: learning-rate backoff exhausted (scale underflowed to zero after {rewinds} rewinds)"
            ),
            TrainError::CalibrationDegenerate { mean_r2 } => {
                write!(f, "degenerate residuals: mean r² = {mean_r2}")
            }
            TrainError::CalibrationDiverged { t } => write!(f, "calibration diverged: T = {t}"),
            TrainError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
            TrainError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Checkpoint(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_roundtrip() {
        for s in [Stage::Pretrain, Stage::Awa, Stage::Calibrate] {
            assert_eq!(Stage::by_name(s.as_str()), Some(s));
        }
        assert_eq!(Stage::by_name("nonsense"), None);
    }

    #[test]
    fn display_messages_preserve_legacy_phrases() {
        // Existing tests (and users' log greps) match on these phrases; the
        // typed errors keep them verbatim.
        let e = TrainError::HeadMismatch {
            requirement: "Combined loss requires a Gaussian head".into(),
        };
        assert!(e.to_string().contains("requires a Gaussian head"));
        let e = TrainError::CalibrationDiverged { t: f64::NAN };
        assert!(e.to_string().contains("calibration diverged"));
        let e = TrainError::CalibrationDegenerate { mean_r2: 0.0 };
        assert!(e.to_string().contains("degenerate residuals"));
    }
}
