//! Configuration types for the three training stages.

/// Pre-training configuration (paper §V-B "Pre-training").
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of epochs (paper: 100; scaled runs use far fewer).
    pub epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Adam learning rate (paper: 3e-3).
    pub lr: f32,
    /// L2 weight decay (paper: 1e-6).
    pub weight_decay: f32,
    /// Relative NLL weight λ in the combined loss (paper: 0.1).
    pub lambda: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 64,
            lr: 3e-3,
            weight_decay: 1e-6,
            lambda: 0.1,
            grad_clip: 5.0,
        }
    }
}

impl TrainConfig {
    /// A configuration sized for scaled-down experiment-harness runs.
    pub fn scaled(epochs: usize, batch_size: usize) -> Self {
        Self { epochs, batch_size, ..Default::default() }
    }
}

/// AWA re-training configuration (paper §V-B "AWA Re-training").
#[derive(Clone, Debug)]
pub struct AwaConfig {
    /// Total re-training epochs; each escape/fine-tune cycle is 2 epochs, so
    /// `epochs / 2` models are averaged (paper: 20 → 10 models).
    pub epochs: usize,
    /// Maximum learning rate `lr₁` (paper: 3e-3).
    pub lr_max: f32,
    /// Minimum learning rate `lr₂` (paper: 3e-5).
    pub lr_min: f32,
    /// Mini-batch size (shared with pre-training in the paper).
    pub batch_size: usize,
}

impl Default for AwaConfig {
    fn default() -> Self {
        Self { epochs: 20, lr_max: 3e-3, lr_min: 3e-5, batch_size: 64 }
    }
}

impl AwaConfig {
    /// Scaled-down variant for harness runs (epochs must stay even).
    pub fn scaled(epochs: usize, batch_size: usize) -> Self {
        assert!(epochs.is_multiple_of(2), "AWA cycles are 2 epochs; use an even count");
        Self { epochs, batch_size, ..Default::default() }
    }
}

/// Calibration configuration (paper §V-B "Model Calibration").
#[derive(Clone, Copy, Debug)]
pub struct CalibConfig {
    /// Monte-Carlo samples used to estimate `σ²` on the validation split
    /// (paper: 10).
    pub mc_samples: usize,
    /// Maximum L-BFGS iterations (paper: 500).
    pub max_iters: usize,
    /// Stride over validation windows (1 = every window; larger strides keep
    /// scaled runs fast without biasing the fit).
    pub stride: usize,
}

impl Default for CalibConfig {
    fn default() -> Self {
        Self { mc_samples: 10, max_iters: 500, stride: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let t = TrainConfig::default();
        assert_eq!(t.epochs, 100);
        assert_eq!(t.batch_size, 64);
        assert!((t.lr - 3e-3).abs() < 1e-9);
        assert!((t.weight_decay - 1e-6).abs() < 1e-12);
        assert!((t.lambda - 0.1).abs() < 1e-9);

        let a = AwaConfig::default();
        assert_eq!(a.epochs, 20);
        assert!((a.lr_max - 3e-3).abs() < 1e-9);
        assert!((a.lr_min - 3e-5).abs() < 1e-9);

        let c = CalibConfig::default();
        assert_eq!(c.mc_samples, 10);
        assert_eq!(c.max_iters, 500);
    }

    #[test]
    #[should_panic(expected = "even count")]
    fn awa_rejects_odd_epochs() {
        let _ = AwaConfig::scaled(5, 8);
    }
}
