//! Adaptive Weight Averaging re-training (paper §IV-C2, Algorithm 1).
//!
//! Epochs alternate in two-epoch cycles:
//!
//! * **escape epochs** (even): the learning rate sweeps from `lr₁` down to
//!   `lr₂` with the cosine schedule of Eq. 16, letting the model leave the
//!   current local minimum and settle near a new one;
//! * **fine-tune epochs** (odd): constant `lr₂`; at the end of the epoch the
//!   weights are folded into the running average (Eq. 15).
//!
//! The optimiser is Adam — the paper reports it works better here than the
//! SGD of original SWA. Algorithm 1's final "perform batch normalization"
//! step is a no-op in this reproduction because the base model (like AGCRN)
//! contains no batch-norm layers whose statistics would need refreshing.
//!
//! The stage is driven through [`AwaState`], which owns the optimiser and
//! running averager and advances one epoch at a time — that epoch granularity
//! is what lets the checkpoint module persist and resume AWA mid-stage
//! bit-for-bit (DESIGN.md §8).

use crate::config::AwaConfig;
use crate::error::{Stage, TrainError};
use crate::guard::{GuardConfig, GuardState};
use crate::trainer::{train_epoch_guarded, LossKind};
use stuq_models::Forecaster;
use stuq_nn::opt::{Adam, Optimizer, OptimizerState};
use stuq_nn::sched::CosineSchedule;
use stuq_nn::swa::WeightAverager;
use stuq_tensor::{StuqRng, Tensor};
use stuq_traffic::{Split, SplitDataset};

/// Outcome of AWA re-training.
#[derive(Debug)]
pub struct AwaReport {
    /// Number of models folded into the average (paper: 10).
    pub n_models: usize,
    /// Per-epoch mean training loss (epochs run by this process; a resumed
    /// run reports only its own epochs).
    pub loss_history: Vec<f64>,
}

/// Resumable AWA stage state: optimiser moments, the running weight average
/// and the epoch cursor.
#[derive(Debug)]
pub struct AwaState {
    opt: Adam,
    averager: WeightAverager,
    epoch: usize,
    history: Vec<f64>,
}

impl AwaState {
    /// Validates `cfg` and prepares a fresh stage.
    pub fn new(cfg: &AwaConfig, weight_decay: f32) -> Result<Self, TrainError> {
        if cfg.epochs < 2 || !cfg.epochs.is_multiple_of(2) {
            return Err(TrainError::InvalidConfig(
                "AWA needs an even, positive epoch count".into(),
            ));
        }
        Ok(Self {
            opt: Adam::new(cfg.lr_max, weight_decay),
            averager: WeightAverager::new(),
            epoch: 0,
            history: Vec::new(),
        })
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> usize {
        self.epoch
    }

    /// Runs one epoch (escape or fine-tune, depending on the cursor) through
    /// the guarded trainer; returns its mean training loss.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's training-loop knobs
    pub fn run_epoch(
        &mut self,
        model: &mut dyn Forecaster,
        ds: &SplitDataset,
        cfg: &AwaConfig,
        kind: LossKind,
        rng: &mut StuqRng,
        guard: &GuardConfig,
        gstate: &mut GuardState,
    ) -> Result<f64, TrainError> {
        let n_iters = {
            let n_windows = ds.window_starts(Split::Train).len();
            n_windows.div_ceil(cfg.batch_size)
        };
        let loss = if self.epoch.is_multiple_of(2) {
            // Escape epoch: cosine lr₁ → lr₂ across this epoch's iterations.
            let sched = CosineSchedule::new(cfg.lr_max, cfg.lr_min, n_iters.max(1));
            let mut hook = |it: usize| sched.lr_at(it);
            train_epoch_guarded(
                model,
                ds,
                cfg.batch_size,
                kind,
                &mut self.opt,
                5.0,
                rng,
                Some(&mut hook),
                Stage::Awa,
                guard,
                gstate,
            )?
        } else {
            // Fine-tune epoch at constant lr₂, then average (Eq. 15).
            let mut hook = |_: usize| cfg.lr_min;
            let l = train_epoch_guarded(
                model,
                ds,
                cfg.batch_size,
                kind,
                &mut self.opt,
                5.0,
                rng,
                Some(&mut hook),
                Stage::Awa,
                guard,
                gstate,
            )?;
            self.averager.update(model.params());
            l
        };
        self.epoch += 1;
        self.history.push(loss);
        Ok(loss)
    }

    /// Writes the averaged weights into `model` and reports the stage.
    pub fn finish(self, model: &mut dyn Forecaster) -> AwaReport {
        let n_models = self.averager.n_models();
        self.averager.apply_to(model.params_mut());
        AwaReport { n_models, loss_history: self.history }
    }

    /// Serialisable stage state for checkpointing:
    /// `(optimiser, n_models, averaged snapshots, epoch cursor)`.
    pub fn export(&self) -> (OptimizerState, usize, Vec<Tensor>, usize) {
        let (n_models, avg) = self.averager.export_state();
        (self.opt.export_state(), n_models, avg, self.epoch)
    }

    /// Restores a state captured by [`AwaState::export`] into a fresh stage.
    pub fn import(
        cfg: &AwaConfig,
        weight_decay: f32,
        opt_state: &OptimizerState,
        n_models: usize,
        avg: Vec<Tensor>,
        epoch: usize,
    ) -> Result<Self, TrainError> {
        let mut state = Self::new(cfg, weight_decay)?;
        state.opt.import_state(opt_state).map_err(TrainError::Checkpoint)?;
        state.averager = WeightAverager::from_state(n_models, avg);
        state.epoch = epoch;
        Ok(state)
    }
}

/// Re-trains `model` in place: on return its parameters are the AWA average.
pub fn awa_retrain(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &AwaConfig,
    kind: LossKind,
    weight_decay: f32,
    rng: &mut StuqRng,
) -> Result<AwaReport, TrainError> {
    awa_retrain_guarded(
        model,
        ds,
        cfg,
        kind,
        weight_decay,
        rng,
        &GuardConfig::default(),
        &mut GuardState::default(),
    )
}

/// [`awa_retrain`] with an explicit guard policy and sticky stage state.
#[allow(clippy::too_many_arguments)] // mirrors the paper's training-loop knobs
pub fn awa_retrain_guarded(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &AwaConfig,
    kind: LossKind,
    weight_decay: f32,
    rng: &mut StuqRng,
    guard: &GuardConfig,
    gstate: &mut GuardState,
) -> Result<AwaReport, TrainError> {
    let mut state = AwaState::new(cfg, weight_decay)?;
    while state.epochs_done() < cfg.epochs {
        state.run_epoch(model, ds, cfg, kind, rng, guard, gstate)?;
    }
    Ok(state.finish(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::trainer::{eval_loss, train};
    use stuq_models::{Agcrn, AgcrnConfig};
    use stuq_traffic::Preset;

    #[test]
    fn awa_averages_expected_model_count_and_stays_trained() {
        let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
        let ds = spec.generate(21);
        let mut rng = StuqRng::new(21);
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(12, 4, 1)
            .with_dropout(0.05, 0.1);
        let mut model = Agcrn::new(cfg, &mut rng);
        let kind = LossKind::Combined { lambda: 0.1 };
        // Short pre-training so AWA starts from a sensible point.
        let pre = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let _ = train(&mut model, &ds, &pre, kind, &mut rng).unwrap();
        let loss_pre = eval_loss(&model, &ds, Split::Val, kind, 13, &mut rng).unwrap();

        let awa_cfg = AwaConfig::scaled(4, 8);
        let report = awa_retrain(&mut model, &ds, &awa_cfg, kind, 1e-6, &mut rng).unwrap();
        assert_eq!(report.n_models, 2, "4 epochs → 2 averaged models");
        assert_eq!(report.loss_history.len(), 4);
        let loss_post = eval_loss(&model, &ds, Split::Val, kind, 13, &mut rng).unwrap();
        // AWA is a refinement: it must not blow the model up.
        assert!(
            loss_post < loss_pre + 0.5,
            "AWA degraded the model: {loss_pre:.4} → {loss_post:.4}"
        );
        assert!(model.params().all_finite());
    }

    #[test]
    fn rejects_odd_epochs() {
        let bad = AwaConfig { epochs: 3, ..Default::default() };
        let err = AwaState::new(&bad, 0.0).unwrap_err();
        assert!(err.to_string().contains("even, positive epoch count"), "{err}");
    }

    #[test]
    fn state_export_import_resumes_bit_identically() {
        // Run 4 AWA epochs straight vs. 2 epochs → export → import → 2 more.
        let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
        let ds = spec.generate(23);
        let kind = LossKind::Combined { lambda: 0.1 };
        let awa_cfg = AwaConfig::scaled(4, 8);
        let make_model = |rng: &mut StuqRng| {
            let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
                .with_capacity(10, 3, 1)
                .with_dropout(0.05, 0.1);
            Agcrn::new(cfg, rng)
        };

        let guard = GuardConfig::default();
        // Straight run.
        let mut rng_a = StuqRng::new(23);
        let mut model_a = make_model(&mut rng_a);
        let mut gs_a = GuardState::default();
        let mut st_a = AwaState::new(&awa_cfg, 1e-6).unwrap();
        for _ in 0..4 {
            st_a.run_epoch(&mut model_a, &ds, &awa_cfg, kind, &mut rng_a, &guard, &mut gs_a)
                .unwrap();
        }
        let rep_a = st_a.finish(&mut model_a);

        // Interrupted run: same seeds, export/import between epoch 2 and 3.
        let mut rng_b = StuqRng::new(23);
        let mut model_b = make_model(&mut rng_b);
        let mut gs_b = GuardState::default();
        let mut st_b = AwaState::new(&awa_cfg, 1e-6).unwrap();
        for _ in 0..2 {
            st_b.run_epoch(&mut model_b, &ds, &awa_cfg, kind, &mut rng_b, &guard, &mut gs_b)
                .unwrap();
        }
        let (opt_state, n_models, avg, epoch) = st_b.export();
        let mut st_b2 = AwaState::import(&awa_cfg, 1e-6, &opt_state, n_models, avg, epoch).unwrap();
        for _ in 0..2 {
            st_b2
                .run_epoch(&mut model_b, &ds, &awa_cfg, kind, &mut rng_b, &guard, &mut gs_b)
                .unwrap();
        }
        let rep_b = st_b2.finish(&mut model_b);

        assert_eq!(rep_a.n_models, rep_b.n_models);
        for (x, y) in model_a.params().snapshot().iter().zip(model_b.params().snapshot()) {
            for (p, q) in x.data().iter().zip(y.data()) {
                assert_eq!(p.to_bits(), q.to_bits(), "AWA resume drifted");
            }
        }
    }
}
