//! Adaptive Weight Averaging re-training (paper §IV-C2, Algorithm 1).
//!
//! Epochs alternate in two-epoch cycles:
//!
//! * **escape epochs** (even): the learning rate sweeps from `lr₁` down to
//!   `lr₂` with the cosine schedule of Eq. 16, letting the model leave the
//!   current local minimum and settle near a new one;
//! * **fine-tune epochs** (odd): constant `lr₂`; at the end of the epoch the
//!   weights are folded into the running average (Eq. 15).
//!
//! The optimiser is Adam — the paper reports it works better here than the
//! SGD of original SWA. Algorithm 1's final "perform batch normalization"
//! step is a no-op in this reproduction because the base model (like AGCRN)
//! contains no batch-norm layers whose statistics would need refreshing.

use crate::config::AwaConfig;
use crate::trainer::{train_epoch, LossKind};
use stuq_models::Forecaster;
use stuq_nn::opt::Adam;
use stuq_nn::sched::CosineSchedule;
use stuq_nn::swa::WeightAverager;
use stuq_tensor::StuqRng;
use stuq_traffic::{Split, SplitDataset};

/// Outcome of AWA re-training.
#[derive(Debug)]
pub struct AwaReport {
    /// Number of models folded into the average (paper: 10).
    pub n_models: usize,
    /// Per-epoch mean training loss.
    pub loss_history: Vec<f64>,
}

/// Re-trains `model` in place: on return its parameters are the AWA average.
pub fn awa_retrain(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &AwaConfig,
    kind: LossKind,
    weight_decay: f32,
    rng: &mut StuqRng,
) -> AwaReport {
    assert!(cfg.epochs >= 2 && cfg.epochs.is_multiple_of(2), "AWA needs an even, positive epoch count");
    let n_iters = {
        let n_windows = ds.window_starts(Split::Train).len();
        n_windows.div_ceil(cfg.batch_size)
    };
    let mut opt = Adam::new(cfg.lr_max, weight_decay);
    let mut averager = WeightAverager::new();
    let mut history = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let loss = if epoch % 2 == 0 {
            // Escape epoch: cosine lr₁ → lr₂ across this epoch's iterations.
            let sched = CosineSchedule::new(cfg.lr_max, cfg.lr_min, n_iters.max(1));
            let mut hook = |it: usize| sched.lr_at(it);
            train_epoch(model, ds, cfg.batch_size, kind, &mut opt, 5.0, rng, Some(&mut hook))
        } else {
            // Fine-tune epoch at constant lr₂, then average (Eq. 15).
            let mut hook = |_: usize| cfg.lr_min;
            let l =
                train_epoch(model, ds, cfg.batch_size, kind, &mut opt, 5.0, rng, Some(&mut hook));
            averager.update(model.params());
            l
        };
        history.push(loss);
    }
    let n_models = averager.n_models();
    averager.apply_to(model.params_mut());
    AwaReport { n_models, loss_history: history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::trainer::{eval_loss, train};
    use stuq_models::{Agcrn, AgcrnConfig};
    use stuq_traffic::Preset;

    #[test]
    fn awa_averages_expected_model_count_and_stays_trained() {
        let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
        let ds = spec.generate(21);
        let mut rng = StuqRng::new(21);
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(12, 4, 1)
            .with_dropout(0.05, 0.1);
        let mut model = Agcrn::new(cfg, &mut rng);
        let kind = LossKind::Combined { lambda: 0.1 };
        // Short pre-training so AWA starts from a sensible point.
        let pre = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let _ = train(&mut model, &ds, &pre, kind, &mut rng);
        let loss_pre = eval_loss(&model, &ds, Split::Val, kind, 13, &mut rng);

        let awa_cfg = AwaConfig::scaled(4, 8);
        let report = awa_retrain(&mut model, &ds, &awa_cfg, kind, 1e-6, &mut rng);
        assert_eq!(report.n_models, 2, "4 epochs → 2 averaged models");
        assert_eq!(report.loss_history.len(), 4);
        let loss_post = eval_loss(&model, &ds, Split::Val, kind, 13, &mut rng);
        // AWA is a refinement: it must not blow the model up.
        assert!(
            loss_post < loss_pre + 0.5,
            "AWA degraded the model: {loss_pre:.4} → {loss_post:.4}"
        );
        assert!(model.params().all_finite());
    }

    #[test]
    #[should_panic(expected = "even, positive epoch count")]
    fn rejects_odd_epochs() {
        let spec = Preset::Pems08Like.spec().scaled(0.08, 0.02);
        let ds = spec.generate(5);
        let mut rng = StuqRng::new(5);
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon()).with_capacity(8, 3, 1);
        let mut model = Agcrn::new(cfg, &mut rng);
        let bad = AwaConfig { epochs: 3, ..Default::default() };
        let _ = awa_retrain(
            &mut model,
            &ds,
            &bad,
            LossKind::Combined { lambda: 0.1 },
            0.0,
            &mut rng,
        );
    }
}
