//! Crash-safe training checkpoints (`deepstuq-checkpoint v1`, DESIGN.md §8).
//!
//! A checkpoint captures everything the pipeline needs to continue a run
//! **bit-for-bit** across a process boundary:
//!
//! * the architecture header (shared with the model format in [`crate::io`]),
//! * the stage cursor (`pretrain` or `awa`) and epochs completed in it,
//! * the divergence-guard state (learning-rate scale, rewind/trip counters),
//! * the full RNG state including the cached Box–Muller spare,
//! * the optimiser moments (and for AWA the running weight average),
//! * the model parameters as a `stuq-params v1` blob.
//!
//! Files are written atomically with a checksum trailer via [`stuq_artifact`],
//! so an interrupted save leaves the previous checkpoint intact, and loading
//! distinguishes truncation, corruption and architecture mismatch.

use crate::error::Stage;
use crate::guard::GuardState;
use crate::io::{bad, check_arch, field, next_line, read_arch, write_arch};
use std::io::{self, BufRead, Write};
use std::path::Path;
use stuq_models::AgcrnConfig;
use stuq_nn::opt::OptimizerState;
use stuq_nn::params::ParamSet;
use stuq_nn::serialize::{read_params, write_params};
use stuq_tensor::{RngState, Tensor};

const MAGIC: &str = "deepstuq-checkpoint v1";

/// Borrowed view of live training state, as handed to [`save_checkpoint`].
pub struct StageSnapshot<'a> {
    pub arch: &'a AgcrnConfig,
    pub stage: Stage,
    /// Epochs fully completed within `stage`.
    pub epochs_done: usize,
    pub guard: GuardState,
    pub rng: RngState,
    pub opt: OptimizerState,
    /// AWA only: `(n_models, running average)`.
    pub averager: Option<(usize, Vec<Tensor>)>,
    pub params: &'a ParamSet,
}

/// Owned training state reconstructed by [`load_checkpoint`].
#[derive(Debug)]
pub struct Checkpoint {
    pub arch: AgcrnConfig,
    pub stage: Stage,
    pub epochs_done: usize,
    pub guard: GuardState,
    pub rng: RngState,
    pub opt: OptimizerState,
    pub averager: Option<(usize, Vec<Tensor>)>,
    pub params: Vec<(String, Tensor)>,
}

impl Checkpoint {
    /// Validates the stored architecture against the run's configuration,
    /// field by field.
    pub fn validate_arch(&self, expected: &AgcrnConfig) -> Result<(), String> {
        check_arch(&self.arch, expected)
    }
}

fn write_tensor_body(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    for chunk in t.data().chunks(16) {
        let words: Vec<String> = chunk.iter().map(|v| format!("{:08x}", v.to_bits())).collect();
        writeln!(w, "{}", words.join(" "))?;
    }
    Ok(())
}

fn read_tensor_body(r: &mut impl BufRead, dims: &[usize]) -> io::Result<Tensor> {
    let len: usize = dims.iter().product();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let line = next_line(r)?;
        for word in line.split_whitespace() {
            let bits = u32::from_str_radix(word, 16)
                .map_err(|_| bad(format!("bad tensor word {word:?}")))?;
            data.push(f32::from_bits(bits));
        }
    }
    if data.len() != len {
        return Err(bad("tensor data length mismatch"));
    }
    Ok(Tensor::from_vec(data, dims))
}

fn parse_dims(tokens: &mut std::str::SplitWhitespace) -> io::Result<Vec<usize>> {
    let ndim: usize =
        tokens.next().ok_or_else(|| bad("missing ndim"))?.parse().map_err(|_| bad("bad ndim"))?;
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dims.push(
            tokens.next().ok_or_else(|| bad("missing dim"))?.parse().map_err(|_| bad("bad dim"))?,
        );
    }
    Ok(dims)
}

/// Writes `snap` to `path` atomically, sealed with a checksum trailer.
pub fn save_checkpoint(snap: &StageSnapshot, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w: Vec<u8> = Vec::new();
    writeln!(w, "{MAGIC}")?;
    write_arch(&mut w, snap.arch)?;
    writeln!(w, "stage {}", snap.stage.as_str())?;
    writeln!(w, "epochs_done {}", snap.epochs_done)?;
    writeln!(w, "lr_scale_bits {:08x}", snap.guard.lr_scale.to_bits())?;
    writeln!(w, "rewinds {}", snap.guard.rewinds_used)?;
    writeln!(w, "trips {}", snap.guard.trips)?;
    writeln!(w, "skipped {}", snap.guard.skipped)?;
    let s = &snap.rng.s;
    let spare = match snap.rng.spare_normal_bits {
        Some(bits) => format!("{bits:016x}"),
        None => "none".to_string(),
    };
    writeln!(w, "rng {:016x} {:016x} {:016x} {:016x} {}", s[0], s[1], s[2], s[3], spare)?;

    writeln!(w, "opt {} {} {}", snap.opt.algorithm, snap.opt.counter, snap.opt.buffers.len())?;
    for (name, slots) in &snap.opt.buffers {
        writeln!(w, "buffer {name} {}", slots.len())?;
        for slot in slots {
            match slot {
                None => writeln!(w, "slot none")?,
                Some(t) => {
                    let dims: Vec<String> = t.shape().iter().map(|d| d.to_string()).collect();
                    writeln!(w, "slot tensor {} {}", t.shape().len(), dims.join(" "))?;
                    write_tensor_body(&mut w, t)?;
                }
            }
        }
    }

    match &snap.averager {
        None => writeln!(w, "averager none")?,
        Some((n_models, avg)) => {
            writeln!(w, "averager {n_models} {}", avg.len())?;
            for t in avg {
                let dims: Vec<String> = t.shape().iter().map(|d| d.to_string()).collect();
                writeln!(w, "tensor {} {}", t.shape().len(), dims.join(" "))?;
                write_tensor_body(&mut w, t)?;
            }
        }
    }

    write_params(snap.params, &mut w)?;
    stuq_artifact::write_atomic_checksummed(path, &w)
}

/// Loads and verifies a checkpoint written by [`save_checkpoint`].
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
    let payload = stuq_artifact::read_verified(path.as_ref())?;
    let mut r = payload.as_slice();
    if next_line(&mut r)? != MAGIC {
        return Err(bad("not a deepstuq-checkpoint file"));
    }
    let arch = read_arch(&mut r)?;
    let stage_name = field(&mut r, "stage")?;
    let stage =
        Stage::by_name(&stage_name).ok_or_else(|| bad(format!("unknown stage {stage_name:?}")))?;
    let epochs_done: usize =
        field(&mut r, "epochs_done")?.parse().map_err(|_| bad("bad epochs_done"))?;
    let lr_bits = u32::from_str_radix(&field(&mut r, "lr_scale_bits")?, 16)
        .map_err(|_| bad("bad lr_scale_bits"))?;
    let rewinds: usize = field(&mut r, "rewinds")?.parse().map_err(|_| bad("bad rewinds"))?;
    let trips: usize = field(&mut r, "trips")?.parse().map_err(|_| bad("bad trips"))?;
    let skipped: usize = field(&mut r, "skipped")?.parse().map_err(|_| bad("bad skipped"))?;
    let guard =
        GuardState { lr_scale: f32::from_bits(lr_bits), rewinds_used: rewinds, trips, skipped };

    let rng_line = field(&mut r, "rng")?;
    let mut toks = rng_line.split_whitespace();
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = u64::from_str_radix(toks.next().ok_or_else(|| bad("short rng line"))?, 16)
            .map_err(|_| bad("bad rng word"))?;
    }
    let spare_tok = toks.next().ok_or_else(|| bad("short rng line"))?;
    let spare_normal_bits = if spare_tok == "none" {
        None
    } else {
        Some(u64::from_str_radix(spare_tok, 16).map_err(|_| bad("bad rng spare"))?)
    };
    let rng = RngState { s, spare_normal_bits };

    let opt_line = field(&mut r, "opt")?;
    let mut toks = opt_line.split_whitespace();
    let algorithm = toks.next().ok_or_else(|| bad("short opt line"))?.to_string();
    let counter: u64 = toks
        .next()
        .ok_or_else(|| bad("short opt line"))?
        .parse()
        .map_err(|_| bad("bad opt counter"))?;
    let n_buffers: usize = toks
        .next()
        .ok_or_else(|| bad("short opt line"))?
        .parse()
        .map_err(|_| bad("bad opt buffer count"))?;
    let mut buffers = Vec::with_capacity(n_buffers);
    for _ in 0..n_buffers {
        let buf_line = field(&mut r, "buffer")?;
        let mut toks = buf_line.split_whitespace();
        let name = toks.next().ok_or_else(|| bad("short buffer line"))?.to_string();
        let n_slots: usize = toks
            .next()
            .ok_or_else(|| bad("short buffer line"))?
            .parse()
            .map_err(|_| bad("bad slot count"))?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let slot_line = field(&mut r, "slot")?;
            let mut toks = slot_line.split_whitespace();
            match toks.next() {
                Some("none") => slots.push(None),
                Some("tensor") => {
                    let dims = parse_dims(&mut toks)?;
                    slots.push(Some(read_tensor_body(&mut r, &dims)?));
                }
                other => return Err(bad(format!("bad slot tag {other:?}"))),
            }
        }
        buffers.push((name, slots));
    }
    let opt = OptimizerState { algorithm, counter, buffers };

    let avg_line = field(&mut r, "averager")?;
    let averager = if avg_line == "none" {
        None
    } else {
        let mut toks = avg_line.split_whitespace();
        let n_models: usize = toks
            .next()
            .ok_or_else(|| bad("short averager line"))?
            .parse()
            .map_err(|_| bad("bad averager n_models"))?;
        let n_tensors: usize = toks
            .next()
            .ok_or_else(|| bad("short averager line"))?
            .parse()
            .map_err(|_| bad("bad averager tensor count"))?;
        let mut avg = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            let t_line = field(&mut r, "tensor")?;
            let mut toks = t_line.split_whitespace();
            let dims = parse_dims(&mut toks)?;
            avg.push(read_tensor_body(&mut r, &dims)?);
        }
        Some((n_models, avg))
    };

    let params = read_params(&mut r)?;
    Ok(Checkpoint { arch, stage, epochs_done, guard, rng, opt, averager, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_tensor::StuqRng;

    fn sample_snapshot<'a>(arch: &'a AgcrnConfig, params: &'a ParamSet) -> StageSnapshot<'a> {
        let mut rng = StuqRng::new(7);
        let _ = rng.normal_f32(); // leave a Box–Muller spare pending
        StageSnapshot {
            arch,
            stage: Stage::Awa,
            epochs_done: 3,
            guard: GuardState { lr_scale: 0.25, rewinds_used: 2, trips: 5, skipped: 4 },
            rng: rng.export_state(),
            opt: OptimizerState {
                algorithm: "adam".into(),
                counter: 17,
                buffers: vec![
                    ("m".into(), vec![Some(Tensor::from_vec(vec![1.5, -2.25, 0.0], &[3])), None]),
                    ("v".into(), vec![Some(Tensor::from_vec(vec![0.125], &[1, 1])), None]),
                ],
            },
            averager: Some((2, vec![Tensor::from_vec(vec![3.5, 4.5], &[2])])),
            params,
        }
    }

    #[test]
    fn roundtrip_preserves_every_field_bit_for_bit() {
        let arch = AgcrnConfig::new(5, 3).with_capacity(8, 2, 1).with_dropout(0.1, 0.2);
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::from_vec(vec![0.5, -0.5, 1.0e-7, 3.25], &[2, 2]));
        ps.add("b", Tensor::from_vec(vec![-1.0], &[1]));
        let snap = sample_snapshot(&arch, &ps);

        let dir = std::env::temp_dir().join("deepstuq_ckpt_test");
        let path = dir.join("train.ckpt");
        save_checkpoint(&snap, &path).unwrap();
        let cp = load_checkpoint(&path).unwrap();

        assert!(cp.validate_arch(&arch).is_ok());
        assert_eq!(cp.stage, Stage::Awa);
        assert_eq!(cp.epochs_done, 3);
        assert_eq!(cp.guard, snap.guard);
        assert_eq!(cp.rng, snap.rng);
        assert_eq!(cp.opt.algorithm, "adam");
        assert_eq!(cp.opt.counter, 17);
        assert_eq!(cp.opt.buffers.len(), 2);
        let (m_name, m_slots) = &cp.opt.buffers[0];
        assert_eq!(m_name, "m");
        assert_eq!(m_slots[0].as_ref().unwrap().data(), &[1.5, -2.25, 0.0]);
        assert!(m_slots[1].is_none());
        let (n_models, avg) = cp.averager.as_ref().unwrap();
        assert_eq!(*n_models, 2);
        assert_eq!(avg[0].data(), &[3.5, 4.5]);
        assert_eq!(cp.params.len(), 2);
        assert_eq!(cp.params[0].0, "w");
        assert_eq!(cp.params[0].1.data(), ps.get(0).data());
        assert_eq!(cp.params[0].1.shape(), &[2, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_architecture_is_reported_by_field() {
        let arch = AgcrnConfig::new(5, 3).with_capacity(8, 2, 1);
        let ps = ParamSet::new();
        let snap =
            StageSnapshot { averager: None, stage: Stage::Pretrain, ..sample_snapshot(&arch, &ps) };
        let dir = std::env::temp_dir().join("deepstuq_ckpt_arch_test");
        let path = dir.join("train.ckpt");
        save_checkpoint(&snap, &path).unwrap();
        let cp = load_checkpoint(&path).unwrap();
        let other = AgcrnConfig::new(6, 3).with_capacity(8, 2, 1);
        let err = cp.validate_arch(&other).unwrap_err();
        assert!(err.contains("architecture mismatch: n_nodes"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_is_detected() {
        let arch = AgcrnConfig::new(4, 2);
        let ps = ParamSet::new();
        let snap = StageSnapshot { averager: None, ..sample_snapshot(&arch, &ps) };
        let dir = std::env::temp_dir().join("deepstuq_ckpt_corrupt_test");
        let path = dir.join("train.ckpt");
        save_checkpoint(&snap, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
