//! Monte-Carlo dropout inference and uncertainty combination (Eq. 19).

use stuq_models::{Forecaster, Prediction};
use stuq_nn::layers::FwdCtx;
use stuq_nn::loss::{LOGVAR_MAX, LOGVAR_MIN};
use stuq_tensor::{StuqRng, Tape, Tensor};

/// The result of Monte-Carlo inference, in *normalised* units.
///
/// The decomposition follows paper Eq. 7 / Eq. 19: aleatoric variance is the
/// MC average of the per-sample predicted variances; epistemic variance is
/// the sample variance of the per-sample predicted means.
#[derive(Clone, Debug)]
pub struct GaussianForecast {
    /// Predictive mean `μ̂` (Eq. 19a), shape `[N, τ]`.
    pub mu: Tensor,
    /// Mean aleatoric variance (before temperature scaling), `[N, τ]`.
    pub var_aleatoric: Tensor,
    /// Epistemic variance (unbiased across MC samples; zero for a single
    /// deterministic pass), `[N, τ]`.
    pub var_epistemic: Tensor,
    /// Number of Monte-Carlo samples used.
    pub n_samples: usize,
}

impl GaussianForecast {
    /// Total predictive variance under temperature `t` (Eq. 19b):
    /// `σ̂² = σ²_aleatoric / T² + σ²_epistemic`.
    ///
    /// The paper's Eq. 19b prints `1/T`; we use `1/T²`, which is what the
    /// calibration objective (Eq. 17–18, scaling `σ → σ/T`) implies for the
    /// variance. See EXPERIMENTS.md.
    pub fn var_total(&self, t: f32) -> Tensor {
        assert!(t > 0.0, "temperature must be positive");
        let inv_t2 = 1.0 / (t * t);
        self.var_aleatoric.scale(inv_t2).add(&self.var_epistemic)
    }

    /// Total predictive standard deviation under temperature `t`.
    pub fn sigma_total(&self, t: f32) -> Tensor {
        self.var_total(t).map(f32::sqrt)
    }
}

fn clamped_var(logvar: &Tensor) -> Tensor {
    logvar.map(|lv| lv.clamp(LOGVAR_MIN, LOGVAR_MAX).exp())
}

/// One stochastic forward pass: `(μ_j, σ²_j?)` in normalised units.
type SamplePass = (Tensor, Option<Tensor>);

/// Combines per-sample passes into the Eq. 19 decomposition.
///
/// Accumulation runs in *sample-index order* — together with the
/// per-sample RNG streams this is what makes the parallel inference paths
/// bit-identical across thread counts.
pub(crate) fn reduce_samples(samples: Vec<SamplePass>, shape: [usize; 2]) -> GaussianForecast {
    reduce_sample_slice(&samples, shape)
}

/// Slice form of [`reduce_samples`], usable on a growing prefix.
pub(crate) fn reduce_sample_slice(samples: &[SamplePass], shape: [usize; 2]) -> GaussianForecast {
    let n = samples.len();
    let mut mean = Tensor::zeros(&shape);
    let mut mean_sq = Tensor::zeros(&shape);
    let mut var_sum = Tensor::zeros(&shape);
    for (mu_j, var_j) in samples {
        if let Some(v) = var_j {
            var_sum.add_assign(v);
        }
        mean_sq.add_assign(&mu_j.mul(mu_j));
        mean.add_assign(mu_j);
    }
    let inv_n = 1.0 / n as f32;
    mean = mean.scale(inv_n);
    let var_aleatoric = var_sum.scale(inv_n);
    // Unbiased sample variance of the means (Eq. 19b, second term).
    let var_epistemic = if n > 1 {
        let correction = n as f32 / (n as f32 - 1.0);
        mean_sq.scale(inv_n).sub(&mean.mul(&mean)).scale(correction).map(|v| v.max(0.0))
    } else {
        Tensor::zeros(&shape)
    };
    GaussianForecast { mu: mean, var_aleatoric, var_epistemic, n_samples: n }
}

/// Forks one independent RNG stream per sample from the caller's generator.
///
/// The fork happens *before* the fan-out, on the calling thread, so the set
/// of streams is a pure function of the caller's RNG state — sample `j`
/// consumes stream `j` no matter which worker executes it or how many
/// workers exist.
pub(crate) fn fork_streams(rng: &mut StuqRng, n: usize) -> Vec<StuqRng> {
    (0..n).map(|i| rng.fork(i as u64)).collect()
}

/// One forward pass on its own tape. `deterministic` selects the eval
/// context (the single-sample `DeepSTUQ/S` mode); otherwise dropout stays
/// live ([`FwdCtx::mc_sample`]). Every MC entry point funnels through here,
/// which is what makes the solo, anytime, and batched paths bit-identical
/// for the same stream.
fn run_pass(
    model: &dyn Forecaster,
    x: &Tensor,
    cov: Option<&Tensor>,
    stream: &StuqRng,
    deterministic: bool,
) -> SamplePass {
    let mut r = stream.clone();
    let mut tape = Tape::new();
    let mut ctx = if deterministic { FwdCtx::eval(&mut r) } else { FwdCtx::mc_sample(&mut r) };
    let pred = model.forward_with_cov(&mut tape, x, cov, &mut ctx);
    let mu_j = tape.value(pred.point()).clone();
    let var_j = if let Prediction::Gaussian { logvar, .. } = pred {
        Some(clamped_var(tape.value(logvar)))
    } else {
        None
    };
    (mu_j, var_j)
}

/// Runs `n_samples` stochastic forward passes (`n_samples == 1` runs a single
/// deterministic pass — the `DeepSTUQ/S` mode of Table III).
///
/// Works with Gaussian heads (aleatoric + epistemic) and point heads
/// (epistemic only — the MCDO / FGE baselines). Samples are data-parallel
/// across the global `stuq-parallel` pool; see [`reduce_samples`] for the
/// determinism contract.
pub fn mc_forecast(
    model: &dyn Forecaster,
    x: &Tensor,
    n_samples: usize,
    rng: &mut StuqRng,
) -> GaussianForecast {
    mc_forecast_with_cov(model, x, None, n_samples, rng)
}

/// [`mc_forecast`] with optional exogenous covariates (`[t_h, c]`).
pub fn mc_forecast_with_cov(
    model: &dyn Forecaster,
    x: &Tensor,
    cov: Option<&Tensor>,
    n_samples: usize,
    rng: &mut StuqRng,
) -> GaussianForecast {
    assert!(n_samples >= 1, "need at least one sample");
    // Telemetry (pure observer): count samples at summary, time the fan-out
    // at trace to derive MC samples/s.
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().mc_samples.add(n_samples as u64);
    }
    let t0 = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let shape = [model.n_nodes(), model.horizon()];
    let streams = fork_streams(rng, n_samples);
    let samples =
        stuq_parallel::par_map(n_samples, |j| run_pass(model, x, cov, &streams[j], n_samples == 1));
    if let Some(t0) = t0 {
        let secs = t0.elapsed().as_secs_f64();
        let m = stuq_obs::metrics();
        m.mc_forecast_seconds.record(secs);
        // The whole fan-out is one sample batch from the tracing view.
        m.mc_sample_seconds.record(secs);
        if secs > 0.0 {
            m.mc_samples_per_sec.set(n_samples as f64 / secs);
        }
    }
    reduce_samples(samples, shape)
}

/// Decides, between MC forward passes, whether the sampler may draw another
/// sample.
///
/// [`mc_forecast_anytime`] consults the budget once before every pass beyond
/// the floor; returning `false` stops sampling with however many passes have
/// completed. Implementations are typically deadline clocks (the serving
/// runtime's remaining-budget check), but anything monotone works.
pub trait SampleBudget {
    /// May one more pass run, given that `completed` passes have finished?
    fn allow(&mut self, completed: usize) -> bool;
}

/// A budget that never exhausts: every requested sample runs.
pub struct UnlimitedBudget;

impl SampleBudget for UnlimitedBudget {
    fn allow(&mut self, _completed: usize) -> bool {
        true
    }
}

/// Result of an anytime MC run: the reduced forecast over however many
/// samples the budget admitted, plus the originally requested count.
#[derive(Clone, Debug)]
pub struct AnytimeForecast {
    /// Eq. 19 decomposition over the completed passes
    /// (`forecast.n_samples` is the number actually used).
    pub forecast: GaussianForecast,
    /// Samples the caller asked for.
    pub samples_requested: usize,
}

impl AnytimeForecast {
    /// True when the budget cut the run short of the requested count.
    pub fn degraded(&self) -> bool {
        self.forecast.n_samples < self.samples_requested
    }
}

/// [`mc_forecast_with_cov`] with a cooperative deadline budget: the sampling
/// loop checks `budget` between forward passes and returns early with the
/// samples completed so far, never fewer than `floor` (clamped to
/// `1..=n_samples`).
///
/// Two determinism guarantees, both load-bearing for the serving runtime:
///
/// - the per-sample RNG streams are forked from `rng` *up front* for the full
///   requested count, so the caller's generator advances identically whether
///   or not the budget cuts the run short, and sample `j` sees the same
///   stream as the batch path would give it;
/// - an uncut run is bit-identical to [`mc_forecast_with_cov`] for the same
///   inputs (the pass mode is keyed on the *requested* count, matching the
///   batch path, and the reduction is the same sample-index-ordered fold).
///
/// The per-pass loop is sequential; each forward pass still fans out across
/// the kernel-level `stuq-parallel` pool, so results stay bit-identical for
/// any `STUQ_THREADS`. When `observer` is given it is called after every
/// completed pass with the reduction over the prefix so far — the serving
/// layer derives its monotone variance envelope from these snapshots.
#[allow(clippy::too_many_arguments)] // mirrors mc_forecast_with_cov plus the budget knobs
pub fn mc_forecast_anytime(
    model: &dyn Forecaster,
    x: &Tensor,
    cov: Option<&Tensor>,
    n_samples: usize,
    floor: usize,
    budget: &mut dyn SampleBudget,
    rng: &mut StuqRng,
    mut observer: Option<&mut dyn FnMut(&GaussianForecast)>,
) -> AnytimeForecast {
    assert!(n_samples >= 1, "need at least one sample");
    let floor = floor.clamp(1, n_samples);
    let shape = [model.n_nodes(), model.horizon()];
    let streams = fork_streams(rng, n_samples);
    let t0 = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let mut samples: Vec<SamplePass> = Vec::with_capacity(n_samples);
    for (j, stream) in streams.iter().enumerate() {
        if j >= floor && !budget.allow(j) {
            break;
        }
        samples.push(run_pass(model, x, cov, stream, n_samples == 1));
        if let Some(obs) = observer.as_deref_mut() {
            obs(&reduce_sample_slice(&samples, shape));
        }
    }
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().mc_samples.add(samples.len() as u64);
    }
    if let Some(t0) = t0 {
        let secs = t0.elapsed().as_secs_f64();
        let m = stuq_obs::metrics();
        m.mc_forecast_seconds.record(secs);
        if secs > 0.0 {
            m.mc_samples_per_sec.set(samples.len() as f64 / secs);
        }
    }
    AnytimeForecast { forecast: reduce_samples(samples, shape), samples_requested: n_samples }
}

/// One request's slot in a batched MC call: its input window, covariates,
/// and per-item sampling knobs. The item *owns* its RNG — the batch entry
/// points fork per-sample streams from it exactly as the solo paths do, so
/// an item's result is bit-identical to calling [`mc_forecast_with_cov`] /
/// [`mc_forecast_anytime`] alone with the same generator.
pub struct McBatchItem<'a> {
    /// Input window `[t_h, N]`, normalised units.
    pub x: &'a Tensor,
    /// Optional exogenous covariates `[t_h, c]`.
    pub cov: Option<&'a Tensor>,
    /// Requested MC samples (also keys the pass mode: 1 → deterministic).
    pub n_samples: usize,
    /// Degradation floor (clamped to `1..=n_samples`).
    pub floor: usize,
    /// Per-item generator; streams are forked from it up front for the full
    /// requested count, so it advances identically cut or uncut.
    pub rng: StuqRng,
}

/// Per-item form of [`SampleBudget`] for batched anytime runs: may item
/// `item` run one more pass, given `completed` finished passes?
///
/// [`mc_forecast_anytime_batch`] consults the budget in *item order* within
/// each round, once per decision — with a clock-backed budget and a logical
/// clock, the read sequence (and therefore every cut point) is a pure
/// function of the batch composition.
pub trait BatchSampleBudget {
    /// May one more pass run for `item`?
    fn allow(&mut self, item: usize, completed: usize) -> bool;
}

impl BatchSampleBudget for UnlimitedBudget {
    fn allow(&mut self, _item: usize, _completed: usize) -> bool {
        true
    }
}

/// Per-item prefix observer for [`mc_forecast_anytime_batch`]: fires with
/// `(item index, reduction over that item's completed passes so far)`.
pub type BatchObserver<'a> = &'a mut dyn FnMut(usize, &GaussianForecast);

/// Batched [`mc_forecast_with_cov`]: runs every item's full sample fan-out
/// as one flattened `(item × sample)` parallel map.
///
/// Each item's streams are forked from its own RNG before the fan-out and
/// its passes are reduced in sample-index order, so item `i`'s result is
/// bit-identical to a solo [`mc_forecast_with_cov`] call — batching changes
/// wall-clock parallelism, never bytes.
pub fn mc_forecast_batch(
    model: &dyn Forecaster,
    items: &mut [McBatchItem<'_>],
) -> Vec<GaussianForecast> {
    let shape = [model.n_nodes(), model.horizon()];
    // (item index, stream, deterministic?) per flattened pass, item-major.
    let mut flat: Vec<(usize, StuqRng, bool)> = Vec::new();
    for (i, item) in items.iter_mut().enumerate() {
        assert!(item.n_samples >= 1, "need at least one sample per item");
        let single = item.n_samples == 1;
        for stream in fork_streams(&mut item.rng, item.n_samples) {
            flat.push((i, stream, single));
        }
    }
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().mc_samples.add(flat.len() as u64);
    }
    let t0 = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let items_ro: &[McBatchItem<'_>] = items;
    let passes = stuq_parallel::par_map(flat.len(), |k| {
        let (i, stream, single) = &flat[k];
        run_pass(model, items_ro[*i].x, items_ro[*i].cov, stream, *single)
    });
    if let Some(t0) = t0 {
        let secs = t0.elapsed().as_secs_f64();
        let m = stuq_obs::metrics();
        m.mc_forecast_seconds.record(secs);
        m.mc_sample_seconds.record(secs);
        if secs > 0.0 {
            m.mc_samples_per_sec.set(flat.len() as f64 / secs);
        }
    }
    // Un-flatten: passes come back in item-major order.
    let mut out = Vec::with_capacity(items.len());
    let mut it = passes.into_iter();
    for item in items.iter() {
        let samples: Vec<SamplePass> = it.by_ref().take(item.n_samples).collect();
        out.push(reduce_samples(samples, shape));
    }
    out
}

/// Batched [`mc_forecast_anytime`]: round `j` runs pass `j` for every item
/// still admitted, as one parallel map per round.
///
/// Per-item semantics match the solo path exactly: pass `j` runs iff
/// `j < n_samples` and (`j < floor` or the budget allows it); a single
/// denial retires the item for good; `observer` fires after each of an
/// item's completed passes with the reduction over its prefix so far.
/// Budget decisions are made in item order within a round, so with a
/// logical clock the cut points are deterministic — though *different*
/// from the solo path's, whose clock reads are not interleaved across
/// items. Uncut items are bit-identical to solo runs; that is the
/// serving runtime's batched-vs-unbatched byte-identity guarantee.
pub fn mc_forecast_anytime_batch(
    model: &dyn Forecaster,
    items: &mut [McBatchItem<'_>],
    budget: &mut dyn BatchSampleBudget,
    mut observer: Option<BatchObserver<'_>>,
) -> Vec<AnytimeForecast> {
    let shape = [model.n_nodes(), model.horizon()];
    let streams: Vec<Vec<StuqRng>> = items
        .iter_mut()
        .map(|item| {
            assert!(item.n_samples >= 1, "need at least one sample per item");
            fork_streams(&mut item.rng, item.n_samples)
        })
        .collect();
    let t0 = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let mut samples: Vec<Vec<SamplePass>> = items.iter().map(|_| Vec::new()).collect();
    let mut active: Vec<bool> = vec![true; items.len()];
    let mut round = 0;
    loop {
        let mut runners: Vec<usize> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if !active[i] {
                continue;
            }
            if round >= item.n_samples {
                active[i] = false;
                continue;
            }
            let floor = item.floor.clamp(1, item.n_samples);
            if round >= floor && !budget.allow(i, round) {
                active[i] = false;
                continue;
            }
            runners.push(i);
        }
        if runners.is_empty() {
            break;
        }
        let items_ro: &[McBatchItem<'_>] = items;
        let round_t0 = t0.is_some().then(std::time::Instant::now);
        let passes = stuq_parallel::par_map(runners.len(), |k| {
            let i = runners[k];
            let item = &items_ro[i];
            run_pass(model, item.x, item.cov, &streams[i][round], item.n_samples == 1)
        });
        if let Some(rt0) = round_t0 {
            // One round = one MC sample batch (pass `round` for every still-
            // admitted item): the per-batch distribution `stuq trace` and the
            // serving timeline attribute group compute to.
            stuq_obs::metrics().mc_sample_seconds.record(rt0.elapsed().as_secs_f64());
        }
        for (k, pass) in passes.into_iter().enumerate() {
            let i = runners[k];
            samples[i].push(pass);
            if let Some(obs) = observer.as_deref_mut() {
                obs(i, &reduce_sample_slice(&samples[i], shape));
            }
        }
        round += 1;
    }
    let total: usize = samples.iter().map(Vec::len).sum();
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().mc_samples.add(total as u64);
    }
    if let Some(t0) = t0 {
        let secs = t0.elapsed().as_secs_f64();
        let m = stuq_obs::metrics();
        m.mc_forecast_seconds.record(secs);
        if secs > 0.0 {
            m.mc_samples_per_sec.set(total as f64 / secs);
        }
    }
    samples
        .into_iter()
        .zip(items.iter())
        .map(|(s, item)| AnytimeForecast {
            forecast: reduce_samples(s, shape),
            samples_requested: item.n_samples,
        })
        .collect()
}

/// Ensemble combination for snapshot ensembles (FGE): runs one deterministic
/// pass per snapshot, data-parallel with one model clone per snapshot.
///
/// Returns the same decomposition as [`mc_forecast`], with the across-model
/// variance playing the epistemic role. On return `model` holds the *last*
/// snapshot, matching the sequential implementation's post-condition.
pub fn ensemble_forecast<M: Forecaster + Clone>(
    model: &mut M,
    snapshots: &[Vec<Tensor>],
    x: &Tensor,
    rng: &mut StuqRng,
) -> GaussianForecast {
    assert!(!snapshots.is_empty(), "need at least one snapshot");
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().mc_samples.add(snapshots.len() as u64);
    }
    let shape = [model.n_nodes(), model.horizon()];
    let streams = fork_streams(rng, snapshots.len());
    let proto: &M = model;
    let samples = stuq_parallel::par_map(snapshots.len(), |j| {
        let mut member = proto.clone();
        member.params_mut().load_snapshot(&snapshots[j]);
        let mut r = streams[j].clone();
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&mut r);
        let pred = member.forward(&mut tape, x, &mut ctx);
        let mu_j = tape.value(pred.point()).clone();
        let var_j = if let Prediction::Gaussian { logvar, .. } = pred {
            Some(clamped_var(tape.value(logvar)))
        } else {
            None
        };
        (mu_j, var_j)
    });
    model.params_mut().load_snapshot(snapshots.last().expect("non-empty"));
    reduce_samples(samples, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_models::{Agcrn, AgcrnConfig, HeadKind};

    fn model_with_dropout(head: HeadKind, p: f32, rng: &mut StuqRng) -> Agcrn {
        let cfg = AgcrnConfig::new(5, 3).with_capacity(8, 3, 1).with_dropout(p, p).with_head(head);
        Agcrn::new(cfg, rng)
    }

    #[test]
    fn single_sample_is_deterministic_with_zero_epistemic() {
        let mut rng = StuqRng::new(1);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let f1 = mc_forecast(&model, &x, 1, &mut rng);
        let f2 = mc_forecast(&model, &x, 1, &mut rng);
        assert_eq!(f1.mu.data(), f2.mu.data(), "n=1 disables dropout");
        assert_eq!(f1.var_epistemic.sum(), 0.0);
        assert!(f1.var_aleatoric.min() > 0.0);
    }

    #[test]
    fn mc_sampling_produces_positive_epistemic_variance() {
        let mut rng = StuqRng::new(2);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let f = mc_forecast(&model, &x, 8, &mut rng);
        assert!(f.var_epistemic.mean() > 0.0, "dropout must create spread");
        assert!(f.var_epistemic.min() >= 0.0);
    }

    #[test]
    fn point_head_yields_epistemic_only() {
        let mut rng = StuqRng::new(3);
        let model = model_with_dropout(HeadKind::Point, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let f = mc_forecast(&model, &x, 6, &mut rng);
        assert_eq!(f.var_aleatoric.sum(), 0.0);
        assert!(f.var_epistemic.mean() > 0.0);
    }

    #[test]
    fn temperature_scales_only_aleatoric_part() {
        let mut rng = StuqRng::new(4);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let f = mc_forecast(&model, &x, 8, &mut rng);
        let v1 = f.var_total(1.0);
        let v2 = f.var_total(2.0);
        // At T=2 the aleatoric part shrinks by 4×; epistemic unchanged.
        let expect = f.var_aleatoric.scale(0.25).add(&f.var_epistemic);
        for (a, b) in v2.data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(v1.mean() > v2.mean());
    }

    #[test]
    fn more_samples_stabilise_the_mean() {
        // The MC mean at n=16 from two different RNG streams should agree
        // more closely than at n=2 (Fig. 11's mechanism).
        let mut rng = StuqRng::new(5);
        let model = model_with_dropout(HeadKind::Gaussian, 0.4, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let spread = |n: usize| {
            let mut r1 = StuqRng::new(100);
            let mut r2 = StuqRng::new(200);
            let f1 = mc_forecast(&model, &x, n, &mut r1);
            let f2 = mc_forecast(&model, &x, n, &mut r2);
            f1.mu.sub(&f2.mu).norm()
        };
        assert!(spread(32) < spread(2), "MC mean must concentrate with more samples");
    }

    #[test]
    fn mc_forecast_is_bit_identical_across_thread_counts() {
        // The fixed-seed forecast must not depend on how many threads run
        // the samples: forked streams + ordered reduction (DESIGN.md
        // "Threading & determinism").
        let mut rng = StuqRng::new(11);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let par = mc_forecast(&model, &x, 8, &mut StuqRng::new(42));
        let ser = stuq_parallel::with_serial(|| mc_forecast(&model, &x, 8, &mut StuqRng::new(42)));
        assert_eq!(par.mu.data(), ser.mu.data());
        assert_eq!(par.var_aleatoric.data(), ser.var_aleatoric.data());
        assert_eq!(par.var_epistemic.data(), ser.var_epistemic.data());
    }

    /// Denies everything: the anytime loop must stop exactly at the floor.
    struct DenyAll;
    impl SampleBudget for DenyAll {
        fn allow(&mut self, _c: usize) -> bool {
            false
        }
    }

    /// Admits passes while `completed < cap`.
    struct CapBudget(usize);
    impl SampleBudget for CapBudget {
        fn allow(&mut self, completed: usize) -> bool {
            completed < self.0
        }
    }

    #[test]
    fn anytime_uncut_matches_mc_forecast_bitwise() {
        let mut rng = StuqRng::new(21);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let full = mc_forecast(&model, &x, 8, &mut StuqRng::new(7));
        let any = mc_forecast_anytime(
            &model,
            &x,
            None,
            8,
            1,
            &mut UnlimitedBudget,
            &mut StuqRng::new(7),
            None,
        );
        assert!(!any.degraded());
        assert_eq!(any.forecast.n_samples, 8);
        assert_eq!(any.forecast.mu.data(), full.mu.data());
        assert_eq!(any.forecast.var_aleatoric.data(), full.var_aleatoric.data());
        assert_eq!(any.forecast.var_epistemic.data(), full.var_epistemic.data());
    }

    #[test]
    fn anytime_never_goes_below_the_floor() {
        let mut rng = StuqRng::new(22);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        for floor in [1usize, 3, 8] {
            let any = mc_forecast_anytime(
                &model,
                &x,
                None,
                8,
                floor,
                &mut DenyAll,
                &mut StuqRng::new(7),
                None,
            );
            assert_eq!(any.forecast.n_samples, floor, "DenyAll must stop exactly at the floor");
            assert_eq!(any.samples_requested, 8);
            assert_eq!(any.degraded(), floor < 8);
        }
        // An over-large floor clamps to the requested count.
        let any =
            mc_forecast_anytime(&model, &x, None, 4, 99, &mut DenyAll, &mut StuqRng::new(7), None);
        assert_eq!(any.forecast.n_samples, 4);
    }

    #[test]
    fn anytime_prefix_equals_batch_prefix_and_rng_advances_identically() {
        // A budget-cut run must (a) reduce exactly the first k streams of the
        // batch path and (b) leave the caller's RNG in the same state as an
        // uncut run, so downstream draws don't depend on load.
        let mut rng = StuqRng::new(23);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let mut r_cut = StuqRng::new(9);
        let cut = mc_forecast_anytime(&model, &x, None, 8, 1, &mut CapBudget(3), &mut r_cut, None);
        assert_eq!(cut.forecast.n_samples, 3);
        assert!(cut.degraded());
        let mut r_full = StuqRng::new(9);
        let full = mc_forecast(&model, &x, 8, &mut r_full);
        assert_ne!(cut.forecast.mu.data(), full.mu.data(), "3-sample mean differs from 8-sample");
        let a = Tensor::randn(&[3, 3], 1.0, &mut r_cut);
        let b = Tensor::randn(&[3, 3], 1.0, &mut r_full);
        assert_eq!(a.data(), b.data(), "caller RNG state must be budget-independent");
    }

    #[test]
    fn anytime_observer_sees_every_prefix() {
        let mut rng = StuqRng::new(24);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let mut seen = Vec::new();
        let mut obs = |g: &GaussianForecast| seen.push(g.n_samples);
        let any = mc_forecast_anytime(
            &model,
            &x,
            None,
            6,
            1,
            &mut UnlimitedBudget,
            &mut StuqRng::new(7),
            Some(&mut obs),
        );
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(any.forecast.n_samples, 6);
    }

    #[test]
    fn batch_items_match_solo_runs_bitwise() {
        // Co-batching must never change bytes: each item of a mixed batch
        // (different seeds, sample counts, inputs) reduces to exactly the
        // solo-path result for the same generator.
        let mut rng = StuqRng::new(31);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let xa = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let xb = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let mut items = vec![
            McBatchItem { x: &xa, cov: None, n_samples: 8, floor: 1, rng: StuqRng::new(7) },
            McBatchItem { x: &xb, cov: None, n_samples: 3, floor: 1, rng: StuqRng::new(9) },
            McBatchItem { x: &xa, cov: None, n_samples: 1, floor: 1, rng: StuqRng::new(7) },
        ];
        let batched = mc_forecast_batch(&model, &mut items);
        let solo = [
            mc_forecast_with_cov(&model, &xa, None, 8, &mut StuqRng::new(7)),
            mc_forecast_with_cov(&model, &xb, None, 3, &mut StuqRng::new(9)),
            mc_forecast_with_cov(&model, &xa, None, 1, &mut StuqRng::new(7)),
        ];
        for (b, s) in batched.iter().zip(&solo) {
            assert_eq!(b.mu.data(), s.mu.data());
            assert_eq!(b.var_aleatoric.data(), s.var_aleatoric.data());
            assert_eq!(b.var_epistemic.data(), s.var_epistemic.data());
            assert_eq!(b.n_samples, s.n_samples);
        }
    }

    #[test]
    fn batch_is_bit_identical_across_thread_counts() {
        let mut rng = StuqRng::new(32);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let run = || {
            let mut items = vec![
                McBatchItem { x: &x, cov: None, n_samples: 6, floor: 1, rng: StuqRng::new(1) },
                McBatchItem { x: &x, cov: None, n_samples: 4, floor: 1, rng: StuqRng::new(2) },
            ];
            mc_forecast_batch(&model, &mut items)
        };
        let par = run();
        let ser = stuq_parallel::with_serial(run);
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.mu.data(), b.mu.data());
            assert_eq!(a.var_epistemic.data(), b.var_epistemic.data());
        }
    }

    /// Per-item caps for the batched budget.
    struct CapPerItem(Vec<usize>);
    impl BatchSampleBudget for CapPerItem {
        fn allow(&mut self, item: usize, completed: usize) -> bool {
            completed < self.0[item]
        }
    }

    #[test]
    fn anytime_batch_uncut_matches_solo_anytime_bitwise() {
        let mut rng = StuqRng::new(33);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let mut items = vec![
            McBatchItem { x: &x, cov: None, n_samples: 6, floor: 2, rng: StuqRng::new(7) },
            McBatchItem { x: &x, cov: None, n_samples: 6, floor: 2, rng: StuqRng::new(8) },
        ];
        let batched = mc_forecast_anytime_batch(&model, &mut items, &mut UnlimitedBudget, None);
        for (i, seed) in [7u64, 8].iter().enumerate() {
            let solo = mc_forecast_anytime(
                &model,
                &x,
                None,
                6,
                2,
                &mut UnlimitedBudget,
                &mut StuqRng::new(*seed),
                None,
            );
            assert!(!batched[i].degraded());
            assert_eq!(batched[i].forecast.mu.data(), solo.forecast.mu.data());
            assert_eq!(
                batched[i].forecast.var_epistemic.data(),
                solo.forecast.var_epistemic.data()
            );
        }
    }

    #[test]
    fn anytime_batch_honours_per_item_floors_and_cuts() {
        let mut rng = StuqRng::new(34);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let mut items = vec![
            McBatchItem { x: &x, cov: None, n_samples: 8, floor: 2, rng: StuqRng::new(1) },
            McBatchItem { x: &x, cov: None, n_samples: 8, floor: 4, rng: StuqRng::new(2) },
            McBatchItem { x: &x, cov: None, n_samples: 8, floor: 2, rng: StuqRng::new(3) },
        ];
        // Item 0 cut at 5, item 1 denied everywhere (floor 4 holds), item 2 uncut.
        let out =
            mc_forecast_anytime_batch(&model, &mut items, &mut CapPerItem(vec![5, 0, 8]), None);
        assert_eq!(out[0].forecast.n_samples, 5);
        assert!(out[0].degraded());
        assert_eq!(out[1].forecast.n_samples, 4, "denied items stop exactly at their floor");
        assert_eq!(out[2].forecast.n_samples, 8);
        assert!(!out[2].degraded());
        // A cut item reduces exactly the first k solo streams.
        let solo = mc_forecast_anytime(
            &model,
            &x,
            None,
            8,
            1,
            &mut CapBudget(5),
            &mut StuqRng::new(1),
            None,
        );
        assert_eq!(out[0].forecast.mu.data(), solo.forecast.mu.data());
    }

    #[test]
    fn anytime_batch_observer_sees_per_item_prefixes() {
        let mut rng = StuqRng::new(35);
        let model = model_with_dropout(HeadKind::Gaussian, 0.3, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let mut items = vec![
            McBatchItem { x: &x, cov: None, n_samples: 3, floor: 1, rng: StuqRng::new(1) },
            McBatchItem { x: &x, cov: None, n_samples: 2, floor: 1, rng: StuqRng::new(2) },
        ];
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut obs = |i: usize, g: &GaussianForecast| seen.push((i, g.n_samples));
        mc_forecast_anytime_batch(&model, &mut items, &mut UnlimitedBudget, Some(&mut obs));
        assert_eq!(seen, vec![(0, 1), (1, 1), (0, 2), (1, 2), (0, 3)]);
    }

    #[test]
    fn ensemble_variance_zero_for_identical_snapshots() {
        let mut rng = StuqRng::new(6);
        let mut model = model_with_dropout(HeadKind::Point, 0.0, &mut rng);
        let snap = model.params().snapshot();
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let f = ensemble_forecast(&mut model, &[snap.clone(), snap], &x, &mut rng);
        assert!(f.var_epistemic.max() < 1e-10);
    }
}
