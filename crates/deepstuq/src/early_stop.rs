//! Validation-based model selection for pre-training.
//!
//! The paper trains a fixed 100 epochs; for practical use (and the scaled
//! harness runs) it is useful to track validation loss and return the best
//! snapshot, optionally stopping early when no improvement is seen for
//! `patience` epochs. This stage slots in front of AWA re-training without
//! changing any of the paper's algorithms.

use crate::config::TrainConfig;
use crate::error::TrainError;
use crate::trainer::{eval_loss, train_epoch, LossKind};
use stuq_models::Forecaster;
use stuq_nn::opt::Adam;
use stuq_tensor::{StuqRng, Tensor};
use stuq_traffic::{Split, SplitDataset};

/// Outcome of [`train_with_validation`].
#[derive(Debug)]
pub struct ValidatedTraining {
    /// Per-epoch `(train_loss, val_loss)` history.
    pub history: Vec<(f64, f64)>,
    /// Epoch index (0-based) whose weights were kept.
    pub best_epoch: usize,
    /// Validation loss of the kept weights.
    pub best_val_loss: f64,
    /// True when training stopped before `cfg.epochs`.
    pub stopped_early: bool,
}

/// Trains like [`crate::trainer::train`] but evaluates the validation split
/// after every epoch (with stride `val_stride`), restores the best-validation
/// weights at the end, and stops after `patience` epochs without improvement
/// (`patience == 0` disables early stopping but still restores the best).
pub fn train_with_validation(
    model: &mut dyn Forecaster,
    ds: &SplitDataset,
    cfg: &TrainConfig,
    kind: LossKind,
    patience: usize,
    val_stride: usize,
    rng: &mut StuqRng,
) -> Result<ValidatedTraining, TrainError> {
    let mut opt = Adam::new(cfg.lr, cfg.weight_decay);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best: Option<(usize, f64, Vec<Tensor>)> = None;
    let mut since_best = 0usize;
    let mut stopped_early = false;

    for epoch in 0..cfg.epochs {
        let train_loss =
            train_epoch(model, ds, cfg.batch_size, kind, &mut opt, cfg.grad_clip, rng, None)?;
        let val_loss = eval_loss(model, ds, Split::Val, kind, val_stride, rng)?;
        history.push((train_loss, val_loss));
        let improved = best.as_ref().is_none_or(|(_, b, _)| val_loss < *b);
        if improved {
            best = Some((epoch, val_loss, model.params().snapshot()));
            since_best = 0;
        } else {
            since_best += 1;
            if patience > 0 && since_best >= patience {
                stopped_early = true;
                break;
            }
        }
    }
    let (best_epoch, best_val_loss, snapshot) = best.expect("at least one epoch ran");
    model.params_mut().load_snapshot(&snapshot);
    Ok(ValidatedTraining { history, best_epoch, best_val_loss, stopped_early })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_models::{Agcrn, AgcrnConfig};
    use stuq_traffic::Preset;

    fn setup(seed: u64) -> (SplitDataset, Agcrn, StuqRng) {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(seed);
        let mut rng = StuqRng::new(seed);
        let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(10, 3, 1)
            .with_dropout(0.0, 0.0);
        let model = Agcrn::new(cfg, &mut rng);
        (ds, model, rng)
    }

    #[test]
    fn keeps_the_best_validation_snapshot() {
        let (ds, mut model, mut rng) = setup(71);
        let cfg = TrainConfig { epochs: 3, batch_size: 8, ..Default::default() };
        let kind = LossKind::Combined { lambda: 0.1 };
        let out = train_with_validation(&mut model, &ds, &cfg, kind, 0, 13, &mut rng).unwrap();
        assert_eq!(out.history.len(), 3);
        assert!(out.best_epoch < 3);
        // The restored weights reproduce the recorded best val loss.
        let val_now = eval_loss(&model, &ds, Split::Val, kind, 13, &mut rng).unwrap();
        assert!(
            (val_now - out.best_val_loss).abs() < 1e-9,
            "restored {val_now} vs recorded {}",
            out.best_val_loss
        );
        // And it is the minimum of the history.
        let min_hist = out.history.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        assert!((out.best_val_loss - min_hist).abs() < 1e-12);
    }

    #[test]
    fn patience_stops_training() {
        // With patience 1, training can never run more than
        // best_epoch + 2 epochs.
        let (ds, mut model, mut rng) = setup(72);
        let cfg = TrainConfig { epochs: 6, batch_size: 8, ..Default::default() };
        let kind = LossKind::Combined { lambda: 0.1 };
        let out = train_with_validation(&mut model, &ds, &cfg, kind, 1, 13, &mut rng).unwrap();
        assert!(out.history.len() <= out.best_epoch + 2);
        if out.history.len() < 6 {
            assert!(out.stopped_early);
        }
    }
}
