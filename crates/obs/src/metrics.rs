//! Typed, lock-free metric primitives and the workspace metric catalog.
//!
//! Three primitives, all const-constructible so hot paths touch plain
//! statics (no registration, no hashing, no locks):
//!
//! * [`Counter`] — a monotonically increasing `u64`;
//! * [`Gauge`] — a last-write-wins `f64` (stored as bits in an `AtomicU64`);
//! * [`Histogram`] — log₂-bucketed positive samples with exact count / sum /
//!   min / max and bucket-interpolated quantiles. Non-finite and
//!   non-positive samples are **rejected** (counted separately) — a NaN loss
//!   must never poison a latency distribution.
//!
//! [`Metrics`] is the fixed catalog every crate in the workspace records
//! into, reachable via [`crate::metrics`]. The catalog is deliberately
//! closed: adding a metric means adding a field here plus a line in
//! [`Metrics::expose`], which keeps the Prometheus exposition and the
//! recorded set in lock-step (no metric can exist without being exported).
//!
//! Determinism contract: nothing in this module reads the RNG, the model,
//! or anything a training run consumes — metrics are written, never read,
//! by instrumented code, so enabling them cannot perturb a result.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets in a [`Histogram`]. Bucket `i` covers
/// `[2^(i-31), 2^(i-30))`, so the range spans ~4.7e-10 … ~8.6e9 — wide
/// enough for nanosecond kernel timings and multi-hour phase timings alike.
pub const N_BUCKETS: usize = 64;

/// Exponent offset: sample `v` lands in bucket `floor(log2(v)) + 31`.
const BUCKET_BIAS: i32 = 31;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (const, so it can back a `static`).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run isolation).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Last stored value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Atomically adds `delta` to an `f64` stored as bits in `cell`.
///
/// Public so instrumented code can accumulate metric-only sums across a
/// parallel region (e.g. per-slot optimiser update norms). The accumulation
/// order is thread-dependent, which is fine for telemetry and unacceptable
/// for anything a computation reads back — never feed such a sum into the
/// model.
pub fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Atomically folds `v` into a min/max cell via `pick`.
fn atomic_f64_fold(cell: &AtomicU64, v: f64, pick: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let folded = pick(f64::from_bits(cur), v);
        if folded.to_bits() == cur {
            return;
        }
        match cell.compare_exchange_weak(
            cur,
            folded.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A log₂-bucketed histogram of positive finite samples.
///
/// Exactness: `count`, `sum`, `min` and `max` are exact; quantiles are
/// bucket-interpolated (geometric midpoint of the containing bucket,
/// clamped to the observed `[min, max]`), which bounds the relative error
/// of any quantile by the bucket width (≤ 2×) and in practice — timings
/// clustered inside one or two buckets — far less.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    rejected: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A fresh empty histogram (const, so it can back a `static`).
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Bucket index for a valid sample.
    fn bucket_of(v: f64) -> usize {
        let exp = v.log2().floor() as i64 + BUCKET_BIAS as i64;
        exp.clamp(0, N_BUCKETS as i64 - 1) as usize
    }

    /// Lower/upper bounds of bucket `i`.
    fn bucket_bounds(i: usize) -> (f64, f64) {
        let lo = 2f64.powi(i as i32 - BUCKET_BIAS);
        (lo, lo * 2.0)
    }

    /// Records `v`. Returns `false` (and counts the rejection) for NaN,
    /// ±inf, zero and negative samples — none of which belong in a
    /// positive-valued timing/norm distribution.
    pub fn record(&self, v: f64) -> bool {
        if !v.is_finite() || v <= 0.0 {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_fold(&self.min_bits, v, f64::min);
        atomic_f64_fold(&self.max_bits, v, f64::max);
        true
    }

    /// Number of accepted samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Number of rejected (non-finite / non-positive) samples.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Exact sum of accepted samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact minimum accepted sample (NaN when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_infinite() {
            f64::NAN
        } else {
            v
        }
    }

    /// Exact maximum accepted sample (NaN when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_infinite() {
            f64::NAN
        } else {
            v
        }
    }

    /// Bucket-interpolated quantile `q ∈ [0, 1]` (NaN when empty).
    ///
    /// The estimate is the geometric midpoint of the bucket containing the
    /// rank-`⌈q·n⌉` sample, clamped to the observed `[min, max]` so that
    /// `quantile(0.0) == min()` and `quantile(1.0) == max()` exactly.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                return (lo * hi).sqrt().clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Resets all state (tests and per-run isolation).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The fixed metric catalog for the whole workspace.
///
/// Field names mirror the exposition names minus the `stuq_` prefix; see
/// [`Metrics::expose`] for the authoritative list with types and help text.
#[derive(Debug, Default)]
pub struct Metrics {
    // --- stuq-parallel: pool behaviour -----------------------------------
    /// Fan-outs submitted to the worker pool.
    pub pool_fanouts: Counter,
    /// Chunks executed across all fan-outs (pooled or inline).
    pub pool_chunks: Counter,
    /// Fan-outs that degraded to inline execution (serial scope, nesting,
    /// single chunk or single-thread pool).
    pub pool_inline: Counter,
    /// Wall-clock seconds per pooled fan-out (trace level only).
    pub pool_run_seconds: Histogram,

    // --- stuq-tensor: autodiff + kernels ---------------------------------
    /// Reverse sweeps executed (serial or level-scheduled).
    pub backward_runs: Counter,
    /// Topological levels scheduled by `backward_levels`.
    pub backward_levels: Counter,
    /// Tape nodes visited by `backward_levels`.
    pub backward_nodes: Counter,
    /// Edge-delta arena slots allocated by `backward_levels`.
    pub backward_edge_slots: Counter,
    /// Backward sweeps served by a cached replay plan.
    pub replay_hits: Counter,
    /// Replay plans compiled (one per new tape structure).
    pub replay_compiles: Counter,
    /// Fused adjoint chains across all compiled plans.
    pub replay_fused_chains: Counter,
    /// Tape nodes absorbed into fused chains across all compiled plans.
    pub replay_fused_nodes: Counter,
    /// `matmul` kernel dispatches.
    pub kernel_matmul: Counter,
    /// `matmul_tb` kernel dispatches.
    pub kernel_matmul_tb: Counter,
    /// `matmul_ta` (transposed-A adjoint product) kernel dispatches.
    pub kernel_matmul_ta: Counter,
    /// `rowwise_matmul` kernel dispatches.
    pub kernel_rowwise: Counter,
    /// GFLOP/s of the most recent traced `matmul`/`matmul_tb` dispatch.
    pub kernel_gflops: Gauge,

    // --- stuq-nn: optimisers ----------------------------------------------
    /// Optimiser steps applied.
    pub opt_steps: Counter,
    /// Learning rate of the most recent step.
    pub opt_lr: Gauge,
    /// Global L2 norm of applied parameter updates (trace level only).
    pub opt_step_norm: Histogram,

    // --- deepstuq: training loop ------------------------------------------
    /// Batches processed (healthy, i.e. the optimiser stepped).
    pub train_batches: Counter,
    /// Batches whose loss or gradient norm was NaN/inf.
    pub train_nonfinite_batches: Counter,
    /// Mean loss of the most recent healthy batch.
    pub train_loss: Gauge,
    /// Global gradient norm of the most recent healthy batch.
    pub train_grad_norm: Gauge,
    /// Gradient norms across healthy batches.
    pub train_grad_norm_hist: Histogram,
    /// Current epoch index (set by the pipeline).
    pub train_epoch: Gauge,
    /// Wall-clock seconds per training epoch.
    pub train_epoch_seconds: Histogram,
    /// Wall-clock seconds per batch (trace level only).
    pub train_batch_seconds: Histogram,

    // --- deepstuq: divergence guard ----------------------------------------
    /// Guard trips (unhealthy batches observed).
    pub guard_trips: Counter,
    /// Batches skipped without an update.
    pub guard_skips: Counter,
    /// Rewinds to the last-good snapshot.
    pub guard_rewinds: Counter,
    /// Current learning-rate back-off scale (1.0 when undisturbed).
    pub guard_lr_scale: Gauge,

    // --- deepstuq: inference + calibration ---------------------------------
    /// Monte-Carlo forward passes executed.
    pub mc_samples: Counter,
    /// Wall-clock seconds per MC forecast call (trace level only).
    pub mc_forecast_seconds: Histogram,
    /// MC samples per second of the most recent traced forecast.
    pub mc_samples_per_sec: Gauge,
    /// Fitted calibration temperature.
    pub calib_temperature: Gauge,
    /// Evaluation windows scored.
    pub eval_windows: Counter,

    // --- stuq-serve: serving runtime ---------------------------------------
    /// Forecast requests admitted (processed to any terminal response).
    pub serve_requests: Counter,
    /// Requests shed by admission control (queue full / draining / breaker).
    pub serve_shed: Counter,
    /// Responses degraded by the deadline budget (fewer samples than asked).
    pub serve_degraded: Counter,
    /// Fallback (persistence) responses served while the breaker was open.
    pub serve_fallback: Counter,
    /// Hot model reloads applied.
    pub serve_reloads: Counter,
    /// Reload attempts rolled back (corrupt or incompatible artifact).
    pub serve_reload_rollbacks: Counter,
    /// Current depth of the admission queue.
    pub serve_queue_depth: Gauge,
    /// Breaker state: 0 closed, 1 open, 2 half-open.
    pub serve_breaker_state: Gauge,
    /// MC samples used per forecast response.
    pub serve_samples_used: Histogram,
    /// Milliseconds of deadline left when the response was finished
    /// (the deadline-hit histogram; rejected samples are deadline misses).
    pub serve_deadline_slack_ms: Histogram,
    /// Wall-clock seconds per served forecast.
    pub serve_request_seconds: Histogram,
    /// Forecast batches processed by the worker (size 1 when batching is
    /// off).
    pub serve_batches: Counter,
    /// Requests per processed batch.
    pub serve_batch_size: Histogram,
    /// Shared-MC groups per processed batch.
    pub serve_batch_groups: Histogram,
    /// Forecasts answered from the per-tick cache (no forward pass).
    pub serve_cache_hits: Counter,
    /// Cacheable lookups that missed.
    pub serve_cache_misses: Counter,
    /// Cache entries dropped by the capacity bound.
    pub serve_cache_evictions: Counter,
    /// Whole-cache invalidations (hot-reload swap, breaker open).
    pub serve_cache_invalidations: Counter,
    /// Live forecast-cache entries.
    pub serve_cache_entries: Gauge,

    // --- stuq-serve: sharded cluster (router side) -------------------------
    /// Workers currently up, as of the last supervision tick.
    pub cluster_workers_up: Gauge,
    /// Worker processes restarted by the supervisor.
    pub cluster_restarts: Counter,
    /// Worker RPCs that failed at the transport (timeout, EOF, I/O error).
    pub cluster_rpc_failures: Counter,
    /// Merged responses with at least one non-ok shard (`partial: true`).
    pub serve_partial: Counter,
    /// Two-phase cluster reloads committed.
    pub cluster_reload_commits: Counter,
    /// Two-phase cluster reloads aborted (validation, skew, or worker nack).
    pub cluster_reload_aborts: Counter,
    /// Failover hops: a shard attempt failed and the router moved on to
    /// another replica of the same shard.
    pub cluster_failover: Counter,
    /// Hedged requests where the secondary replica's response was used.
    pub cluster_hedge_won: Counter,
    /// Faults injected by the deterministic fault-injection harness
    /// (`faultnet`). Exposed without the `stuq_` prefix on purpose: it is
    /// a test-harness counter, not a serving-subsystem one, and the bare
    /// name keeps harness traffic trivially greppable in merged dumps.
    pub faultnet_injected: Counter,

    // --- stuq-serve: request tracing (trace level only) ---------------------
    /// Spans opened (`span_start` events emitted).
    pub trace_spans: Counter,
    /// Slow-request exemplar events emitted (worst-N per window).
    pub trace_exemplars: Counter,
    /// `cluster-metrics` scrapes served by the router.
    pub cluster_scrapes: Counter,
    /// Seconds a forecast line waited between arrival and pickup.
    pub serve_admission_seconds: Histogram,
    /// Seconds a forecast line dwelled in the batcher window.
    pub serve_batch_dwell_seconds: Histogram,
    /// Seconds per forecast-cache probe.
    pub serve_cache_probe_seconds: Histogram,
    /// Seconds per shared-MC group compute.
    pub serve_compute_seconds: Histogram,
    /// Seconds spent rendering responses per batch.
    pub serve_render_seconds: Histogram,
    /// Seconds per scatter RPC to one shard (router side).
    pub cluster_shard_rpc_seconds: Histogram,
    /// Seconds merging shard responses per request (router side).
    pub cluster_merge_seconds: Histogram,
    /// Seconds per Monte-Carlo sample batch inside a forecast.
    pub mc_sample_seconds: Histogram,
}

impl Metrics {
    /// A fresh catalog (const, backing the global in [`crate::metrics`]).
    pub const fn new() -> Self {
        Self {
            pool_fanouts: Counter::new(),
            pool_chunks: Counter::new(),
            pool_inline: Counter::new(),
            pool_run_seconds: Histogram::new(),
            backward_runs: Counter::new(),
            backward_levels: Counter::new(),
            backward_nodes: Counter::new(),
            backward_edge_slots: Counter::new(),
            replay_hits: Counter::new(),
            replay_compiles: Counter::new(),
            replay_fused_chains: Counter::new(),
            replay_fused_nodes: Counter::new(),
            kernel_matmul: Counter::new(),
            kernel_matmul_tb: Counter::new(),
            kernel_matmul_ta: Counter::new(),
            kernel_rowwise: Counter::new(),
            kernel_gflops: Gauge::new(),
            opt_steps: Counter::new(),
            opt_lr: Gauge::new(),
            opt_step_norm: Histogram::new(),
            train_batches: Counter::new(),
            train_nonfinite_batches: Counter::new(),
            train_loss: Gauge::new(),
            train_grad_norm: Gauge::new(),
            train_grad_norm_hist: Histogram::new(),
            train_epoch: Gauge::new(),
            train_epoch_seconds: Histogram::new(),
            train_batch_seconds: Histogram::new(),
            guard_trips: Counter::new(),
            guard_skips: Counter::new(),
            guard_rewinds: Counter::new(),
            guard_lr_scale: Gauge::new(),
            mc_samples: Counter::new(),
            mc_forecast_seconds: Histogram::new(),
            mc_samples_per_sec: Gauge::new(),
            calib_temperature: Gauge::new(),
            eval_windows: Counter::new(),
            serve_requests: Counter::new(),
            serve_shed: Counter::new(),
            serve_degraded: Counter::new(),
            serve_fallback: Counter::new(),
            serve_reloads: Counter::new(),
            serve_reload_rollbacks: Counter::new(),
            serve_queue_depth: Gauge::new(),
            serve_breaker_state: Gauge::new(),
            serve_samples_used: Histogram::new(),
            serve_deadline_slack_ms: Histogram::new(),
            serve_request_seconds: Histogram::new(),
            serve_batches: Counter::new(),
            serve_batch_size: Histogram::new(),
            serve_batch_groups: Histogram::new(),
            serve_cache_hits: Counter::new(),
            serve_cache_misses: Counter::new(),
            serve_cache_evictions: Counter::new(),
            serve_cache_invalidations: Counter::new(),
            serve_cache_entries: Gauge::new(),
            cluster_workers_up: Gauge::new(),
            cluster_restarts: Counter::new(),
            cluster_rpc_failures: Counter::new(),
            serve_partial: Counter::new(),
            cluster_reload_commits: Counter::new(),
            cluster_reload_aborts: Counter::new(),
            cluster_failover: Counter::new(),
            cluster_hedge_won: Counter::new(),
            faultnet_injected: Counter::new(),
            trace_spans: Counter::new(),
            trace_exemplars: Counter::new(),
            cluster_scrapes: Counter::new(),
            serve_admission_seconds: Histogram::new(),
            serve_batch_dwell_seconds: Histogram::new(),
            serve_cache_probe_seconds: Histogram::new(),
            serve_compute_seconds: Histogram::new(),
            serve_render_seconds: Histogram::new(),
            cluster_shard_rpc_seconds: Histogram::new(),
            cluster_merge_seconds: Histogram::new(),
            mc_sample_seconds: Histogram::new(),
        }
    }

    /// Renders the catalog in the Prometheus text exposition format.
    ///
    /// Counters and gauges export their value; histograms export as
    /// Prometheus *summaries* (`_count`, `_sum`, `{quantile=…}` for p50/p95
    /// plus exact min/max) — compact, and exactly the statistics the bench
    /// harness and the end-of-run table consume.
    pub fn expose(&self) -> String {
        let mut out = String::with_capacity(4096);
        let c = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        };
        let g = |out: &mut String, name: &str, help: &str, v: f64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"));
        };
        let h = |out: &mut String, name: &str, help: &str, hist: &Histogram| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
            if hist.count() > 0 {
                out.push_str(&format!(
                    "{name}{{quantile=\"0.5\"}} {}\n{name}{{quantile=\"0.95\"}} \
                     {}\n{name}{{quantile=\"0.99\"}} {}\n",
                    hist.quantile(0.5),
                    hist.quantile(0.95),
                    hist.quantile(0.99)
                ));
                out.push_str(&format!("{name}_min {}\n{name}_max {}\n", hist.min(), hist.max()));
            }
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n{name}_rejected {}\n",
                hist.sum(),
                hist.count(),
                hist.rejected()
            ));
        };

        c(
            &mut out,
            "stuq_pool_fanouts_total",
            "fan-outs submitted to the worker pool",
            self.pool_fanouts.get(),
        );
        c(
            &mut out,
            "stuq_pool_chunks_total",
            "chunks executed across all fan-outs",
            self.pool_chunks.get(),
        );
        c(
            &mut out,
            "stuq_pool_inline_total",
            "fan-outs degraded to inline execution",
            self.pool_inline.get(),
        );
        h(
            &mut out,
            "stuq_pool_run_seconds",
            "seconds per pooled fan-out (trace)",
            &self.pool_run_seconds,
        );
        c(
            &mut out,
            "stuq_backward_runs_total",
            "reverse sweeps executed",
            self.backward_runs.get(),
        );
        c(
            &mut out,
            "stuq_backward_levels_total",
            "topological levels scheduled",
            self.backward_levels.get(),
        );
        c(
            &mut out,
            "stuq_backward_nodes_total",
            "tape nodes visited by backward_levels",
            self.backward_nodes.get(),
        );
        c(
            &mut out,
            "stuq_backward_edge_slots_total",
            "edge-delta arena slots allocated",
            self.backward_edge_slots.get(),
        );
        c(
            &mut out,
            "stuq_backward_replay_hits_total",
            "backward sweeps served by a cached replay plan",
            self.replay_hits.get(),
        );
        c(
            &mut out,
            "stuq_backward_replay_compiles_total",
            "replay plans compiled",
            self.replay_compiles.get(),
        );
        c(
            &mut out,
            "stuq_backward_replay_fused_chains_total",
            "fused adjoint chains across compiled plans",
            self.replay_fused_chains.get(),
        );
        c(
            &mut out,
            "stuq_backward_replay_fused_nodes_total",
            "tape nodes absorbed into fused chains",
            self.replay_fused_nodes.get(),
        );
        c(
            &mut out,
            "stuq_kernel_matmul_total",
            "matmul kernel dispatches",
            self.kernel_matmul.get(),
        );
        c(
            &mut out,
            "stuq_kernel_matmul_tb_total",
            "matmul_tb kernel dispatches",
            self.kernel_matmul_tb.get(),
        );
        c(
            &mut out,
            "stuq_kernel_matmul_ta_total",
            "matmul_ta kernel dispatches",
            self.kernel_matmul_ta.get(),
        );
        c(
            &mut out,
            "stuq_kernel_rowwise_total",
            "rowwise_matmul kernel dispatches",
            self.kernel_rowwise.get(),
        );
        g(
            &mut out,
            "stuq_kernel_gflops",
            "GFLOP/s of the last traced matmul dispatch",
            self.kernel_gflops.get(),
        );
        c(&mut out, "stuq_opt_steps_total", "optimiser steps applied", self.opt_steps.get());
        g(&mut out, "stuq_opt_lr", "learning rate of the most recent step", self.opt_lr.get());
        h(
            &mut out,
            "stuq_opt_step_norm",
            "global L2 norm of applied updates (trace)",
            &self.opt_step_norm,
        );
        c(
            &mut out,
            "stuq_train_batches_total",
            "healthy batches stepped",
            self.train_batches.get(),
        );
        c(
            &mut out,
            "stuq_train_nonfinite_batches_total",
            "batches with NaN/inf loss or gradient",
            self.train_nonfinite_batches.get(),
        );
        g(
            &mut out,
            "stuq_train_loss",
            "mean loss of the most recent healthy batch",
            self.train_loss.get(),
        );
        g(
            &mut out,
            "stuq_train_grad_norm",
            "gradient norm of the most recent healthy batch",
            self.train_grad_norm.get(),
        );
        h(
            &mut out,
            "stuq_train_grad_norm_hist",
            "gradient norms across healthy batches",
            &self.train_grad_norm_hist,
        );
        g(&mut out, "stuq_train_epoch", "current epoch index", self.train_epoch.get());
        h(
            &mut out,
            "stuq_train_epoch_seconds",
            "seconds per training epoch",
            &self.train_epoch_seconds,
        );
        h(
            &mut out,
            "stuq_train_batch_seconds",
            "seconds per batch (trace)",
            &self.train_batch_seconds,
        );
        c(&mut out, "stuq_guard_trips_total", "divergence-guard trips", self.guard_trips.get());
        c(
            &mut out,
            "stuq_guard_skips_total",
            "batches skipped by the guard",
            self.guard_skips.get(),
        );
        c(
            &mut out,
            "stuq_guard_rewinds_total",
            "guard rewinds to last-good snapshot",
            self.guard_rewinds.get(),
        );
        g(
            &mut out,
            "stuq_guard_lr_scale",
            "current guard learning-rate back-off scale",
            self.guard_lr_scale.get(),
        );
        c(
            &mut out,
            "stuq_mc_samples_total",
            "Monte-Carlo forward passes executed",
            self.mc_samples.get(),
        );
        h(
            &mut out,
            "stuq_mc_forecast_seconds",
            "seconds per MC forecast call (trace)",
            &self.mc_forecast_seconds,
        );
        g(
            &mut out,
            "stuq_mc_samples_per_sec",
            "MC samples/s of the last traced forecast",
            self.mc_samples_per_sec.get(),
        );
        g(
            &mut out,
            "stuq_calib_temperature",
            "fitted calibration temperature",
            self.calib_temperature.get(),
        );
        c(
            &mut out,
            "stuq_eval_windows_total",
            "evaluation windows scored",
            self.eval_windows.get(),
        );
        c(
            &mut out,
            "stuq_serve_requests_total",
            "forecast requests admitted",
            self.serve_requests.get(),
        );
        c(
            &mut out,
            "stuq_serve_shed_total",
            "requests shed by admission control",
            self.serve_shed.get(),
        );
        c(
            &mut out,
            "stuq_serve_degraded_total",
            "deadline-degraded responses",
            self.serve_degraded.get(),
        );
        c(
            &mut out,
            "stuq_serve_fallback_total",
            "breaker fallback responses",
            self.serve_fallback.get(),
        );
        c(
            &mut out,
            "stuq_serve_reloads_total",
            "hot model reloads applied",
            self.serve_reloads.get(),
        );
        c(
            &mut out,
            "stuq_serve_reload_rollbacks_total",
            "reload attempts rolled back",
            self.serve_reload_rollbacks.get(),
        );
        g(
            &mut out,
            "stuq_serve_queue_depth",
            "current admission-queue depth",
            self.serve_queue_depth.get(),
        );
        g(
            &mut out,
            "stuq_serve_breaker_state",
            "breaker state (0 closed, 1 open, 2 half-open)",
            self.serve_breaker_state.get(),
        );
        h(
            &mut out,
            "stuq_serve_samples_used",
            "MC samples used per forecast response",
            &self.serve_samples_used,
        );
        h(
            &mut out,
            "stuq_serve_deadline_slack_ms",
            "deadline slack (ms) at response time",
            &self.serve_deadline_slack_ms,
        );
        h(
            &mut out,
            "stuq_serve_request_seconds",
            "seconds per served forecast",
            &self.serve_request_seconds,
        );
        c(
            &mut out,
            "stuq_serve_batches_total",
            "forecast batches processed",
            self.serve_batches.get(),
        );
        h(
            &mut out,
            "stuq_serve_batch_size",
            "requests per processed batch",
            &self.serve_batch_size,
        );
        h(
            &mut out,
            "stuq_serve_batch_groups",
            "shared-MC groups per processed batch",
            &self.serve_batch_groups,
        );
        c(
            &mut out,
            "stuq_serve_cache_hits_total",
            "forecasts answered from the cache",
            self.serve_cache_hits.get(),
        );
        c(
            &mut out,
            "stuq_serve_cache_misses_total",
            "cacheable lookups that missed",
            self.serve_cache_misses.get(),
        );
        c(
            &mut out,
            "stuq_serve_cache_evictions_total",
            "cache entries evicted by capacity",
            self.serve_cache_evictions.get(),
        );
        c(
            &mut out,
            "stuq_serve_cache_invalidations_total",
            "whole-cache invalidations",
            self.serve_cache_invalidations.get(),
        );
        g(
            &mut out,
            "stuq_serve_cache_entries",
            "live forecast-cache entries",
            self.serve_cache_entries.get(),
        );
        g(
            &mut out,
            "stuq_cluster_workers_up",
            "workers up at the last supervision tick",
            self.cluster_workers_up.get(),
        );
        c(
            &mut out,
            "stuq_cluster_restarts_total",
            "worker processes restarted",
            self.cluster_restarts.get(),
        );
        c(
            &mut out,
            "stuq_cluster_rpc_failures_total",
            "worker RPC transport failures",
            self.cluster_rpc_failures.get(),
        );
        c(
            &mut out,
            "stuq_serve_partial_total",
            "merged responses with a degraded shard",
            self.serve_partial.get(),
        );
        c(
            &mut out,
            "stuq_cluster_reload_commits_total",
            "two-phase cluster reloads committed",
            self.cluster_reload_commits.get(),
        );
        c(
            &mut out,
            "stuq_cluster_reload_aborts_total",
            "two-phase cluster reloads aborted",
            self.cluster_reload_aborts.get(),
        );
        c(
            &mut out,
            "stuq_cluster_failover_total",
            "failover hops to a sibling replica",
            self.cluster_failover.get(),
        );
        c(
            &mut out,
            "stuq_cluster_hedge_won_total",
            "hedged requests won by the secondary replica",
            self.cluster_hedge_won.get(),
        );
        c(
            &mut out,
            "faultnet_injected_total",
            "faults injected by the faultnet harness",
            self.faultnet_injected.get(),
        );
        c(&mut out, "stuq_trace_spans_total", "spans opened", self.trace_spans.get());
        c(
            &mut out,
            "stuq_trace_exemplars_total",
            "slow-request exemplar events emitted",
            self.trace_exemplars.get(),
        );
        c(
            &mut out,
            "stuq_cluster_scrapes_total",
            "cluster-metrics scrapes served",
            self.cluster_scrapes.get(),
        );
        h(
            &mut out,
            "stuq_serve_admission_seconds",
            "seconds a forecast waited before pickup (trace)",
            &self.serve_admission_seconds,
        );
        h(
            &mut out,
            "stuq_serve_batch_dwell_seconds",
            "seconds a forecast dwelled in the batcher (trace)",
            &self.serve_batch_dwell_seconds,
        );
        h(
            &mut out,
            "stuq_serve_cache_probe_seconds",
            "seconds per forecast-cache probe (trace)",
            &self.serve_cache_probe_seconds,
        );
        h(
            &mut out,
            "stuq_serve_compute_seconds",
            "seconds per shared-MC group compute (trace)",
            &self.serve_compute_seconds,
        );
        h(
            &mut out,
            "stuq_serve_render_seconds",
            "seconds rendering responses per batch (trace)",
            &self.serve_render_seconds,
        );
        h(
            &mut out,
            "stuq_cluster_shard_rpc_seconds",
            "seconds per scatter RPC to one shard (trace)",
            &self.cluster_shard_rpc_seconds,
        );
        h(
            &mut out,
            "stuq_cluster_merge_seconds",
            "seconds merging shard responses (trace)",
            &self.cluster_merge_seconds,
        );
        h(
            &mut out,
            "stuq_mc_sample_seconds",
            "seconds per MC sample batch (trace)",
            &self.mc_sample_seconds,
        );
        out
    }

    /// Every counter in the catalog as `(exposition name, value)` pairs, in
    /// exposition order. This is what the router's `cluster-metrics` scrape
    /// ships and sums across workers; the
    /// `counters_stay_in_lock_step_with_exposition` test keeps it complete.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("stuq_pool_fanouts_total", self.pool_fanouts.get()),
            ("stuq_pool_chunks_total", self.pool_chunks.get()),
            ("stuq_pool_inline_total", self.pool_inline.get()),
            ("stuq_backward_runs_total", self.backward_runs.get()),
            ("stuq_backward_levels_total", self.backward_levels.get()),
            ("stuq_backward_nodes_total", self.backward_nodes.get()),
            ("stuq_backward_edge_slots_total", self.backward_edge_slots.get()),
            ("stuq_backward_replay_hits_total", self.replay_hits.get()),
            ("stuq_backward_replay_compiles_total", self.replay_compiles.get()),
            ("stuq_backward_replay_fused_chains_total", self.replay_fused_chains.get()),
            ("stuq_backward_replay_fused_nodes_total", self.replay_fused_nodes.get()),
            ("stuq_kernel_matmul_total", self.kernel_matmul.get()),
            ("stuq_kernel_matmul_tb_total", self.kernel_matmul_tb.get()),
            ("stuq_kernel_matmul_ta_total", self.kernel_matmul_ta.get()),
            ("stuq_kernel_rowwise_total", self.kernel_rowwise.get()),
            ("stuq_opt_steps_total", self.opt_steps.get()),
            ("stuq_train_batches_total", self.train_batches.get()),
            ("stuq_train_nonfinite_batches_total", self.train_nonfinite_batches.get()),
            ("stuq_guard_trips_total", self.guard_trips.get()),
            ("stuq_guard_skips_total", self.guard_skips.get()),
            ("stuq_guard_rewinds_total", self.guard_rewinds.get()),
            ("stuq_mc_samples_total", self.mc_samples.get()),
            ("stuq_eval_windows_total", self.eval_windows.get()),
            ("stuq_serve_requests_total", self.serve_requests.get()),
            ("stuq_serve_shed_total", self.serve_shed.get()),
            ("stuq_serve_degraded_total", self.serve_degraded.get()),
            ("stuq_serve_fallback_total", self.serve_fallback.get()),
            ("stuq_serve_reloads_total", self.serve_reloads.get()),
            ("stuq_serve_reload_rollbacks_total", self.serve_reload_rollbacks.get()),
            ("stuq_serve_batches_total", self.serve_batches.get()),
            ("stuq_serve_cache_hits_total", self.serve_cache_hits.get()),
            ("stuq_serve_cache_misses_total", self.serve_cache_misses.get()),
            ("stuq_serve_cache_evictions_total", self.serve_cache_evictions.get()),
            ("stuq_serve_cache_invalidations_total", self.serve_cache_invalidations.get()),
            ("stuq_cluster_restarts_total", self.cluster_restarts.get()),
            ("stuq_cluster_rpc_failures_total", self.cluster_rpc_failures.get()),
            ("stuq_serve_partial_total", self.serve_partial.get()),
            ("stuq_cluster_reload_commits_total", self.cluster_reload_commits.get()),
            ("stuq_cluster_reload_aborts_total", self.cluster_reload_aborts.get()),
            ("stuq_cluster_failover_total", self.cluster_failover.get()),
            ("stuq_cluster_hedge_won_total", self.cluster_hedge_won.get()),
            ("faultnet_injected_total", self.faultnet_injected.get()),
            ("stuq_trace_spans_total", self.trace_spans.get()),
            ("stuq_trace_exemplars_total", self.trace_exemplars.get()),
            ("stuq_cluster_scrapes_total", self.cluster_scrapes.get()),
        ]
    }

    /// Resets every metric (tests and per-run isolation).
    pub fn reset(&self) {
        self.pool_fanouts.reset();
        self.pool_chunks.reset();
        self.pool_inline.reset();
        self.pool_run_seconds.reset();
        self.backward_runs.reset();
        self.backward_levels.reset();
        self.backward_nodes.reset();
        self.backward_edge_slots.reset();
        self.replay_hits.reset();
        self.replay_compiles.reset();
        self.replay_fused_chains.reset();
        self.replay_fused_nodes.reset();
        self.kernel_matmul.reset();
        self.kernel_matmul_tb.reset();
        self.kernel_matmul_ta.reset();
        self.kernel_rowwise.reset();
        self.kernel_gflops.reset();
        self.opt_steps.reset();
        self.opt_lr.reset();
        self.opt_step_norm.reset();
        self.train_batches.reset();
        self.train_nonfinite_batches.reset();
        self.train_loss.reset();
        self.train_grad_norm.reset();
        self.train_grad_norm_hist.reset();
        self.train_epoch.reset();
        self.train_epoch_seconds.reset();
        self.train_batch_seconds.reset();
        self.guard_trips.reset();
        self.guard_skips.reset();
        self.guard_rewinds.reset();
        self.guard_lr_scale.reset();
        self.mc_samples.reset();
        self.mc_forecast_seconds.reset();
        self.mc_samples_per_sec.reset();
        self.calib_temperature.reset();
        self.eval_windows.reset();
        self.serve_requests.reset();
        self.serve_shed.reset();
        self.serve_degraded.reset();
        self.serve_fallback.reset();
        self.serve_reloads.reset();
        self.serve_reload_rollbacks.reset();
        self.serve_queue_depth.reset();
        self.serve_breaker_state.reset();
        self.serve_samples_used.reset();
        self.serve_deadline_slack_ms.reset();
        self.serve_request_seconds.reset();
        self.serve_batches.reset();
        self.serve_batch_size.reset();
        self.serve_batch_groups.reset();
        self.serve_cache_hits.reset();
        self.serve_cache_misses.reset();
        self.serve_cache_evictions.reset();
        self.serve_cache_invalidations.reset();
        self.serve_cache_entries.reset();
        self.cluster_workers_up.reset();
        self.cluster_restarts.reset();
        self.cluster_rpc_failures.reset();
        self.serve_partial.reset();
        self.cluster_reload_commits.reset();
        self.cluster_reload_aborts.reset();
        self.cluster_failover.reset();
        self.cluster_hedge_won.reset();
        self.faultnet_injected.reset();
        self.trace_spans.reset();
        self.trace_exemplars.reset();
        self.cluster_scrapes.reset();
        self.serve_admission_seconds.reset();
        self.serve_batch_dwell_seconds.reset();
        self.serve_cache_probe_seconds.reset();
        self.serve_compute_seconds.reset();
        self.serve_render_seconds.reset();
        self.cluster_shard_rpc_seconds.reset();
        self.cluster_merge_seconds.reset();
        self.mc_sample_seconds.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn histogram_rejects_invalid_samples() {
        let h = Histogram::new();
        assert!(!h.record(0.0), "zero must be rejected");
        assert!(!h.record(-1.0), "negatives must be rejected");
        assert!(!h.record(f64::NAN), "NaN must be rejected");
        assert!(!h.record(f64::INFINITY), "inf must be rejected");
        assert!(!h.record(f64::NEG_INFINITY), "-inf must be rejected");
        assert_eq!(h.count(), 0);
        assert_eq!(h.rejected(), 5);
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn histogram_exact_stats() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            assert!(h.record(v));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.mean(), 3.75);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-6);
        }
        let (p5, p50, p95) = (h.quantile(0.05), h.quantile(0.5), h.quantile(0.95));
        assert!(p5 <= p50 && p50 <= p95, "{p5} {p50} {p95}");
        assert!(p50 >= h.min() && p50 <= h.max());
        // log2 bucketing bounds any quantile within 2x of the true value.
        assert!(p50 > 0.5 * 500e-6 && p50 < 2.0 * 500e-6, "p50 {p50}");
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn histogram_handles_extreme_magnitudes() {
        let h = Histogram::new();
        assert!(h.record(1e-12), "tiny values clamp into the first bucket");
        assert!(h.record(1e12), "huge values clamp into the last bucket");
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1e-12);
        assert_eq!(h.max(), 1e12);
    }

    #[test]
    fn exposition_contains_every_family() {
        let m = Metrics::new();
        m.pool_fanouts.add(3);
        m.train_loss.set(1.5);
        m.train_epoch_seconds.record(0.25);
        let text = m.expose();
        for needle in [
            "stuq_pool_fanouts_total 3",
            "stuq_train_loss 1.5",
            "stuq_train_epoch_seconds_count 1",
            "# TYPE stuq_guard_trips_total counter",
            "# TYPE stuq_opt_lr gauge",
            "# TYPE stuq_mc_forecast_seconds summary",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in exposition:\n{text}");
        }
    }

    #[test]
    fn summaries_export_p99() {
        let m = Metrics::new();
        for i in 1..=100 {
            m.serve_request_seconds.record(i as f64 * 1e-3);
        }
        let text = m.expose();
        assert!(
            text.contains("stuq_serve_request_seconds{quantile=\"0.99\"}"),
            "missing p99 line:\n{text}"
        );
    }

    #[test]
    fn counters_stay_in_lock_step_with_exposition() {
        let m = Metrics::new();
        m.serve_requests.add(7);
        m.trace_spans.add(2);
        let counters = m.counters();
        let text = m.expose();
        // Every catalog counter appears in counters() with its current value…
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let Some((name, value)) = line.split_once(' ') else { continue };
            if !name.ends_with("_total") {
                continue;
            }
            let got = counters.iter().find(|(n, _)| *n == name);
            assert!(got.is_some(), "counter {name} exposed but missing from counters()");
            assert_eq!(got.unwrap().1.to_string(), value, "{name} value mismatch");
        }
        // …and counters() lists nothing the exposition does not.
        for (name, _) in &counters {
            assert!(
                text.contains(&format!("\n{name} ")),
                "counters() lists {name} but expose() does not"
            );
        }
        let exposed = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter(|l| l.split_once(' ').is_some_and(|(n, _)| n.ends_with("_total")))
            .count();
        assert_eq!(exposed, counters.len(), "counter count drifted");
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.guard_trips.inc();
        m.calib_temperature.set(0.8);
        m.train_epoch_seconds.record(1.0);
        m.reset();
        assert_eq!(m.guard_trips.get(), 0);
        assert_eq!(m.calib_temperature.get(), 0.0);
        assert_eq!(m.train_epoch_seconds.count(), 0);
    }
}
