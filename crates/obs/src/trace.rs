//! Distributed request tracing: deterministic trace/span ids, span event
//! helpers, and slow-request exemplars (DESIGN.md §15).
//!
//! A *trace* covers one client request end to end, across the router and
//! every worker its scatter touched. Ids are not random: the trace id is a
//! pure hash of `(serve seed, arrival index)` — the same pair the router
//! already uses to pin seedless requests — and every span id is a pure hash
//! of `(parent span, phase, index)`. A seeded rerun therefore reproduces
//! the exact same timeline tree, which is what lets `stuq trace` output be
//! byte-compared in tests and lets traced responses stay deterministic.
//!
//! Determinism contract (same as the rest of `stuq-obs`): nothing here
//! consumes RNG, reads the logical serve clock, or returns a value the
//! instrumented code branches on. Span durations come from
//! `std::time::Instant` — wall time, never `Clock` — so enabling tracing
//! cannot move a clock read and cannot change a response byte beyond the
//! appended trace annotation.
//!
//! Span events are emitted only at [`crate::Level::Trace`]; callers gate on
//! [`crate::trace_enabled`]. A `span_start` always carries `parent` (a root
//! span's parent is its trace id), and the matching `span_end` carries the
//! measured `seconds`. Phases that are measured retroactively (admission
//! wait, batcher dwell) emit both events back to back — pairing is by id,
//! not by wall offsets, so the reconstruction does not care.

use std::sync::Mutex;

use crate::events::Event;

/// Requests per exemplar window.
const EXEMPLAR_WINDOW: u64 = 64;

/// Worst-N requests reported per window.
const EXEMPLAR_WORST: usize = 4;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a fold of one byte slice into `h`.
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The trace id for the request at `arrival` under `seed` — deterministic,
/// never zero. `seed` is the serve/router seed, `arrival` the value of
/// `requests_served` when the request was validated (exactly the pair the
/// router forks seedless-request seeds from).
pub fn derive_trace_id(seed: u64, arrival: u64) -> u64 {
    let id = mix64(seed ^ mix64(arrival.wrapping_add(0x9e37_79b9_7f4a_7c15)));
    if id == 0 {
        1
    } else {
        id
    }
}

/// A child span id under `parent` — deterministic, never zero. `index`
/// disambiguates repeated phases under one parent (shard number, group
/// number, member position).
pub fn derive_span_id(parent: u64, phase: &str, index: u64) -> u64 {
    let h = fnv(
        fnv(fnv(0xcbf2_9ce4_8422_2325, &parent.to_le_bytes()), phase.as_bytes()),
        &index.to_le_bytes(),
    );
    let h = mix64(h);
    if h == 0 {
        1
    } else {
        h
    }
}

/// Renders an id as the wire/event form: 16 lowercase hex digits.
pub fn fmt_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses the 16-hex-digit wire form back to an id.
pub fn parse_id(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Base `span_start` event; decorate with `.uint("shard", …)` /
/// `.str("req", …)` as needed and hand to [`emit_span`].
pub fn start_event(trace: u64, span: u64, parent: u64, phase: &str) -> Event {
    Event::new("span_start")
        .str("trace", fmt_id(trace))
        .str("span", fmt_id(span))
        .str("parent", fmt_id(parent))
        .str("phase", phase.to_string())
}

/// Base `span_end` event for the same span; decorate with `.str("status",
/// …)` / `.str("reason", …)` as needed and hand to [`emit_span`].
pub fn end_event(trace: u64, span: u64, seconds: f64) -> Event {
    Event::new("span_end")
        .str("trace", fmt_id(trace))
        .str("span", fmt_id(span))
        .num("seconds", seconds)
}

/// Emits a span event and maintains the span counter. Callers gate on
/// [`crate::trace_enabled`]; this only forwards to [`crate::emit`].
pub fn emit_span(ev: Event) {
    if ev.ty() == "span_start" {
        crate::metrics().trace_spans.inc();
    }
    crate::emit(ev);
}

/// Emits a retroactively measured phase: `span_start` + `span_end` back to
/// back with the given duration. Returns the derived span id.
pub fn emit_phase(trace: u64, parent: u64, phase: &str, index: u64, seconds: f64) -> u64 {
    let span = derive_span_id(parent, phase, index);
    emit_span(start_event(trace, span, parent, phase));
    emit_span(end_event(trace, span, seconds));
    span
}

struct ExemplarWindow {
    seen: u64,
    /// Worst requests this window, sorted slowest-first: (seconds, trace).
    worst: Vec<(f64, u64)>,
}

static EXEMPLARS: Mutex<ExemplarWindow> = Mutex::new(ExemplarWindow { seen: 0, worst: Vec::new() });

fn drain_worst(w: &mut ExemplarWindow) {
    for (seconds, trace) in w.worst.drain(..) {
        crate::metrics().trace_exemplars.inc();
        crate::emit(
            Event::new("trace_exemplar").str("trace", fmt_id(trace)).num("seconds", seconds),
        );
    }
}

/// Records a completed request for slow-request exemplars: the worst
/// [`EXEMPLAR_WORST`] requests of every [`EXEMPLAR_WINDOW`]-request window
/// are emitted as `trace_exemplar` events. No-op below trace level. The
/// *number* of emissions at any call point depends only on the request
/// count, so a seeded rerun keeps identical event sequence numbers even
/// though the measured seconds differ.
pub fn note_request(trace: u64, seconds: f64) {
    if !crate::trace_enabled() {
        return;
    }
    let mut w = EXEMPLARS.lock().unwrap();
    w.seen += 1;
    let pos = w.worst.partition_point(|(s, _)| *s >= seconds);
    if pos < EXEMPLAR_WORST {
        w.worst.insert(pos, (seconds, trace));
        w.worst.truncate(EXEMPLAR_WORST);
    }
    if w.seen.is_multiple_of(EXEMPLAR_WINDOW) {
        drain_worst(&mut w);
    }
}

/// Emits any partial-window exemplars (called by [`crate::flush`] before it
/// takes the recorder lock).
pub(crate) fn flush_exemplars() {
    let mut w = EXEMPLARS.lock().unwrap();
    drain_worst(&mut w);
}

/// Resets exemplar state (called by [`crate::init`]).
pub(crate) fn reset() {
    let mut w = EXEMPLARS.lock().unwrap();
    w.seen = 0;
    w.worst.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_distinct_and_nonzero() {
        assert_eq!(derive_trace_id(7, 0), derive_trace_id(7, 0));
        assert_ne!(derive_trace_id(7, 0), derive_trace_id(7, 1));
        assert_ne!(derive_trace_id(7, 0), derive_trace_id(8, 0));
        assert_ne!(derive_trace_id(0, 0), 0);
        let t = derive_trace_id(7, 3);
        assert_eq!(derive_span_id(t, "shard", 1), derive_span_id(t, "shard", 1));
        assert_ne!(derive_span_id(t, "shard", 1), derive_span_id(t, "shard", 2));
        assert_ne!(derive_span_id(t, "shard", 1), derive_span_id(t, "merge", 1));
        assert_ne!(derive_span_id(t, "shard", 1), 0);
    }

    #[test]
    fn id_wire_form_roundtrips() {
        for id in [1u64, 0xdead_beef, u64::MAX, derive_trace_id(11, 42)] {
            let s = fmt_id(id);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_id(&s), Some(id));
        }
        assert_eq!(parse_id("xyz"), None);
        assert_eq!(parse_id("00000000000000000"), None, "17 digits");
        assert_eq!(parse_id("000000000000000g"), None);
    }

    #[test]
    fn span_events_validate_against_the_schema() {
        let t = derive_trace_id(1, 1);
        let s = derive_span_id(t, "request", 0);
        let start = start_event(t, s, t, "request").render(0, 0, "serve", 0);
        let end = end_event(t, s, 0.25).render(1, 1, "serve", 0);
        crate::validate_events(&format!("{start}{end}")).unwrap();
    }
}
