//! Structured event log: builder, JSONL rendering, and schema validation.
//!
//! Every event is one flat JSON object on one line — no nesting, so the
//! validator (and `ci/validate_events.sh`, which shells out to it) needs
//! only the tiny parser in this module, not a JSON library. The recorder
//! stamps `t_ms` (milliseconds since recorder init), `seq` (strictly
//! increasing), `stage` and `epoch` onto every event so consumers never
//! have to reconstruct context from ordering.
//!
//! Non-finite floats cannot be represented in JSON; they are rendered as
//! the strings `"NaN"`, `"inf"`, `"-inf"` — important because a guard-trip
//! event exists precisely to record a NaN loss.
//!
//! The schema ([`validate_line`]) is a closed set of event types with
//! required fields per type; unknown types, missing fields, duplicate keys
//! and malformed JSON are all hard errors, and [`validate_events`]
//! additionally enforces `seq` monotonicity across the file.

/// A single event value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A string (also used for non-finite floats: "NaN", "inf", "-inf").
    S(String),
    /// A finite float.
    F(f64),
    /// An unsigned integer (epochs, counts, exit codes).
    U(u64),
    /// A boolean.
    B(bool),
}

/// Builder for one event line. Construct with [`Event::new`], attach fields
/// with the typed setters, then hand to `stuq_obs::emit`.
#[derive(Debug, Clone)]
pub struct Event {
    ty: &'static str,
    fields: Vec<(&'static str, Val)>,
}

impl Event {
    /// Starts an event of type `ty` (must be a type known to the schema for
    /// the line to validate).
    pub fn new(ty: &'static str) -> Self {
        Self { ty, fields: Vec::with_capacity(6) }
    }

    /// Event type name.
    pub fn ty(&self) -> &'static str {
        self.ty
    }

    /// Whether a field named `k` was attached.
    pub fn has(&self, k: &str) -> bool {
        self.fields.iter().any(|(name, _)| *name == k)
    }

    /// Attaches a string field.
    pub fn str(mut self, k: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((k, Val::S(v.into())));
        self
    }

    /// Attaches a float field (non-finite values become marker strings).
    pub fn num(mut self, k: &'static str, v: f64) -> Self {
        let val = if v.is_nan() {
            Val::S("NaN".into())
        } else if v == f64::INFINITY {
            Val::S("inf".into())
        } else if v == f64::NEG_INFINITY {
            Val::S("-inf".into())
        } else {
            Val::F(v)
        };
        self.fields.push((k, val));
        self
    }

    /// Attaches an unsigned-integer field.
    pub fn uint(mut self, k: &'static str, v: u64) -> Self {
        self.fields.push((k, Val::U(v)));
        self
    }

    /// Attaches a boolean field.
    pub fn flag(mut self, k: &'static str, v: bool) -> Self {
        self.fields.push((k, Val::B(v)));
        self
    }

    /// Renders the event as one JSON line (with trailing newline), stamping
    /// the recorder context. `stage`/`epoch` are only stamped when the event
    /// did not set them itself (e.g. `stage_start` carries its own).
    pub(crate) fn render(&self, t_ms: u64, seq: u64, stage: &str, epoch: u64) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!("{{\"t_ms\":{t_ms},\"seq\":{seq},\"type\":"));
        push_json_str(&mut out, self.ty);
        if !self.has("stage") {
            out.push_str(",\"stage\":");
            push_json_str(&mut out, stage);
        }
        if !self.has("epoch") {
            out.push_str(&format!(",\"epoch\":{epoch}"));
        }
        for (k, v) in &self.fields {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            match v {
                Val::S(s) => push_json_str(&mut out, s),
                Val::F(f) => out.push_str(&fmt_f64(*f)),
                Val::U(u) => out.push_str(&u.to_string()),
                Val::B(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Formats a finite f64 so it round-trips and is valid JSON (no bare `1e3`
/// surprises from `{:?}`, no trailing garbage).
fn fmt_f64(v: f64) -> String {
    // `{}` on a finite f64 always yields a valid JSON number ("1", "0.5",
    // "1e-7"); non-finite values were already converted to marker strings.
    format!("{v}")
}

/// Appends `s` to `out` as a JSON string literal with escaping.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON scalar (the event format is flat, so scalars suffice).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// String.
    Str(String),
    /// Number.
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

/// Parses one flat JSON object line into ordered key/value pairs.
///
/// Supports exactly the subset the renderer emits (strings with standard
/// escapes incl. `\uXXXX`, numbers, booleans, null); nested objects/arrays
/// are rejected. Duplicate keys are rejected.
pub fn parse_line(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut p = Parser { bytes: line.trim().as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let mut pairs: Vec<(String, JsonVal)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.parse_value()?;
            pairs.push((key, val));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", b as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        s.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                // The renderer emits UTF-8; collect continuation bytes as-is.
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.parse_string()?)),
            Some(b't') => self.keyword("true", JsonVal::Bool(true)),
            Some(b'f') => self.keyword("false", JsonVal::Bool(false)),
            Some(b'n') => self.keyword("null", JsonVal::Null),
            Some(b'{' | b'[') => Err("nested values are not part of the event schema".into()),
            Some(_) => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                text.parse::<f64>()
                    .map(JsonVal::Num)
                    .map_err(|_| format!("malformed number {text:?}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, kw: &str, val: JsonVal) -> Result<JsonVal, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(val)
        } else {
            Err(format!("malformed keyword (expected {kw})"))
        }
    }
}

/// The closed event schema: type name → required fields beyond the stamped
/// `t_ms`/`seq`/`type`/`stage`/`epoch` quintet.
pub const SCHEMA: &[(&str, &[&str])] = &[
    ("run_start", &["cmd", "level", "seed", "threads"]),
    ("run_end", &["wall_seconds"]),
    ("stage_start", &["stage"]),
    ("stage_end", &["stage", "seconds"]),
    ("epoch_end", &["loss", "seconds"]),
    ("guard_skip", &["loss", "grad_norm", "max_abs_loss", "max_grad_norm", "consecutive_skips"]),
    (
        "guard_rewind",
        &["loss", "grad_norm", "max_abs_loss", "max_grad_norm", "lr_scale", "rewinds_used"],
    ),
    ("checkpoint", &["path"]),
    ("resume", &["path"]),
    ("calibrate", &["temperature"]),
    ("mc_forecast", &["samples"]),
    ("eval", &["windows"]),
    ("span", &["path", "seconds"]),
    ("fatal", &["message", "exit_code"]),
    // Serving runtime (DESIGN.md §11).
    ("serve_start", &["path", "queue_capacity", "mc_samples", "floor"]),
    ("serve_stop", &["requests", "shed"]),
    ("serve_rejected", &["reason"]),
    ("serve_degraded", &["samples_used", "samples_requested"]),
    ("breaker_open", &["consecutive_faults", "cooldown_ms"]),
    ("breaker_half_open", &["cooldown_ms"]),
    ("breaker_close", &["cooldown_ms"]),
    ("reload_ok", &["path", "checksum"]),
    ("reload_rollback", &["path", "reason"]),
    // Request coalescing + forecast cache (DESIGN.md §12).
    ("serve_batch", &["size", "groups", "cache_hits"]),
    ("cache_invalidate", &["reason", "entries"]),
    // Sharded cluster (DESIGN.md §13). Breaker events gain an extra
    // `shard` field when emitted by the router's per-shard breakers.
    ("cluster_start", &["shards", "nodes"]),
    ("shard_assign", &["shard", "shards"]),
    ("worker_spawn", &["shard"]),
    ("worker_down", &["shard", "reason"]),
    ("worker_restart", &["shard", "restarts"]),
    ("worker_restart_failed", &["shard", "backoff_ms", "reason"]),
    ("serve_partial", &["shards_failed"]),
    // Replicated shards (DESIGN.md §16). `cluster_failover` marks one hop:
    // the attempt on `from_replica` failed with the typed `reason` and the
    // router moved the request to `to_replica`. `cluster_hedge` records a
    // hedged request (secondary fired after the hedge delay) with the
    // replica whose response was used. `faultnet_inject` is the harness
    // trail: `rpc` is the per-channel forecast-RPC index the seeded plan
    // keyed the fault on, `reason` the fault kind (drop/delay/…).
    ("cluster_failover", &["shard", "from_replica", "to_replica", "reason"]),
    ("cluster_hedge", &["shard", "primary", "secondary", "winner"]),
    ("faultnet_inject", &["shard", "replica", "rpc", "reason"]),
    ("reload_stage", &["path", "checksum"]),
    ("reload_abort", &["reason", "staged"]),
    ("cluster_reload_prepare", &["checksum", "acks"]),
    ("cluster_reload_commit", &["checksum"]),
    ("cluster_reload_abort", &["checksum", "reason"]),
    // Distributed request tracing (DESIGN.md §15). `trace`/`span`/`parent`
    // are 16-hex-digit ids; a root span's parent is its trace id, and a
    // scatter-RPC child span on a worker carries the router's span id.
    ("span_start", &["trace", "span", "parent", "phase"]),
    ("span_end", &["trace", "span", "seconds"]),
    ("trace_exemplar", &["trace", "seconds"]),
    ("cluster_scrape", &["workers", "scraped"]),
];

/// Fields that must be strings; every other schema field must be numeric
/// (where the non-finite markers "NaN"/"inf"/"-inf" count as numeric).
const STRING_FIELDS: &[&str] = &[
    "type", "stage", "cmd", "level", "path", "message", "reason", "checksum", "trace", "span",
    "parent", "phase", "status", "req",
];

/// A well-formed trace/span id: exactly 16 lowercase hex digits (the
/// rendering of a nonzero `u64` by `crate::trace::fmt_id`).
fn is_span_id(s: &str) -> bool {
    s.len() == 16 && s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

fn is_numericish(v: &JsonVal) -> bool {
    match v {
        JsonVal::Num(_) => true,
        JsonVal::Str(s) => matches!(s.as_str(), "NaN" | "inf" | "-inf"),
        _ => false,
    }
}

/// Validates one event line against the schema.
pub fn validate_line(line: &str) -> Result<(), String> {
    let pairs = parse_line(line)?;
    let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    // Stamped quintet.
    for k in ["t_ms", "seq", "epoch"] {
        match get(k) {
            Some(JsonVal::Num(_)) => {}
            Some(v) => return Err(format!("field {k:?} must be a number, got {v:?}")),
            None => return Err(format!("missing stamped field {k:?}")),
        }
    }
    let ty = match get("type") {
        Some(JsonVal::Str(s)) => s.clone(),
        Some(v) => return Err(format!("field \"type\" must be a string, got {v:?}")),
        None => return Err("missing stamped field \"type\"".into()),
    };
    if !matches!(get("stage"), Some(JsonVal::Str(_))) {
        return Err("missing or non-string stamped field \"stage\"".into());
    }
    let required = SCHEMA
        .iter()
        .find(|(name, _)| *name == ty)
        .map(|(_, req)| *req)
        .ok_or_else(|| format!("unknown event type {ty:?}"))?;
    for k in required {
        let v = get(k).ok_or_else(|| format!("event {ty:?} missing required field {k:?}"))?;
        let want_string = STRING_FIELDS.contains(k);
        let ok = if want_string { matches!(v, JsonVal::Str(_)) } else { is_numericish(v) };
        if !ok {
            return Err(format!(
                "event {ty:?} field {k:?} has wrong type: {v:?} (expected {})",
                if want_string { "string" } else { "number" }
            ));
        }
    }
    // Span ids must be well-formed hex wherever they appear on trace events.
    if matches!(ty.as_str(), "span_start" | "span_end" | "trace_exemplar") {
        for k in ["trace", "span", "parent"] {
            if let Some(JsonVal::Str(s)) = get(k) {
                if !is_span_id(s) {
                    return Err(format!("event {ty:?} field {k:?} is not a 16-hex id: {s:?}"));
                }
            }
        }
    }
    Ok(())
}

/// Validates a whole event-log payload (checksum trailer already stripped by
/// `stuq_artifact::read_verified`). Returns the number of validated events.
/// Enforces strictly increasing `seq` across the file, and span pairing:
/// a `span_end` must follow the `span_start` with the same `(trace, span)`
/// (so starts always precede ends), and a span id may start only once.
/// Unclosed spans are allowed — they are the crash evidence a SIGKILL'd
/// worker leaves behind, and `stuq trace` reports them.
pub fn validate_events(payload: &str) -> Result<u64, String> {
    let mut n = 0u64;
    let mut last_seq: Option<f64> = None;
    // (trace, span) → closed yet? Insertion means a span_start was seen.
    let mut spans: Vec<((String, String), bool)> = Vec::new();
    for (i, line) in payload.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}: {line}", i + 1))?;
        let pairs = parse_line(line).expect("validated line reparses");
        let get = |k: &str| {
            pairs.iter().find_map(|(key, v)| match v {
                JsonVal::Str(s) if key == k => Some(s.clone()),
                _ => None,
            })
        };
        let seq = pairs
            .iter()
            .find_map(|(k, v)| match (k.as_str(), v) {
                ("seq", JsonVal::Num(n)) => Some(*n),
                _ => None,
            })
            .expect("validated line has seq");
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("line {}: seq {seq} not greater than previous {prev}", i + 1));
            }
        }
        last_seq = Some(seq);
        match get("type").as_deref() {
            Some("span_start") => {
                let key = (get("trace").unwrap(), get("span").unwrap());
                if spans.iter().any(|(k, _)| *k == key) {
                    return Err(format!("line {}: span {} started twice", i + 1, key.1));
                }
                spans.push((key, false));
            }
            Some("span_end") => {
                let key = (get("trace").unwrap(), get("span").unwrap());
                match spans.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, closed @ false)) => *closed = true,
                    Some(_) => {
                        return Err(format!("line {}: span {} ended twice", i + 1, key.1));
                    }
                    None => {
                        return Err(format!(
                            "line {}: span_end for {} without a prior span_start",
                            i + 1,
                            key.1
                        ));
                    }
                }
            }
            _ => {}
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_stamps_context_and_escapes() {
        let line = Event::new("fatal")
            .str("message", "bad \"path\"\n")
            .uint("exit_code", 1)
            .render(42, 7, "awa", 3);
        assert_eq!(
            line,
            "{\"t_ms\":42,\"seq\":7,\"type\":\"fatal\",\"stage\":\"awa\",\"epoch\":3,\
             \"message\":\"bad \\\"path\\\"\\n\",\"exit_code\":1}\n"
        );
        assert!(validate_line(&line).is_ok(), "{:?}", validate_line(&line));
    }

    #[test]
    fn explicit_stage_suppresses_stamp() {
        let line = Event::new("stage_start").str("stage", "calibrate").render(1, 0, "awa", 9);
        let pairs = parse_line(&line).unwrap();
        let stages: Vec<_> = pairs.iter().filter(|(k, _)| k == "stage").collect();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].1, JsonVal::Str("calibrate".into()));
    }

    #[test]
    fn non_finite_floats_become_markers() {
        let line = Event::new("epoch_end")
            .num("loss", f64::NAN)
            .num("seconds", f64::INFINITY)
            .render(0, 0, "pretrain", 0);
        assert!(line.contains("\"loss\":\"NaN\""));
        assert!(line.contains("\"seconds\":\"inf\""));
        validate_line(&line).unwrap();
    }

    #[test]
    fn parser_roundtrips_types() {
        let pairs =
            parse_line("{\"a\":1.5,\"b\":\"x\\u0041\",\"c\":true,\"d\":null,\"e\":-2e-3}").unwrap();
        assert_eq!(pairs[0].1, JsonVal::Num(1.5));
        assert_eq!(pairs[1].1, JsonVal::Str("xA".into()));
        assert_eq!(pairs[2].1, JsonVal::Bool(true));
        assert_eq!(pairs[3].1, JsonVal::Null);
        assert_eq!(pairs[4].1, JsonVal::Num(-0.002));
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(parse_line("{\"a\":{\"n\":1}}").is_err(), "nested objects");
        assert!(parse_line("{\"a\":1} extra").is_err(), "trailing bytes");
        assert!(parse_line("{\"a\":1e}").is_err(), "malformed number");
    }

    #[test]
    fn schema_rejects_unknown_and_incomplete() {
        let unknown = Event::new("mystery").render(0, 0, "x", 0);
        assert!(validate_line(&unknown).unwrap_err().contains("unknown event type"));
        let incomplete = Event::new("guard_skip").num("loss", 1.0).render(0, 0, "x", 0);
        assert!(validate_line(&incomplete).unwrap_err().contains("missing required field"));
        let wrong_type =
            Event::new("fatal").num("message", 3.0).uint("exit_code", 1).render(0, 0, "x", 0);
        assert!(validate_line(&wrong_type).unwrap_err().contains("wrong type"));
    }

    fn start(trace: &str, span: &str, parent: &str, t: u64, seq: u64) -> String {
        Event::new("span_start")
            .str("trace", trace)
            .str("span", span)
            .str("parent", parent)
            .str("phase", "request")
            .render(t, seq, "serve", 0)
    }

    fn end(trace: &str, span: &str, t: u64, seq: u64) -> String {
        Event::new("span_end")
            .str("trace", trace)
            .str("span", span)
            .num("seconds", 0.001)
            .render(t, seq, "serve", 0)
    }

    #[test]
    fn span_events_validate_and_require_hex_ids() {
        const T: &str = "00000000deadbeef";
        const S: &str = "00000000cafef00d";
        validate_line(&start(T, S, T, 0, 0)).unwrap();
        validate_line(&end(T, S, 1, 1)).unwrap();
        let bad = Event::new("span_start")
            .str("trace", "not-hex")
            .str("span", S)
            .str("parent", T)
            .str("phase", "request")
            .render(0, 0, "serve", 0);
        assert!(validate_line(&bad).unwrap_err().contains("16-hex"));
        let missing_parent = Event::new("span_start")
            .str("trace", T)
            .str("span", S)
            .str("phase", "request")
            .render(0, 0, "serve", 0);
        assert!(validate_line(&missing_parent).unwrap_err().contains("parent"));
    }

    #[test]
    fn span_pairing_is_enforced_across_the_file() {
        const T: &str = "00000000deadbeef";
        const S: &str = "00000000cafef00d";
        let ok = format!("{}{}", start(T, S, T, 0, 0), end(T, S, 1, 1));
        assert_eq!(validate_events(&ok).unwrap(), 2);
        // An unclosed span is crash evidence, not an error.
        let unclosed = start(T, S, T, 0, 0);
        assert_eq!(validate_events(&unclosed).unwrap(), 1);
        // An end before (or without) its start is an error.
        let orphan_end = end(T, S, 0, 0);
        assert!(validate_events(&orphan_end).unwrap_err().contains("without a prior span_start"));
        let swapped = format!("{}{}", end(T, S, 0, 0), start(T, S, T, 1, 1));
        assert!(validate_events(&swapped).is_err());
        // Restarting or re-ending one span id is an error.
        let twice = format!("{}{}", start(T, S, T, 0, 0), start(T, S, T, 1, 1));
        assert!(validate_events(&twice).unwrap_err().contains("started twice"));
        let double_end = format!("{}{}{}", start(T, S, T, 0, 0), end(T, S, 1, 1), end(T, S, 2, 2));
        assert!(validate_events(&double_end).unwrap_err().contains("ended twice"));
    }

    #[test]
    fn file_validation_enforces_seq_order() {
        let a = Event::new("run_start")
            .str("cmd", "train")
            .str("level", "trace")
            .uint("seed", 1)
            .uint("threads", 2)
            .render(0, 0, "init", 0);
        let b = Event::new("run_end").num("wall_seconds", 0.5).render(10, 1, "done", 0);
        let good = format!("{a}{b}");
        assert_eq!(validate_events(&good).unwrap(), 2);
        let bad = format!("{b}{a}");
        assert!(validate_events(&bad).unwrap_err().contains("seq"));
    }
}
