//! `stuq-obs` — observability substrate for the DeepSTUQ workspace.
//!
//! One crate, three concerns (DESIGN.md §10):
//!
//! * **metrics** ([`metrics()`], [`Metrics`]) — a fixed catalog of atomic
//!   counters/gauges/histograms. Hot paths pay one relaxed atomic load to
//!   check the level plus one relaxed RMW per recorded value; nothing
//!   allocates, nothing locks.
//! * **spans** ([`span!`], [`SpanGuard`]) — hierarchical wall-clock timing
//!   (`train/awa/epoch`) aggregated per path; at `trace` each span close
//!   also emits an event. Spans are for phase/epoch granularity, not inner
//!   loops.
//! * **events** ([`emit`], [`Event`], [`flush`]) — structured JSONL records
//!   buffered in memory and flushed *whole-file* through
//!   `stuq_artifact::write_atomic_checksummed`, so the on-disk log is always
//!   complete and checksummed: a crash loses at most the events since the
//!   last flush, never yields a torn file.
//!
//! **Determinism contract**: this crate observes, it never participates.
//! No function here consumes RNG state, reorders computation, or returns a
//! value instrumented code branches on (recording APIs return `()`/`bool`
//! for tests only). Enabling `trace` therefore cannot change a single model
//! byte — CI proves it with a byte-identity cmp at `STUQ_THREADS=1/2/4`.
//!
//! Levels: `off` (everything short-circuits), `summary` (counters, gauges,
//! phase spans, epoch events — the default, <2% epoch overhead), `trace`
//! (adds per-batch/per-fan-out timing histograms and span events).

pub mod events;
pub mod manifest;
pub mod metrics;
pub mod trace;

pub use events::{parse_line, validate_events, validate_line, Event, JsonVal};
pub use manifest::{git_describe, PhaseTiming, RunManifest};
pub use metrics::{Counter, Gauge, Histogram, Metrics};

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Event log file name inside the telemetry directory.
pub const EVENTS_FILE: &str = "events.jsonl";
/// Prometheus exposition file name inside the telemetry directory.
pub const METRICS_FILE: &str = "metrics.prom";
/// Run manifest file name inside the telemetry directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Telemetry verbosity. Ordering matters: `Trace` implies `Summary`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Everything short-circuits; zero work beyond one atomic load.
    Off = 0,
    /// Counters, gauges, phase spans, epoch-granularity events (default).
    Summary = 1,
    /// Adds per-batch / per-fan-out timing histograms and span events.
    Trace = 2,
}

impl Level {
    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "summary" => Some(Level::Summary),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Trace => "trace",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Summary as u8);

/// Sets the global telemetry level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current global telemetry level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Summary,
        _ => Level::Trace,
    }
}

/// Whether telemetry at `l` (or higher verbosity) is enabled. This is the
/// single hot-path gate: one relaxed atomic load.
#[inline]
pub fn enabled(l: Level) -> bool {
    LEVEL.load(Ordering::Relaxed) >= l as u8
}

/// Shorthand for `enabled(Level::Summary)`.
#[inline]
pub fn summary_enabled() -> bool {
    enabled(Level::Summary)
}

/// Shorthand for `enabled(Level::Trace)`.
#[inline]
pub fn trace_enabled() -> bool {
    enabled(Level::Trace)
}

static METRICS: Metrics = Metrics::new();

/// The global metric catalog.
#[inline]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

// --- recorder ---------------------------------------------------------------

struct Recorder {
    dir: Option<PathBuf>,
    lines: Vec<String>,
    seq: u64,
    t0: Instant,
    stage: &'static str,
    epoch: u64,
    /// Buffered-event byte bound; exceeding it seals the buffer into a
    /// checksummed `events-NNNNN.jsonl` segment (None = unbounded).
    roll_bytes: Option<u64>,
    /// Bytes currently buffered in `lines`.
    bytes: u64,
    /// Next segment number to seal.
    segment: u64,
}

fn recorder() -> MutexGuard<'static, Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER
        .get_or_init(|| {
            Mutex::new(Recorder {
                dir: None,
                lines: Vec::new(),
                seq: 0,
                t0: Instant::now(),
                stage: "init",
                epoch: 0,
                roll_bytes: None,
                bytes: 0,
                segment: 1,
            })
        })
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// (Re)initialises the recorder for a run: sets the level, points the sinks
/// at `dir` (None = in-memory only, events are dropped), clears buffered
/// events and any stale rolled segments, resets all metrics, span
/// aggregates and exemplar state, and restarts the clock.
pub fn init(dir: Option<&Path>, level: Level) {
    set_level(level);
    let mut r = recorder();
    r.dir = dir.map(Path::to_path_buf);
    r.lines.clear();
    r.seq = 0;
    r.t0 = Instant::now();
    r.stage = "init";
    r.epoch = 0;
    r.roll_bytes = None;
    r.bytes = 0;
    r.segment = 1;
    drop(r);
    if let Some(dir) = dir {
        for seg in segment_files(dir) {
            let _ = std::fs::remove_file(seg);
        }
    }
    METRICS.reset();
    spans().clear();
    trace::reset();
}

/// Bounds the in-memory event buffer: once the buffered lines exceed
/// `bytes`, they are sealed to a checksummed `events-NNNNN.jsonl` segment in
/// the sink directory and the buffer restarts (seq continues). `None`
/// removes the bound. Long-running serve loops use this so the event log
/// cannot grow without limit.
pub fn set_events_roll_bytes(bytes: Option<u64>) {
    recorder().roll_bytes = bytes.map(|b| b.max(1));
}

/// Rolled event-log segments in `dir`, in seal order (the live tail is
/// [`EVENTS_FILE`]; readers consume segments first, then the tail).
pub fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("events-") && n.ends_with(".jsonl"))
                })
                .collect()
        })
        .unwrap_or_default();
    segs.sort();
    segs
}

/// Telemetry sink directory, if one was configured via [`init`].
pub fn telemetry_dir() -> Option<PathBuf> {
    recorder().dir.clone()
}

/// Sets the stage stamped onto subsequent events (e.g. `pretrain`).
pub fn set_stage(stage: &'static str) {
    recorder().stage = stage;
}

/// Sets the epoch stamped onto subsequent events.
pub fn set_epoch(epoch: u64) {
    recorder().epoch = epoch;
}

/// Records `ev` into the event buffer (no-op when the level is `Off` or no
/// sink directory is configured). Context (`t_ms`, `seq`, `stage`, `epoch`)
/// is stamped here.
pub fn emit(ev: Event) {
    if !enabled(Level::Summary) {
        return;
    }
    let mut r = recorder();
    if r.dir.is_none() {
        return;
    }
    let t_ms = r.t0.elapsed().as_millis() as u64;
    let seq = r.seq;
    let line = ev.render(t_ms, seq, r.stage, r.epoch);
    r.seq += 1;
    r.bytes += line.len() as u64;
    r.lines.push(line);
    if r.roll_bytes.is_some_and(|max| r.bytes >= max) {
        roll_segment(&mut r);
    }
}

/// Seals the buffered lines into the next checksummed segment file. On a
/// write failure the buffer is kept (and retried on the next emit) so
/// events are never dropped silently.
fn roll_segment(r: &mut Recorder) {
    let Some(dir) = r.dir.clone() else {
        return;
    };
    let path = dir.join(format!("events-{:05}.jsonl", r.segment));
    let payload: String = r.lines.concat();
    if stuq_artifact::write_atomic_checksummed(path, payload.as_bytes()).is_ok() {
        r.segment += 1;
        r.lines.clear();
        r.bytes = 0;
    }
}

/// Flushes the buffered event log and the metric exposition to the sink
/// directory. The event log is written whole-file with a checksum trailer
/// (`stuq_artifact::write_atomic_checksummed`), so readers always see a
/// complete, verifiable file. No-op without a sink directory.
pub fn flush() -> io::Result<()> {
    trace::flush_exemplars();
    let r = recorder();
    let Some(dir) = r.dir.clone() else {
        return Ok(());
    };
    let payload: String = r.lines.concat();
    drop(r);
    stuq_artifact::write_atomic_checksummed(dir.join(EVENTS_FILE), payload.as_bytes())?;
    stuq_artifact::write_atomic(dir.join(METRICS_FILE), METRICS.expose().as_bytes())
}

/// Records a fatal error (with the process exit code about to be used) and
/// flushes, so the failure reaches the event log before the process dies.
/// Flush errors are swallowed — there is nowhere left to report them.
pub fn emit_fatal(message: &str, exit_code: i32) {
    emit(Event::new("fatal").str("message", message).uint("exit_code", exit_code as u64));
    let _ = flush();
}

/// Writes `manifest` as `manifest.json` in the sink directory (no-op
/// without one).
pub fn write_manifest(manifest: &RunManifest) -> io::Result<()> {
    let Some(dir) = telemetry_dir() else {
        return Ok(());
    };
    stuq_artifact::write_atomic(dir.join(MANIFEST_FILE), manifest.to_json().as_bytes())
}

/// Renders the current metric catalog in Prometheus text format.
pub fn expose() -> String {
    METRICS.expose()
}

// --- spans ------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SpanAgg {
    path: String,
    count: u64,
    total_s: f64,
    max_s: f64,
}

fn spans() -> MutexGuard<'static, Vec<SpanAgg>> {
    static SPANS: OnceLock<Mutex<Vec<SpanAgg>>> = OnceLock::new();
    SPANS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span; created by [`span!`]. Timing runs from creation
/// to drop. Nested guards on the same thread build hierarchical paths
/// (`train/awa/epoch`).
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Enters span `name` (a no-op guard when telemetry is `off`).
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled(Level::Summary) {
            return SpanGuard { name, start: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard { name, start: Some(Instant::now()) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let seconds = start.elapsed().as_secs_f64();
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // Defensive: only pop our own frame (a leaked guard dropped out
            // of order must not corrupt sibling paths).
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
            path
        });
        {
            let mut aggs = spans();
            match aggs.iter_mut().find(|a| a.path == path) {
                Some(a) => {
                    a.count += 1;
                    a.total_s += seconds;
                    a.max_s = a.max_s.max(seconds);
                }
                None => aggs.push(SpanAgg {
                    path: path.clone(),
                    count: 1,
                    total_s: seconds,
                    max_s: seconds,
                }),
            }
        }
        if enabled(Level::Trace) {
            emit(Event::new("span").str("path", path).num("seconds", seconds));
        }
    }
}

/// Opens a timed span: `let _span = span!("pretrain");`. The span closes
/// when the guard drops. Hierarchy comes from nesting, not the name.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Span aggregates in first-entered order — the phase table for the run
/// manifest and the end-of-run summary.
pub fn span_timings() -> Vec<PhaseTiming> {
    spans()
        .iter()
        .map(|a| PhaseTiming {
            path: a.path.clone(),
            count: a.count,
            total_s: a.total_s,
            max_s: a.max_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Obs globals (recorder, metrics, spans) are process-wide; tests that
    /// touch them serialise on this lock.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("stuq_obs_test").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn off_level_drops_everything() {
        let _l = test_lock();
        let dir = tmpdir("off");
        std::fs::remove_file(dir.join(EVENTS_FILE)).ok();
        init(Some(&dir), Level::Off);
        emit(Event::new("calibrate").num("temperature", 1.0));
        {
            let _span = span!("ignored");
        }
        assert_eq!(recorder().lines.len(), 0);
        assert!(span_timings().is_empty());
        init(None, Level::Summary);
    }

    #[test]
    fn events_flush_checksummed_and_validate() {
        let _l = test_lock();
        let dir = tmpdir("flush");
        init(Some(&dir), Level::Summary);
        set_stage("pretrain");
        set_epoch(2);
        emit(
            Event::new("run_start")
                .str("cmd", "train")
                .str("level", "summary")
                .uint("seed", 7)
                .uint("threads", 2),
        );
        emit(Event::new("epoch_end").num("loss", 0.5).num("seconds", 0.01));
        flush().unwrap();
        let payload = stuq_artifact::read_verified(dir.join(EVENTS_FILE)).unwrap();
        let text = String::from_utf8(payload).unwrap();
        assert_eq!(validate_events(&text).unwrap(), 2);
        assert!(text.contains("\"stage\":\"pretrain\""));
        assert!(text.contains("\"epoch\":2"));
        let prom = std::fs::read_to_string(dir.join(METRICS_FILE)).unwrap();
        assert!(prom.contains("stuq_opt_steps_total"));
        init(None, Level::Summary);
    }

    #[test]
    fn sink_survives_mid_write_abort() {
        let _l = test_lock();
        let dir = tmpdir("abort");
        init(Some(&dir), Level::Summary);
        emit(Event::new("calibrate").num("temperature", 0.9));
        flush().unwrap();
        let good = std::fs::read(dir.join(EVENTS_FILE)).unwrap();

        // Simulate a crash mid-write: a torn file (truncated before the
        // checksum trailer) must be *detected*, not half-parsed.
        std::fs::write(dir.join(EVENTS_FILE), &good[..good.len() / 2]).unwrap();
        let err = stuq_artifact::read_verified(dir.join(EVENTS_FILE)).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // The atomic writer itself never produces that state: re-flush
        // replaces the file wholesale and it verifies again.
        emit(Event::new("mc_forecast").uint("samples", 8));
        flush().unwrap();
        let payload = stuq_artifact::read_verified(dir.join(EVENTS_FILE)).unwrap();
        assert_eq!(validate_events(std::str::from_utf8(&payload).unwrap()).unwrap(), 2);
        init(None, Level::Summary);
    }

    #[test]
    fn event_log_rolls_into_checksummed_segments() {
        let _l = test_lock();
        let dir = tmpdir("roll");
        std::fs::remove_file(dir.join(EVENTS_FILE)).ok();
        init(Some(&dir), Level::Summary);
        set_events_roll_bytes(Some(256));
        for _ in 0..24 {
            emit(Event::new("eval").uint("windows", 1));
        }
        flush().unwrap();
        let segs = segment_files(&dir);
        assert!(segs.len() >= 2, "24 events over a 256-byte bound must roll");
        // Segments then the live tail concatenate into one valid stream —
        // seq stays strictly increasing across the roll boundaries.
        let mut files = segs.clone();
        files.push(dir.join(EVENTS_FILE));
        let mut text = String::new();
        for p in &files {
            text.push_str(&String::from_utf8(stuq_artifact::read_verified(p).unwrap()).unwrap());
        }
        assert_eq!(validate_events(&text).unwrap(), 24);
        // Re-init clears stale segments so a new run cannot mix with them.
        init(Some(&dir), Level::Summary);
        assert!(segment_files(&dir).is_empty());
        init(None, Level::Summary);
    }

    #[test]
    fn exemplar_events_flush_for_partial_windows() {
        let _l = test_lock();
        let dir = tmpdir("exemplar");
        init(Some(&dir), Level::Trace);
        for i in 0..7u64 {
            trace::note_request(trace::derive_trace_id(3, i), 0.001 * (i + 1) as f64);
        }
        flush().unwrap();
        let text = String::from_utf8(stuq_artifact::read_verified(dir.join(EVENTS_FILE)).unwrap())
            .unwrap();
        let n = text.matches("\"type\":\"trace_exemplar\"").count();
        assert_eq!(n, 4, "partial window keeps only the worst-N: {text}");
        // The slowest request of the window is among the exemplars.
        assert!(text.contains(&trace::fmt_id(trace::derive_trace_id(3, 6))), "{text}");
        validate_events(&text).unwrap();
        assert_eq!(metrics().trace_exemplars.get(), 4);
        init(None, Level::Summary);
    }

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let _l = test_lock();
        init(None, Level::Summary);
        {
            let _outer = span!("train");
            {
                let _inner = span!("epoch");
            }
            {
                let _inner = span!("epoch");
            }
        }
        let timings = span_timings();
        let epoch = timings.iter().find(|t| t.path == "train/epoch").expect("train/epoch");
        assert_eq!(epoch.count, 2);
        let train = timings.iter().find(|t| t.path == "train").expect("train");
        assert_eq!(train.count, 1);
        assert!(train.total_s >= epoch.total_s);
        init(None, Level::Summary);
    }

    #[test]
    fn emit_without_dir_is_dropped() {
        let _l = test_lock();
        init(None, Level::Summary);
        emit(Event::new("eval").uint("windows", 3));
        assert_eq!(recorder().lines.len(), 0, "no sink dir -> no buffering");
    }

    #[test]
    fn fatal_reaches_disk() {
        let _l = test_lock();
        let dir = tmpdir("fatal");
        init(Some(&dir), Level::Summary);
        emit_fatal("model file corrupt", 1);
        let payload = stuq_artifact::read_verified(dir.join(EVENTS_FILE)).unwrap();
        let text = String::from_utf8(payload).unwrap();
        assert_eq!(validate_events(&text).unwrap(), 1);
        assert!(text.contains("\"type\":\"fatal\""));
        assert!(text.contains("\"exit_code\":1"));
        init(None, Level::Summary);
    }
}
