//! Per-run manifest: everything needed to reproduce (or refuse to trust)
//! a set of reported numbers.
//!
//! The manifest captures the inputs that determine a run bit-for-bit (seed,
//! config hash, thread count, code version) next to its outputs (phase
//! timings, final metrics), so a BENCH_*.json or EXPERIMENTS.md figure can
//! be traced back to the exact run that produced it. Written once at run
//! end as `manifest.json` beside the event log.

use std::time::{SystemTime, UNIX_EPOCH};

/// Aggregate timing for one span path (e.g. `train/pretrain/epoch`).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Span path.
    pub path: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total wall-clock seconds across entries.
    pub total_s: f64,
    /// Longest single entry in seconds.
    pub max_s: f64,
}

/// The run manifest; see module docs. Build with [`RunManifest::new`], fill
/// the output fields as the run progresses, render with
/// [`RunManifest::to_json`].
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Subcommand that ran (`train`, `evaluate`, …).
    pub cmd: String,
    /// RNG seed for the run.
    pub seed: u64,
    /// FNV-1a 64 digest of the rendered run configuration (16 hex digits).
    pub config_hash: String,
    /// Worker threads (resolved `STUQ_THREADS` / available parallelism).
    pub threads: usize,
    /// `git describe --always --dirty` of the working tree, or `unknown`.
    pub git: String,
    /// Telemetry level the run recorded at.
    pub telemetry_level: String,
    /// Unix epoch milliseconds at which the run started.
    pub started_unix_ms: u64,
    /// Total wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Span-derived phase timings, in first-entered order.
    pub phases: Vec<PhaseTiming>,
    /// Final scalar metrics (name, value), e.g. final loss, temperature.
    pub final_metrics: Vec<(String, f64)>,
}

impl RunManifest {
    /// Starts a manifest stamped with the current wall-clock time.
    pub fn new(cmd: impl Into<String>, seed: u64, config_bytes: &[u8], threads: usize) -> Self {
        Self {
            cmd: cmd.into(),
            seed,
            config_hash: format!("{:016x}", stuq_artifact::fnv1a64(config_bytes)),
            threads,
            git: git_describe(),
            telemetry_level: crate::level().as_str().to_string(),
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            wall_seconds: 0.0,
            phases: Vec::new(),
            final_metrics: Vec::new(),
        }
    }

    /// Renders the manifest as pretty-ish JSON (one field per line, phases
    /// and metrics one entry per line — diff-friendly).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"stuq-run-manifest-v1\",\n");
        out.push_str(&format!("  \"cmd\": {},\n", json_str(&self.cmd)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"config_hash\": {},\n", json_str(&self.config_hash)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"git\": {},\n", json_str(&self.git)));
        out.push_str(&format!("  \"telemetry_level\": {},\n", json_str(&self.telemetry_level)));
        out.push_str(&format!("  \"started_unix_ms\": {},\n", self.started_unix_ms));
        out.push_str(&format!("  \"wall_seconds\": {},\n", json_num(self.wall_seconds)));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": {}, \"count\": {}, \"total_s\": {}, \"max_s\": {}}}{}\n",
                json_str(&p.path),
                p.count,
                json_num(p.total_s),
                json_num(p.max_s),
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"final_metrics\": {\n");
        for (i, (k, v)) in self.final_metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {}{}\n",
                json_str(k),
                json_num(*v),
                if i + 1 < self.final_metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".into()
    } else if v == f64::INFINITY {
        "\"inf\"".into()
    } else if v == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else {
        format!("{v}")
    }
}

/// `git describe --always --dirty` of the current working tree, single
/// line, or `"unknown"` when git or the repo is unavailable (e.g. running
/// from an exported tarball).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_renders_and_hashes_config() {
        let mut m = RunManifest::new("train", 17, b"epochs=1", 4);
        m.wall_seconds = 1.25;
        m.phases.push(PhaseTiming {
            path: "train/pretrain".into(),
            count: 2,
            total_s: 1.0,
            max_s: 0.6,
        });
        m.final_metrics.push(("loss".into(), 0.5));
        m.final_metrics.push(("temperature".into(), f64::NAN));
        let json = m.to_json();
        assert!(json.contains("\"schema\": \"stuq-run-manifest-v1\""));
        assert!(json.contains("\"seed\": 17"));
        assert!(json.contains(&format!(
            "\"config_hash\": \"{:016x}\"",
            stuq_artifact::fnv1a64(b"epochs=1")
        )));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"path\": \"train/pretrain\", \"count\": 2"));
        assert!(json.contains("\"temperature\": \"NaN\""), "{json}");
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
