//! Criterion microbenchmarks for the hot kernels of the reproduction.
//!
//! Includes the DESIGN.md ablation: the fused NAPL row-wise matmul tape op
//! versus composing the same computation from per-node tape primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind, Prediction};
use stuq_nn::layers::FwdCtx;
use stuq_nn::lbfgs::{minimize, LbfgsOptions};
use stuq_tensor::{StuqRng, Tape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StuqRng::new(1);
    for n in [64usize, 128] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        c.bench_function(&format!("tensor/matmul_{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
}

fn bench_napl_fused_vs_composed(c: &mut Criterion) {
    let mut rng = StuqRng::new(2);
    let (n, ci, co) = (64usize, 33usize, 32usize);
    let z = Tensor::randn(&[n, ci], 1.0, &mut rng);
    let w = Tensor::randn(&[n, ci * co], 0.2, &mut rng);

    c.bench_function("napl/fused_rowwise_fwd_bwd", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let zi = tape.param(0, z.clone());
            let wi = tape.param(1, w.clone());
            let y = tape.rowwise_matmul(zi, wi, ci, co);
            let sq = tape.square(y);
            let loss = tape.mean_all(sq);
            black_box(tape.backward(loss))
        })
    });

    c.bench_function("napl/composed_per_node_fwd_bwd", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let zi = tape.param(0, z.clone());
            // One matmul per node with the node's private weight matrix.
            let mut loss_acc = None;
            for node in 0..n {
                let z_row = tape.slice_rows(zi, node, node + 1);
                let w_node =
                    tape.constant(w.slice_rows(node, node + 1).reshape(&[ci, co]));
                let y = tape.matmul(z_row, w_node);
                let sq = tape.square(y);
                let l = tape.mean_all(sq);
                loss_acc = Some(match loss_acc {
                    None => l,
                    Some(acc) => tape.add(acc, l),
                });
            }
            black_box(tape.backward(loss_acc.unwrap()))
        })
    });
}

fn agcrn_fixture(n: usize, rng: &mut StuqRng) -> (Agcrn, Tensor) {
    let cfg = AgcrnConfig::new(n, 12)
        .with_capacity(32, 8, 2)
        .with_dropout(0.1, 0.2)
        .with_head(HeadKind::Gaussian);
    let model = Agcrn::new(cfg, rng);
    let x = Tensor::randn(&[12, n], 1.0, rng);
    (model, x)
}

fn bench_agcrn(c: &mut Criterion) {
    let mut rng = StuqRng::new(3);
    let (model, x) = agcrn_fixture(50, &mut rng);

    let mut group = c.benchmark_group("agcrn");
    group.sample_size(10);
    group.bench_function("forward_n50", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let mut ctx = FwdCtx::eval(&mut rng);
            black_box(model.forward(&mut tape, &x, &mut ctx))
        })
    });
    group.bench_function("train_step_n50", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let mut ctx = FwdCtx::train(&mut rng);
            let Prediction::Gaussian { mu, logvar } = model.forward(&mut tape, &x, &mut ctx)
            else {
                unreachable!()
            };
            let y = tape.constant(Tensor::zeros(&[50, 12]));
            let l = stuq_nn::loss::combined(&mut tape, mu, logvar, y, 0.1);
            black_box(tape.backward(l))
        })
    });
    group.bench_function("mc_inference_10_n50", |bench| {
        bench.iter(|| black_box(deepstuq::mc::mc_forecast(&model, &x, 10, &mut rng)))
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.bench_function("simulate_50n_1day", |bench| {
        let net = stuq_graph::generate_road_network(50, 80, 7);
        let cfg = stuq_traffic::SimulationConfig::default();
        let mut rng = StuqRng::new(7);
        bench.iter(|| black_box(stuq_traffic::simulate_traffic(&net, 288, &cfg, &mut rng)))
    });
    group.bench_function("generate_network_100n", |bench| {
        bench.iter(|| black_box(stuq_graph::generate_road_network(100, 150, 7)))
    });
    group.bench_function("lbfgs_temperature_10k", |bench| {
        let mut rng = StuqRng::new(7);
        let residual_sq: Vec<f64> = (0..10_000).map(|_| rng.normal_f64().powi(2)).collect();
        bench.iter(|| {
            let r = minimize(
                |t| {
                    let tt = t[0].max(1e-6);
                    let (mut f, mut g) = (0.0, 0.0);
                    for &r2 in &residual_sq {
                        f += -(tt * tt).ln() + tt * tt * r2;
                        g += -2.0 / tt + 2.0 * tt * r2;
                    }
                    let n = residual_sq.len() as f64;
                    (f / n, vec![g / n])
                },
                &[1.0],
                &LbfgsOptions::default(),
            );
            black_box(r)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_napl_fused_vs_composed,
    bench_agcrn,
    bench_substrates
);
criterion_main!(benches);
