//! Microbenchmarks for the hot kernels of the reproduction.
//!
//! Runs on the in-tree [`stuq_bench::timing`] harness (the build environment
//! is offline, so Criterion is unavailable). Covers the blocked kernels
//! against the seed's scalar reference, serial-vs-parallel dispatch, the
//! DESIGN.md NAPL fused-vs-composed ablation, whole-model AGCRN costs, and
//! the data substrates. `cargo bench -p stuq-bench` prints one line per
//! benchmark; for the machine-readable speedup record see
//! `cargo run --release -p stuq-bench --bin bench_pr1`.

use std::hint::black_box;
use stuq_bench::timing::{bench, bench_with, Sample};
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind, Prediction};
use stuq_nn::layers::FwdCtx;
use stuq_nn::lbfgs::{minimize, LbfgsOptions};
use stuq_tensor::{kernels, StuqRng, Tape, Tensor};

fn show(s: &Sample) {
    println!("  {s}");
}

fn bench_matmul() {
    println!("tensor/matmul");
    let mut rng = StuqRng::new(1);
    for n in [64usize, 128, 307] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        let flops = 2.0 * (n * n * n) as f64;
        let blocked =
            bench(&format!("matmul_{n}x{n} (blocked+parallel)"), || black_box(a.matmul(&b)));
        let serial = bench(&format!("matmul_{n}x{n} (blocked, 1 thread)"), || {
            stuq_parallel::with_serial(|| black_box(a.matmul(&b)))
        });
        let reference = bench(&format!("matmul_{n}x{n} (seed reference)"), || {
            black_box(a.matmul_reference(&b))
        });
        for s in [&blocked, &serial, &reference] {
            println!("  {s}  {:6.2} GFLOP/s", s.gflops(flops));
        }
        println!(
            "    speedup vs reference: {:.2}x blocked, {:.2}x parallel ({} threads)",
            reference.best_s / serial.best_s,
            reference.best_s / blocked.best_s,
            stuq_parallel::num_threads(),
        );
    }
}

fn bench_napl_fused_vs_composed() {
    println!("napl (fused tape op vs per-node composition)");
    let mut rng = StuqRng::new(2);
    let (n, ci, co) = (64usize, 33usize, 32usize);
    let z = Tensor::randn(&[n, ci], 1.0, &mut rng);
    let w = Tensor::randn(&[n, ci * co], 0.2, &mut rng);

    show(&bench("fused_rowwise_fwd_bwd", || {
        let mut tape = Tape::new();
        let zi = tape.param(0, z.clone());
        let wi = tape.param(1, w.clone());
        let y = tape.rowwise_matmul(zi, wi, ci, co);
        let sq = tape.square(y);
        let loss = tape.mean_all(sq);
        black_box(tape.backward(loss))
    }));

    show(&bench("composed_per_node_fwd_bwd", || {
        let mut tape = Tape::new();
        let zi = tape.param(0, z.clone());
        // One matmul per node with the node's private weight matrix.
        let mut loss_acc = None;
        for node in 0..n {
            let z_row = tape.slice_rows(zi, node, node + 1);
            let w_node = tape.constant(w.slice_rows(node, node + 1).reshape(&[ci, co]));
            let y = tape.matmul(z_row, w_node);
            let sq = tape.square(y);
            let l = tape.mean_all(sq);
            loss_acc = Some(match loss_acc {
                None => l,
                Some(acc) => tape.add(acc, l),
            });
        }
        black_box(tape.backward(loss_acc.unwrap()))
    }));

    let rw = bench("rowwise_kernel (blocked)", || {
        black_box(kernels::rowwise_matmul(z.data(), w.data(), n, ci, co))
    });
    let rw_ref = bench("rowwise_kernel (seed reference)", || {
        black_box(kernels::rowwise_matmul_reference(z.data(), w.data(), n, ci, co))
    });
    show(&rw);
    show(&rw_ref);
    println!("    rowwise kernel speedup vs reference: {:.2}x", rw_ref.best_s / rw.best_s);
}

fn agcrn_fixture(n: usize, rng: &mut StuqRng) -> (Agcrn, Tensor) {
    let cfg = AgcrnConfig::new(n, 12)
        .with_capacity(32, 8, 2)
        .with_dropout(0.1, 0.2)
        .with_head(HeadKind::Gaussian);
    let model = Agcrn::new(cfg, rng);
    let x = Tensor::randn(&[12, n], 1.0, rng);
    (model, x)
}

fn bench_agcrn() {
    println!("agcrn (n = 50)");
    let mut rng = StuqRng::new(3);
    let (model, x) = agcrn_fixture(50, &mut rng);

    show(&bench_with("forward_n50", 0.5, 50, || {
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&mut rng);
        black_box(model.forward(&mut tape, &x, &mut ctx))
    }));
    show(&bench_with("train_step_n50", 0.5, 50, || {
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::train(&mut rng);
        let Prediction::Gaussian { mu, logvar } = model.forward(&mut tape, &x, &mut ctx) else {
            unreachable!()
        };
        let y = tape.constant(Tensor::zeros(&[50, 12]));
        let l = stuq_nn::loss::combined(&mut tape, mu, logvar, y, 0.1);
        black_box(tape.backward(l))
    }));
    let mc_par = bench_with("mc_inference_10_n50 (parallel)", 0.5, 20, || {
        let mut rng = StuqRng::new(9);
        black_box(deepstuq::mc::mc_forecast(&model, &x, 10, &mut rng))
    });
    let mc_ser = bench_with("mc_inference_10_n50 (1 thread)", 0.5, 20, || {
        let mut rng = StuqRng::new(9);
        stuq_parallel::with_serial(|| {
            black_box(deepstuq::mc::mc_forecast(&model, &x, 10, &mut rng))
        })
    });
    show(&mc_par);
    show(&mc_ser);
    println!(
        "    MC thread-scaling: {:.2}x ({} threads)",
        mc_ser.best_s / mc_par.best_s,
        stuq_parallel::num_threads(),
    );
}

fn bench_substrates() {
    println!("substrates");
    show(&bench_with("simulate_50n_1day", 0.5, 20, || {
        let net = stuq_graph::generate_road_network(50, 80, 7);
        let cfg = stuq_traffic::SimulationConfig::default();
        let mut rng = StuqRng::new(7);
        black_box(stuq_traffic::simulate_traffic(&net, 288, &cfg, &mut rng))
    }));
    show(&bench_with("generate_network_100n", 0.5, 20, || {
        black_box(stuq_graph::generate_road_network(100, 150, 7))
    }));
    show(&bench_with("lbfgs_temperature_10k", 0.5, 20, || {
        let mut rng = StuqRng::new(7);
        let residual_sq: Vec<f64> = (0..10_000).map(|_| rng.normal_f64().powi(2)).collect();
        let r = minimize(
            |t| {
                let tt = t[0].max(1e-6);
                let (mut f, mut g) = (0.0, 0.0);
                for &r2 in &residual_sq {
                    f += -(tt * tt).ln() + tt * tt * r2;
                    g += -2.0 / tt + 2.0 * tt * r2;
                }
                let n = residual_sq.len() as f64;
                (f / n, vec![g / n])
            },
            &[1.0],
            &LbfgsOptions::default(),
        );
        black_box(r)
    }));
}

fn main() {
    bench_matmul();
    bench_napl_fused_vs_composed();
    bench_agcrn();
    bench_substrates();
}
