//! Reproduces **Fig. 7**: point-prediction metrics per forecast horizon,
//! DeepSTUQ vs AGCRN.
//!
//! Paper shape to check: both curves grow with horizon; DeepSTUQ sits below
//! AGCRN at every step.

use deepstuq::methods::{Method, TrainedMethod};
use stuq_bench::{datasets, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Fig. 7 reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[fig7] dataset {preset:?}");
        let mcfg = method_config(&opts, ds.n_nodes());
        let seed = opts.seed ^ preset.seed_offset();
        let mut agcrn = TrainedMethod::train(Method::Point, &ds, mcfg.clone(), seed);
        let r_agcrn = agcrn.evaluate(&ds, Split::Test, stride);
        let mut stuq = TrainedMethod::train(Method::DeepStuq, &ds, mcfg, seed);
        let r_stuq = stuq.evaluate(&ds, Split::Test, stride);

        for h in 0..ds.horizon() {
            let a = &r_agcrn.point_by_horizon[h];
            let d = &r_stuq.point_by_horizon[h];
            rows.push(vec![
                format!("{preset:?}"),
                format!("{}", h + 1),
                fmt2(a.mae),
                fmt2(d.mae),
                fmt2(a.rmse),
                fmt2(d.rmse),
                fmt2(a.mape),
                fmt2(d.mape),
            ]);
        }
    }

    let header = [
        "dataset",
        "horizon",
        "AGCRN MAE",
        "DeepSTUQ MAE",
        "AGCRN RMSE",
        "DeepSTUQ RMSE",
        "AGCRN MAPE",
        "DeepSTUQ MAPE",
    ];
    print_table("Fig. 7: metrics by forecast horizon", &header, &rows);
    write_csv(&opts.out_dir, "fig7.csv", &header, &rows);
}
