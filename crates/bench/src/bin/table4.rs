//! Reproduces **Table IV**: uncertainty-quantification comparison.
//!
//! Trains the ten UQ methods of Table II on the shared AGCRN base and
//! reports MAE / RMSE / MAPE / MNLL / PICP / MPIW per dataset. Paper-shape
//! expectations: MCDO and FGE badly under-cover (PICP ≪ 95 %); aleatoric
//! methods (MVE/TS/Conformal) approach nominal coverage; DeepSTUQ attains
//! the best MNLL with PICP at or above ~95 %.

use deepstuq::methods::{Method, TrainedMethod};
use stuq_bench::{datasets, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Table IV reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();
    let methods = Method::all();

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[table4] dataset {preset:?} ({} nodes)", ds.n_nodes());
        let mcfg = method_config(&opts, ds.n_nodes());
        let mut results = Vec::new();
        for m in methods {
            eprintln!("[table4]   training {}", m.name());
            let mut tm =
                TrainedMethod::train(m, &ds, mcfg.clone(), opts.seed ^ preset.seed_offset());
            results.push(tm.evaluate(&ds, Split::Test, stride));
        }
        type MetricFn = Box<dyn Fn(&deepstuq::eval::EvalResult) -> f64>;
        let metric_rows: [(&str, MetricFn); 6] = [
            ("MAE", Box::new(|r| r.point.mae)),
            ("RMSE", Box::new(|r| r.point.rmse)),
            ("MAPE(%)", Box::new(|r| r.point.mape)),
            ("MNLL", Box::new(|r| r.uq.as_ref().map_or(f64::NAN, |u| u.mnll))),
            ("PICP(%)", Box::new(|r| r.uq.as_ref().map_or(f64::NAN, |u| u.picp))),
            ("MPIW", Box::new(|r| r.uq.as_ref().map_or(f64::NAN, |u| u.mpiw))),
        ];
        for (name, f) in &metric_rows {
            let mut row = vec![format!("{preset:?}"), name.to_string()];
            row.extend(results.iter().map(|r| fmt2(f(r))));
            rows.push(row);
        }
    }

    let mut header: Vec<&str> = vec!["dataset", "metric"];
    header.extend(methods.iter().map(|m| m.name()));
    print_table("Table IV: uncertainty quantification", &header, &rows);
    write_csv(&opts.out_dir, "table4.csv", &header, &rows);
}
