//! Reproduces **Table VI**: ablation on temperature calibration.
//!
//! Trains the full pipeline up to calibration once per dataset, then
//! compares MNLL / PICP / MPIW with `T = 1` (no calibration) against the
//! fitted temperature. As the DESIGN.md extra ablation, also reports the
//! temperature fit on the *training* split — demonstrating the
//! overconfidence that validation-split calibration corrects.

use deepstuq::awa::awa_retrain;
use deepstuq::calibrate::calibrate_on_validation;
use deepstuq::calibrate::fit_temperature;
use deepstuq::eval::{evaluate, RawForecast};
use deepstuq::mc::mc_forecast;
use deepstuq::trainer::{train, LossKind};
use stuq_bench::{datasets, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_models::{Agcrn, AgcrnConfig};
use stuq_tensor::StuqRng;
use stuq_traffic::{Split, SplitDataset};

fn eval_uq(
    model: &Agcrn,
    ds: &SplitDataset,
    mc: usize,
    temperature: f32,
    stride: usize,
    seed: u64,
) -> [f64; 3] {
    let scaler = *ds.scaler();
    let std = scaler.std() as f32;
    let mut rng = StuqRng::new(seed);
    let r = evaluate(ds, Split::Test, stride, |x, _| {
        let f = mc_forecast(model, x, mc, &mut rng);
        let sigma = f.sigma_total(temperature).scale(std);
        RawForecast { mu: f.mu.map(|v| scaler.inverse(v)), sigma: Some(sigma), bounds: None }
    });
    let u = r.uq.expect("gaussian eval");
    [u.mnll, u.picp, u.mpiw]
}

/// Temperature fit on the training split (the wrong split, for contrast).
fn calibrate_on_train(
    model: &Agcrn,
    ds: &SplitDataset,
    mc: usize,
    stride: usize,
    rng: &mut StuqRng,
) -> f32 {
    let mut residual_sq = Vec::new();
    for &s in ds.window_starts(Split::Train).iter().step_by(stride.max(1)) {
        let w = ds.window(s);
        let f = mc_forecast(model, &w.x, mc, rng);
        let y = ds.normalize_target(&w.y_raw).transpose();
        let var = f.var_total(1.0);
        for i in 0..y.len() {
            let r = (y.data()[i] - f.mu.data()[i]) as f64;
            residual_sq.push(r * r / (var.data()[i] as f64).max(1e-9));
        }
    }
    fit_temperature(&residual_sq, 300).expect("train-split calibration failed")
}

fn main() {
    let opts = parse_args();
    println!("Table VI reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[table6] dataset {preset:?}");
        let mcfg = method_config(&opts, ds.n_nodes());
        let seed = opts.seed ^ preset.seed_offset();
        let mut rng = StuqRng::new(seed);
        let base_cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
            .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout);
        let mut model = Agcrn::new(base_cfg, &mut rng);
        let kind = LossKind::Combined { lambda: mcfg.train.lambda };
        train(&mut model, &ds, &mcfg.train, kind, &mut rng).expect("pre-training failed");
        awa_retrain(&mut model, &ds, &mcfg.awa, kind, mcfg.train.weight_decay, &mut rng)
            .expect("AWA re-training failed");

        let t_val = calibrate_on_validation(&model, &ds, &mcfg.calib, &mut rng)
            .expect("calibration failed");
        let t_train =
            calibrate_on_train(&model, &ds, mcfg.calib.mc_samples, mcfg.calib.stride, &mut rng);

        let none = eval_uq(&model, &ds, mcfg.mc_samples, 1.0, stride, seed);
        let val = eval_uq(&model, &ds, mcfg.mc_samples, t_val, stride, seed);
        let tr = eval_uq(&model, &ds, mcfg.mc_samples, t_train, stride, seed);

        eprintln!("[table6]   T(val) = {t_val:.4}, T(train) = {t_train:.4}");
        for (i, metric) in ["MNLL", "PICP(%)", "MPIW"].iter().enumerate() {
            rows.push(vec![
                format!("{preset:?}"),
                metric.to_string(),
                fmt2(none[i]),
                fmt2(val[i]),
                fmt2(tr[i]),
            ]);
        }
        rows.push(vec![
            format!("{preset:?}"),
            "T".to_string(),
            "1.00".to_string(),
            format!("{t_val:.3}"),
            format!("{t_train:.3}"),
        ]);
    }

    let header =
        ["dataset", "metric", "No Calibration", "Calibration (val)", "Calibration (train)"];
    print_table("Table VI: calibration ablation", &header, &rows);
    write_csv(&opts.out_dir, "table6.csv", &header, &rows);
}
