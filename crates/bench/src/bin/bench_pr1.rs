//! Machine-readable speedup record for the parallel compute engine PR.
//!
//! Benchmarks the Pems04Like-scale (307-node) workloads against the seed's
//! serial scalar baseline — which is still compiled into the binary as the
//! `*_reference` kernels and is re-enterable for whole-model inference via
//! [`stuq_tensor::kernels::with_reference_kernels`] — and writes the results
//! to `BENCH_PR1.json` in the current directory.
//!
//! Three configurations are timed for each workload:
//! - `seed`: reference kernels, one thread (the pre-PR code path);
//! - `blocked`: the new blocked kernels, forced to one thread;
//! - `parallel`: the new kernels on the `stuq-parallel` pool.
//!
//! It also re-checks the determinism contract end-to-end: a fixed-seed
//! MC-dropout forecast must be bit-identical between the one-thread and
//! pooled executions.

use std::fmt::Write as _;

use stuq_bench::timing::{bench_with, Sample};
use stuq_models::{Agcrn, AgcrnConfig, HeadKind};
use stuq_tensor::{kernels, StuqRng, Tensor};

/// The three execution modes of one workload, plus derived ratios.
struct Triple {
    seed: Sample,
    blocked: Sample,
    parallel: Sample,
}

impl Triple {
    fn speedup_blocked(&self) -> f64 {
        self.seed.best_s / self.blocked.best_s
    }
    fn speedup_parallel(&self) -> f64 {
        self.seed.best_s / self.parallel.best_s
    }
    fn thread_scaling(&self) -> f64 {
        self.blocked.best_s / self.parallel.best_s
    }
}

fn time_matmul(m: usize, k: usize, n: usize) -> Triple {
    let mut rng = StuqRng::new(0x307);
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let b = Tensor::randn(&[k, n], 1.0, &mut rng);
    let label = format!("matmul {m}x{k}x{n}");
    Triple {
        seed: bench_with(&format!("{label} seed"), 0.5, 200, || {
            std::hint::black_box(a.matmul_reference(&b))
        }),
        blocked: bench_with(&format!("{label} blocked"), 0.5, 200, || {
            stuq_parallel::with_serial(|| std::hint::black_box(a.matmul(&b)))
        }),
        parallel: bench_with(&format!("{label} parallel"), 0.5, 200, || {
            std::hint::black_box(a.matmul(&b))
        }),
    }
}

fn pems04_fixture() -> (Agcrn, Tensor) {
    let mut rng = StuqRng::new(0x404);
    let cfg = AgcrnConfig::new(307, 12)
        .with_capacity(32, 8, 2)
        .with_dropout(0.1, 0.2)
        .with_head(HeadKind::Gaussian);
    let model = Agcrn::new(cfg, &mut rng);
    let x = Tensor::randn(&[12, 307], 1.0, &mut rng);
    (model, x)
}

fn time_mc(model: &Agcrn, x: &Tensor, t: usize) -> Triple {
    Triple {
        seed: bench_with("mc seed", 1.0, 20, || {
            let mut rng = StuqRng::new(9);
            stuq_parallel::with_serial(|| {
                kernels::with_reference_kernels(|| {
                    std::hint::black_box(deepstuq::mc::mc_forecast(model, x, t, &mut rng))
                })
            })
        }),
        blocked: bench_with("mc blocked", 1.0, 20, || {
            let mut rng = StuqRng::new(9);
            stuq_parallel::with_serial(|| {
                std::hint::black_box(deepstuq::mc::mc_forecast(model, x, t, &mut rng))
            })
        }),
        parallel: bench_with("mc parallel", 1.0, 20, || {
            let mut rng = StuqRng::new(9);
            std::hint::black_box(deepstuq::mc::mc_forecast(model, x, t, &mut rng))
        }),
    }
}

/// Fixed-seed MC forecast must not depend on the thread count.
fn check_determinism(model: &Agcrn, x: &Tensor, t: usize) -> bool {
    let par = {
        let mut rng = StuqRng::new(42);
        deepstuq::mc::mc_forecast(model, x, t, &mut rng)
    };
    let ser = {
        let mut rng = StuqRng::new(42);
        stuq_parallel::with_serial(|| deepstuq::mc::mc_forecast(model, x, t, &mut rng))
    };
    let bits = |a: &Tensor, b: &Tensor| {
        a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    bits(&par.mu, &ser.mu)
        && bits(&par.var_aleatoric, &ser.var_aleatoric)
        && bits(&par.var_epistemic, &ser.var_epistemic)
}

fn matmul_json(out: &mut String, key: &str, dims: (usize, usize, usize), t: &Triple) {
    let (m, k, n) = dims;
    let flops = 2.0 * (m * k * n) as f64;
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"shape_mkn\": [{m}, {k}, {n}],\n    \
         \"seed_reference_gflops\": {:.3},\n    \"blocked_serial_gflops\": {:.3},\n    \
         \"parallel_gflops\": {:.3},\n    \"parallel_p50_ms\": {:.3},\n    \
         \"parallel_p95_ms\": {:.3},\n    \"parallel_p99_ms\": {:.3},\n    \
         \"speedup_blocked_vs_seed\": {:.2},\n    \
         \"speedup_parallel_vs_seed\": {:.2},\n    \"thread_scaling\": {:.2}\n  }},\n",
        t.seed.gflops(flops),
        t.blocked.gflops(flops),
        t.parallel.gflops(flops),
        t.parallel.p50_s * 1e3,
        t.parallel.p95_s * 1e3,
        t.parallel.p99_s * 1e3,
        t.speedup_blocked(),
        t.speedup_parallel(),
        t.thread_scaling(),
    );
}

fn main() {
    let threads = stuq_parallel::num_threads();
    println!("bench_pr1: {threads} thread(s) configured");

    let rect = time_matmul(307, 64, 307);
    let square = time_matmul(307, 307, 307);
    for (label, t) in [("matmul 307x64x307", &rect), ("matmul 307x307x307", &square)] {
        println!(
            "{label}: seed {:.1} ms | blocked {:.1} ms ({:.2}x) | parallel {:.1} ms ({:.2}x)",
            t.seed.best_s * 1e3,
            t.blocked.best_s * 1e3,
            t.speedup_blocked(),
            t.parallel.best_s * 1e3,
            t.speedup_parallel(),
        );
    }

    let (model, x) = pems04_fixture();
    let t_samples = 10usize;
    let mc = time_mc(&model, &x, t_samples);
    println!(
        "mc-dropout 307n x{t_samples}: seed {:.1} ms | blocked {:.1} ms ({:.2}x) | parallel {:.1} ms ({:.2}x)",
        mc.seed.best_s * 1e3,
        mc.blocked.best_s * 1e3,
        mc.speedup_blocked(),
        mc.parallel.best_s * 1e3,
        mc.speedup_parallel(),
    );

    let deterministic = check_determinism(&model, &x, t_samples);
    println!("fixed-seed 1-thread vs pooled outputs bit-identical: {deterministic}");

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"workload_scale\": \"Pems04Like (307 nodes)\",\n  \"threads\": {threads},\n  \
         \"baseline\": \"seed scalar kernels, sequential MC loop (compiled in as *_reference + with_reference_kernels)\",\n"
    );
    matmul_json(&mut out, "matmul_rect", (307, 64, 307), &rect);
    matmul_json(&mut out, "matmul_square", (307, 307, 307), &square);
    let _ = write!(
        out,
        "  \"mc_dropout\": {{\n    \"n_nodes\": 307,\n    \"n_samples\": {t_samples},\n    \
         \"seed_samples_per_sec\": {:.2},\n    \"blocked_serial_samples_per_sec\": {:.2},\n    \
         \"parallel_samples_per_sec\": {:.2},\n    \"parallel_p50_ms\": {:.3},\n    \
         \"parallel_p95_ms\": {:.3},\n    \"parallel_p99_ms\": {:.3},\n    \
         \"speedup_blocked_vs_seed\": {:.2},\n    \
         \"speedup_parallel_vs_seed\": {:.2},\n    \"thread_scaling\": {:.2}\n  }},\n",
        t_samples as f64 * mc.seed.per_sec(),
        t_samples as f64 * mc.blocked.per_sec(),
        t_samples as f64 * mc.parallel.per_sec(),
        mc.parallel.p50_s * 1e3,
        mc.parallel.p95_s * 1e3,
        mc.parallel.p99_s * 1e3,
        mc.speedup_blocked(),
        mc.speedup_parallel(),
        mc.thread_scaling(),
    );
    let _ = write!(
        out,
        "  \"determinism\": {{\n    \"fixed_seed\": 42,\n    \
         \"parallel_vs_serial_bit_identical\": {deterministic}\n  }},\n  \
         \"notes\": [\n    \"speedup_parallel_vs_seed is the wall-clock win of the new engine over the seed code path\",\n    \
         \"thread_scaling isolates pool fan-out (new kernels, 1 thread vs N); it is ~1.0 on single-core hosts\"\n  ]\n}}\n"
    );

    std::fs::write("BENCH_PR1.json", &out).expect("write BENCH_PR1.json");
    println!("wrote BENCH_PR1.json");

    assert!(deterministic, "determinism contract violated");
    let headline = rect.speedup_parallel().min(mc.speedup_parallel());
    if headline < 2.0 {
        println!("WARNING: headline speedup {headline:.2}x below the 2x acceptance bar");
    }
}
