//! Reproduces **Fig. 8**: forecast + 95 % interval traces on one randomly
//! selected sensor per dataset.
//!
//! Walks consecutive test windows and records the 1-step-ahead prediction,
//! interval bounds and ground truth — the series the paper plots. Check:
//! the interval hugs the daily profile and covers nearly all truth points.

use deepstuq::pipeline::{DeepStuq, DeepStuqConfig};
use stuq_bench::{datasets, method_config, parse_args, write_csv, Scale};
use stuq_models::AgcrnConfig;
use stuq_tensor::StuqRng;
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Fig. 8 reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let trace_len = match opts.scale {
        Scale::Quick => 60,
        _ => 288,
    };

    for (preset, ds) in datasets(&opts) {
        eprintln!("[fig8] dataset {preset:?}");
        let mcfg = method_config(&opts, ds.n_nodes());
        let seed = opts.seed ^ preset.seed_offset();
        let cfg = DeepStuqConfig {
            base: AgcrnConfig::new(ds.n_nodes(), ds.horizon())
                .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
                .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout),
            train: mcfg.train.clone(),
            awa: Some(mcfg.awa.clone()),
            calib: Some(mcfg.calib),
            mc_samples: mcfg.mc_samples,
        };
        let model = DeepStuq::train(&ds, cfg, seed);
        let mut rng = StuqRng::new(seed ^ 0xF16);
        let sensor = rng.uniform_usize(ds.n_nodes());
        let starts = ds.window_starts(Split::Test);
        let take = trace_len.min(starts.len());

        let mut rows = Vec::new();
        let mut covered = 0usize;
        for &s in starts.iter().take(take) {
            let w = ds.window(s);
            let f = model.predict(&w.x, ds.scaler(), &mut rng);
            let truth = w.y_raw.get(0, sensor) as f64;
            let (mu, lo, hi) = (
                f.mu.get(sensor, 0) as f64,
                f.lower.get(sensor, 0) as f64,
                f.upper.get(sensor, 0) as f64,
            );
            if truth >= lo && truth <= hi {
                covered += 1;
            }
            rows.push(vec![
                format!("{s}"),
                format!("{truth:.2}"),
                format!("{mu:.2}"),
                format!("{lo:.2}"),
                format!("{hi:.2}"),
            ]);
        }
        println!(
            "{preset:?}: sensor {sensor}, {take} steps, interval covered {}/{} ({:.1} %)",
            covered,
            take,
            100.0 * covered as f64 / take as f64
        );
        let name = format!("fig8_{preset:?}.csv").to_lowercase();
        write_csv(&opts.out_dir, &name, &["t", "truth", "mu", "lower", "upper"], &rows);
    }
}
