//! Reproduces **Fig. 10**: aleatoric and epistemic uncertainty as a
//! function of the forecast horizon, for all four datasets.
//!
//! Paper shape to check: both components grow with the horizon — short-term
//! forecasts are more reliable than long-term ones.

use deepstuq::decompose::HorizonUncertaintyAccumulator;
use deepstuq::pipeline::{DeepStuq, DeepStuqConfig};
use stuq_bench::{datasets, method_config, parse_args, print_table, write_csv};
use stuq_models::AgcrnConfig;
use stuq_tensor::StuqRng;
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Fig. 10 reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[fig10] dataset {preset:?}");
        let mcfg = method_config(&opts, ds.n_nodes());
        let seed = opts.seed ^ preset.seed_offset();
        let cfg = DeepStuqConfig {
            base: AgcrnConfig::new(ds.n_nodes(), ds.horizon())
                .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
                .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout),
            train: mcfg.train.clone(),
            awa: Some(mcfg.awa.clone()),
            calib: Some(mcfg.calib),
            mc_samples: mcfg.mc_samples,
        };
        let model = DeepStuq::train(&ds, cfg, seed);
        let mut rng = StuqRng::new(seed ^ 0xF10);
        let mut acc = HorizonUncertaintyAccumulator::new(ds.horizon());
        for &s in ds.window_starts(Split::Test).iter().step_by(stride) {
            let w = ds.window(s);
            let f = model.forecast_normalized(&w.x, model.mc_samples(), &mut rng);
            acc.update(&f, ds.scaler().std(), model.temperature());
        }
        let m = acc.mean();
        for h in 0..ds.horizon() {
            rows.push(vec![
                format!("{preset:?}"),
                format!("{}", h + 1),
                format!("{:.3}", m.aleatoric[h]),
                format!("{:.3}", m.epistemic[h]),
                format!("{:.3}", m.total[h]),
            ]);
        }
    }

    let header = ["dataset", "horizon", "sigma_aleatoric", "sigma_epistemic", "sigma_total"];
    print_table("Fig. 10: uncertainty by forecast horizon", &header, &rows);
    write_csv(&opts.out_dir, "fig10.csv", &header, &rows);
}
