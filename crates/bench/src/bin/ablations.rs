//! Extended ablations beyond the paper's Tables V–VI (DESIGN.md §4):
//!
//! 1. **λ sweep** — the combined-loss weight (Eq. 9): the paper fixes
//!    λ = 0.1; this sweep shows the point-accuracy / likelihood trade-off.
//! 2. **Dropout-rate sweep** — the encoder graph-conv dropout (Eq. 13):
//!    the paper's rule of thumb is small graphs → small rates.
//! 3. **AWA vs true deep ensembles** — AWA's claim is to approximate an
//!    M-model ensemble with one stored model; compare quality and memory.
//!
//! Runs on the PEMS08-like dataset (the smallest one).

use deepstuq::awa::awa_retrain;
use deepstuq::ensemble::DeepEnsemble;
use deepstuq::eval::{evaluate, RawForecast};
use deepstuq::mc::mc_forecast;
use deepstuq::trainer::{train, LossKind};
use stuq_bench::{dataset, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_models::{Agcrn, AgcrnConfig, Forecaster};
use stuq_tensor::StuqRng;
use stuq_traffic::{Preset, Split, SplitDataset};

fn eval_gaussian(
    forecast: impl FnMut(&stuq_tensor::Tensor) -> deepstuq::GaussianForecast,
    ds: &SplitDataset,
    stride: usize,
) -> (f64, f64, f64, f64) {
    let mut forecast = forecast;
    let scaler = *ds.scaler();
    let std = scaler.std() as f32;
    let r = evaluate(ds, Split::Test, stride, |x, _| {
        let f = forecast(x);
        RawForecast {
            mu: f.mu.map(|v| scaler.inverse(v)),
            sigma: Some(f.sigma_total(1.0).scale(std)),
            bounds: None,
        }
    });
    let uq = r.uq.expect("gaussian");
    (r.point.mae, uq.mnll, uq.picp, uq.mpiw)
}

fn main() {
    let opts = parse_args();
    println!("Extended ablations — scale {:?}, seed {}", opts.scale, opts.seed);
    let ds = dataset(&opts, Preset::Pems08Like);
    let mcfg = method_config(&opts, ds.n_nodes());
    let stride = opts.scale.eval_stride();
    let seed = opts.seed ^ Preset::Pems08Like.seed_offset();

    // --- 1. λ sweep -------------------------------------------------------
    let mut rows = Vec::new();
    for lambda in [0.02f32, 0.1, 0.3, 0.7] {
        eprintln!("[ablations] lambda {lambda}");
        let mut rng = StuqRng::new(seed);
        let base = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
            .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout);
        let mut model = Agcrn::new(base, &mut rng);
        let mut cfg = mcfg.train.clone();
        cfg.lambda = lambda;
        train(&mut model, &ds, &cfg, LossKind::Combined { lambda }, &mut rng)
            .expect("training failed");
        let mut mc_rng = rng.fork(1);
        let (mae, mnll, picp, mpiw) =
            eval_gaussian(|x| mc_forecast(&model, x, mcfg.mc_samples, &mut mc_rng), &ds, stride);
        rows.push(vec![format!("{lambda}"), fmt2(mae), fmt2(mnll), fmt2(picp), fmt2(mpiw)]);
    }
    let header = ["lambda", "MAE", "MNLL", "PICP(%)", "MPIW"];
    print_table("Ablation 1: combined-loss weight λ (Eq. 9)", &header, &rows);
    write_csv(&opts.out_dir, "ablation_lambda.csv", &header, &rows);

    // --- 2. encoder dropout sweep ----------------------------------------
    let mut rows = Vec::new();
    for p in [0.0f32, 0.05, 0.1, 0.3] {
        eprintln!("[ablations] encoder dropout {p}");
        let mut rng = StuqRng::new(seed);
        let base = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
            .with_dropout(p, mcfg.decoder_dropout);
        let mut model = Agcrn::new(base, &mut rng);
        train(
            &mut model,
            &ds,
            &mcfg.train,
            LossKind::Combined { lambda: mcfg.train.lambda },
            &mut rng,
        )
        .expect("training failed");
        let mut mc_rng = rng.fork(1);
        let (mae, mnll, picp, mpiw) =
            eval_gaussian(|x| mc_forecast(&model, x, mcfg.mc_samples, &mut mc_rng), &ds, stride);
        rows.push(vec![format!("{p}"), fmt2(mae), fmt2(mnll), fmt2(picp), fmt2(mpiw)]);
    }
    let header = ["encoder_dropout", "MAE", "MNLL", "PICP(%)", "MPIW"];
    print_table("Ablation 2: graph-conv dropout rate (Eq. 13)", &header, &rows);
    write_csv(&opts.out_dir, "ablation_dropout.csv", &header, &rows);

    // --- 3. AWA vs true deep ensembles ------------------------------------
    let base = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
        .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
        .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout);
    let kind = LossKind::Combined { lambda: mcfg.train.lambda };

    eprintln!("[ablations] AWA single model");
    let mut rng = StuqRng::new(seed);
    let mut awa_model = Agcrn::new(base.clone(), &mut rng);
    train(&mut awa_model, &ds, &mcfg.train, kind, &mut rng).expect("pre-training failed");
    awa_retrain(&mut awa_model, &ds, &mcfg.awa, kind, mcfg.train.weight_decay, &mut rng)
        .expect("AWA re-training failed");
    let mut awa_rng = rng.fork(1);
    let awa_metrics =
        eval_gaussian(|x| mc_forecast(&awa_model, x, mcfg.mc_samples, &mut awa_rng), &ds, stride);
    let awa_mem = awa_model.params().n_scalars();

    let mut rows = Vec::new();
    rows.push(vec![
        "AWA (1 stored model)".to_string(),
        fmt2(awa_metrics.0),
        fmt2(awa_metrics.1),
        fmt2(awa_metrics.2),
        fmt2(awa_metrics.3),
        format!("{awa_mem}"),
    ]);
    for m in [3usize, 5] {
        eprintln!("[ablations] deep ensemble M={m}");
        let ens = DeepEnsemble::train(&base, &ds, &mcfg.train, m, seed);
        let mut ens_rng = StuqRng::new(seed ^ 0xE5);
        let metrics = eval_gaussian(|x| ens.forecast(x, &mut ens_rng), &ds, stride);
        rows.push(vec![
            format!("Deep ensemble (M={m})"),
            fmt2(metrics.0),
            fmt2(metrics.1),
            fmt2(metrics.2),
            fmt2(metrics.3),
            format!("{}", ens.n_scalars()),
        ]);
    }
    let header = ["method", "MAE", "MNLL", "PICP(%)", "MPIW", "stored params"];
    print_table("Ablation 3: AWA vs true deep ensembling", &header, &rows);
    write_csv(&opts.out_dir, "ablation_ensemble.csv", &header, &rows);
}
