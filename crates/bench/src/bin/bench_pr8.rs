//! Machine-readable speedup record for the static-schedule replay PR.
//!
//! BENCH_PR3 exposed the level-scheduled backward losing to the seed's
//! serial walk on one core (0.67–0.75×): per-call schedule derivation and
//! edge-arena bookkeeping ate the parallel win. This bench times the
//! compiled-[`ReplayPlan`] engine (DESIGN.md §14) against the same seed
//! baselines on the same workloads:
//!
//! - `backward`: the reverse sweep over a real AGCRN training tape —
//!   warm `ReplayPlan::run` (schedule frozen, scratch preallocated, unary
//!   adjoint chains fused) vs [`Tape::backward_serial`] (the seed walk);
//! - `epoch`: one end-to-end training epoch (forward + backward + Adam)
//!   through the public dispatcher, so replay plans are compiled on the
//!   first batch and replayed for the rest of the epoch;
//! - plan-compile cost and fusion statistics, to show the one-off price of
//!   the frozen schedule.
//!
//! Results go to `BENCH_PR8.json` in the current directory. The binary
//! *asserts* the determinism contract — replayed gradients (fresh plan, warm
//! plan, forced-serial pool, public dispatcher) bit-identical to the serial
//! walk, and 1-epoch parameters bit-identical with replay on vs off and
//! serial vs parallel — and exits nonzero on divergence. `ci/bench_gate.sh`
//! reads the emitted ratios against the floors in `ci/bench_floors.env`
//! (`--quick` shortens the timing loops without weakening the checks).

use std::fmt::Write as _;

use deepstuq::trainer::{loss_node, train_epoch, LossKind};
use stuq_bench::timing::{bench_interleaved, bench_with, Sample};
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind};
use stuq_nn::layers::FwdCtx;
use stuq_nn::opt::Adam;
use stuq_tensor::{kernels, GradStore, ReplayPlan, StuqRng, Tape, Tensor};
use stuq_traffic::{Preset, SplitDataset};

/// The three execution modes of one workload, plus derived ratios.
struct Triple {
    seed: Sample,
    engine_serial: Sample,
    parallel: Sample,
}

impl Triple {
    fn speedup_serial(&self) -> f64 {
        self.seed.best_s / self.engine_serial.best_s
    }
    fn speedup_parallel(&self) -> f64 {
        self.seed.best_s / self.parallel.best_s
    }
    fn thread_scaling(&self) -> f64 {
        self.engine_serial.best_s / self.parallel.best_s
    }
}

/// Records one full AGCRN training-loss tape (forward + combined loss) at
/// Pems04Like scale — the same fixture as BENCH_PR3's `backward` workload,
/// and exactly the graph `sample_grad` replays every batch.
fn training_tape() -> (Tape, usize) {
    let mut rng = StuqRng::new(0x404);
    let cfg = AgcrnConfig::new(307, 12)
        .with_capacity(32, 8, 2)
        .with_dropout(0.1, 0.2)
        .with_head(HeadKind::Gaussian);
    let model = Agcrn::new(cfg, &mut rng);
    let x = Tensor::randn(&[12, 307], 1.0, &mut rng);
    let y = Tensor::randn(&[307, 12], 1.0, &mut rng);
    let mut tape = Tape::new();
    let mut ctx = FwdCtx::train(&mut rng);
    let pred = model.forward(&mut tape, &x, &mut ctx);
    let target = tape.constant(y);
    let l = loss_node(&mut tape, &pred, target, LossKind::Combined { lambda: 0.1 })
        .expect("gaussian head takes the combined loss");
    (tape, l)
}

impl Triple {
    /// Builds a triple from the three interleaved samples, in
    /// seed / engine-serial / parallel order.
    fn from_samples(samples: Vec<Sample>) -> Self {
        let [seed, engine_serial, parallel]: [Sample; 3] =
            samples.try_into().expect("three variants");
        Triple { seed, engine_serial, parallel }
    }
}

/// Seed = the genuine pre-engine walk; engine-serial = warm replay on a
/// forced-serial pool (the ≥ 1.0× target of this PR); parallel = warm replay
/// with the pool fanning out frozen chunks. The three variants run
/// interleaved, one iteration each per round, so machine noise cannot land
/// on only one side of a ratio.
fn time_backward(tape: &Tape, l: usize, plan: &mut ReplayPlan, secs: f64, reps: usize) -> Triple {
    let plan = std::cell::RefCell::new(plan);
    let mut seed = || {
        std::hint::black_box(tape.backward_serial(l));
    };
    let mut engine_serial = || {
        stuq_parallel::with_serial(|| std::hint::black_box(plan.borrow_mut().run(tape)));
    };
    let mut parallel = || {
        std::hint::black_box(plan.borrow_mut().run(tape));
    };
    Triple::from_samples(bench_interleaved(
        &["backward serial", "backward replay-serial", "backward replay-parallel"],
        secs,
        reps,
        &mut [&mut seed, &mut engine_serial, &mut parallel],
    ))
}

fn grads_bit_identical(a: &GradStore, b: &GradStore) -> bool {
    a.len() == b.len()
        && a.iter().all(|(slot, ga)| {
            b.get(slot).is_some_and(|gb| {
                ga.data().iter().zip(gb.data()).all(|(x, y)| x.to_bits() == y.to_bits())
            })
        })
}

fn epoch_fixture() -> SplitDataset {
    Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(21)
}

fn run_epoch(ds: &SplitDataset) -> Vec<Tensor> {
    let mut rng = StuqRng::new(77);
    let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
        .with_capacity(16, 4, 1)
        .with_dropout(0.05, 0.1)
        .with_head(HeadKind::Gaussian);
    let mut model = Agcrn::new(cfg, &mut rng);
    let mut opt = Adam::new(3e-3, 1e-6);
    train_epoch(
        &mut model,
        ds,
        8,
        LossKind::Combined { lambda: 0.1 },
        &mut opt,
        5.0,
        &mut rng,
        None,
    )
    .expect("epoch trains");
    model.params().snapshot()
}

fn params_bit_identical(a: &[Tensor], b: &[Tensor]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.data().iter().zip(y.data()).all(|(p, q)| p.to_bits() == q.to_bits()))
}

fn time_epoch(ds: &SplitDataset, secs: f64, reps: usize) -> Triple {
    let mut seed = || {
        stuq_parallel::with_serial(|| {
            kernels::with_reference_kernels(|| std::hint::black_box(run_epoch(ds)))
        });
    };
    let mut engine_serial = || {
        stuq_parallel::with_serial(|| std::hint::black_box(run_epoch(ds)));
    };
    let mut parallel = || {
        std::hint::black_box(run_epoch(ds));
    };
    Triple::from_samples(bench_interleaved(
        &["epoch seed", "epoch engine-serial", "epoch parallel"],
        secs,
        reps,
        &mut [&mut seed, &mut engine_serial, &mut parallel],
    ))
}

fn triple_json(out: &mut String, key: &str, extra: &str, t: &Triple) {
    let _ = write!(
        out,
        "  \"{key}\": {{\n{extra}    \"seed_ms\": {:.3},\n    \"engine_serial_ms\": {:.3},\n    \
         \"parallel_ms\": {:.3},\n    \"parallel_p50_ms\": {:.3},\n    \
         \"parallel_p95_ms\": {:.3},\n    \"parallel_p99_ms\": {:.3},\n    \
         \"speedup_serial_vs_seed\": {:.2},\n    \
         \"speedup_parallel_vs_seed\": {:.2},\n    \"thread_scaling\": {:.2}\n  }},\n",
        t.seed.best_s * 1e3,
        t.engine_serial.best_s * 1e3,
        t.parallel.best_s * 1e3,
        t.parallel.p50_s * 1e3,
        t.parallel.p95_s * 1e3,
        t.parallel.p99_s * 1e3,
        t.speedup_serial(),
        t.speedup_parallel(),
        t.thread_scaling(),
    );
}

fn print_triple(label: &str, t: &Triple) {
    println!(
        "{label}: seed {:.2} ms | engine-serial {:.2} ms ({:.2}x) | parallel {:.2} ms ({:.2}x)",
        t.seed.best_s * 1e3,
        t.engine_serial.best_s * 1e3,
        t.speedup_serial(),
        t.parallel.best_s * 1e3,
        t.speedup_parallel(),
    );
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = stuq_parallel::num_threads();
    let (secs, reps): (f64, usize) = if quick { (0.15, 3) } else { (0.7, 50) };
    println!("bench_pr8: {threads} thread(s) configured{}", if quick { ", --quick" } else { "" });

    let (tape, l) = training_tape();
    let n_nodes = l + 1;

    // One-off plan-compile cost (amortised over an epoch's batches).
    let compile = bench_with("replay compile", secs.min(0.2), reps, || {
        std::hint::black_box(ReplayPlan::compile(&tape, l))
    });
    let mut plan = ReplayPlan::compile(&tape, l);
    println!(
        "plan: {} tape nodes -> {} tasks over {} levels; {} fused chains absorbing {} nodes; \
         compile {:.2} ms",
        n_nodes,
        plan.n_tasks(),
        plan.n_levels(),
        plan.fused_chains(),
        plan.fused_nodes(),
        compile.best_s * 1e3,
    );

    // Bit-identity before timing: fresh plan, warm plan, forced-serial pool
    // and the public dispatcher must all reproduce the seed walk exactly.
    let replay_ok = {
        let serial = tape.backward_serial(l);
        let mut fresh_plan = ReplayPlan::compile(&tape, l);
        let fresh = fresh_plan.run(&tape);
        let warm = plan.run(&tape);
        let warm2 = plan.run(&tape);
        let forced = stuq_parallel::with_serial(|| plan.run(&tape));
        let auto = tape.backward(l);
        grads_bit_identical(&serial, &fresh)
            && grads_bit_identical(&serial, &warm)
            && grads_bit_identical(&serial, &warm2)
            && grads_bit_identical(&serial, &forced)
            && grads_bit_identical(&serial, &auto)
    };
    println!("replayed backward bit-identical to serial walk: {replay_ok}");

    let bwd = time_backward(&tape, l, &mut plan, secs, reps);
    print_triple(&format!("backward ({n_nodes} tape nodes)"), &bwd);

    let ds = epoch_fixture();
    let (esecs, ereps) = if quick { (0.0, 1) } else { (2.0, 5) };
    let epoch = time_epoch(&ds, esecs, ereps);
    print_triple("train epoch (Pems08Like 0.08)", &epoch);

    // Epoch determinism: replay on vs off, and serial vs parallel pool.
    let par = run_epoch(&ds);
    let ser = stuq_parallel::with_serial(|| run_epoch(&ds));
    let off = stuq_tensor::with_replay_disabled(|| run_epoch(&ds));
    let epoch_threads_ok = params_bit_identical(&par, &ser);
    let epoch_replay_ok = params_bit_identical(&par, &off);
    println!("1-epoch parallel vs serial parameters bit-identical: {epoch_threads_ok}");
    println!("1-epoch replay-on vs replay-off parameters bit-identical: {epoch_replay_ok}");

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"workload_scale\": \"Pems04Like tape (307 nodes), Pems08Like epoch (0.08 scale)\",\n  \
         \"threads\": {threads},\n  \"quick\": {quick},\n  \
         \"baseline\": \"seed Tape::backward_serial + with_reference_kernels epoch\",\n  \
         \"plan\": {{\n    \"tape_nodes\": {n_nodes},\n    \"tasks\": {},\n    \
         \"levels\": {},\n    \"fused_chains\": {},\n    \"fused_nodes\": {},\n    \
         \"compile_ms\": {:.3}\n  }},\n",
        plan.n_tasks(),
        plan.n_levels(),
        plan.fused_chains(),
        plan.fused_nodes(),
        compile.best_s * 1e3,
    );
    triple_json(&mut out, "backward", &format!("    \"tape_nodes\": {n_nodes},\n"), &bwd);
    triple_json(&mut out, "epoch", "    \"batch_size\": 8,\n", &epoch);
    let _ = write!(
        out,
        "  \"determinism\": {{\n    \"replay_bit_identical_to_serial\": {replay_ok},\n    \
         \"epoch_params_bit_identical_across_thread_counts\": {epoch_threads_ok},\n    \
         \"epoch_params_bit_identical_replay_on_off\": {epoch_replay_ok}\n  }},\n  \
         \"notes\": [\n    \"backward.speedup_serial_vs_seed is the PR target: warm replay on a 1-thread pool vs the seed serial walk\",\n    \
         \"epoch.speedup_serial_vs_seed folds in the fast kernels; ci/bench_floors.env floors both ratios\",\n    \
         \"determinism flags are hard-asserted: the binary exits nonzero if any is false\"\n  ]\n}}\n"
    );

    std::fs::write("BENCH_PR8.json", &out).expect("write BENCH_PR8.json");
    println!("wrote BENCH_PR8.json");

    assert!(replay_ok, "replayed backward diverged from the serial walk");
    assert!(epoch_threads_ok, "epoch parameters depend on the thread count");
    assert!(epoch_replay_ok, "epoch parameters depend on the replay engine");
    assert!(plan.fused_chains() > 0, "the AGCRN tape must produce fused chains");
}
