//! Reproduces **Table I**: dataset statistics.
//!
//! Prints the generated datasets' node / edge / step counts next to the
//! paper's published values. At `--scale full` they match exactly by
//! construction; at reduced scales the scaling factors are shown.

use stuq_bench::{datasets, parse_args, print_table, write_csv};
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Table I reproduction — scale {:?}, seed {}", opts.scale, opts.seed);

    let paper = [(358, 547, 26_208), (307, 340, 16_992), (883, 866, 28_224), (170, 295, 17_856)];
    let mut rows = Vec::new();
    for ((preset, ds), (pn, pe, ps)) in datasets(&opts).iter().zip(paper) {
        let net = ds.data().network();
        let (tr, va) = (ds.segment(Split::Train), ds.segment(Split::Val));
        rows.push(vec![
            format!("{preset:?}"),
            format!("{}", ds.n_nodes()),
            format!("{pn}"),
            format!("{}", net.n_edges()),
            format!("{pe}"),
            format!("{}", ds.data().n_steps()),
            format!("{ps}"),
            format!("{}", net.n_components()),
            format!("{}/{}/{}", tr.1, va.1 - va.0, ds.data().n_steps() - va.1),
        ]);
    }
    let header = [
        "dataset",
        "nodes",
        "paper",
        "edges",
        "paper",
        "steps",
        "paper",
        "components",
        "split 6:2:2",
    ];
    print_table("Table I: dataset statistics (generated vs paper)", &header, &rows);
    write_csv(&opts.out_dir, "table1.csv", &header, &rows);
}
