//! Reproduces **Table V**: ablation on AWA re-training.
//!
//! Trains the DeepSTUQ base once per dataset, then compares point metrics
//! of the pre-trained model ("No AWA" = the paper's Combined row) against
//! the same model after AWA re-training. Also reports the SGD-SWA variant
//! (the original SWA recipe) as the extra ablation called out in DESIGN.md.

use deepstuq::awa::awa_retrain;
use deepstuq::eval::{evaluate, RawForecast};
use deepstuq::mc::mc_forecast;
use deepstuq::trainer::{train, train_epoch, LossKind};
use stuq_bench::{datasets, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_models::{Agcrn, AgcrnConfig, Forecaster};
use stuq_nn::opt::Sgd;
use stuq_nn::sched::CosineSchedule;
use stuq_nn::swa::WeightAverager;
use stuq_tensor::StuqRng;
use stuq_traffic::{Split, SplitDataset};

fn eval_point(model: &Agcrn, ds: &SplitDataset, mc: usize, stride: usize, seed: u64) -> [f64; 3] {
    let scaler = *ds.scaler();
    let mut rng = StuqRng::new(seed);
    let r = evaluate(ds, Split::Test, stride, |x, _| {
        let f = mc_forecast(model, x, mc, &mut rng);
        RawForecast { mu: f.mu.map(|v| scaler.inverse(v)), sigma: None, bounds: None }
    });
    [r.point.mae, r.point.rmse, r.point.mape]
}

/// The original-SWA variant: SGD optimiser, same cosine/average cadence.
fn swa_sgd_retrain(
    model: &mut Agcrn,
    ds: &SplitDataset,
    epochs: usize,
    batch: usize,
    kind: LossKind,
    rng: &mut StuqRng,
) {
    let n_iters = ds.window_starts(Split::Train).len().div_ceil(batch).max(1);
    let mut opt = Sgd::new(3e-3, 0.9, 1e-6);
    let mut averager = WeightAverager::new();
    for epoch in 0..epochs {
        if epoch % 2 == 0 {
            let sched = CosineSchedule::new(3e-3, 3e-5, n_iters);
            let mut hook = |it: usize| sched.lr_at(it);
            train_epoch(model, ds, batch, kind, &mut opt, 5.0, rng, Some(&mut hook))
                .expect("SWA escape epoch failed");
        } else {
            let mut hook = |_: usize| 3e-5f32;
            train_epoch(model, ds, batch, kind, &mut opt, 5.0, rng, Some(&mut hook))
                .expect("SWA fine-tune epoch failed");
            averager.update(model.params());
        }
    }
    averager.apply_to(model.params_mut());
}

fn main() {
    let opts = parse_args();
    println!("Table V reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[table5] dataset {preset:?}");
        let mcfg = method_config(&opts, ds.n_nodes());
        let seed = opts.seed ^ preset.seed_offset();
        let mut rng = StuqRng::new(seed);
        let base_cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
            .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout);
        let mut model = Agcrn::new(base_cfg, &mut rng);
        let kind = LossKind::Combined { lambda: mcfg.train.lambda };
        train(&mut model, &ds, &mcfg.train, kind, &mut rng).expect("pre-training failed");

        let no_awa = eval_point(&model, &ds, mcfg.mc_samples, stride, seed);

        // AWA (Adam, the paper's recipe).
        let mut awa_model = model.clone();
        let mut awa_rng = rng.fork(1);
        awa_retrain(&mut awa_model, &ds, &mcfg.awa, kind, mcfg.train.weight_decay, &mut awa_rng)
            .expect("AWA re-training failed");
        let with_awa = eval_point(&awa_model, &ds, mcfg.mc_samples, stride, seed);

        // SWA with SGD (original recipe) — the DESIGN.md ablation.
        let mut swa_model = model.clone();
        let mut swa_rng = rng.fork(2);
        swa_sgd_retrain(
            &mut swa_model,
            &ds,
            mcfg.awa.epochs,
            mcfg.awa.batch_size,
            kind,
            &mut swa_rng,
        );
        let with_swa = eval_point(&swa_model, &ds, mcfg.mc_samples, stride, seed);

        for (i, metric) in ["MAE", "RMSE", "MAPE(%)"].iter().enumerate() {
            rows.push(vec![
                format!("{preset:?}"),
                metric.to_string(),
                fmt2(no_awa[i]),
                fmt2(with_awa[i]),
                fmt2(with_swa[i]),
            ]);
        }
    }

    let header = ["dataset", "metric", "No AWA", "AWA (Adam)", "SWA (SGD)"];
    print_table("Table V: AWA re-training ablation", &header, &rows);
    write_csv(&opts.out_dir, "table5.csv", &header, &rows);
}
