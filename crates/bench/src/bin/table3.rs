//! Reproduces **Table III**: point-prediction comparison.
//!
//! Trains the seven baselines (DCRNN, ST-GCN, GWN, ASTGCN, STSGCN, STFGNN,
//! AGCRN) plus DeepSTUQ/S and DeepSTUQ on each of the four datasets and
//! reports MAE / RMSE / MAPE on the test split. The paper's qualitative
//! claim to check: DeepSTUQ (and /S) lead, AGCRN is the strongest baseline.

use deepstuq::methods::{Method, TrainedMethod};
use stuq_bench::baselines::{build_baseline, train_and_eval_baseline, BASELINE_NAMES};
use stuq_bench::{datasets, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_tensor::StuqRng;
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Table III reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();

    let mut columns: Vec<String> = BASELINE_NAMES.iter().map(|s| s.to_string()).collect();
    columns.push("DeepSTUQ/S".into());
    columns.push("DeepSTUQ".into());

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[table3] dataset {preset:?} ({} nodes)", ds.n_nodes());
        let mcfg = method_config(&opts, ds.n_nodes());
        let mut maes = Vec::new();
        let mut rmses = Vec::new();
        let mut mapes = Vec::new();

        for name in BASELINE_NAMES {
            eprintln!("[table3]   training {name}");
            let mut rng = StuqRng::new(opts.seed ^ preset.seed_offset() ^ hash(name));
            let mut model = build_baseline(name, &ds, &mut rng);
            let r = train_and_eval_baseline(&mut model, &ds, &mcfg.train, stride, &mut rng);
            maes.push(r.point.mae);
            rmses.push(r.point.rmse);
            mapes.push(r.point.mape);
        }
        for method in [Method::DeepStuqS, Method::DeepStuq] {
            eprintln!("[table3]   training {}", method.name());
            let mut tm =
                TrainedMethod::train(method, &ds, mcfg.clone(), opts.seed ^ preset.seed_offset());
            let r = tm.evaluate(&ds, Split::Test, stride);
            maes.push(r.point.mae);
            rmses.push(r.point.rmse);
            mapes.push(r.point.mape);
        }

        for (metric, vals) in [("MAE", &maes), ("RMSE", &rmses), ("MAPE(%)", &mapes)] {
            let mut row = vec![format!("{preset:?}"), metric.to_string()];
            row.extend(vals.iter().map(|&v| fmt2(v)));
            rows.push(row);
        }
    }

    let mut header: Vec<&str> = vec!["dataset", "metric"];
    header.extend(columns.iter().map(String::as_str));
    print_table("Table III: point prediction", &header, &rows);
    write_csv(&opts.out_dir, "table3.csv", &header, &rows);
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}
