//! Machine-readable speedup record for the parallel training engine PR.
//!
//! Three workloads, each timed against the seed's serial baseline (still
//! compiled in as the `*_reference` kernels and [`Tape::backward_serial`]):
//!
//! - `matmul_tb`: the transposed-B product — now on the register-tiled
//!   4×32 FMA path — vs the seed's one-dot-per-output reference;
//! - `backward`: the reverse sweep over a real AGCRN training tape —
//!   [`Tape::backward_levels`] (level-scheduled, pooled) vs
//!   [`Tape::backward_serial`] (the seed walk);
//! - `epoch`: one end-to-end training epoch (forward + backward + Adam step)
//!   in seed / engine-serial / parallel configurations.
//!
//! Results go to `BENCH_PR3.json` in the current directory. The binary
//! *asserts* the determinism contract — parallel gradients and epoch
//! parameters bit-identical to serial, tiled `matmul_tb` within tolerance of
//! its reference — and exits nonzero on divergence, which is what the CI
//! bench-smoke step relies on (`--quick` shortens the timing loops without
//! weakening the checks).

use std::fmt::Write as _;

use deepstuq::trainer::{loss_node, train_epoch, LossKind};
use stuq_bench::timing::{bench_with, Sample};
use stuq_models::{Agcrn, AgcrnConfig, Forecaster, HeadKind};
use stuq_nn::layers::FwdCtx;
use stuq_nn::opt::Adam;
use stuq_tensor::{kernels, GradStore, StuqRng, Tape, Tensor};
use stuq_traffic::{Preset, SplitDataset};

/// The three execution modes of one workload, plus derived ratios.
struct Triple {
    seed: Sample,
    engine_serial: Sample,
    parallel: Sample,
}

impl Triple {
    fn speedup_serial(&self) -> f64 {
        self.seed.best_s / self.engine_serial.best_s
    }
    fn speedup_parallel(&self) -> f64 {
        self.seed.best_s / self.parallel.best_s
    }
    fn thread_scaling(&self) -> f64 {
        self.engine_serial.best_s / self.parallel.best_s
    }
}

fn time_matmul_tb(m: usize, k: usize, n: usize, secs: f64, reps: usize) -> Triple {
    let mut rng = StuqRng::new(0x307);
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
    let label = format!("matmul_tb {m}x{k}x{n}");
    Triple {
        seed: bench_with(&format!("{label} seed"), secs, reps, || {
            std::hint::black_box(kernels::matmul_tb_reference(a.data(), bt.data(), m, k, n))
        }),
        engine_serial: bench_with(&format!("{label} tiled-serial"), secs, reps, || {
            stuq_parallel::with_serial(|| std::hint::black_box(a.matmul_tb(&bt)))
        }),
        parallel: bench_with(&format!("{label} parallel"), secs, reps, || {
            std::hint::black_box(a.matmul_tb(&bt))
        }),
    }
}

/// Tiled `matmul_tb` must stay within fp-reassociation tolerance of the seed
/// kernel (the summation order legitimately differs; bit-equality is only
/// promised across *thread counts*, which the tests assert separately).
fn check_matmul_tb(m: usize, k: usize, n: usize) -> bool {
    let mut rng = StuqRng::new(0x7B);
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
    let fast = a.matmul_tb(&bt);
    let reference = kernels::matmul_tb_reference(a.data(), bt.data(), m, k, n);
    fast.data().iter().zip(&reference).all(|(&x, &y)| {
        let denom = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() / denom <= 1e-4
    })
}

/// Records one full AGCRN training-loss tape (forward + combined loss) at
/// Pems04Like scale, exactly the graph `sample_grad` walks every iteration.
fn training_tape() -> (Tape, usize) {
    let mut rng = StuqRng::new(0x404);
    let cfg = AgcrnConfig::new(307, 12)
        .with_capacity(32, 8, 2)
        .with_dropout(0.1, 0.2)
        .with_head(HeadKind::Gaussian);
    let model = Agcrn::new(cfg, &mut rng);
    let x = Tensor::randn(&[12, 307], 1.0, &mut rng);
    let y = Tensor::randn(&[307, 12], 1.0, &mut rng);
    let mut tape = Tape::new();
    let mut ctx = FwdCtx::train(&mut rng);
    let pred = model.forward(&mut tape, &x, &mut ctx);
    let target = tape.constant(y);
    let l = loss_node(&mut tape, &pred, target, LossKind::Combined { lambda: 0.1 })
        .expect("gaussian head takes the combined loss");
    (tape, l)
}

fn time_backward(tape: &Tape, l: usize, secs: f64, reps: usize) -> Triple {
    Triple {
        seed: bench_with("backward serial", secs, reps, || {
            std::hint::black_box(tape.backward_serial(l))
        }),
        engine_serial: bench_with("backward levels-serial", secs, reps, || {
            stuq_parallel::with_serial(|| std::hint::black_box(tape.backward_levels(l)))
        }),
        parallel: bench_with("backward levels-parallel", secs, reps, || {
            std::hint::black_box(tape.backward_levels(l))
        }),
    }
}

fn grads_bit_identical(a: &GradStore, b: &GradStore) -> bool {
    a.len() == b.len()
        && a.iter().all(|(slot, ga)| {
            b.get(slot).is_some_and(|gb| {
                ga.data().iter().zip(gb.data()).all(|(x, y)| x.to_bits() == y.to_bits())
            })
        })
}

fn epoch_fixture() -> SplitDataset {
    Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(21)
}

fn run_epoch(ds: &SplitDataset) -> Vec<Tensor> {
    let mut rng = StuqRng::new(77);
    let cfg = AgcrnConfig::new(ds.n_nodes(), ds.horizon())
        .with_capacity(16, 4, 1)
        .with_dropout(0.05, 0.1)
        .with_head(HeadKind::Gaussian);
    let mut model = Agcrn::new(cfg, &mut rng);
    let mut opt = Adam::new(3e-3, 1e-6);
    train_epoch(
        &mut model,
        ds,
        8,
        LossKind::Combined { lambda: 0.1 },
        &mut opt,
        5.0,
        &mut rng,
        None,
    )
    .expect("epoch trains");
    model.params().snapshot()
}

fn time_epoch(ds: &SplitDataset, secs: f64, reps: usize) -> Triple {
    Triple {
        seed: bench_with("epoch seed", secs, reps, || {
            stuq_parallel::with_serial(|| kernels::with_reference_kernels(|| run_epoch(ds)))
        }),
        engine_serial: bench_with("epoch engine-serial", secs, reps, || {
            stuq_parallel::with_serial(|| run_epoch(ds))
        }),
        parallel: bench_with("epoch parallel", secs, reps, || run_epoch(ds)),
    }
}

fn triple_json(out: &mut String, key: &str, extra: &str, t: &Triple, trailing_comma: bool) {
    let comma = if trailing_comma { "," } else { "" };
    let _ = write!(
        out,
        "  \"{key}\": {{\n{extra}    \"seed_ms\": {:.3},\n    \"engine_serial_ms\": {:.3},\n    \
         \"parallel_ms\": {:.3},\n    \"parallel_p50_ms\": {:.3},\n    \
         \"parallel_p95_ms\": {:.3},\n    \"parallel_p99_ms\": {:.3},\n    \
         \"speedup_serial_vs_seed\": {:.2},\n    \
         \"speedup_parallel_vs_seed\": {:.2},\n    \"thread_scaling\": {:.2}\n  }}{comma}\n",
        t.seed.best_s * 1e3,
        t.engine_serial.best_s * 1e3,
        t.parallel.best_s * 1e3,
        t.parallel.p50_s * 1e3,
        t.parallel.p95_s * 1e3,
        t.parallel.p99_s * 1e3,
        t.speedup_serial(),
        t.speedup_parallel(),
        t.thread_scaling(),
    );
}

fn print_triple(label: &str, t: &Triple) {
    println!(
        "{label}: seed {:.2} ms | engine-serial {:.2} ms ({:.2}x) | parallel {:.2} ms ({:.2}x)",
        t.seed.best_s * 1e3,
        t.engine_serial.best_s * 1e3,
        t.speedup_serial(),
        t.parallel.best_s * 1e3,
        t.speedup_parallel(),
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = stuq_parallel::num_threads();
    let (secs, reps) = if quick { (0.15, 3) } else { (0.7, 50) };
    println!("bench_pr3: {threads} thread(s) configured{}", if quick { ", --quick" } else { "" });

    let tb_rect = time_matmul_tb(307, 64, 307, secs, reps);
    let tb_square = time_matmul_tb(307, 307, 307, secs, reps);
    print_triple("matmul_tb 307x64x307", &tb_rect);
    print_triple("matmul_tb 307x307x307", &tb_square);
    let tb_ok = check_matmul_tb(307, 64, 307) && check_matmul_tb(307, 307, 307);
    println!("tiled matmul_tb within tolerance of *_reference: {tb_ok}");

    let (tape, l) = training_tape();
    let n_nodes = l + 1;
    let bwd = time_backward(&tape, l, secs, reps);
    print_triple(&format!("backward ({n_nodes} tape nodes)"), &bwd);
    let bwd_ok = {
        let serial = tape.backward_serial(l);
        grads_bit_identical(&serial, &tape.backward_levels(l))
            && grads_bit_identical(&serial, &tape.backward(l))
    };
    println!("level-scheduled backward bit-identical to serial walk: {bwd_ok}");

    let ds = epoch_fixture();
    let (esecs, ereps) = if quick { (0.0, 1) } else { (2.0, 5) };
    let epoch = time_epoch(&ds, esecs, ereps);
    print_triple("train epoch (Pems08Like 0.08)", &epoch);
    let epoch_ok = {
        let par = run_epoch(&ds);
        let ser = stuq_parallel::with_serial(|| run_epoch(&ds));
        par.len() == ser.len()
            && par.iter().zip(&ser).all(|(a, b)| {
                a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
            })
    };
    println!("1-epoch parallel vs serial parameters bit-identical: {epoch_ok}");

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"workload_scale\": \"Pems04Like tape (307 nodes), Pems08Like epoch (0.08 scale)\",\n  \
         \"threads\": {threads},\n  \"quick\": {quick},\n  \
         \"baseline\": \"seed scalar matmul_tb_reference + Tape::backward_serial + with_reference_kernels epoch\",\n"
    );
    triple_json(&mut out, "matmul_tb_rect", "    \"shape_mkn\": [307, 64, 307],\n", &tb_rect, true);
    triple_json(
        &mut out,
        "matmul_tb_square",
        "    \"shape_mkn\": [307, 307, 307],\n",
        &tb_square,
        true,
    );
    triple_json(&mut out, "backward", &format!("    \"tape_nodes\": {n_nodes},\n"), &bwd, true);
    triple_json(&mut out, "epoch", "    \"batch_size\": 8,\n", &epoch, true);
    let _ = write!(
        out,
        "  \"determinism\": {{\n    \"tiled_matmul_tb_within_tolerance_of_reference\": {tb_ok},\n    \
         \"parallel_backward_bit_identical_to_serial\": {bwd_ok},\n    \
         \"epoch_params_bit_identical_across_thread_counts\": {epoch_ok}\n  }},\n  \
         \"notes\": [\n    \"speedup_parallel_vs_seed is the wall-clock win of the new training engine over the seed code path\",\n    \
         \"thread_scaling isolates pool fan-out (new code, 1 thread vs N); it is ~1.0 on single-core hosts\",\n    \
         \"determinism flags are hard-asserted: the binary exits nonzero if any is false\"\n  ]\n}}\n"
    );

    std::fs::write("BENCH_PR3.json", &out).expect("write BENCH_PR3.json");
    println!("wrote BENCH_PR3.json");

    assert!(tb_ok, "tiled matmul_tb diverged from matmul_tb_reference");
    assert!(bwd_ok, "parallel backward diverged from the serial walk");
    assert!(epoch_ok, "epoch parameters depend on the thread count");
}
