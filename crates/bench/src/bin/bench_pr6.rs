//! Machine-readable speedup record for the request-coalescing + forecast-cache
//! PR (DESIGN.md §12).
//!
//! Workload: a same-tick burst — K requests for the identical window and
//! tick arriving inside one batch window, the shape `stuq gen-requests
//! --burst` emits. Three measured paths through the same
//! [`Server::handle_forecast_batch`] entry point:
//!
//! - `serial`: K singleton calls, the pre-batching behaviour (one full MC run
//!   per request);
//! - `batched`: one K-request call — the coalescer groups the duplicates and
//!   they share a single MC run;
//! - `cached`: cache enabled and primed, K singleton calls answered without
//!   touching the model. Reported separately and *excluded* from the batching
//!   speedup, per the acceptance criteria.
//!
//! A second batched measurement (`hot_nodes`) has each member slice a
//! different node subset / horizon prefix, showing the sharing survives
//! heterogeneous views of the grid.
//!
//! Results go to `BENCH_PR6.json`. The binary asserts the determinism
//! contract — batched responses bit-identical to serial modulo the
//! `batched`/`batch_size`/`cache_hit` annotation, byte-stable across reruns
//! and thread pools — and, in full mode, the ≥3× same-tick throughput win.
//! `--quick` shortens the timing loops without weakening the identity checks.

use std::fmt::Write as _;

use deepstuq::pipeline::{DeepStuq, DeepStuqConfig};
use stuq_bench::timing::{bench_with, Sample};
use stuq_serve::proto::{strip_batch_meta, ForecastReq};
use stuq_serve::{ServeConfig, Server};
use stuq_traffic::{Preset, Split};

/// Duplicate requests per burst. gen-requests --burst defaults land in the
/// same ballpark; 8 is a realistic per-tick fan-in for a dashboard tier.
const K: usize = 8;
const MC: usize = 8;

struct Fixture {
    dir: std::path::PathBuf,
    model: std::path::PathBuf,
    data: std::path::PathBuf,
    window: Vec<Vec<f32>>,
}

fn fixture() -> Fixture {
    let dir = std::env::temp_dir().join(format!("stuq_bench_pr6_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(601);
    let data = dir.join("bench.stuqd");
    stuq_traffic::save_dataset(ds.data(), &data).expect("save dataset");
    let cfg = DeepStuqConfig::fast_demo(ds.n_nodes(), ds.horizon());
    let model_obj = DeepStuq::train(&ds, cfg, 601);
    let model = dir.join("bench.stuq");
    deepstuq::save_model(&model_obj, &model).expect("save model");
    let start = ds.window_starts(Split::Test)[0];
    let window: Vec<Vec<f32>> = (start..start + ds.t_h())
        .map(|t| (0..ds.n_nodes()).map(|i| ds.data().get(t, i)).collect())
        .collect();
    Fixture { dir, model, data, window }
}

fn server(f: &Fixture, cache_ttl_ms: u64) -> Server {
    let mut cfg = ServeConfig::new(&f.model);
    cfg.data_path = Some(f.data.clone());
    cfg.fake_clock_step_ms = Some(1);
    cfg.reload_poll_ms = 0;
    cfg.mc_samples = Some(MC);
    cfg.seed = 601;
    cfg.cache_ttl_ms = cache_ttl_ms;
    Server::new(cfg).expect("server")
}

fn burst_req(
    f: &Fixture,
    id: usize,
    nodes: Option<Vec<usize>>,
    horizon: Option<usize>,
) -> ForecastReq {
    ForecastReq {
        id: Some(format!("r{id}")),
        x: f.window.clone(),
        deadline_ms: None,
        mc: Some(MC),
        seed: None,
        tick: Some(1),
        nodes,
        horizon,
        trace: None,
        span: None,
    }
}

fn same_tick_burst(f: &Fixture) -> Vec<ForecastReq> {
    (0..K).map(|i| burst_req(f, i, None, None)).collect()
}

fn hot_node_burst(f: &Fixture, n_nodes: usize, horizon: usize) -> Vec<ForecastReq> {
    (0..K)
        .map(|i| {
            let mut nodes: Vec<usize> = (0..1 + i % 3).map(|j| (i + j) % n_nodes).collect();
            nodes.sort_unstable();
            nodes.dedup();
            burst_req(f, i, Some(nodes), Some(1 + i % horizon))
        })
        .collect()
}

fn mean_batch_size(responses: &[String]) -> f64 {
    let sizes: Vec<f64> = responses
        .iter()
        .filter_map(|r| {
            let tail = r.split("\"batch_size\":").nth(1)?;
            tail.split([',', '}']).next()?.parse::<f64>().ok()
        })
        .collect();
    sizes.iter().sum::<f64>() / sizes.len().max(1) as f64
}

fn count_flag(responses: &[String], flag: &str) -> usize {
    responses.iter().filter(|r| r.contains(flag)).count()
}

fn per_request(s: &Sample, k: usize) -> (f64, f64, f64, f64) {
    // best/p50/p95/p99 per *request* in ms, for a sample timed per burst of k.
    let per = 1e3 / k as f64;
    (s.best_s * per, s.p50_s * per, s.p95_s * per, s.p99_s * per)
}

fn section(out: &mut String, key: &str, s: &Sample, k: usize, extra: &str, trailing_comma: bool) {
    let (best, p50, p95, p99) = per_request(s, k);
    let comma = if trailing_comma { "," } else { "" };
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"requests_per_s\": {:.1},\n    \"latency_best_ms\": {best:.3},\n    \
         \"latency_p50_ms\": {p50:.3},\n    \"latency_p95_ms\": {p95:.3},\n    \
         \"latency_p99_ms\": {p99:.3}{extra}\n  }}{comma}\n",
        k as f64 / s.best_s,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = stuq_parallel::num_threads();
    let (secs, reps) = if quick { (0.1, 3) } else { (0.6, 30) };
    println!("bench_pr6: {threads} thread(s) configured{}", if quick { ", --quick" } else { "" });

    let f = fixture();
    let burst = same_tick_burst(&f);

    // --- identity checks (run once, before timing) -------------------------
    let batched_out = server(&f, 0).handle_forecast_batch(&burst);
    let mut solo_srv = server(&f, 0);
    let serial_out: Vec<String> = burst
        .iter()
        .map(|r| solo_srv.handle_forecast_batch(std::slice::from_ref(r)).pop().unwrap())
        .collect();
    let identity_ok = batched_out.len() == serial_out.len()
        && batched_out
            .iter()
            .zip(&serial_out)
            .all(|(b, s)| strip_batch_meta(b) == strip_batch_meta(s));
    println!("batched vs serial bit-identical (modulo annotation): {identity_ok}");

    let rerun_out = server(&f, 0).handle_forecast_batch(&burst);
    let pool_out = stuq_parallel::with_serial(|| server(&f, 0).handle_forecast_batch(&burst));
    let stable_ok = batched_out == rerun_out && batched_out == pool_out;
    println!("batched responses byte-stable across reruns and thread pools: {stable_ok}");

    let occupancy = mean_batch_size(&batched_out);

    // --- timing ------------------------------------------------------------
    let mut srv_b = server(&f, 0);
    let batched_s = bench_with("same-tick burst batched", secs, reps, || {
        std::hint::black_box(srv_b.handle_forecast_batch(&burst))
    });
    let mut srv_s = server(&f, 0);
    let serial_s = bench_with("same-tick burst serial", secs, reps, || {
        let out: Vec<String> = burst
            .iter()
            .map(|r| srv_s.handle_forecast_batch(std::slice::from_ref(r)).pop().unwrap())
            .collect();
        std::hint::black_box(out)
    });
    let speedup = serial_s.best_s / batched_s.best_s;
    println!(
        "same-tick burst K={K}: serial {:.2} ms | batched {:.2} ms ({speedup:.2}x requests/s)",
        serial_s.best_s * 1e3,
        batched_s.best_s * 1e3,
    );

    let hot = hot_node_burst(&f, f.window[0].len(), f.window.len().min(4));
    let mut srv_h = server(&f, 0);
    let hot_s = bench_with("hot-node burst batched", secs, reps, || {
        std::hint::black_box(srv_h.handle_forecast_batch(&hot))
    });
    let hot_occupancy = mean_batch_size(&server(&f, 0).handle_forecast_batch(&hot));

    // Cache phase: prime once, then every burst is pure hits (TTL far above
    // the handful of fake-clock ticks a lookup costs). Reported separately —
    // the batching speedup above never touches the cache.
    let mut srv_c = server(&f, 1_000_000);
    let primed = srv_c.handle_forecast_batch(&burst);
    let hits_in_prime = count_flag(&primed, "\"cache_hit\":true");
    let cached_once = srv_c.handle_forecast_batch(&burst);
    let hit_rate = count_flag(&cached_once, "\"cache_hit\":true") as f64 / cached_once.len() as f64;
    let cache_identity_ok =
        cached_once.iter().zip(&primed).all(|(h, m)| strip_batch_meta(h) == strip_batch_meta(m));
    println!("cache: prime hits {hits_in_prime}, steady-state hit rate {hit_rate:.2}");
    let cached_s = bench_with("same-tick burst cached", secs, reps, || {
        std::hint::black_box(srv_c.handle_forecast_batch(&burst))
    });

    // --- report ------------------------------------------------------------
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"workload\": \"Pems08Like 0.08 fast_demo model, K={K} same-tick duplicate burst, mc={MC}\",\n  \
         \"threads\": {threads},\n  \"quick\": {quick},\n  \
         \"baseline\": \"per-request handle_forecast_batch (pre-coalescer behaviour)\",\n"
    );
    section(&mut out, "serial", &serial_s, K, "", true);
    section(
        &mut out,
        "batched",
        &batched_s,
        K,
        &format!(",\n    \"mean_batch_occupancy\": {occupancy:.2}"),
        true,
    );
    section(
        &mut out,
        "hot_nodes_batched",
        &hot_s,
        K,
        &format!(",\n    \"mean_batch_occupancy\": {hot_occupancy:.2}"),
        true,
    );
    section(&mut out, "cached", &cached_s, K, &format!(",\n    \"hit_rate\": {hit_rate:.2}"), true);
    let _ = write!(
        out,
        "  \"speedup_batched_vs_serial\": {speedup:.2},\n  \
         \"determinism\": {{\n    \"batched_bit_identical_to_serial_modulo_annotation\": {identity_ok},\n    \
         \"batched_byte_stable_across_reruns_and_pools\": {stable_ok},\n    \
         \"cache_hit_bit_identical_to_computed\": {cache_identity_ok}\n  }},\n  \
         \"notes\": [\n    \"speedup_batched_vs_serial excludes the cache entirely (cache_ttl_ms=0 on both sides)\",\n    \
         \"cached numbers are reported separately and never feed the speedup figure\",\n    \
         \"determinism flags are hard-asserted: the binary exits nonzero if any is false\"\n  ]\n}}\n"
    );
    std::fs::write("BENCH_PR6.json", &out).expect("write BENCH_PR6.json");
    println!("wrote BENCH_PR6.json");
    std::fs::remove_dir_all(&f.dir).ok();

    assert!(identity_ok, "batched responses diverged from serial");
    assert!(stable_ok, "batched responses depend on rerun or thread pool");
    assert!(cache_identity_ok, "cache hit diverged from the computed response");
    assert!(
        (hit_rate - 1.0).abs() < f64::EPSILON && hits_in_prime == 0,
        "cache phase must be all misses on prime, all hits after"
    );
    if !quick {
        assert!(
            speedup >= 3.0,
            "same-tick burst batched speedup {speedup:.2}x below the 3x acceptance floor"
        );
    }
}
