//! Reproduces **Fig. 11**: point metrics versus the number of Monte-Carlo
//! samples (1, 3, 5, 10, 15).
//!
//! Paper shape to check: metrics improve with more samples and saturate by
//! ~10–15, justifying the paper's choice of 10 at test time.

use deepstuq::eval::{evaluate, RawForecast};
use deepstuq::pipeline::{DeepStuq, DeepStuqConfig};
use stuq_bench::{datasets, fmt2, method_config, parse_args, print_table, write_csv};
use stuq_models::AgcrnConfig;
use stuq_tensor::StuqRng;
use stuq_traffic::Split;

fn main() {
    let opts = parse_args();
    println!("Fig. 11 reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let stride = opts.scale.eval_stride();
    let sample_counts = [1usize, 3, 5, 10, 15];

    let mut rows = Vec::new();
    for (preset, ds) in datasets(&opts) {
        eprintln!("[fig11] dataset {preset:?}");
        let mcfg = method_config(&opts, ds.n_nodes());
        let seed = opts.seed ^ preset.seed_offset();
        let cfg = DeepStuqConfig {
            base: AgcrnConfig::new(ds.n_nodes(), ds.horizon())
                .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
                .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout),
            train: mcfg.train.clone(),
            awa: Some(mcfg.awa.clone()),
            calib: Some(mcfg.calib),
            mc_samples: mcfg.mc_samples,
        };
        let model = DeepStuq::train(&ds, cfg, seed);
        let scaler = *ds.scaler();
        for n in sample_counts {
            let mut rng = StuqRng::new(seed ^ 0xF11);
            let r = evaluate(&ds, Split::Test, stride, |x, _| {
                let f = model.forecast_normalized(x, n, &mut rng);
                RawForecast { mu: f.mu.map(|v| scaler.inverse(v)), sigma: None, bounds: None }
            });
            rows.push(vec![
                format!("{preset:?}"),
                format!("{n}"),
                fmt2(r.point.mae),
                fmt2(r.point.rmse),
                fmt2(r.point.mape),
            ]);
        }
    }

    let header = ["dataset", "mc_samples", "MAE", "RMSE", "MAPE(%)"];
    print_table("Fig. 11: metrics vs Monte-Carlo sample count", &header, &rows);
    write_csv(&opts.out_dir, "fig11.csv", &header, &rows);
}
