//! Reproduces **Fig. 9**: aleatoric vs epistemic uncertainty traces on a
//! randomly selected PEMS08-like sensor.
//!
//! Paper shape to check: the aleatoric band is much wider than the epistemic
//! band — traffic uncertainty is mainly data noise.

use deepstuq::decompose::sensor_trace;
use deepstuq::pipeline::{DeepStuq, DeepStuqConfig};
use stuq_bench::{dataset, method_config, parse_args, write_csv, Scale};
use stuq_models::AgcrnConfig;
use stuq_tensor::StuqRng;
use stuq_traffic::{Preset, Split};

fn main() {
    let opts = parse_args();
    println!("Fig. 9 reproduction — scale {:?}, seed {}", opts.scale, opts.seed);
    let ds = dataset(&opts, Preset::Pems08Like);
    let mcfg = method_config(&opts, ds.n_nodes());
    let seed = opts.seed ^ Preset::Pems08Like.seed_offset();
    let cfg = DeepStuqConfig {
        base: AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_capacity(mcfg.hidden, mcfg.embed_dim, mcfg.n_layers)
            .with_dropout(mcfg.encoder_dropout, mcfg.decoder_dropout),
        train: mcfg.train.clone(),
        awa: Some(mcfg.awa.clone()),
        calib: Some(mcfg.calib),
        mc_samples: mcfg.mc_samples,
    };
    let model = DeepStuq::train(&ds, cfg, seed);

    let mut rng = StuqRng::new(seed ^ 0xF19);
    let sensor = rng.uniform_usize(ds.n_nodes());
    let starts = ds.window_starts(Split::Test);
    let take = match opts.scale {
        Scale::Quick => 60,
        _ => 288,
    }
    .min(starts.len());

    let mut rows = Vec::new();
    let (mut sum_a, mut sum_e) = (0.0f64, 0.0f64);
    for &s in starts.iter().take(take) {
        let w = ds.window(s);
        let f = model.forecast_normalized(&w.x, model.mc_samples(), &mut rng);
        let mu_raw = f.mu.map(|v| ds.scaler().inverse(v));
        let tr = sensor_trace(&f, &mu_raw, sensor, ds.scaler().std(), model.temperature());
        sum_a += tr.sigma_aleatoric[0];
        sum_e += tr.sigma_epistemic[0];
        rows.push(vec![
            format!("{s}"),
            format!("{:.2}", w.y_raw.get(0, sensor)),
            format!("{:.2}", tr.mu[0]),
            format!("{:.3}", tr.sigma_aleatoric[0]),
            format!("{:.3}", tr.sigma_epistemic[0]),
            format!("{:.3}", tr.sigma_total[0]),
        ]);
    }
    println!(
        "sensor {sensor}: mean aleatoric σ = {:.3}, mean epistemic σ = {:.3} (ratio {:.1}×)",
        sum_a / take as f64,
        sum_e / take as f64,
        (sum_a / sum_e.max(1e-12))
    );
    write_csv(
        &opts.out_dir,
        "fig9.csv",
        &["t", "truth", "mu", "sigma_aleatoric", "sigma_epistemic", "sigma_total"],
        &rows,
    );
}
