//! Shared harness for the paper-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). They share the CLI, dataset
//! construction and table/CSV output implemented here.
//!
//! # Scales
//!
//! The paper's experiments ran on GPUs for hours; this harness defaults to
//! `--scale quick` (minutes on a laptop: graphs shrunk ~12×, series ~50×,
//! few epochs) and also offers `standard` (tens of minutes) and `full`
//! (paper-sized data and epochs — expect days on CPU; provided for
//! completeness and spot-checking). Relative orderings — which method wins,
//! where coverage lands — are the reproduction target at every scale.

pub mod baselines;
pub mod timing;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use deepstuq::config::{AwaConfig, CalibConfig, TrainConfig};
use deepstuq::methods::MethodConfig;
use stuq_traffic::{DatasetSpec, Preset, SplitDataset};

/// Experiment scale: how far from paper-size the run is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes on a laptop; CI-friendly.
    Quick,
    /// Tens of minutes; tighter numbers.
    Standard,
    /// Paper-sized data and epochs (days on CPU).
    Full,
}

impl Scale {
    /// `(node_frac, step_frac)` applied to the Table I specs.
    pub fn data_fractions(self) -> (f64, f64) {
        match self {
            Scale::Quick => (0.08, 0.02),
            Scale::Standard => (0.15, 0.06),
            Scale::Full => (1.0, 1.0),
        }
    }

    /// `(pretrain_epochs, batch_size)`.
    pub fn train_knobs(self) -> (usize, usize) {
        match self {
            Scale::Quick => (2, 8),
            Scale::Standard => (6, 16),
            Scale::Full => (100, 64),
        }
    }

    /// Stride over test windows during evaluation.
    pub fn eval_stride(self) -> usize {
        match self {
            Scale::Quick => 7,
            Scale::Standard => 3,
            Scale::Full => 1,
        }
    }
}

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Master experiment seed.
    pub seed: u64,
    /// Run scale.
    pub scale: Scale,
    /// Output directory for CSV artefacts.
    pub out_dir: PathBuf,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self { seed: 42, scale: Scale::Quick, out_dir: PathBuf::from("target/experiments") }
    }
}

/// Parses `--seed N`, `--scale quick|standard|full`, `--out DIR`.
pub fn parse_args() -> HarnessOpts {
    let mut opts = HarnessOpts::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"));
                i += 2;
            }
            "--scale" => {
                opts.scale = match args.get(i + 1).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("standard") => Scale::Standard,
                    Some("full") => Scale::Full,
                    other => panic!("--scale quick|standard|full, got {other:?}"),
                };
                i += 2;
            }
            "--out" => {
                opts.out_dir = PathBuf::from(args.get(i + 1).expect("--out needs a path"));
                i += 2;
            }
            other => panic!("unknown argument {other} (use --seed/--scale/--out)"),
        }
    }
    opts
}

/// The four Table I datasets at the chosen scale, in paper order.
pub fn datasets(opts: &HarnessOpts) -> Vec<(Preset, SplitDataset)> {
    let (nf, sf) = opts.scale.data_fractions();
    Preset::all()
        .into_iter()
        .map(|p| {
            let spec = scaled_spec(p, nf, sf);
            let ds = spec.generate(opts.seed ^ p.seed_offset());
            (p, ds)
        })
        .collect()
}

/// One dataset (for the single-dataset figures).
pub fn dataset(opts: &HarnessOpts, preset: Preset) -> SplitDataset {
    let (nf, sf) = opts.scale.data_fractions();
    scaled_spec(preset, nf, sf).generate(opts.seed ^ preset.seed_offset())
}

fn scaled_spec(p: Preset, nf: f64, sf: f64) -> DatasetSpec {
    let spec = p.spec();
    if (nf - 1.0).abs() < 1e-12 && (sf - 1.0).abs() < 1e-12 {
        spec
    } else {
        spec.scaled(nf, sf)
    }
}

/// Method-zoo configuration for the chosen scale.
pub fn method_config(opts: &HarnessOpts, n_nodes: usize) -> MethodConfig {
    match opts.scale {
        Scale::Full => MethodConfig::paper(n_nodes),
        _ => {
            let (epochs, batch) = opts.scale.train_knobs();
            MethodConfig::fast(n_nodes, epochs, batch)
        }
    }
}

/// Pipeline stage configs for the chosen scale.
pub fn stage_configs(opts: &HarnessOpts) -> (TrainConfig, AwaConfig, CalibConfig) {
    match opts.scale {
        Scale::Full => (TrainConfig::default(), AwaConfig::default(), CalibConfig::default()),
        _ => {
            let (epochs, batch) = opts.scale.train_knobs();
            (
                TrainConfig::scaled(epochs, batch),
                AwaConfig::scaled(((epochs / 2).max(1) * 2).min(6), batch),
                CalibConfig { mc_samples: 5, max_iters: 300, stride: 5 },
            )
        }
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(160)));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        println!("{line}");
    }
}

/// Writes a CSV artefact under the output directory.
pub fn write_csv(out_dir: &Path, name: &str, header: &[&str], rows: &[Vec<String>]) {
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join(name);
    let mut body = header.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    println!("wrote {}", path.display());
}

/// Formats a float to two decimals, printing `-` for NaN (the paper's "—").
pub fn fmt2(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_knobs_are_ordered() {
        let (nq, sq) = Scale::Quick.data_fractions();
        let (ns, ss) = Scale::Standard.data_fractions();
        let (nf, sf) = Scale::Full.data_fractions();
        assert!(nq < ns && ns < nf && (nf - 1.0).abs() < 1e-12);
        assert!(sq < ss && ss < sf);
        assert!(Scale::Quick.eval_stride() > Scale::Full.eval_stride());
    }

    #[test]
    fn datasets_cover_all_presets() {
        let opts = HarnessOpts::default();
        let ds = datasets(&opts);
        assert_eq!(ds.len(), 4);
        // Names survive scaling.
        assert!(ds[0].1.data().name().contains("PEMS03"));
        assert!(ds[3].1.data().name().contains("PEMS08"));
    }

    #[test]
    fn fmt2_handles_nan() {
        assert_eq!(fmt2(f64::NAN), "-");
        assert_eq!(fmt2(12.345), "12.35");
    }

    #[test]
    fn full_scale_uses_paper_specs() {
        let opts = HarnessOpts { scale: Scale::Full, ..Default::default() };
        let (nf, sf) = opts.scale.data_fractions();
        let spec = scaled_spec(Preset::Pems04Like, nf, sf);
        assert_eq!((spec.nodes, spec.edges, spec.steps), (307, 340, 16_992));
    }
}
