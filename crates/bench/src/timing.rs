//! Minimal wall-clock micro-benchmark harness.
//!
//! The build environment is offline, so Criterion cannot be fetched; this
//! module provides the small subset the repo needs: warmup, a time-budgeted
//! measurement loop over `std::time::Instant`, and best/mean statistics.
//! "Best of N" is the headline number — it is the least noisy estimator on a
//! shared machine, and every comparison in BENCH_PR1.json uses the same
//! statistic on both sides.

use std::time::Instant;

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Measured iterations (after warmup).
    pub iters: usize,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Best (minimum) seconds per iteration.
    pub best_s: f64,
    /// Median seconds per iteration (log-bucketed estimate from the shared
    /// [`stuq_obs::Histogram`]).
    pub p50_s: f64,
    /// 95th-percentile seconds per iteration (same estimator).
    pub p95_s: f64,
    /// 99th-percentile seconds per iteration (same estimator) — the serving
    /// tail the BENCH artifacts track.
    pub p99_s: f64,
}

impl Sample {
    /// Throughput in GFLOP/s for a known per-iteration FLOP count, based on
    /// the best iteration.
    pub fn gflops(&self, flops_per_iter: f64) -> f64 {
        flops_per_iter / self.best_s / 1e9
    }

    /// Iterations per second, based on the best iteration.
    pub fn per_sec(&self) -> f64 {
        1.0 / self.best_s
    }
}

/// Pretty-prints a duration in seconds with an adaptive unit.
pub fn fmt_duration(s: f64) -> String {
    if s < 1e-6 {
        format!("{:8.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:8.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{s:8.3} s ")
    }
}

impl std::fmt::Display for Sample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} best {} p50 {} p95 {} p99 {} mean {}  ({} iters)",
            self.name,
            fmt_duration(self.best_s),
            fmt_duration(self.p50_s),
            fmt_duration(self.p95_s),
            fmt_duration(self.p99_s),
            fmt_duration(self.mean_s),
            self.iters
        )
    }
}

/// Times `f` with one warmup call, then measures iterations until
/// `min_total_s` of measured time has accumulated or `max_iters` is reached
/// (always at least 3 iterations).
pub fn bench_with<R>(
    name: &str,
    min_total_s: f64,
    max_iters: usize,
    mut f: impl FnMut() -> R,
) -> Sample {
    std::hint::black_box(f());
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    let mut iters = 0usize;
    // Per-iteration timings feed the same log-bucketed histogram the
    // telemetry layer uses, giving p50/p95 without storing every sample.
    let hist = stuq_obs::Histogram::new();
    while (total < min_total_s || iters < 3) && iters < max_iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
        hist.record(dt);
        iters += 1;
    }
    // Sub-resolution iterations (dt == 0) are rejected by the histogram;
    // fall back to the exact statistics we do have.
    let (p50_s, p95_s, p99_s) = if hist.count() > 0 {
        (hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99))
    } else {
        (best, best, best)
    };
    Sample {
        name: name.to_string(),
        iters,
        mean_s: total / iters as f64,
        best_s: best,
        p50_s,
        p95_s,
        p99_s,
    }
}

/// [`bench_with`] at the default budget (0.5 s or 1000 iterations).
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Sample {
    bench_with(name, 0.5, 1000, f)
}

/// Times several variants of one workload in a single interleaved loop:
/// every round runs each variant once, in order, so slow drift on a shared
/// machine (CPU steal, frequency shifts) lands on all variants instead of
/// biasing whichever loop it overlapped. Ratios between the returned
/// samples are therefore fair even when the absolute numbers wobble.
///
/// Each variant gets one warmup call, then rounds continue until every
/// variant has accumulated `min_total_s` of measured time or `max_rounds`
/// rounds have run (always at least 3). Returns one [`Sample`] per variant,
/// in input order.
///
/// # Panics
///
/// Panics if `names` and `fs` differ in length or are empty.
pub fn bench_interleaved(
    names: &[&str],
    min_total_s: f64,
    max_rounds: usize,
    fs: &mut [&mut dyn FnMut()],
) -> Vec<Sample> {
    assert_eq!(names.len(), fs.len(), "one name per variant");
    assert!(!fs.is_empty(), "at least one variant");
    for f in fs.iter_mut() {
        f();
    }
    let n = fs.len();
    let mut total = vec![0.0f64; n];
    let mut best = vec![f64::INFINITY; n];
    let hists: Vec<_> = (0..n).map(|_| stuq_obs::Histogram::new()).collect();
    let mut rounds = 0usize;
    while (rounds < 3 || total.iter().any(|&t| t < min_total_s)) && rounds < max_rounds {
        for (i, f) in fs.iter_mut().enumerate() {
            let t0 = Instant::now();
            f();
            let dt = t0.elapsed().as_secs_f64();
            total[i] += dt;
            best[i] = best[i].min(dt);
            hists[i].record(dt);
        }
        rounds += 1;
    }
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let (p50_s, p95_s, p99_s) = if hists[i].count() > 0 {
                (hists[i].quantile(0.5), hists[i].quantile(0.95), hists[i].quantile(0.99))
            } else {
                (best[i], best[i], best[i])
            };
            Sample {
                name: (*name).to_string(),
                iters: rounds,
                mean_s: total[i] / rounds as f64,
                best_s: best[i],
                p50_s,
                p95_s,
                p99_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_three_iters_and_orders_stats() {
        let mut n = 0u64;
        let s = bench_with("noop", 0.0, 10, || n += 1);
        assert!(s.iters >= 3);
        assert!(s.best_s <= s.mean_s);
        assert!(n as usize >= s.iters, "warmup plus measured calls");
    }

    #[test]
    fn percentiles_are_finite_and_ordered() {
        let s = bench_with("sleepish", 0.0, 5, || {
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        assert!(s.p50_s.is_finite() && s.p95_s.is_finite() && s.p99_s.is_finite());
        assert!(s.best_s <= s.p50_s + 1e-12, "best {} p50 {}", s.best_s, s.p50_s);
        assert!(s.p50_s <= s.p95_s + 1e-12, "p50 {} p95 {}", s.p50_s, s.p95_s);
        assert!(s.p95_s <= s.p99_s + 1e-12, "p95 {} p99 {}", s.p95_s, s.p99_s);
        let line = s.to_string();
        assert!(line.contains("p50") && line.contains("p95") && line.contains("p99"), "{line}");
    }

    #[test]
    fn interleaved_runs_every_variant_the_same_number_of_rounds() {
        let (mut a, mut b) = (0u64, 0u64);
        let mut fa = || a += 1;
        let mut fb = || b += 1;
        let samples = bench_interleaved(&["a", "b"], 0.0, 7, &mut [&mut fa, &mut fb]);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].iters, samples[1].iters);
        assert!(samples[0].iters >= 3);
        assert_eq!(a, b, "variants advance in lockstep");
        assert!(samples.iter().all(|s| s.best_s <= s.mean_s));
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(5e-9).contains("ns"));
        assert!(fmt_duration(5e-5).contains("µs"));
        assert!(fmt_duration(5e-2).contains("ms"));
        assert!(fmt_duration(2.0).contains("s"));
    }
}
