//! Construction and point-evaluation of the Table III baseline models.

use deepstuq::eval::{evaluate, EvalResult, RawForecast};
use deepstuq::mc::mc_forecast;
use deepstuq::trainer::{train, LossKind};
use deepstuq::TrainConfig;
use stuq_models::{
    agcrn::AgcrnConfig,
    astgcn::{Astgcn, AstgcnConfig},
    dcrnn::{Dcrnn, DcrnnConfig},
    gwnet::{GraphWaveNet, GwnetConfig},
    stfgnn::{Stfgnn, StfgnnConfig},
    stgcn::{Stgcn, StgcnConfig},
    stsgcn::{Stsgcn, StsgcnConfig},
    Agcrn, Forecaster, HeadKind,
};
use stuq_tensor::StuqRng;
use stuq_traffic::{Split, SplitDataset};

/// The seven point-prediction baselines of Table III, in paper order.
pub const BASELINE_NAMES: [&str; 7] =
    ["DCRNN", "ST-GCN", "GWN", "ASTGCN", "STSGCN", "STFGNN", "AGCRN"];

/// Builds a baseline by its Table III name.
pub fn build_baseline(name: &str, ds: &SplitDataset, rng: &mut StuqRng) -> Box<dyn Forecaster> {
    let (n, t_h, tau) = (ds.n_nodes(), ds.t_h(), ds.horizon());
    let net = ds.data().network();
    match name {
        "DCRNN" => {
            let mut cfg = DcrnnConfig::new(n, tau);
            cfg.hidden = 16;
            Box::new(Dcrnn::new(cfg, net, rng))
        }
        "ST-GCN" => {
            let mut cfg = StgcnConfig::new(n, t_h, tau);
            cfg.channels = 16;
            Box::new(Stgcn::new(cfg, net, rng))
        }
        "GWN" => {
            let mut cfg = GwnetConfig::new(n, t_h, tau);
            cfg.channels = 16;
            Box::new(GraphWaveNet::new(cfg, rng))
        }
        "ASTGCN" => {
            let mut cfg = AstgcnConfig::new(n, t_h, tau);
            cfg.channels = 16;
            Box::new(Astgcn::new(cfg, rng))
        }
        "STSGCN" => {
            let mut cfg = StsgcnConfig::new(n, t_h, tau);
            cfg.channels = 16;
            Box::new(Stsgcn::new(cfg, net, rng))
        }
        "STFGNN" => {
            let mut cfg = StfgnnConfig::new(n, t_h, tau);
            cfg.channels = 16;
            // Temporal similarity graph is fit on the training segment only.
            let (lo, hi) = ds.segment(Split::Train);
            let mut values = Vec::with_capacity((hi - lo) * n);
            for t in lo..hi {
                values.extend_from_slice(ds.data().step(t));
            }
            Box::new(Stfgnn::new(cfg, net, &values, hi - lo, rng))
        }
        "AGCRN" => {
            let cfg = AgcrnConfig::new(n, tau)
                .with_capacity(16, 6.min(n / 2).max(2), 1)
                .with_dropout(0.0, 0.0)
                .with_head(HeadKind::Point);
            Box::new(Agcrn::new(cfg, rng))
        }
        other => panic!("unknown baseline {other}"),
    }
}

/// Trains a baseline with MAE loss and evaluates point metrics on the test split.
pub fn train_and_eval_baseline(
    model: &mut Box<dyn Forecaster>,
    ds: &SplitDataset,
    train_cfg: &TrainConfig,
    eval_stride: usize,
    rng: &mut StuqRng,
) -> EvalResult {
    train(model.as_mut(), ds, train_cfg, LossKind::Mae, rng).expect("baseline training failed");
    let scaler = *ds.scaler();
    let mut eval_rng = rng.fork(0xEA1);
    evaluate(ds, Split::Test, eval_stride, |x, _| {
        let f = mc_forecast(model.as_ref(), x, 1, &mut eval_rng);
        RawForecast { mu: f.mu.map(|v| scaler.inverse(v)), sigma: None, bounds: None }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_traffic::Preset;

    #[test]
    fn every_baseline_builds_and_evaluates() {
        let ds = Preset::Pems08Like.spec().scaled(0.08, 0.02).generate(3);
        let mut rng = StuqRng::new(3);
        let cfg = TrainConfig::scaled(1, 16);
        for name in BASELINE_NAMES {
            let mut model = build_baseline(name, &ds, &mut rng);
            let r = train_and_eval_baseline(&mut model, &ds, &cfg, 19, &mut rng);
            assert!(r.point.mae.is_finite() && r.point.mae > 0.0, "{name}: MAE {}", r.point.mae);
            assert!(r.point.rmse >= r.point.mae, "{name}");
        }
    }
}
