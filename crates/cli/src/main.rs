//! `stuq` binary entry point; all logic lives in the library so it can
//! be tested in-process.
//!
//! Fatal errors are routed through the telemetry sink by [`deepstuq_cli::run`]
//! itself (a `fatal` event with the exit code, flushed before the process
//! dies), so the binary only has to report and exit.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    if let Err(e) = deepstuq_cli::run(&args, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
