//! Implementation of the `stuq` command-line tool.
//!
//! Subcommands (see [`run`]):
//!
//! * `simulate` — generate a synthetic PEMS-like dataset and save it;
//! * `train` — train the three-stage DeepSTUQ pipeline on a dataset file
//!   and save the model;
//! * `evaluate` — compute all paper metrics (plus CRPS, interval score and
//!   the reliability curve) for a saved model on a dataset's test split;
//! * `forecast` — print one window's probabilistic forecast;
//! * `info` — inspect a dataset or model file.
//!
//! The library entry point [`run`] takes the argument list and a writer so
//! the whole CLI is testable without spawning processes.

use std::io::Write;
use std::path::PathBuf;

use deepstuq::eval::{evaluate, evaluate_faulted, RawForecast};
use deepstuq::pipeline::{DeepStuq, DeepStuqConfig, FitOptions, FitOutcome};
use deepstuq::{AwaConfig, CalibConfig, TrainConfig};
use stuq_metrics::{ProperScoreAccumulator, ReliabilityDiagram};
use stuq_models::{AgcrnConfig, Forecaster};
use stuq_tensor::StuqRng;
use stuq_traffic::{FaultPlan, FaultProfile, Preset, Split, SplitDataset};

/// Top-level CLI error type: a message for the user.
pub type CliError = String;

/// Entry point: parses `args` (without the program name) and executes.
pub fn run(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let cmd = match args.first().map(String::as_str) {
        Some("telemetry") => return cmd_telemetry(&args[1..], out),
        Some("trace") => return cmd_trace(&args[1..], out),
        Some("help") | None => {
            let _ = writeln!(out, "{USAGE}");
            return Ok(());
        }
        Some(
            cmd @ ("simulate" | "train" | "evaluate" | "forecast" | "info" | "serve"
            | "gen-requests"),
        ) => cmd,
        Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    let telem = TelemetryRun::start(cmd, args)?;
    let result = match cmd {
        "simulate" => cmd_simulate(&args[1..], out),
        "train" => cmd_train(&args[1..], out),
        "evaluate" => cmd_evaluate(&args[1..], out),
        "forecast" => cmd_forecast(&args[1..], out),
        "info" => cmd_info(&args[1..], out),
        "serve" => cmd_serve(&args[1..], out),
        "gen-requests" => cmd_gen_requests(&args[1..], out),
        _ => unreachable!("matched above"),
    };
    match result {
        Ok(()) => {
            telem.finish(out);
            Ok(())
        }
        Err(e) => {
            // Fatal errors land in the event log with exit-code context (the
            // binary exits 1) before being reported to the user.
            stuq_obs::emit_fatal(&e, 1);
            Err(e)
        }
    }
}

/// Per-invocation telemetry lifecycle: [`stuq_obs::init`] from the
/// `--telemetry-dir` / `--telemetry-level` flags, a `run_start` event, and —
/// on success — the `run_end` event, run manifest, sink flush and the
/// end-of-run phase table.
struct TelemetryRun {
    cmd: &'static str,
    seed: u64,
    /// Full argument list — hashed into the manifest's `config_hash`.
    argv: String,
    t0: std::time::Instant,
}

impl TelemetryRun {
    fn start(cmd: &str, args: &[String]) -> Result<TelemetryRun, CliError> {
        // `args` includes the command word; flag parse errors are left to the
        // command's own `Args::parse` so messages stay consistent.
        let a = Args::parse(&args[1..]).unwrap_or(Args { pairs: Vec::new() });
        let level = match a.get("telemetry-level") {
            None => stuq_obs::Level::Summary,
            Some(v) => stuq_obs::Level::parse(v).ok_or_else(|| {
                format!("bad value for --telemetry-level: {v:?} (off|summary|trace)")
            })?,
        };
        let dir = a.get("telemetry-dir").map(PathBuf::from);
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)
                .map_err(|e| format!("--telemetry-dir {}: {e}", d.display()))?;
        }
        stuq_obs::init(dir.as_deref(), level);
        // --telemetry-max-mb N bounds the live event log: once it would grow
        // past N MiB it is sealed into checksummed events-NNNNN.jsonl
        // segments (stuq trace / telemetry validate read segments + tail).
        if let Some(v) = a.get("telemetry-max-mb") {
            let mb: u64 =
                v.parse().map_err(|_| format!("bad value for --telemetry-max-mb: {v:?}"))?;
            if mb == 0 {
                return Err("--telemetry-max-mb must be at least 1".into());
            }
            stuq_obs::set_events_roll_bytes(Some(mb * 1024 * 1024));
        }
        // Informational context for the manifest; each command still parses
        // its own seed with its own default.
        let seed: u64 = a.parse_or("seed", 42u64).unwrap_or(42);
        let cmd = match cmd {
            "simulate" => "simulate",
            "train" => "train",
            "evaluate" => "evaluate",
            "forecast" => "forecast",
            "serve" => "serve",
            "gen-requests" => "gen-requests",
            _ => "info",
        };
        stuq_obs::emit(
            stuq_obs::Event::new("run_start")
                .str("cmd", cmd)
                .str("level", level.as_str())
                .uint("seed", seed)
                .uint("threads", stuq_parallel::num_threads() as u64),
        );
        Ok(TelemetryRun { cmd, seed, argv: args.join(" "), t0: std::time::Instant::now() })
    }

    fn finish(self, out: &mut impl Write) {
        if !stuq_obs::summary_enabled() {
            return;
        }
        let wall = self.t0.elapsed().as_secs_f64();
        stuq_obs::emit(stuq_obs::Event::new("run_end").num("wall_seconds", wall));
        let phases = stuq_obs::span_timings();
        if stuq_obs::telemetry_dir().is_some() {
            let m = stuq_obs::metrics();
            let mut manifest = stuq_obs::RunManifest::new(
                self.cmd,
                self.seed,
                self.argv.as_bytes(),
                stuq_parallel::num_threads(),
            );
            manifest.wall_seconds = wall;
            manifest.phases = phases.clone();
            manifest.final_metrics = vec![
                ("train_loss".into(), m.train_loss.get()),
                ("calib_temperature".into(), m.calib_temperature.get()),
                ("guard_trips".into(), m.guard_trips.get() as f64),
                ("mc_samples".into(), m.mc_samples.get() as f64),
                ("eval_windows".into(), m.eval_windows.get() as f64),
            ];
            if let Err(e) = stuq_obs::write_manifest(&manifest) {
                let _ = writeln!(out, "telemetry: failed to write manifest: {e}");
            }
            if let Err(e) = stuq_obs::flush() {
                let _ = writeln!(out, "telemetry: failed to flush sinks: {e}");
            }
        }
        if !phases.is_empty() {
            let mut table = String::new();
            table.push_str(&format!("\ntelemetry: phase timings ({wall:.2}s wall)\n"));
            table.push_str(&format!(
                "  {:<24} {:>6} {:>10} {:>10}\n",
                "phase", "count", "total_s", "max_s"
            ));
            for p in &phases {
                table.push_str(&format!(
                    "  {:<24} {:>6} {:>10.3} {:>10.3}\n",
                    p.path, p.count, p.total_s, p.max_s
                ));
            }
            if self.cmd == "serve" {
                // serve's stdout is the NDJSON response stream; keep the
                // human-facing table off the protocol.
                eprint!("{table}");
            } else {
                let _ = write!(out, "{table}");
            }
        }
    }
}

/// `stuq telemetry dump|validate --dir DIR` — inspect a run's sink directory.
fn cmd_telemetry(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let action = args.first().map(String::as_str);
    let a = Args::parse(args.get(1..).unwrap_or(&[]))?;
    match action {
        Some("dump") => {
            let dir = PathBuf::from(a.required("dir")?);
            let manifest = dir.join(stuq_obs::MANIFEST_FILE);
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                let _ = writeln!(out, "# {}", manifest.display());
                let _ = write!(out, "{text}");
            }
            let prom = dir.join(stuq_obs::METRICS_FILE);
            let text =
                std::fs::read_to_string(&prom).map_err(|e| format!("{}: {e}", prom.display()))?;
            let _ = writeln!(out, "# {}", prom.display());
            let _ = write!(out, "{text}");
            Ok(())
        }
        Some("validate") => {
            let dir = PathBuf::from(a.required("dir")?);
            // Rolled segments first, then the live tail — the same order the
            // recorder sealed them, so seq stays monotonic across the join.
            let (text, files) = read_event_log(&dir)?;
            let n =
                stuq_obs::validate_events(&text).map_err(|e| format!("{}: {e}", dir.display()))?;
            let _ = writeln!(
                out,
                "{}: {n} events in {} file(s), checksum and schema OK",
                dir.display(),
                files
            );
            Ok(())
        }
        _ => Err("usage: stuq telemetry dump|validate --dir DIR".into()),
    }
}

/// Joins a telemetry directory's checksummed event log — rolled
/// `events-NNNNN.jsonl` segments in seal order, then the `events.jsonl`
/// tail — into one payload. Returns the text and the file count.
fn read_event_log(dir: &std::path::Path) -> Result<(String, usize), CliError> {
    let mut text = String::new();
    let mut files = 0usize;
    let mut paths = stuq_obs::segment_files(dir);
    paths.push(dir.join(stuq_obs::EVENTS_FILE));
    for path in paths {
        if !path.is_file() {
            continue;
        }
        let payload =
            stuq_artifact::read_verified(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        text.push_str(
            std::str::from_utf8(&payload)
                .map_err(|_| format!("{}: not valid UTF-8", path.display()))?,
        );
        files += 1;
    }
    if files == 0 {
        return Err(format!("{}: no event log found", dir.join(stuq_obs::EVENTS_FILE).display()));
    }
    Ok((text, files))
}

/// One span reconstructed from its `span_start`/`span_end` event pair.
struct TraceSpan {
    trace: String,
    span: String,
    parent: String,
    phase: String,
    /// Duration from `span_end`; `None` means the span never closed
    /// (crash evidence — the process died mid-request).
    secs: Option<f64>,
    shard: Option<u64>,
    status: Option<String>,
    reason: Option<String>,
    /// (source index, line index) — the deterministic ordering key.
    order: (usize, usize),
}

/// `stuq trace DIR... [--tree] [--no-times] [--strict]` — join router and
/// worker event logs into per-request span timelines (DESIGN.md §15).
///
/// Every `DIR` is read as a telemetry directory (segments + tail) and any
/// `worker-N` subdirectories with event logs are auto-discovered, so a
/// router run with per-worker telemetry needs only the router's directory
/// on the command line. `--tree` prints the span tree of every request;
/// `--no-times` suppresses all wall-clock numbers so the output is a pure
/// structural fingerprint (byte-stable across reruns of a seeded workload);
/// `--strict` exits nonzero on orphaned spans, unclosed spans or malformed
/// trace events.
fn cmd_trace(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    const TRACE_USAGE: &str = "usage: stuq trace DIR... [--tree] [--no-times] [--strict]";
    let (mut tree, mut strict, mut no_times) = (false, false, false);
    let mut dirs: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--tree" => tree = true,
            "--strict" => strict = true,
            "--no-times" => no_times = true,
            s if s.starts_with("--") => return Err(format!("unknown flag {s:?}\n{TRACE_USAGE}")),
            s => dirs.push(PathBuf::from(s)),
        }
    }
    if dirs.is_empty() {
        return Err(TRACE_USAGE.into());
    }

    // Expand each directory with its worker-N subdirectories, in shard order.
    let mut sources: Vec<PathBuf> = Vec::new();
    for d in &dirs {
        sources.push(d.clone());
        let mut subs: Vec<PathBuf> = std::fs::read_dir(d)
            .map_err(|e| format!("{}: {e}", d.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("worker-"))
                    && p.join(stuq_obs::EVENTS_FILE).is_file()
            })
            .collect();
        subs.sort();
        sources.extend(subs);
    }

    // Collect spans keyed by (trace, span) and exemplar counts per source.
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut index: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    let mut malformed = 0usize;
    let mut exemplars = 0usize;
    let mut worst_exemplar: Option<(String, f64)> = None;
    for (src, dir) in sources.iter().enumerate() {
        let (text, _) = read_event_log(dir)?;
        for (line_no, line) in text.lines().enumerate() {
            let Ok(pairs) = stuq_obs::parse_line(line) else {
                malformed += 1;
                continue;
            };
            let get_str = |k: &str| {
                pairs.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                    stuq_obs::JsonVal::Str(s) => Some(s.clone()),
                    _ => None,
                })
            };
            let get_num = |k: &str| {
                pairs.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                    stuq_obs::JsonVal::Num(n) => Some(*n),
                    _ => None,
                })
            };
            match get_str("type").as_deref() {
                Some("span_start") => {
                    let (Some(trace), Some(span), Some(parent), Some(phase)) =
                        (get_str("trace"), get_str("span"), get_str("parent"), get_str("phase"))
                    else {
                        malformed += 1;
                        continue;
                    };
                    let key = (trace.clone(), span.clone());
                    if index.contains_key(&key) {
                        malformed += 1; // duplicate start
                        continue;
                    }
                    index.insert(key, spans.len());
                    spans.push(TraceSpan {
                        trace,
                        span,
                        parent,
                        phase,
                        secs: None,
                        shard: get_num("shard").map(|n| n as u64),
                        status: None,
                        reason: None,
                        order: (src, line_no),
                    });
                }
                Some("span_end") => {
                    let (Some(trace), Some(span), Some(secs)) =
                        (get_str("trace"), get_str("span"), get_num("seconds"))
                    else {
                        malformed += 1;
                        continue;
                    };
                    match index.get(&(trace, span)) {
                        None => malformed += 1, // end without start
                        Some(&i) => {
                            let s = &mut spans[i];
                            s.secs = Some(secs);
                            if let Some(n) = get_num("shard") {
                                s.shard = Some(n as u64);
                            }
                            s.status = get_str("status").or(s.status.take());
                            s.reason = get_str("reason").or(s.reason.take());
                        }
                    }
                }
                Some("trace_exemplar") => {
                    exemplars += 1;
                    if let (Some(t), Some(secs)) = (get_str("trace"), get_num("seconds")) {
                        if worst_exemplar.as_ref().is_none_or(|(_, w)| secs > *w) {
                            worst_exemplar = Some((t, secs));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Group spans per trace; roots are spans whose parent is the trace id.
    let mut traces: Vec<(String, Vec<usize>)> = Vec::new();
    let mut by_trace: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        let slot = *by_trace.entry(&s.trace).or_insert_with(|| {
            traces.push((s.trace.clone(), Vec::new()));
            traces.len() - 1
        });
        traces[slot].1.push(i);
    }

    let mut orphans = 0usize;
    let mut unclosed = 0usize;
    let mut phase_secs: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();
    let fmt_ms = |s: f64| format!("{:.3} ms", s * 1e3);
    for (trace_id, members) in &traces {
        let known: std::collections::HashSet<&str> =
            members.iter().map(|&i| spans[i].span.as_str()).collect();
        let roots: Vec<usize> =
            members.iter().copied().filter(|&i| spans[i].parent == *trace_id).collect();
        let total: f64 = roots.iter().filter_map(|&i| spans[i].secs).fold(0.0f64, f64::max);
        let mut line = format!("trace {trace_id} — {} span(s)", members.len());
        for &i in members {
            let s = &spans[i];
            match s.secs {
                None => unclosed += 1,
                Some(secs) => phase_secs.entry(s.phase.clone()).or_default().push(secs),
            }
            if s.parent != *trace_id && !known.contains(s.parent.as_str()) {
                orphans += 1;
            }
        }
        if !no_times {
            line.push_str(&format!(", {}", fmt_ms(total)));
        }
        let _ = writeln!(out, "{line}");
        if tree {
            // Depth-first from each root; children in deterministic
            // (source, line) order. A stack of (span index, depth).
            let mut children: std::collections::HashMap<&str, Vec<usize>> =
                std::collections::HashMap::new();
            for &i in members {
                children.entry(spans[i].parent.as_str()).or_default().push(i);
            }
            for v in children.values_mut() {
                v.sort_by_key(|&i| spans[i].order);
            }
            let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 1)).collect();
            let mut printed: std::collections::HashSet<usize> = std::collections::HashSet::new();
            while let Some((i, depth)) = stack.pop() {
                if !printed.insert(i) {
                    continue; // defensive: a parent cycle would loop forever
                }
                let s = &spans[i];
                let mut row = format!("{:indent$}{}", "", s.phase, indent = depth * 2);
                if let Some(shard) = s.shard {
                    row.push_str(&format!(" shard={shard}"));
                }
                if let Some(st) = &s.status {
                    row.push_str(&format!(" status={st}"));
                }
                if let Some(r) = &s.reason {
                    row.push_str(&format!(" reason={r}"));
                }
                match s.secs {
                    None => row.push_str(" [unclosed]"),
                    Some(secs) if !no_times => {
                        row.push_str(&format!("  {}", fmt_ms(secs)));
                    }
                    Some(_) => {}
                }
                let _ = writeln!(out, "{row}");
                if let Some(kids) = children.get(s.span.as_str()) {
                    for &k in kids.iter().rev() {
                        stack.push((k, depth + 1));
                    }
                }
            }
            // Orphans are unreachable from any root — list them flat so the
            // tree never silently hides a span.
            let mut lost: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&i| {
                    spans[i].parent != *trace_id && !known.contains(spans[i].parent.as_str())
                })
                .collect();
            lost.sort_by_key(|&i| spans[i].order);
            for i in lost {
                let s = &spans[i];
                let _ = writeln!(out, "  {} [orphan: parent {} unknown]", s.phase, s.parent);
            }
        }
    }

    // Per-phase latency distribution across every closed span.
    if !no_times && !phase_secs.is_empty() {
        let pct = |sorted: &[f64], p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        let _ = writeln!(
            out,
            "\n{:<16} {:>6} {:>10} {:>10} {:>10}",
            "phase", "count", "p50_ms", "p95_ms", "p99_ms"
        );
        for (phase, secs) in &mut phase_secs {
            secs.sort_by(f64::total_cmp);
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>10.3} {:>10.3} {:>10.3}",
                phase,
                secs.len(),
                pct(secs, 0.50) * 1e3,
                pct(secs, 0.95) * 1e3,
                pct(secs, 0.99) * 1e3,
            );
        }
    }
    if !no_times && exemplars > 0 {
        let (t, w) = worst_exemplar.expect("exemplars counted");
        let _ = writeln!(out, "\nexemplars: {exemplars} recorded, worst {} (trace {t})", fmt_ms(w));
    }
    let _ = writeln!(
        out,
        "\n{} trace(s), {} span(s); {orphans} orphan(s), {unclosed} unclosed, {malformed} malformed",
        traces.len(),
        spans.len(),
    );
    if strict && (orphans > 0 || unclosed > 0 || malformed > 0) {
        return Err(format!(
            "trace --strict: {orphans} orphan(s), {unclosed} unclosed span(s), {malformed} malformed event(s)"
        ));
    }
    Ok(())
}

const USAGE: &str = "\
stuq — uncertainty-quantified traffic forecasting (DeepSTUQ, ICDE 2023)

USAGE:
  stuq simulate --preset pems03|pems04|pems07|pems08 [--node-frac F] [--step-frac F]
                    [--seed N] --out data.stuqd
  stuq train    --data data.stuqd [--epochs N] [--batch N] [--awa-epochs N]
                    [--mc N] [--seed N] --out model.stuq
                    [--checkpoint-dir DIR] [--checkpoint-every N]
                    [--epoch-budget N] [--resume true|false]
  stuq evaluate --model model.stuq --data data.stuqd [--stride N] [--seed N]
                    [--fault-profile none|light|moderate|severe] [--fault-seed N]
  stuq forecast --model model.stuq --data data.stuqd [--window N] [--sensor N] [--seed N]
  stuq info     --path file.stuqd|file.stuq
  stuq serve    --model model.stuq [--data data.stuqd] [--socket PATH]
                    [--max-queue N] [--mc N] [--floor N] [--deadline-ms N]
                    [--breaker-threshold N] [--breaker-cooldown-ms N]
                    [--breaker-cooldown-max-ms N] [--max-abs-output X]
                    [--widen-factor X] [--reload-poll-ms N] [--health-dir DIR]
                    [--seed N] [--batch-max N] [--batch-wait-ms N]
                    [--cache-ttl-ms N] [--cache-cap N]
                    [--role router|worker] [--shards N] [--replicas N]
                    [--worker-dir DIR] [--rpc-timeout-ms N] [--ping-interval-ms N]
                    [--restart-backoff-ms N] [--restart-backoff-max-ms N]
                    [--connect-timeout-ms N] [--hedge-ms N]
                    [--faultnet off|drop|delay|flaky|blackhole]
  stuq gen-requests --data data.stuqd [--count N] [--deadline-ms N] [--mc N]
                    [--nan-frac F] [--seed N] [--out FILE]
                    [--burst K] [--hot-nodes H] [--shard-skew S [--shards N]]
  stuq telemetry dump|validate --dir DIR
  stuq trace DIR... [--tree] [--no-times] [--strict]

Every command also accepts [--telemetry-dir DIR] [--telemetry-level off|summary|trace]
(default summary) and [--telemetry-max-mb N]. With a directory, the run writes
events.jsonl (checksummed JSONL event log), metrics.prom (Prometheus text
exposition) and manifest.json (seed, config hash, thread count, phase
timings); past N MiB the event log rolls into checksummed events-NNNNN.jsonl
segments. `stuq telemetry dump` pretty-prints them and `stuq telemetry
validate` checks the joined segment+tail log. Telemetry is a pure observer —
any level produces bit-identical models.

Tracing (DESIGN.md §15): at --telemetry-level trace every request carries a
deterministic trace id; the router, its workers (one telemetry subdirectory
worker-N each) and solo servers emit span events for admission, batching,
cache, compute, scatter/gather and merge. `stuq trace DIR` joins the logs
into per-request timelines: --tree prints each request's span tree with
per-shard status/reason attribution, --no-times strips wall-clock numbers
(the remaining structure is byte-stable across reruns of a seeded workload)
and --strict exits nonzero on orphaned, unclosed or malformed spans. A
router answers {\"type\":\"cluster-metrics\"} with counters merged across
itself and every live worker, and writes cluster_metrics.prom.

Fault tolerance (DESIGN.md §8): with --checkpoint-dir, train writes crash-safe
checkpoints every --checkpoint-every epochs; --epoch-budget pauses after N
epochs and --resume true continues a paused or interrupted run bit-for-bit.
--fault-profile evaluates the model on sensor-degraded input (seeded by
--fault-seed) while scoring against the clean ground truth.

Serving (DESIGN.md §11): `stuq serve` answers newline-delimited JSON forecast
requests on stdin/stdout (or a Unix socket with --socket). Requests carry
deadline budgets driving anytime MC-dropout degradation; the runtime sheds
load past --max-queue, breaks the circuit on consecutive model faults, and
hot-reloads the model artifact when it changes on disk. With --batch-max > 1
co-arriving forecasts coalesce into one batch and identical requests share a
single MC run (DESIGN.md §12); --cache-ttl-ms enables the per-tick forecast
cache (TTL = the data cadence). `stuq gen-requests` emits a request stream
from a dataset's test split for load tests; --burst K groups requests into
same-tick storms of K (declaring `tick`, seedless, so they batch and cache),
--hot-nodes H adds overlapping node subsets drawn from the first H sensors,
and --shard-skew S concentrates node subsets on shard S of the cluster map.

Cluster serving (DESIGN.md §13): `stuq serve --role router --shards N` spawns
N supervised worker processes (this binary with --role worker, one Unix
socket each), partitions the sensors across them with a deterministic shard
map, and scatter/gathers every forecast. Dead or refusing shards degrade to
widened-σ persistence slices annotated `partial: true` with typed per-shard
reasons; workers are restarted with exponential backoff (seed-jittered so
replicas never restart in lock-step) and re-assigned their shard on rejoin;
`reload` runs a two-phase commit across all workers (unanimous ack or
cluster-wide abort — no mixed-version window).

Replication (DESIGN.md §16): --replicas R runs R supervised workers per
shard. Each request picks a seed-derived primary replica and fails over
along the chain on transport faults (`rpc_timeout`, `version_skew`,
`worker_error` — annotated per attempt on the wire inside the cluster
meta); worker-typed refusals are forwarded verbatim and only an exhausted
chain degrades the slice. --hedge-ms T fires the request at a sibling
replica after T ms of silence (real clock only; first valid reply wins).
--faultnet drop|delay|flaky|blackhole splices a deterministic, seeded fault
plan into one victim replica per shard for chaos drills — every injected
fault is counted (faultnet_injected_total) and logged (faultnet_inject).";

/// A minimal `--key value` argument map.
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
            let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?.clone();
            pairs.push((key.to_string(), value));
            i += 2;
        }
        Ok(Self { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

fn preset_by_name(name: &str) -> Result<Preset, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "pems03" => Ok(Preset::Pems03Like),
        "pems04" => Ok(Preset::Pems04Like),
        "pems07" => Ok(Preset::Pems07Like),
        "pems08" => Ok(Preset::Pems08Like),
        other => Err(format!("unknown preset {other:?} (pems03|pems04|pems07|pems08)")),
    }
}

fn cmd_simulate(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    let preset = preset_by_name(a.required("preset")?)?;
    let node_frac: f64 = a.parse_or("node-frac", 0.1)?;
    let step_frac: f64 = a.parse_or("step-frac", 0.05)?;
    let seed: u64 = a.parse_or("seed", 42u64)?;
    let out_path = PathBuf::from(a.required("out")?);

    let spec = if (node_frac - 1.0).abs() < 1e-12 && (step_frac - 1.0).abs() < 1e-12 {
        preset.spec()
    } else {
        preset.spec().scaled(node_frac, step_frac)
    };
    let ds = spec.generate(seed ^ preset.seed_offset());
    stuq_traffic::save_dataset(ds.data(), &out_path).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote {} — {} sensors, {} segments, {} steps",
        out_path.display(),
        ds.n_nodes(),
        ds.data().network().n_edges(),
        ds.data().n_steps()
    );
    Ok(())
}

fn cmd_train(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    let data_path = a.required("data")?.to_string();
    let out_path = a.required("out")?.to_string();
    let epochs: usize = a.parse_or("epochs", 4usize)?;
    let batch: usize = a.parse_or("batch", 16usize)?;
    let awa_epochs: usize = a.parse_or("awa-epochs", 4usize)?;
    let mc: usize = a.parse_or("mc", 10usize)?;
    let seed: u64 = a.parse_or("seed", 42u64)?;
    let checkpoint_dir = a.get("checkpoint-dir").map(PathBuf::from);
    let checkpoint_every: usize = a.parse_or("checkpoint-every", 1usize)?;
    let resume: bool = a.parse_or("resume", false)?;
    let epoch_budget: Option<usize> = match a.get("epoch-budget") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --epoch-budget: {v:?}"))?),
    };
    if !awa_epochs.is_multiple_of(2) {
        return Err("--awa-epochs must be even (AWA cycles are 2 epochs)".into());
    }
    if (resume || epoch_budget.is_some()) && checkpoint_dir.is_none() {
        return Err("--resume/--epoch-budget require --checkpoint-dir".into());
    }

    let ds = stuq_traffic::load_split_dataset(&data_path).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "training on {} ({} sensors, {} steps), {} epochs + {} AWA epochs…",
        ds.data().name(),
        ds.n_nodes(),
        ds.data().n_steps(),
        epochs,
        awa_epochs
    );
    let small_graph = ds.n_nodes() < 200;
    let cfg = DeepStuqConfig {
        base: AgcrnConfig::new(ds.n_nodes(), ds.horizon())
            .with_dropout(if small_graph { 0.05 } else { 0.1 }, 0.2),
        train: TrainConfig { epochs, batch_size: batch, ..Default::default() },
        awa: (awa_epochs > 0).then(|| AwaConfig {
            epochs: awa_epochs,
            batch_size: batch,
            ..Default::default()
        }),
        calib: Some(CalibConfig { mc_samples: mc.min(10), max_iters: 500, stride: 3 }),
        mc_samples: mc,
    };
    let total_epochs = cfg.total_epochs();
    let opts =
        FitOptions { checkpoint_dir, checkpoint_every, resume, epoch_budget, ..Default::default() };
    match DeepStuq::fit(&ds, cfg, seed, &opts).map_err(|e| e.to_string())? {
        FitOutcome::Paused { stage, epochs_done, .. } => {
            let _ = writeln!(
                out,
                "paused in {stage} after {epochs_done}/{total_epochs} training epochs — \
                 checkpoint written; rerun with --resume true to continue"
            );
            Ok(())
        }
        FitOutcome::Complete { model, guard } => {
            deepstuq::save_model(&model, &out_path).map_err(|e| e.to_string())?;
            if !guard.is_clean() {
                let _ = writeln!(
                    out,
                    "divergence guard: {} trip(s), {} batch(es) skipped, {} rewind(s)",
                    guard.trips, guard.skipped, guard.rewinds_used
                );
            }
            let _ = writeln!(
                out,
                "wrote {out_path} (temperature T = {:.4}, {} MC samples)",
                model.temperature(),
                model.mc_samples()
            );
            Ok(())
        }
    }
}

fn load_pair(a: &Args) -> Result<(DeepStuq, SplitDataset), CliError> {
    let model = deepstuq::load_model(a.required("model")?).map_err(|e| e.to_string())?;
    let ds = stuq_traffic::load_split_dataset(a.required("data")?).map_err(|e| e.to_string())?;
    if model.model().config().n_nodes != ds.n_nodes() {
        return Err(format!(
            "model expects {} sensors but dataset has {}",
            model.model().config().n_nodes,
            ds.n_nodes()
        ));
    }
    Ok((model, ds))
}

fn cmd_evaluate(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    let (model, ds) = load_pair(&a)?;
    let stride: usize = a.parse_or("stride", 3usize)?;
    let seed: u64 = a.parse_or("seed", 7u64)?;
    let fault_profile = match a.get("fault-profile") {
        None | Some("none") => None,
        Some(name) => Some(FaultProfile::by_name(name).ok_or_else(|| {
            format!("unknown fault profile {name:?} (none|light|moderate|severe)")
        })?),
    };
    let fault_seed: u64 = a.parse_or("fault-seed", 1u64)?;

    let scaler = *ds.scaler();
    let mut rng = StuqRng::new(seed);
    let mut proper = ProperScoreAccumulator::new();
    let mut reliability = ReliabilityDiagram::standard();
    let mut predict = |x: &stuq_tensor::Tensor, start: usize| {
        let f = model.forecast_normalized(x, model.mc_samples(), &mut rng);
        let mu = f.mu.map(|v| scaler.inverse(v));
        let sigma = f.sigma_total(model.temperature()).scale(scaler.std() as f32);
        // Targets always come from the *clean* window, even under faults.
        let w = ds.window(start);
        for i in 0..ds.n_nodes() {
            for h in 0..ds.horizon() {
                let (m, s, y) =
                    (mu.get(i, h) as f64, sigma.get(i, h) as f64, w.y_raw.get(h, i) as f64);
                proper.update(m, s, y);
                reliability.update(m, s, y);
            }
        }
        RawForecast { mu, sigma: Some(sigma), bounds: None }
    };
    let result = match fault_profile {
        None => evaluate(&ds, Split::Test, stride, predict),
        Some(profile) => {
            let data = ds.data();
            let plan = FaultPlan::generate(data.n_steps(), data.n_nodes(), profile, fault_seed);
            let fs = plan.apply(data.values());
            let _ = writeln!(
                out,
                "fault profile {}: {} events, {:.2}% of readings corrupted (seed {})",
                profile.name(),
                plan.events().len(),
                100.0 * fs.corrupted_fraction(),
                fault_seed
            );
            evaluate_faulted(&ds, Split::Test, stride, &fs, &mut predict)
        }
    };

    let uq = result.uq.expect("gaussian model");
    let _ = writeln!(out, "test windows: {}", result.n_windows);
    let _ = writeln!(out, "MAE   {:>10.3}", result.point.mae);
    let _ = writeln!(out, "RMSE  {:>10.3}", result.point.rmse);
    let _ = writeln!(out, "MAPE  {:>9.2}%", result.point.mape);
    let _ = writeln!(out, "MNLL  {:>10.3}", uq.mnll);
    let _ = writeln!(out, "PICP  {:>9.2}%", uq.picp);
    let _ = writeln!(out, "MPIW  {:>10.3}", uq.mpiw);
    let _ = writeln!(out, "CRPS  {:>10.3}", proper.mean_crps());
    let _ = writeln!(out, "Winkler(95%) {:>7.3}", proper.mean_interval_score());
    let _ = writeln!(out, "calibration error {:>6.4}", reliability.calibration_error());
    let _ = writeln!(out, "\nreliability (nominal → observed coverage):");
    for (nom, obs) in reliability.curve() {
        let _ = writeln!(out, "  {:>4.0}% → {:>5.1}%", nom * 100.0, obs * 100.0);
    }
    Ok(())
}

fn cmd_forecast(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    let (model, ds) = load_pair(&a)?;
    let seed: u64 = a.parse_or("seed", 7u64)?;
    let sensor: usize = a.parse_or("sensor", 0usize)?;
    let starts = ds.window_starts(Split::Test);
    let window: usize = a.parse_or("window", starts.len() / 2)?;
    if sensor >= ds.n_nodes() {
        return Err(format!("sensor {sensor} out of range (0..{})", ds.n_nodes()));
    }
    let start = *starts
        .get(window)
        .ok_or_else(|| format!("window {window} out of range (0..{})", starts.len()))?;

    let w = ds.window(start);
    let mut rng = StuqRng::new(seed);
    let f = model.predict(&w.x, ds.scaler(), &mut rng);
    let _ = writeln!(
        out,
        "window {window} (t = {start}), sensor {sensor}, T = {:.3}:",
        model.temperature()
    );
    let _ = writeln!(
        out,
        "{:>4} {:>9} {:>9} {:>8} {:>8} {:>8}  95% interval",
        "step", "truth", "mean", "σ_alea", "σ_epis", "σ_tot"
    );
    for h in 0..ds.horizon() {
        let _ = writeln!(
            out,
            "{:>4} {:>9.2} {:>9.2} {:>8.2} {:>8.2} {:>8.2}  [{:>8.2}, {:>8.2}]",
            h + 1,
            w.y_raw.get(h, sensor),
            f.mu.get(sensor, h),
            f.sigma_aleatoric.get(sensor, h),
            f.sigma_epistemic.get(sensor, h),
            f.sigma_total.get(sensor, h),
            f.lower.get(sensor, h),
            f.upper.get(sensor, h),
        );
    }
    Ok(())
}

fn cmd_info(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    let path = a.required("path")?;
    if let Ok(data) = stuq_traffic::load_dataset(path) {
        let net = data.network();
        let _ = writeln!(out, "dataset: {}", data.name());
        let _ = writeln!(out, "  sensors    {}", data.n_nodes());
        let _ = writeln!(out, "  segments   {}", net.n_edges());
        let _ = writeln!(out, "  steps      {}", data.n_steps());
        let _ = writeln!(out, "  components {}", net.n_components());
        return Ok(());
    }
    if let Ok(model) = deepstuq::load_model(path) {
        let cfg = model.model().config();
        let _ = writeln!(out, "model: DeepSTUQ");
        let _ = writeln!(out, "  sensors     {}", cfg.n_nodes);
        let _ = writeln!(out, "  horizon     {}", cfg.horizon);
        let _ = writeln!(out, "  hidden      {}", cfg.hidden);
        let _ = writeln!(out, "  embed dim   {}", cfg.embed_dim);
        let _ = writeln!(out, "  layers      {}", cfg.n_layers);
        let _ = writeln!(out, "  dropout     {}/{}", cfg.encoder_dropout, cfg.decoder_dropout);
        let _ = writeln!(out, "  temperature {:.4}", model.temperature());
        let _ = writeln!(out, "  MC samples  {}", model.mc_samples());
        let _ = writeln!(out, "  parameters  {}", model.model().params().n_scalars());
        return Ok(());
    }
    Err(format!("{path}: neither a dataset (.stuqd) nor a model (.stuq) file"))
}

/// Builds a [`stuq_serve::ServeConfig`] from `--flag value` pairs.
fn serve_config(a: &Args) -> Result<stuq_serve::ServeConfig, CliError> {
    let mut cfg = stuq_serve::ServeConfig::new(a.required("model")?);
    cfg.data_path = a.get("data").map(PathBuf::from);
    cfg.max_queue = a.parse_or("max-queue", cfg.max_queue)?;
    cfg.mc_samples = match a.get("mc") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --mc: {v:?}"))?),
    };
    cfg.floor = a.parse_or("floor", cfg.floor)?;
    cfg.default_deadline_ms = match a.get("deadline-ms") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --deadline-ms: {v:?}"))?),
    };
    cfg.breaker_threshold = a.parse_or("breaker-threshold", cfg.breaker_threshold)?;
    cfg.breaker_cooldown_ms = a.parse_or("breaker-cooldown-ms", cfg.breaker_cooldown_ms)?;
    cfg.breaker_cooldown_max_ms =
        a.parse_or("breaker-cooldown-max-ms", cfg.breaker_cooldown_max_ms)?;
    cfg.max_abs_output = a.parse_or("max-abs-output", cfg.max_abs_output)?;
    cfg.widen_factor = a.parse_or("widen-factor", cfg.widen_factor)?;
    cfg.health_dir = a.get("health-dir").map(PathBuf::from);
    if let Some(d) = &cfg.health_dir {
        std::fs::create_dir_all(d).map_err(|e| format!("--health-dir {}: {e}", d.display()))?;
    }
    cfg.reload_poll_ms = a.parse_or("reload-poll-ms", cfg.reload_poll_ms)?;
    cfg.seed = a.parse_or("seed", cfg.seed)?;
    cfg.batch_max = a.parse_or("batch-max", cfg.batch_max)?;
    cfg.batch_wait_ms = a.parse_or("batch-wait-ms", cfg.batch_wait_ms)?;
    cfg.cache_ttl_ms = a.parse_or("cache-ttl-ms", cfg.cache_ttl_ms)?;
    cfg.cache_cap = a.parse_or("cache-cap", cfg.cache_cap)?;
    if cfg.batch_max == 0 {
        return Err("--batch-max must be at least 1".into());
    }
    Ok(cfg)
}

fn cmd_serve(args: &[String], _out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    stuq_obs::set_stage("serve");
    match a.get("role") {
        Some("router") => return cmd_serve_router(&a),
        None | Some("worker") => {}
        Some(other) => return Err(format!("bad value for --role: {other:?} (router|worker)")),
    }
    let cfg = serve_config(&a)?;
    let socket = a.get("socket").map(PathBuf::from);
    let mut server = stuq_serve::Server::new(cfg)?;
    match socket {
        None => {
            // stdout carries the NDJSON protocol; all human-facing output
            // (including the telemetry phase table) goes to stderr.
            let reader = std::io::BufReader::new(std::io::stdin());
            let summary = stuq_serve::serve_loop(&mut server, reader, std::io::stdout());
            eprintln!(
                "serve: {} request(s), {} shed, {} response line(s)",
                summary.requests, summary.shed, summary.responses
            );
            Ok(())
        }
        Some(path) => serve_socket(&mut server, &path),
    }
}

/// `stuq serve --role router`: spawn one supervised worker process per shard
/// (the same binary with `--role worker --socket …`), then run the router
/// loop on stdin/stdout or `--socket` (DESIGN.md §13).
fn cmd_serve_router(a: &Args) -> Result<(), CliError> {
    use stuq_serve::faultnet::{self, FaultNet};
    use stuq_serve::router::{Router, RouterConfig, ShardWorker};
    use stuq_serve::supervisor::{ProcWorker, WorkerSpec};

    let serve_cfg = serve_config(a)?;
    let mut cfg = RouterConfig::new(serve_cfg);
    cfg.shards = a.parse_or("shards", cfg.shards)?;
    if cfg.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    cfg.replicas = a.parse_or("replicas", 1usize)?;
    if cfg.replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    let hedge_ms: u64 = a.parse_or("hedge-ms", 0u64)?;
    cfg.hedge_ms = (hedge_ms > 0).then_some(hedge_ms);
    let fault_profile = match a.get("faultnet") {
        Some(p) => faultnet::Profile::parse(p).map_err(|e| format!("--faultnet: {e}"))?,
        None => faultnet::Profile::Off,
    };
    cfg.rpc_timeout_ms = a.parse_or("rpc-timeout-ms", cfg.rpc_timeout_ms)?;
    let ping_interval_ms: u64 = a.parse_or("ping-interval-ms", 500u64)?;
    let backoff_ms: u64 = a.parse_or("restart-backoff-ms", 200u64)?;
    let backoff_max_ms: u64 = a.parse_or("restart-backoff-max-ms", 3200u64)?;
    let connect_timeout_ms: u64 = a.parse_or("connect-timeout-ms", 10_000u64)?;
    let worker_dir = match a.get("worker-dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("stuq-cluster-{}", std::process::id())),
    };
    std::fs::create_dir_all(&worker_dir)
        .map_err(|e| format!("--worker-dir {}: {e}", worker_dir.display()))?;

    // The shard map clamps to the sensor count; spawn exactly that many
    // workers so shard indices and worker indices coincide.
    let model = deepstuq::load_model(&cfg.serve.model_path).map_err(|e| e.to_string())?;
    let n_nodes = model.model().n_nodes();
    drop(model);
    let shards = stuq_serve::shard::ShardMap::new(n_nodes, cfg.shards).n_shards();
    cfg.shards = shards;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    // Workers inherit the serving knobs but never the reload watcher (the
    // two-phase protocol owns reloads; a per-worker watcher would reopen
    // the mixed-version window) and never --health-dir (they would all
    // clobber the router's health.json).
    let mut base_args: Vec<String> = ["serve", "--role", "worker", "--reload-poll-ms", "0"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    base_args.push("--model".into());
    base_args.push(cfg.serve.model_path.display().to_string());
    for key in [
        "data",
        "max-queue",
        "mc",
        "floor",
        "deadline-ms",
        "breaker-threshold",
        "breaker-cooldown-ms",
        "breaker-cooldown-max-ms",
        "max-abs-output",
        "widen-factor",
        "seed",
        "batch-max",
        "batch-wait-ms",
        "cache-ttl-ms",
        "cache-cap",
        // Workers inherit the telemetry level and rollover bound; the
        // directory itself is per-worker (below) so event logs never
        // interleave and `stuq trace` can attribute spans to shards.
        "telemetry-level",
        "telemetry-max-mb",
    ] {
        if let Some(v) = a.get(key) {
            base_args.push(format!("--{key}"));
            base_args.push(v.to_string());
        }
    }
    let telemetry_dir = a.get("telemetry-dir").map(PathBuf::from);
    // Shard-major worker layout (worker = shard * R + replica). With one
    // replica the socket/telemetry names keep their historical single-replica
    // shapes (`worker-{s}`), so existing tooling that greps for them — and
    // old chaos harness runs — keep working unchanged.
    let replicas = cfg.replicas;
    let session_seed = cfg.serve.seed;
    // Restart jitter seeds fork off the session seed per flat worker index:
    // replicas of one shard never share a backoff schedule (no thundering
    // herd), yet a rerun with the same --seed replays the same schedule.
    let mut jitter_rng = stuq_tensor::StuqRng::new(session_seed ^ 0x0ff5_e7b4_c0ff);
    let workers: Vec<Box<dyn ShardWorker>> = (0..shards * replicas)
        .map(|w| {
            let (s, r) = (w / replicas, w % replicas);
            let stem = if replicas == 1 {
                format!("worker-{s}")
            } else {
                format!("worker-{s}-{r}")
            };
            let socket = worker_dir.join(format!("{stem}.sock"));
            let mut args = base_args.clone();
            args.push("--socket".into());
            args.push(socket.display().to_string());
            if let Some(d) = &telemetry_dir {
                args.push("--telemetry-dir".into());
                args.push(d.join(&stem).display().to_string());
            }
            let proc = Box::new(ProcWorker::spawn(WorkerSpec {
                shard: s,
                replica: r,
                shards,
                exe: exe.clone(),
                args,
                socket,
                ping_interval_ms,
                backoff_ms,
                backoff_max_ms,
                connect_timeout_ms,
                jitter_seed: jitter_rng.fork(w as u64).next_u64(),
            })) as Box<dyn ShardWorker>;
            // The fault harness wraps exactly one seed-chosen victim replica
            // per shard; everything else goes to the wire untouched.
            if fault_profile != faultnet::Profile::Off
                && r == faultnet::victim_replica(session_seed, s, replicas)
            {
                // Announce the victim so chaos harnesses can target it.
                eprintln!(
                    "serve: faultnet {} victim shard={s} replica={r}",
                    fault_profile.as_str()
                );
                Box::new(FaultNet::wrap(proc, fault_profile, session_seed, s, r))
                    as Box<dyn ShardWorker>
            } else {
                proc
            }
        })
        .collect();

    let mut router = Router::new(cfg, workers)?;
    match a.get("socket").map(PathBuf::from) {
        None => {
            let reader = std::io::BufReader::new(std::io::stdin());
            let summary = stuq_serve::router::router_loop(&mut router, reader, std::io::stdout());
            eprintln!(
                "serve: router — {} request(s), {} shed, {} response line(s)",
                summary.requests, summary.shed, summary.responses
            );
            Ok(())
        }
        Some(path) => router_socket(&mut router, &path),
    }
}

/// Accept loop for the router's own Unix socket — one connection at a time,
/// mirroring [`serve_socket`].
fn router_socket(
    router: &mut stuq_serve::router::Router,
    path: &std::path::Path,
) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("--socket {}: {e}", path.display()))?;
    eprintln!("serve: router listening on {}", path.display());
    for conn in listener.incoming() {
        let conn = conn.map_err(|e| format!("accept: {e}"))?;
        let reader =
            std::io::BufReader::new(conn.try_clone().map_err(|e| format!("socket clone: {e}"))?);
        let summary = stuq_serve::router::router_loop(router, reader, conn);
        eprintln!(
            "serve: connection closed — {} request(s), {} shed",
            summary.requests, summary.shed
        );
        if router.draining() {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Accept loop on a Unix socket: one connection at a time, each driven by
/// [`stuq_serve::serve_loop`]; a `shutdown` request ends the process.
fn serve_socket(server: &mut stuq_serve::Server, path: &std::path::Path) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("--socket {}: {e}", path.display()))?;
    eprintln!("serve: listening on {}", path.display());
    for conn in listener.incoming() {
        let conn = conn.map_err(|e| format!("accept: {e}"))?;
        let reader =
            std::io::BufReader::new(conn.try_clone().map_err(|e| format!("socket clone: {e}"))?);
        let summary = stuq_serve::serve_loop(server, reader, conn);
        eprintln!(
            "serve: connection closed — {} request(s), {} shed",
            summary.requests, summary.shed
        );
        if server.draining() {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Emits a forecast-request stream from a dataset's test windows — the load
/// generator for the serving runtime (and the chaos CI job).
fn cmd_gen_requests(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let a = Args::parse(args)?;
    let ds = stuq_traffic::load_split_dataset(a.required("data")?).map_err(|e| e.to_string())?;
    let count: usize = a.parse_or("count", 32usize)?;
    let deadline_ms: Option<u64> = match a.get("deadline-ms") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --deadline-ms: {v:?}"))?),
    };
    let mc: Option<usize> = match a.get("mc") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --mc: {v:?}"))?),
    };
    let nan_frac: f64 = a.parse_or("nan-frac", 0.0)?;
    let seed: u64 = a.parse_or("seed", 7u64)?;
    let out_path = a.get("out").map(PathBuf::from);
    // --burst K: same-tick storms of K requests sharing one window. They
    // declare `tick` and carry no per-request seed, so the server derives
    // one RNG per tick — exactly the shape the batcher coalesces and the
    // forecast cache answers.
    let burst: Option<usize> = match a.get("burst") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --burst: {v:?}"))?),
    };
    if burst == Some(0) {
        return Err("--burst must be at least 1".into());
    }
    // --hot-nodes H: overlapping node subsets drawn from the first H
    // sensors, index-derived (no RNG) so the stream is reproducible.
    let hot_nodes: Option<usize> = match a.get("hot-nodes") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --hot-nodes: {v:?}"))?),
    };
    if let Some(h) = hot_nodes {
        if h == 0 || h > ds.n_nodes() {
            return Err(format!(
                "--hot-nodes must be in 1..={} (dataset sensors), got {h}",
                ds.n_nodes()
            ));
        }
    }
    // --shard-skew S: node subsets drawn entirely from shard S's range of
    // the deterministic node→shard map (--shards, default 3) — the load
    // shape for single-shard imbalance and single-shard-outage scenarios.
    let shard_skew: Option<usize> = match a.get("shard-skew") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --shard-skew: {v:?}"))?),
    };
    let skew_map = stuq_serve::shard::ShardMap::new(ds.n_nodes(), a.parse_or("shards", 3usize)?);
    if let Some(s) = shard_skew {
        if hot_nodes.is_some() {
            return Err("--shard-skew and --hot-nodes are mutually exclusive".into());
        }
        if s >= skew_map.n_shards() {
            return Err(format!(
                "--shard-skew must be in 0..{} ({} shards over {} sensors)",
                skew_map.n_shards(),
                skew_map.n_shards(),
                ds.n_nodes()
            ));
        }
    }

    let starts = ds.window_starts(Split::Test);
    if starts.is_empty() {
        return Err("dataset has no test windows".into());
    }
    let mut rng = StuqRng::new(seed);
    let mut buf = String::new();
    for i in 0..count {
        let (start, tick) = match burst {
            Some(k) => {
                let g = i / k;
                (starts[g % starts.len()], Some(g as u64))
            }
            None => (starts[i % starts.len()], None),
        };
        buf.push_str(&format!("{{\"type\":\"forecast\",\"id\":\"r{i}\""));
        match tick {
            Some(g) => buf.push_str(&format!(",\"tick\":{g}")),
            None => buf.push_str(&format!(",\"seed\":{}", seed + i as u64)),
        }
        let node_sel: Option<Vec<usize>> = if let Some(h) = hot_nodes {
            let width = (1 + i % 3).min(h);
            Some((0..width).map(|j| (i + j) % h).collect())
        } else if let Some(s) = shard_skew {
            let range = skew_map.range(s);
            let width = (1 + i % 3).min(range.len());
            Some((0..width).map(|j| range.start + (i + j) % range.len()).collect())
        } else {
            None
        };
        if let Some(mut nodes) = node_sel {
            nodes.sort_unstable();
            nodes.dedup();
            buf.push_str(",\"nodes\":[");
            for (j, node) in nodes.iter().enumerate() {
                if j > 0 {
                    buf.push(',');
                }
                buf.push_str(&node.to_string());
            }
            buf.push(']');
        }
        if let Some(d) = deadline_ms {
            buf.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if let Some(m) = mc {
            buf.push_str(&format!(",\"mc\":{m}"));
        }
        buf.push_str(",\"x\":[");
        for (t_i, t) in (start..start + ds.t_h()).enumerate() {
            if t_i > 0 {
                buf.push(',');
            }
            buf.push('[');
            for node in 0..ds.n_nodes() {
                if node > 0 {
                    buf.push(',');
                }
                if nan_frac > 0.0 && rng.bernoulli(nan_frac) {
                    buf.push_str("\"NaN\"");
                } else {
                    buf.push_str(&format!("{}", ds.data().get(t, node)));
                }
            }
            buf.push(']');
        }
        buf.push_str("]}\n");
    }
    match out_path {
        Some(p) => {
            std::fs::write(&p, buf.as_bytes()).map_err(|e| format!("{}: {e}", p.display()))?;
            let _ = writeln!(out, "wrote {count} request(s) to {}", p.display());
        }
        None => {
            let _ = out.write_all(buf.as_bytes());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&owned, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join("deepstuq_cli_test").join(name)
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_str(&["frobnicate"]).is_err());
    }

    #[test]
    fn missing_required_flag_errors() {
        let err = run_str(&["simulate", "--preset", "pems08"]).unwrap_err();
        assert!(err.contains("--out"), "{err}");
    }

    #[test]
    fn bad_preset_errors() {
        let err = run_str(&["simulate", "--preset", "pems99", "--out", "/tmp/x"]).unwrap_err();
        assert!(err.contains("unknown preset"), "{err}");
    }

    #[test]
    fn full_cli_workflow() {
        let data = tmp("flow.stuqd");
        let model = tmp("model.stuq");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();

        // simulate → info
        let out = run_str(&[
            "simulate",
            "--preset",
            "pems08",
            "--node-frac",
            "0.08",
            "--step-frac",
            "0.02",
            "--seed",
            "5",
            "--out",
            data_s,
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let info = run_str(&["info", "--path", data_s]).unwrap();
        assert!(info.contains("dataset:"), "{info}");

        // train → info
        let out = run_str(&[
            "train",
            "--data",
            data_s,
            "--epochs",
            "1",
            "--batch",
            "8",
            "--awa-epochs",
            "2",
            "--mc",
            "3",
            "--seed",
            "5",
            "--out",
            model_s,
        ])
        .unwrap();
        assert!(out.contains("temperature"), "{out}");
        let info = run_str(&["info", "--path", model_s]).unwrap();
        assert!(info.contains("model: DeepSTUQ"), "{info}");

        // evaluate
        let out =
            run_str(&["evaluate", "--model", model_s, "--data", data_s, "--stride", "11"]).unwrap();
        assert!(out.contains("MNLL") && out.contains("CRPS") && out.contains("reliability"));

        // forecast
        let out = run_str(&[
            "forecast", "--model", model_s, "--data", data_s, "--sensor", "1", "--window", "0",
        ])
        .unwrap();
        assert!(out.contains("95% interval"), "{out}");

        std::fs::remove_dir_all(std::env::temp_dir().join("deepstuq_cli_test")).ok();
    }

    #[test]
    fn pause_resume_matches_straight_run() {
        let dir = std::env::temp_dir().join("deepstuq_cli_resume_test");
        let data = dir.join("flow.stuqd");
        let ckpt = dir.join("ckpt");
        let m_straight = dir.join("straight.stuq");
        let m_resumed = dir.join("resumed.stuq");
        let data_s = data.to_str().unwrap().to_string();

        run_str(&[
            "simulate",
            "--preset",
            "pems08",
            "--node-frac",
            "0.08",
            "--step-frac",
            "0.02",
            "--seed",
            "9",
            "--out",
            &data_s,
        ])
        .unwrap();

        let train = |extra: &[&str], out_path: &std::path::Path| {
            let mut args = vec![
                "train",
                "--data",
                &data_s,
                "--epochs",
                "2",
                "--batch",
                "8",
                "--awa-epochs",
                "2",
                "--mc",
                "3",
                "--seed",
                "9",
            ];
            args.extend_from_slice(extra);
            let out_s = out_path.to_str().unwrap().to_string();
            args.extend_from_slice(&["--out"]);
            let mut owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            owned.push(out_s);
            let mut buf = Vec::new();
            run(&owned, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };

        // One uninterrupted run.
        let straight = train(&[], &m_straight);
        assert!(straight.contains("temperature"), "{straight}");

        // The same run split across a pause/resume process boundary.
        let ckpt_s = ckpt.to_str().unwrap().to_string();
        let paused = train(&["--checkpoint-dir", &ckpt_s, "--epoch-budget", "1"], &m_resumed);
        assert!(paused.contains("paused"), "{paused}");
        assert!(!m_resumed.exists(), "paused run must not write a model");
        let resumed = train(&["--checkpoint-dir", &ckpt_s, "--resume", "true"], &m_resumed);
        assert!(resumed.contains("temperature"), "{resumed}");

        // Identical artefacts: resume is bit-for-bit.
        let a = std::fs::read(&m_straight).unwrap();
        let b = std::fs::read(&m_resumed).unwrap();
        assert_eq!(a, b, "resumed model must match the uninterrupted one byte-for-byte");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_evaluate_reports_corruption() {
        let dir = std::env::temp_dir().join("deepstuq_cli_fault_test");
        let data = dir.join("flow.stuqd");
        let model = dir.join("model.stuq");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();

        run_str(&[
            "simulate",
            "--preset",
            "pems08",
            "--node-frac",
            "0.08",
            "--step-frac",
            "0.02",
            "--seed",
            "11",
            "--out",
            data_s,
        ])
        .unwrap();
        run_str(&[
            "train",
            "--data",
            data_s,
            "--epochs",
            "1",
            "--batch",
            "8",
            "--awa-epochs",
            "0",
            "--mc",
            "3",
            "--seed",
            "11",
            "--out",
            model_s,
        ])
        .unwrap();

        let out = run_str(&[
            "evaluate",
            "--model",
            model_s,
            "--data",
            data_s,
            "--stride",
            "11",
            "--fault-profile",
            "severe",
            "--fault-seed",
            "4",
        ])
        .unwrap();
        assert!(out.contains("fault profile severe"), "{out}");
        assert!(out.contains("corrupted"), "{out}");
        assert!(out.contains("MNLL"), "{out}");

        let err = run_str(&[
            "evaluate",
            "--model",
            model_s,
            "--data",
            data_s,
            "--fault-profile",
            "bogus",
        ])
        .unwrap_err();
        assert!(err.contains("unknown fault profile"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_checkpoint_dir_rejected() {
        let err =
            run_str(&["train", "--data", "/nonexistent", "--resume", "true", "--out", "/tmp/x"])
                .unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
    }

    #[test]
    fn odd_awa_epochs_rejected() {
        let err =
            run_str(&["train", "--data", "/nonexistent", "--awa-epochs", "3", "--out", "/tmp/x"])
                .unwrap_err();
        assert!(err.contains("even"), "{err}");
    }
}
