//! Named parameter storage.

use stuq_tensor::Tensor;

/// A flat store of named parameter tensors, addressed by slot index.
///
/// Slots are what [`stuq_tensor::Tape::param`] keys gradients by. Snapshots
/// (plain `Vec<Tensor>`) support the weight-space operations the paper needs:
/// SWA/AWA running averages (Eq. 15) and FGE snapshot ensembles.
#[derive(Clone, Debug, Default)]
pub struct ParamSet {
    entries: Vec<(String, Tensor)>,
}

impl ParamSet {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its slot.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> usize {
        self.entries.push((name.into(), value));
        self.entries.len() - 1
    }

    /// Number of parameters (slots).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value of a slot.
    pub fn get(&self, slot: usize) -> &Tensor {
        &self.entries[slot].1
    }

    /// Mutable value of a slot.
    pub fn get_mut(&mut self, slot: usize) -> &mut Tensor {
        &mut self.entries[slot].1
    }

    /// Mutable access to the raw slot storage, for the optimisers' parallel
    /// per-slot update (disjoint slots are written concurrently).
    pub(crate) fn entries_mut(&mut self) -> &mut [(String, Tensor)] {
        &mut self.entries
    }

    /// Name of a slot.
    pub fn name(&self, slot: usize) -> &str {
        &self.entries[slot].0
    }

    /// Total number of scalar parameters.
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.len()).sum()
    }

    /// Sum of squared parameter values (for L2 diagnostics).
    pub fn l2_norm_sq(&self) -> f64 {
        self.entries.iter().map(|(_, t)| t.norm().powi(2)).sum()
    }

    /// Copies all parameter values out.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.entries.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Restores values from a snapshot taken on the same architecture.
    pub fn load_snapshot(&mut self, snap: &[Tensor]) {
        assert_eq!(snap.len(), self.entries.len(), "snapshot arity mismatch");
        for ((_, t), s) in self.entries.iter_mut().zip(snap) {
            assert_eq!(t.shape(), s.shape(), "snapshot shape mismatch");
            *t = s.clone();
        }
    }

    /// True when every parameter is finite (training-health check).
    pub fn all_finite(&self) -> bool {
        self.entries.iter().all(|(_, t)| t.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.add("w", Tensor::ones(&[2, 3]));
        let b = ps.add("b", Tensor::zeros(&[1, 3]));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ps.name(1), "b");
        assert_eq!(ps.n_scalars(), 9);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::full(&[2, 2], 3.0));
        let snap = ps.snapshot();
        ps.get_mut(0).map_inplace(|_| 0.0);
        assert_eq!(ps.get(0).sum(), 0.0);
        ps.load_snapshot(&snap);
        assert_eq!(ps.get(0).sum(), 12.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn load_rejects_wrong_arity() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::ones(&[1, 1]));
        ps.load_snapshot(&[]);
    }

    #[test]
    fn l2_norm_sq_matches_manual() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::full(&[2, 2], 2.0));
        assert!((ps.l2_norm_sq() - 16.0).abs() < 1e-9);
    }
}
