//! Dense L-BFGS minimisation (two-loop recursion + backtracking line search).
//!
//! The paper calibrates the temperature parameter `T` (Eq. 18) with L-BFGS;
//! this is a small, self-contained implementation for low-dimensional smooth
//! objectives. `f64` throughout — calibration sums millions of residuals.

/// Options for [`minimize`].
#[derive(Clone, Copy, Debug)]
pub struct LbfgsOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// History size `m`.
    pub history: usize,
    /// Stop when the gradient ∞-norm falls below this.
    pub grad_tol: f64,
    /// Initial step length tried by the line search.
    pub init_step: f64,
}

impl Default for LbfgsOptions {
    fn default() -> Self {
        Self { max_iters: 500, history: 10, grad_tol: 1e-8, init_step: 1.0 }
    }
}

/// Result of [`minimize`].
#[derive(Clone, Debug)]
pub struct LbfgsResult {
    /// The minimiser found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Outer iterations used.
    pub iters: usize,
    /// True when the gradient tolerance was met.
    pub converged: bool,
}

/// Minimises `f` from `x0`. `f` returns the objective and its gradient.
pub fn minimize(
    mut f: impl FnMut(&[f64]) -> (f64, Vec<f64>),
    x0: &[f64],
    opts: &LbfgsOptions,
) -> LbfgsResult {
    let n = x0.len();
    let mut x = x0.to_vec();
    let (mut fx, mut gx) = f(&x);
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    let inf_norm = |v: &[f64]| v.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();

    for iter in 0..opts.max_iters {
        if inf_norm(&gx) < opts.grad_tol {
            return LbfgsResult { x, f: fx, iters: iter, converged: true };
        }

        // Two-loop recursion for the search direction d = −H g.
        let mut q = gx.clone();
        let k = s_hist.len();
        let mut alphas = vec![0.0f64; k];
        for i in (0..k).rev() {
            alphas[i] = rho_hist[i] * dot(&s_hist[i], &q);
            for j in 0..n {
                q[j] -= alphas[i] * y_hist[i][j];
            }
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy.
        if k > 0 {
            let sy = dot(&s_hist[k - 1], &y_hist[k - 1]);
            let yy = dot(&y_hist[k - 1], &y_hist[k - 1]);
            if yy > 0.0 {
                let gamma = sy / yy;
                for qi in &mut q {
                    *qi *= gamma;
                }
            }
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            for j in 0..n {
                q[j] += s_hist[i][j] * (alphas[i] - beta);
            }
        }
        let d: Vec<f64> = q.iter().map(|&v| -v).collect();

        // Backtracking Armijo line search.
        let dir_deriv = dot(&gx, &d);
        if dir_deriv >= 0.0 {
            // Not a descent direction (can happen with non-convexity); reset
            // history and fall back to steepest descent.
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
            let g_norm = inf_norm(&gx).max(1e-12);
            let step = opts.init_step / g_norm;
            let x_new: Vec<f64> = x.iter().zip(&gx).map(|(xi, gi)| xi - step * gi).collect();
            let (f_new, g_new) = f(&x_new);
            if f_new < fx {
                x = x_new;
                fx = f_new;
                gx = g_new;
            } else {
                return LbfgsResult { x, f: fx, iters: iter, converged: false };
            }
            continue;
        }
        let c1 = 1e-4;
        let mut step = opts.init_step;
        let mut accepted = false;
        for _ in 0..40 {
            let x_new: Vec<f64> = x.iter().zip(&d).map(|(xi, di)| xi + step * di).collect();
            let (f_new, g_new) = f(&x_new);
            if f_new <= fx + c1 * step * dir_deriv {
                let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
                let yv: Vec<f64> = g_new.iter().zip(&gx).map(|(a, b)| a - b).collect();
                let sy = dot(&s, &yv);
                if sy > 1e-12 {
                    if s_hist.len() == opts.history {
                        s_hist.remove(0);
                        y_hist.remove(0);
                        rho_hist.remove(0);
                    }
                    rho_hist.push(1.0 / sy);
                    s_hist.push(s);
                    y_hist.push(yv);
                }
                x = x_new;
                fx = f_new;
                gx = g_new;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            return LbfgsResult { x, f: fx, iters: iter, converged: false };
        }
    }
    let converged = inf_norm(&gx) < opts.grad_tol;
    LbfgsResult { x, f: fx, iters: opts.max_iters, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let r = minimize(
            |x| {
                let f = (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2);
                (f, vec![2.0 * (x[0] - 3.0), 4.0 * (x[1] + 1.0)])
            },
            &[0.0, 0.0],
            &LbfgsOptions::default(),
        );
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-6 && (r.x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn rosenbrock_2d() {
        let r = minimize(
            |x| {
                let (a, b) = (x[0], x[1]);
                let f = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
                let g = vec![-2.0 * (1.0 - a) - 400.0 * a * (b - a * a), 200.0 * (b - a * a)];
                (f, g)
            },
            &[-1.2, 1.0],
            &LbfgsOptions { max_iters: 2000, ..Default::default() },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-4 && (r.x[1] - 1.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn temperature_objective_closed_form() {
        // The calibration objective (Eq. 18):
        //   J(T) = mean(−log T² + T² r²)   has the optimum  T* = 1/rms(r).
        let residual_sq = [0.5f64, 1.5, 2.0, 4.0];
        let mean_r2 = residual_sq.iter().sum::<f64>() / residual_sq.len() as f64;
        let expected = (1.0 / mean_r2).sqrt();
        let r = minimize(
            |t| {
                let tt = t[0];
                let f = residual_sq.iter().map(|r2| -(tt * tt).ln() + tt * tt * r2).sum::<f64>()
                    / residual_sq.len() as f64;
                let g = residual_sq.iter().map(|r2| -2.0 / tt + 2.0 * tt * r2).sum::<f64>()
                    / residual_sq.len() as f64;
                (f, vec![g])
            },
            &[1.0],
            &LbfgsOptions::default(),
        );
        assert!((r.x[0] - expected).abs() < 1e-6, "T {} vs {}", r.x[0], expected);
    }

    #[test]
    fn already_at_optimum_converges_immediately() {
        let r = minimize(|x| (x[0] * x[0], vec![2.0 * x[0]]), &[0.0], &LbfgsOptions::default());
        assert!(r.converged);
        assert_eq!(r.iters, 0);
    }
}
