//! Layers: linear maps, GRU cells, and the NAPL adaptive-graph GRU cell.
//!
//! Layers follow a *bind-then-step* pattern: a layer owns parameter slots;
//! [`Linear::bind`] (etc.) pushes the parameter nodes onto a tape **once**
//! and returns a bound handle whose `forward`/`step` can be called many times
//! (e.g. for each of the 12 time steps) without re-registering parameters.
//! This keeps the tape small and is also how the NAPL weight pools of AGCRN
//! are hoisted: the per-node weight matrices `E·W_pool` (paper Eq. 5) are
//! computed once per tape, not once per step.

use crate::init;
use crate::params::ParamSet;
use stuq_tensor::{NodeId, StuqRng, Tape};

/// Forward-pass context: controls dropout behaviour.
///
/// * training: dropout on (standard stochastic regularisation / variational
///   learning, paper Eq. 11–13);
/// * MC-dropout inference: dropout also on (paper §IV-C2);
/// * deterministic inference (`DeepSTUQ/S` in Table III): dropout off.
pub struct FwdCtx<'a> {
    /// True during gradient-producing passes.
    pub train: bool,
    /// True when sampling with MC dropout at inference time.
    pub mc_dropout: bool,
    /// Randomness source for dropout masks.
    pub rng: &'a mut StuqRng,
}

impl<'a> FwdCtx<'a> {
    /// Training-mode context.
    pub fn train(rng: &'a mut StuqRng) -> Self {
        Self { train: true, mc_dropout: false, rng }
    }

    /// Deterministic evaluation context (dropout off).
    pub fn eval(rng: &'a mut StuqRng) -> Self {
        Self { train: false, mc_dropout: false, rng }
    }

    /// MC-dropout sampling context (dropout on, no training).
    pub fn mc_sample(rng: &'a mut StuqRng) -> Self {
        Self { train: false, mc_dropout: true, rng }
    }

    /// Whether dropout masks should be drawn.
    pub fn dropout_active(&self) -> bool {
        self.train || self.mc_dropout
    }

    /// Applies dropout to `x` when active; identity otherwise.
    pub fn dropout(&mut self, tape: &mut Tape, x: NodeId, p: f32) -> NodeId {
        if self.dropout_active() && p > 0.0 {
            tape.dropout(x, p, self.rng)
        } else {
            x
        }
    }
}

/// A dense layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: usize,
    b: usize,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Allocates Glorot-initialised parameters.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StuqRng,
    ) -> Self {
        let w = ps.add(
            format!("{name}.w"),
            init::glorot_uniform(in_dim, out_dim, &[in_dim, out_dim], rng),
        );
        let b = ps.add(format!("{name}.b"), stuq_tensor::Tensor::zeros(&[1, out_dim]));
        Self { w, b, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Pushes parameter nodes onto the tape.
    pub fn bind(&self, tape: &mut Tape, ps: &ParamSet) -> BoundLinear {
        BoundLinear {
            w: tape.param(self.w, ps.get(self.w).clone()),
            b: tape.param(self.b, ps.get(self.b).clone()),
        }
    }
}

/// A [`Linear`] with parameters already on a tape.
#[derive(Clone, Copy, Debug)]
pub struct BoundLinear {
    w: NodeId,
    b: NodeId,
}

impl BoundLinear {
    /// `x @ W + b` for `x` of shape `[m, in_dim]`.
    pub fn forward(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        let xw = tape.matmul(x, self.w);
        tape.add_row_broadcast(xw, self.b)
    }
}

/// A standard GRU cell over node-major states (`[N, hidden]`).
///
/// Used by the plain-GRU ablation model and the CFRNN baseline; the adaptive
/// graph variant is [`AgcrnCell`].
#[derive(Clone, Debug)]
pub struct GruCell {
    wz: Linear,
    wr: Linear,
    wc: Linear,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Allocates cell parameters.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut StuqRng,
    ) -> Self {
        Self {
            wz: Linear::new(ps, &format!("{name}.z"), in_dim + hidden, hidden, rng),
            wr: Linear::new(ps, &format!("{name}.r"), in_dim + hidden, hidden, rng),
            wc: Linear::new(ps, &format!("{name}.c"), in_dim + hidden, hidden, rng),
            in_dim,
            hidden,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Pushes parameter nodes onto the tape.
    pub fn bind(&self, tape: &mut Tape, ps: &ParamSet) -> BoundGruCell {
        BoundGruCell {
            wz: self.wz.bind(tape, ps),
            wr: self.wr.bind(tape, ps),
            wc: self.wc.bind(tape, ps),
        }
    }
}

/// A [`GruCell`] with parameters on a tape.
#[derive(Clone, Copy, Debug)]
pub struct BoundGruCell {
    wz: BoundLinear,
    wr: BoundLinear,
    wc: BoundLinear,
}

impl BoundGruCell {
    /// One recurrence step: `(x_t [N,in], h [N,hidden]) → h' [N,hidden]`.
    pub fn step(&self, tape: &mut Tape, x: NodeId, h: NodeId) -> NodeId {
        let xh = tape.concat_cols(x, h);
        let z = self.wz.forward(tape, xh);
        let z = tape.sigmoid(z);
        let r = self.wr.forward(tape, xh);
        let r = tape.sigmoid(r);
        let rh = tape.mul(r, h);
        let xrh = tape.concat_cols(x, rh);
        let c = self.wc.forward(tape, xrh);
        let c = tape.tanh(c);
        // h' = z ⊙ h + (1 − z) ⊙ c  (paper Eq. 6d).
        let zh = tape.mul(z, h);
        let omz = tape.one_minus(z);
        let oc = tape.mul(omz, c);
        tape.add(zh, oc)
    }
}

/// The NAPL adaptive-graph GRU cell of AGCRN (paper Eq. 5–6).
///
/// All three gates share the node-embedding matrix `E ∈ R^{N×d}`; each gate
/// has a weight pool `W ∈ R^{d×(c_in+h)·h}` and bias pool `b ∈ R^{d×h}` from
/// which per-node weights are generated as `E·W` (Node Adaptive Parameter
/// Learning). Spatial mixing multiplies by the support `I + Â` where
/// `Â = softmax(ReLU(E Eᵀ))` (Eq. 4) is built by the owning model.
#[derive(Clone, Debug)]
pub struct AgcrnCell {
    pools: [GatePool; 3],
    in_dim: usize,
    hidden: usize,
    /// Dropout rate applied inside the graph convolution (paper Eq. 13).
    dropout_p: f32,
}

#[derive(Clone, Debug)]
struct GatePool {
    w: usize,
    b: usize,
}

impl AgcrnCell {
    /// Allocates gate pools. `embed_dim` is `d` in the paper.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        embed_dim: usize,
        dropout_p: f32,
        rng: &mut StuqRng,
    ) -> Self {
        let cat = in_dim + hidden;
        let mut pool = |gate: &str, rng: &mut StuqRng| GatePool {
            w: ps.add(
                format!("{name}.{gate}.w_pool"),
                init::glorot_uniform(cat, hidden, &[embed_dim, cat * hidden], rng),
            ),
            b: ps.add(
                format!("{name}.{gate}.b_pool"),
                stuq_tensor::Tensor::zeros(&[embed_dim, hidden]),
            ),
        };
        let pools = [pool("z", rng), pool("r", rng), pool("c", rng)];
        Self { pools, in_dim, hidden, dropout_p }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Binds the cell: computes per-node gate weights `E·W_pool` once.
    ///
    /// `e` must be the `[N, d]` embedding node, `support` the `[N, N]`
    /// propagation matrix node (`I + Â`).
    pub fn bind(
        &self,
        tape: &mut Tape,
        ps: &ParamSet,
        e: NodeId,
        support: NodeId,
    ) -> BoundAgcrnCell {
        let mut gates = Vec::with_capacity(3);
        for pool in &self.pools {
            let wp = tape.param(pool.w, ps.get(pool.w).clone());
            let bp = tape.param(pool.b, ps.get(pool.b).clone());
            gates.push(BoundGate { wn: tape.matmul(e, wp), bn: tape.matmul(e, bp) });
        }
        BoundAgcrnCell {
            gates: [gates[0], gates[1], gates[2]],
            support,
            c_in: self.in_dim,
            hidden: self.hidden,
            dropout_p: self.dropout_p,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct BoundGate {
    /// `[N, (c_in+h)·h]` per-node weights.
    wn: NodeId,
    /// `[N, h]` per-node bias.
    bn: NodeId,
}

/// An [`AgcrnCell`] bound to a tape (weights hoisted).
#[derive(Clone, Copy, Debug)]
pub struct BoundAgcrnCell {
    gates: [BoundGate; 3],
    support: NodeId,
    c_in: usize,
    hidden: usize,
    dropout_p: f32,
}

impl BoundAgcrnCell {
    fn gate(&self, tape: &mut Tape, ctx: &mut FwdCtx<'_>, idx: usize, input: NodeId) -> NodeId {
        let g = &self.gates[idx];
        // (I + Â) · [x, h]  — spatial mixing.
        let mixed = tape.matmul(self.support, input);
        // Per-node NAPL weights (Eq. 5), then bias.
        let pre = tape.rowwise_matmul(mixed, g.wn, self.c_in + self.hidden, self.hidden);
        let pre = tape.add(pre, g.bn);
        // M ⊙ (·): dropout inside the graph convolution (Eq. 13).
        ctx.dropout(tape, pre, self.dropout_p)
    }

    /// One recurrence step (paper Eq. 6): `(x_t [N,c_in], h [N,h]) → h'`.
    pub fn step(&self, tape: &mut Tape, ctx: &mut FwdCtx<'_>, x: NodeId, h: NodeId) -> NodeId {
        let xh = tape.concat_cols(x, h);
        let z = self.gate(tape, ctx, 0, xh);
        let z = tape.sigmoid(z);
        let r = self.gate(tape, ctx, 1, xh);
        let r = tape.sigmoid(r);
        let rh = tape.mul(r, h);
        let xrh = tape.concat_cols(x, rh);
        let c = self.gate(tape, ctx, 2, xrh);
        let c = tape.tanh(c);
        let zh = tape.mul(z, h);
        let omz = tape.one_minus(z);
        let oc = tape.mul(omz, c);
        tape.add(zh, oc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_tensor::{StuqRng, Tensor};

    #[test]
    fn linear_forward_shape_and_value() {
        let mut rng = StuqRng::new(1);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, &mut rng);
        // Overwrite with known weights.
        *ps.get_mut(0) = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[3, 2]);
        *ps.get_mut(1) = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]);
        let mut tape = Tape::new();
        let bound = lin.bind(&mut tape, &ps);
        let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = bound.forward(&mut tape, x);
        assert_eq!(tape.value(y).data(), &[1.5, 1.5]);
    }

    #[test]
    fn gru_step_bounded_output() {
        let mut rng = StuqRng::new(2);
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, "g", 1, 4, &mut rng);
        let mut tape = Tape::new();
        let bound = cell.bind(&mut tape, &ps);
        let x = tape.constant(Tensor::randn(&[5, 1], 1.0, &mut rng));
        let h0 = tape.constant(Tensor::zeros(&[5, 4]));
        let h1 = bound.step(&mut tape, x, h0);
        assert_eq!(tape.value(h1).shape(), &[5, 4]);
        // With h0=0, h' = (1−z)·tanh(…) ∈ (−1, 1).
        assert!(tape.value(h1).max() < 1.0 && tape.value(h1).min() > -1.0);
    }

    #[test]
    fn gru_gradients_reach_all_parameters() {
        let mut rng = StuqRng::new(3);
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, "g", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let bound = cell.bind(&mut tape, &ps);
        let x = tape.constant(Tensor::randn(&[4, 2], 1.0, &mut rng));
        let mut h = tape.constant(Tensor::zeros(&[4, 3]));
        for _ in 0..3 {
            h = bound.step(&mut tape, x, h);
        }
        let sq = tape.square(h);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        assert_eq!(grads.len(), ps.len(), "every GRU parameter should get a gradient");
    }

    fn agcrn_fixture(dropout_p: f32) -> (ParamSet, AgcrnCell, Tensor, Tensor, StuqRng) {
        let mut rng = StuqRng::new(4);
        let mut ps = ParamSet::new();
        let cell = AgcrnCell::new(&mut ps, "a", 1, 4, 3, dropout_p, &mut rng);
        let n = 6;
        let e = Tensor::randn(&[n, 3], 0.3, &mut rng);
        // Simple support: I + ring adjacency / 2.
        let mut s = Tensor::eye(n);
        for i in 0..n {
            let j = (i + 1) % n;
            s.set(i, j, 0.5);
            s.set(j, i, 0.5);
        }
        (ps, cell, e, s, rng)
    }

    #[test]
    fn agcrn_step_shapes() {
        let (ps, cell, e, s, mut rng) = agcrn_fixture(0.0);
        let mut tape = Tape::new();
        let en = tape.constant(e);
        let sn = tape.constant(s);
        let bound = cell.bind(&mut tape, &ps, en, sn);
        let x = tape.constant(Tensor::randn(&[6, 1], 1.0, &mut rng));
        let h0 = tape.constant(Tensor::zeros(&[6, 4]));
        let mut ctx = FwdCtx::eval(&mut rng);
        let h1 = bound.step(&mut tape, &mut ctx, x, h0);
        assert_eq!(tape.value(h1).shape(), &[6, 4]);
        assert!(tape.value(h1).all_finite());
    }

    #[test]
    fn agcrn_gradients_reach_all_pools() {
        let (ps, cell, e, s, mut rng) = agcrn_fixture(0.0);
        let mut tape = Tape::new();
        let en = tape.constant(e);
        let sn = tape.constant(s);
        let bound = cell.bind(&mut tape, &ps, en, sn);
        let x = tape.constant(Tensor::randn(&[6, 1], 1.0, &mut rng));
        let h0 = tape.constant(Tensor::zeros(&[6, 4]));
        let mut ctx = FwdCtx::train(&mut rng);
        let h1 = bound.step(&mut tape, &mut ctx, x, h0);
        let sq = tape.square(h1);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        assert_eq!(grads.len(), 6, "3 gates × (w_pool, b_pool)");
    }

    /// The replay engine must not change a single gradient bit on a real
    /// multi-step AGCRN training tape (dropout masks included) — the same
    /// tape shape the trainer replays every batch.
    #[test]
    fn agcrn_backward_replay_bitwise_vs_serial() {
        let (ps, cell, e, s, mut rng) = agcrn_fixture(0.2);
        let mut tape = Tape::new();
        let en = tape.constant(e);
        let sn = tape.constant(s);
        let bound = cell.bind(&mut tape, &ps, en, sn);
        let mut h = tape.constant(Tensor::zeros(&[6, 4]));
        let mut ctx = FwdCtx::train(&mut rng);
        for _ in 0..4 {
            let x = tape.constant(Tensor::ones(&[6, 1]));
            h = bound.step(&mut tape, &mut ctx, x, h);
        }
        let sq = tape.square(h);
        let loss = tape.mean_all(sq);
        let serial = tape.backward_serial(loss);
        let replayed = tape.backward(loss); // twice: cold compile + warm hit
        let warm = tape.backward(loss);
        let off = stuq_tensor::with_replay_disabled(|| tape.backward(loss));
        for (got, what) in [(&replayed, "replay"), (&warm, "warm replay"), (&off, "replay off")] {
            assert_eq!(serial.len(), got.len(), "{what}: slot count");
            for (slot, g) in serial.iter() {
                let o = got.get(slot).unwrap();
                assert_eq!(g.shape(), o.shape(), "{what}: slot {slot} shape");
                for (a, b) in g.data().iter().zip(o.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{what}: slot {slot}");
                }
            }
        }
    }

    #[test]
    fn dropout_only_active_in_train_and_mc_modes() {
        let (ps, cell, e, s, mut rng) = agcrn_fixture(0.9);
        let run = |mode: u8, rng: &mut StuqRng| {
            let mut tape = Tape::new();
            let en = tape.constant(e.clone());
            let sn = tape.constant(s.clone());
            let bound = cell.bind(&mut tape, &ps, en, sn);
            let x = tape.constant(Tensor::ones(&[6, 1]));
            let h0 = tape.constant(Tensor::zeros(&[6, 4]));
            let mut ctx = match mode {
                0 => FwdCtx::eval(rng),
                1 => FwdCtx::train(rng),
                _ => FwdCtx::mc_sample(rng),
            };
            let h1 = bound.step(&mut tape, &mut ctx, x, h0);
            tape.value(h1).clone()
        };
        let e1 = run(0, &mut rng);
        let e2 = run(0, &mut rng);
        assert_eq!(e1.data(), e2.data(), "eval mode must be deterministic");
        let m1 = run(2, &mut rng);
        let m2 = run(2, &mut rng);
        assert_ne!(m1.data(), m2.data(), "MC-dropout samples must differ");
    }
}
