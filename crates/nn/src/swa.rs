//! Running weight averaging (paper Eq. 15).
//!
//! `w_avg ← (w_avg · n + w) / (n + 1)` — the update shared by SWA and the
//! paper's Adaptive Weight Averaging (AWA) re-training, which collects one
//! model per two-epoch escape/fine-tune cycle.

use crate::params::ParamSet;
use stuq_tensor::Tensor;

/// Accumulates an equal-weight running average of parameter snapshots.
#[derive(Clone, Debug, Default)]
pub struct WeightAverager {
    avg: Vec<Tensor>,
    n_models: usize,
}

impl WeightAverager {
    /// An empty averager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of models folded in so far (the paper's `n_models`).
    pub fn n_models(&self) -> usize {
        self.n_models
    }

    /// Folds the current parameters into the average (Eq. 15).
    pub fn update(&mut self, params: &ParamSet) {
        if self.n_models == 0 {
            self.avg = params.snapshot();
        } else {
            let n = self.n_models as f32;
            for (a, slot) in self.avg.iter_mut().enumerate() {
                let w = params.get(a);
                // w_avg = (w_avg·n + w)/(n+1)
                *slot = slot.scale(n / (n + 1.0)).add(&w.scale(1.0 / (n + 1.0)));
            }
        }
        self.n_models += 1;
    }

    /// Writes the averaged weights back into `params`.
    ///
    /// Panics if called before any [`WeightAverager::update`].
    pub fn apply_to(&self, params: &mut ParamSet) {
        assert!(self.n_models > 0, "no models averaged yet");
        params.load_snapshot(&self.avg);
    }

    /// The averaged snapshot (for inspection).
    pub fn average(&self) -> &[Tensor] {
        &self.avg
    }

    /// Captures the averager for checkpointing: `(n_models, snapshots)`.
    pub fn export_state(&self) -> (usize, Vec<Tensor>) {
        (self.n_models, self.avg.clone())
    }

    /// Reconstructs an averager captured by [`WeightAverager::export_state`].
    pub fn from_state(n_models: usize, avg: Vec<Tensor>) -> Self {
        assert!(
            n_models > 0 || avg.is_empty(),
            "averager state with snapshots must have n_models > 0"
        );
        Self { avg, n_models }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps_with(v: f32) -> ParamSet {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::full(&[2, 2], v));
        ps
    }

    #[test]
    fn average_of_three_snapshots() {
        let mut avg = WeightAverager::new();
        for v in [1.0, 2.0, 6.0] {
            avg.update(&ps_with(v));
        }
        assert_eq!(avg.n_models(), 3);
        let mut out = ps_with(0.0);
        avg.apply_to(&mut out);
        for &x in out.get(0).data() {
            assert!((x - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn first_update_copies() {
        let mut avg = WeightAverager::new();
        avg.update(&ps_with(5.0));
        let mut out = ps_with(0.0);
        avg.apply_to(&mut out);
        assert_eq!(out.get(0).data(), &[5.0; 4]);
    }

    #[test]
    fn matches_paper_recurrence() {
        // Explicitly follow Eq. 15 step by step and compare.
        let snaps = [3.0f32, -1.0, 7.0, 2.0];
        let mut w_swa = 0.0f32;
        let mut avg = WeightAverager::new();
        for (i, &w) in snaps.iter().enumerate() {
            w_swa = if i == 0 { w } else { (w_swa * i as f32 + w) / (i as f32 + 1.0) };
            avg.update(&ps_with(w));
        }
        assert!((avg.average()[0].get(0, 0) - w_swa).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no models averaged")]
    fn apply_before_update_panics() {
        let avg = WeightAverager::new();
        let mut ps = ps_with(0.0);
        avg.apply_to(&mut ps);
    }
}
