//! First-order optimisers.
//!
//! Both optimisers support L2 weight decay added to the gradient — the
//! realisation of the `λ_W/2p‖w‖²` regulariser in the paper's combined loss
//! (Eq. 12 / Eq. 14): `∇(λ_W/2 ‖w‖²) = λ_W · w`.

use crate::params::ParamSet;
use stuq_parallel::SendPtr;
use stuq_tensor::{GradStore, Tensor};

/// Minimum total gradient elements in a step before the per-slot updates fan
/// out onto the pool. Each slot's parameter and moment buffers are disjoint
/// and the per-slot arithmetic is untouched by the fan-out, so a parallel
/// step is bit-identical to a serial one — slots just finish in a different
/// wall-clock order.
const PAR_STEP_ELEMS_MIN: usize = 1 << 14;

/// `(slot, gradient)` pairs in ascending slot order — a deterministic
/// work-list for the parallel step ([`GradStore::iter`] order is not
/// specified).
fn sorted_slots(grads: &GradStore) -> Vec<(usize, &Tensor)> {
    let mut slots: Vec<(usize, &Tensor)> = grads.iter().collect();
    slots.sort_unstable_by_key(|&(s, _)| s);
    slots
}

fn grad_volume(slots: &[(usize, &Tensor)]) -> usize {
    slots.iter().map(|(_, g)| g.len()).sum()
}

/// A metric-only accumulator for the squared L2 norm of the applied update,
/// allocated only at `trace` level (the extra per-slot `norm()` pass is the
/// whole cost of step-norm telemetry).
fn step_norm_acc() -> Option<std::sync::atomic::AtomicU64> {
    stuq_obs::trace_enabled().then(|| std::sync::atomic::AtomicU64::new(0))
}

/// Records step telemetry after an optimiser step: step counter and lr at
/// `summary`, the global update norm (from `acc`, if traced) on top.
fn record_step_telemetry(lr: f32, acc: Option<std::sync::atomic::AtomicU64>) {
    if !stuq_obs::summary_enabled() {
        return;
    }
    let m = stuq_obs::metrics();
    m.opt_steps.inc();
    m.opt_lr.set(lr as f64);
    if let Some(acc) = acc {
        m.opt_step_norm.record(f64::from_bits(acc.into_inner()).sqrt());
    }
}

/// The serialisable moment state of an optimiser, for crash-safe
/// checkpointing and the trainer's divergence-guard rewind snapshots.
///
/// `buffers` holds one named list of per-slot tensors per internal buffer
/// (Adam: `m`, `v`; SGD: `velocity`); a `None` entry means the slot has never
/// received a gradient. `counter` carries Adam's bias-correction step `t`.
#[derive(Clone, Debug, Default)]
pub struct OptimizerState {
    /// Which update rule produced this state (`"adam"` / `"sgd"`).
    pub algorithm: String,
    /// Step counter (Adam's `t`; 0 for SGD).
    pub counter: u64,
    /// Named per-slot moment buffers.
    pub buffers: Vec<(String, Vec<Option<Tensor>>)>,
}

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update from `grads` to `params`.
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore);
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Overrides the learning rate (used by schedulers, Eq. 16).
    fn set_lr(&mut self, lr: f32);
    /// Captures the moment buffers and step counter.
    fn export_state(&self) -> OptimizerState;
    /// Restores a state captured by [`Optimizer::export_state`].
    ///
    /// Fails when `state` came from a different algorithm — continuing Adam
    /// from SGD velocity buffers would corrupt the update silently.
    fn import_state(&mut self, state: &OptimizerState) -> Result<(), String>;
}

fn buffer<'a>(state: &'a OptimizerState, name: &str) -> Result<&'a Vec<Option<Tensor>>, String> {
    state
        .buffers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, b)| b)
        .ok_or_else(|| format!("optimizer state missing buffer {name:?}"))
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, momentum, weight_decay, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore) {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        let slots = sorted_slots(grads);
        // Moment buffers are installed serially so the parallel body only
        // ever mutates existing, disjoint entries.
        if self.momentum > 0.0 {
            for &(slot, g) in &slots {
                self.velocity[slot].get_or_insert_with(|| Tensor::zeros(g.shape()));
            }
        }
        let (lr, momentum, weight_decay) = (self.lr, self.momentum, self.weight_decay);
        let norm_acc = step_norm_acc();
        let update_one = |w: &mut Tensor, v: &mut Option<Tensor>, grad: &Tensor| {
            let mut g = grad.clone();
            if weight_decay > 0.0 {
                g.axpy(weight_decay, w);
            }
            let applied = if momentum > 0.0 {
                let v = v.as_mut().expect("velocity pre-initialised");
                // v ← μ v + g;  w ← w − lr v
                *v = v.scale(momentum).add(&g);
                w.axpy(-lr, v);
                norm_acc.as_ref().map(|_| v.norm())
            } else {
                w.axpy(-lr, &g);
                norm_acc.as_ref().map(|_| g.norm())
            };
            if let (Some(acc), Some(n)) = (&norm_acc, applied) {
                let d = lr as f64 * n;
                stuq_obs::metrics::atomic_f64_add(acc, d * d);
            }
        };
        if grad_volume(&slots) >= PAR_STEP_ELEMS_MIN && slots.len() > 1 {
            let pptr = SendPtr::new(params.entries_mut().as_mut_ptr());
            let vptr = SendPtr::new(self.velocity.as_mut_ptr());
            stuq_parallel::par_for(slots.len(), |i| {
                let (slot, grad) = slots[i];
                // SAFETY: slot indices are unique, so every task touches
                // disjoint parameter and velocity entries.
                unsafe {
                    update_one(&mut (*pptr.get().add(slot)).1, &mut *vptr.get().add(slot), grad)
                }
            });
        } else {
            for &(slot, grad) in &slots {
                let w = &mut params.entries_mut()[slot].1;
                update_one(w, &mut self.velocity[slot], grad);
            }
        }
        record_step_telemetry(lr, norm_acc);
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            algorithm: "sgd".to_string(),
            counter: 0,
            buffers: vec![("velocity".to_string(), self.velocity.clone())],
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), String> {
        if state.algorithm != "sgd" {
            return Err(format!(
                "optimizer algorithm mismatch: state is {:?}, optimiser is \"sgd\"",
                state.algorithm
            ));
        }
        self.velocity = buffer(state, "velocity")?.clone();
        Ok(())
    }
}

/// Adam (Kingma & Ba) with L2 weight decay folded into the gradient, the
/// paper's optimiser for both pre-training and AWA re-training (§V-B).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with the standard β/ε defaults.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore) {
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let slots = sorted_slots(grads);
        // Install missing moment buffers serially; the parallel body then
        // only mutates existing, disjoint entries.
        for &(slot, g) in &slots {
            self.m[slot].get_or_insert_with(|| Tensor::zeros(g.shape()));
            self.v[slot].get_or_insert_with(|| Tensor::zeros(g.shape()));
        }
        let (lr, beta1, beta2, eps, weight_decay) =
            (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let norm_acc = step_norm_acc();
        let update_one = |w: &mut Tensor, m: &mut Tensor, v: &mut Tensor, grad: &Tensor| {
            let mut g = grad.clone();
            if weight_decay > 0.0 {
                g.axpy(weight_decay, w);
            }
            *m = m.scale(beta1).add(&g.scale(1.0 - beta1));
            let g2 = g.mul(&g);
            *v = v.scale(beta2).add(&g2.scale(1.0 - beta2));
            let update = m.zip(v, |mi, vi| {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                -lr * mhat / (vhat.sqrt() + eps)
            });
            w.add_assign(&update);
            if let Some(acc) = &norm_acc {
                let n = update.norm();
                stuq_obs::metrics::atomic_f64_add(acc, n * n);
            }
        };
        if grad_volume(&slots) >= PAR_STEP_ELEMS_MIN && slots.len() > 1 {
            let pptr = SendPtr::new(params.entries_mut().as_mut_ptr());
            let mptr = SendPtr::new(self.m.as_mut_ptr());
            let vptr = SendPtr::new(self.v.as_mut_ptr());
            stuq_parallel::par_for(slots.len(), |i| {
                let (slot, grad) = slots[i];
                // SAFETY: slot indices are unique, so every task touches
                // disjoint parameter and moment entries.
                unsafe {
                    let w = &mut (*pptr.get().add(slot)).1;
                    let m = (*mptr.get().add(slot)).as_mut().expect("m pre-initialised");
                    let v = (*vptr.get().add(slot)).as_mut().expect("v pre-initialised");
                    update_one(w, m, v, grad);
                }
            });
        } else {
            for &(slot, grad) in &slots {
                let w = &mut params.entries_mut()[slot].1;
                let m = self.m[slot].as_mut().expect("m pre-initialised");
                let v = self.v[slot].as_mut().expect("v pre-initialised");
                update_one(w, m, v, grad);
            }
        }
        record_step_telemetry(lr, norm_acc);
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            algorithm: "adam".to_string(),
            counter: self.t,
            buffers: vec![("m".to_string(), self.m.clone()), ("v".to_string(), self.v.clone())],
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), String> {
        if state.algorithm != "adam" {
            return Err(format!(
                "optimizer algorithm mismatch: state is {:?}, optimiser is \"adam\"",
                state.algorithm
            ));
        }
        self.t = state.counter;
        self.m = buffer(state, "m")?.clone();
        self.v = buffer(state, "v")?.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_tensor::Tape;

    /// Minimise f(w) = ‖w − target‖² and return the final parameters.
    fn optimise(opt: &mut dyn Optimizer, steps: usize) -> Tensor {
        let target = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]);
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(&[1, 3]));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let w = tape.param(0, ps.get(0).clone());
            let t = tape.constant(target.clone());
            let d = tape.sub(w, t);
            let sq = tape.square(d);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            opt.step(&mut ps, &grads);
        }
        ps.get(0).clone()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        let w = optimise(&mut opt, 200);
        for (a, b) in w.data().iter().zip([1.0, -2.0, 3.0]) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let w = optimise(&mut opt, 300);
        for (a, b) in w.data().iter().zip([1.0, -2.0, 3.0]) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        let w = optimise(&mut opt, 500);
        for (a, b) in w.data().iter().zip([1.0, -2.0, 3.0]) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let mut plain = Adam::new(0.1, 0.0);
        let mut decayed = Adam::new(0.1, 0.5);
        let w_plain = optimise(&mut plain, 500);
        let w_decayed = optimise(&mut decayed, 500);
        assert!(
            w_decayed.norm() < w_plain.norm(),
            "decay {:.4} vs plain {:.4}",
            w_decayed.norm(),
            w_plain.norm()
        );
    }

    #[test]
    fn set_lr_is_respected() {
        let mut opt = Adam::new(0.1, 0.0);
        opt.set_lr(0.003);
        assert_eq!(opt.lr(), 0.003);
    }

    #[test]
    fn adam_state_roundtrip_continues_bit_identically() {
        // Two optimisers walked in lockstep for 3 steps; one is then cloned
        // via export/import. The next steps must agree bit-for-bit — this is
        // what the trainer's rewind and the checkpoint/resume path rely on.
        let mut a = Adam::new(0.05, 0.01);
        let mut b = Adam::new(0.05, 0.01);
        let wa = optimise(&mut a, 3);
        let _diverged = optimise(&mut b, 1); // b's moments now disagree with a's
        let state = a.export_state();
        assert_eq!(state.algorithm, "adam");
        assert_eq!(state.counter, 3);
        b.import_state(&state).unwrap();
        // Continue both from the same params for a few more steps.
        let run = |opt: &mut Adam, start: &Tensor| {
            let target = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]);
            let mut ps = ParamSet::new();
            ps.add("w", start.clone());
            for _ in 0..5 {
                let mut tape = Tape::new();
                let w = tape.param(0, ps.get(0).clone());
                let t = tape.constant(target.clone());
                let d = tape.sub(w, t);
                let sq = tape.square(d);
                let loss = tape.mean_all(sq);
                let grads = tape.backward(loss);
                opt.step(&mut ps, &grads);
            }
            ps.get(0).clone()
        };
        let fa = run(&mut a, &wa);
        let fb = run(&mut b, &wa);
        for (x, y) in fa.data().iter().zip(fb.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parallel_step_is_bit_identical_to_serial() {
        // Enough slots and volume to cross PAR_STEP_ELEMS_MIN, so the pooled
        // fan-out actually runs; the forced-serial twin must agree exactly.
        let build = || {
            let mut ps = ParamSet::new();
            let mut grads = GradStore::default();
            for slot in 0..8 {
                let w = Tensor::from_vec(
                    (0..64 * 64).map(|i| ((i + slot * 7) as f32).sin()).collect(),
                    &[64, 64],
                );
                let g = Tensor::from_vec(
                    (0..64 * 64).map(|i| ((i * 3 + slot) as f32).cos()).collect(),
                    &[64, 64],
                );
                ps.add(format!("w{slot}"), w);
                grads.accumulate_slot(slot, g);
            }
            (ps, grads)
        };
        let (mut ps_par, grads) = build();
        let (mut ps_ser, _) = build();
        let mut adam_par = Adam::new(0.01, 0.1);
        let mut adam_ser = Adam::new(0.01, 0.1);
        for _ in 0..3 {
            adam_par.step(&mut ps_par, &grads);
            stuq_parallel::with_serial(|| adam_ser.step(&mut ps_ser, &grads));
        }
        for slot in 0..8 {
            for (a, b) in ps_par.get(slot).data().iter().zip(ps_ser.get(slot).data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "Adam step depends on thread count");
            }
        }

        let (mut ps_par, grads) = build();
        let (mut ps_ser, _) = build();
        let mut sgd_par = Sgd::new(0.01, 0.9, 0.1);
        let mut sgd_ser = Sgd::new(0.01, 0.9, 0.1);
        for _ in 0..3 {
            sgd_par.step(&mut ps_par, &grads);
            stuq_parallel::with_serial(|| sgd_ser.step(&mut ps_ser, &grads));
        }
        for slot in 0..8 {
            for (a, b) in ps_par.get(slot).data().iter().zip(ps_ser.get(slot).data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "SGD step depends on thread count");
            }
        }
    }

    #[test]
    fn import_rejects_algorithm_mismatch() {
        let sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut adam = Adam::new(0.1, 0.0);
        let err = adam.import_state(&sgd.export_state()).unwrap_err();
        assert!(err.contains("algorithm mismatch"), "{err}");
    }

    #[test]
    fn untouched_parameters_stay_put() {
        // A parameter that receives no gradient must not move.
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::ones(&[1, 2]));
        ps.add("b", Tensor::ones(&[1, 2]));
        let mut tape = Tape::new();
        let a = tape.param(0, ps.get(0).clone());
        let sq = tape.square(a);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.step(&mut ps, &grads);
        assert_eq!(ps.get(1).data(), &[1.0, 1.0], "slot 1 had no gradient");
        assert_ne!(ps.get(0).data(), &[1.0, 1.0], "slot 0 should move");
    }
}
