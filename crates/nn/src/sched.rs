//! Learning-rate schedules.
//!
//! * [`CosineSchedule`] — the within-epoch cosine decay of AWA re-training
//!   (paper Eq. 16): the rate falls from `lr₁` to `lr₂` over the iterations
//!   of an "escape" epoch;
//! * [`CyclicSchedule`] — the triangular cyclic schedule of Fast Geometric
//!   Ensembling (FGE), which repeatedly dips to the snapshot rate.

/// Cosine decay from `lr_max` to `lr_min` over `total_iters` (Eq. 16).
#[derive(Clone, Copy, Debug)]
pub struct CosineSchedule {
    lr_max: f32,
    lr_min: f32,
    total_iters: usize,
}

impl CosineSchedule {
    /// Creates the schedule. `total_iters` is the paper's `n_i` (batches per epoch).
    pub fn new(lr_max: f32, lr_min: f32, total_iters: usize) -> Self {
        assert!(lr_max >= lr_min && lr_min > 0.0, "need lr_max ≥ lr_min > 0");
        assert!(total_iters > 0, "need at least one iteration");
        Self { lr_max, lr_min, total_iters }
    }

    /// Learning rate at iteration `i` (clamped to the final value beyond the end).
    pub fn lr_at(&self, i: usize) -> f32 {
        let i = i.min(self.total_iters);
        let frac = i as f32 / self.total_iters as f32;
        let lr = self.lr_min
            + 0.5 * (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * frac).cos());
        lr.clamp(self.lr_min, self.lr_max)
    }
}

/// Triangular cyclic schedule for FGE: within each cycle of `cycle_len`
/// iterations the rate descends linearly from `lr_max` to `lr_min` and back.
/// Snapshots are taken at cycle minima ([`CyclicSchedule::at_minimum`]).
#[derive(Clone, Copy, Debug)]
pub struct CyclicSchedule {
    lr_max: f32,
    lr_min: f32,
    cycle_len: usize,
}

impl CyclicSchedule {
    /// Creates the schedule; `cycle_len` must be even and positive.
    pub fn new(lr_max: f32, lr_min: f32, cycle_len: usize) -> Self {
        assert!(lr_max >= lr_min && lr_min > 0.0, "need lr_max ≥ lr_min > 0");
        assert!(cycle_len >= 2 && cycle_len.is_multiple_of(2), "cycle_len must be even and ≥ 2");
        Self { lr_max, lr_min, cycle_len }
    }

    /// Learning rate at iteration `i`.
    pub fn lr_at(&self, i: usize) -> f32 {
        let half = self.cycle_len / 2;
        let pos = i % self.cycle_len;
        // Distance from the nearest cycle maximum, in [0, 1]: 0 at the peaks
        // (pos = 0), 1 at the trough (pos = half).
        let frac = if pos <= half {
            pos as f32 / half as f32
        } else {
            (self.cycle_len - pos) as f32 / half as f32
        };
        (self.lr_max - (self.lr_max - self.lr_min) * frac).clamp(self.lr_min, self.lr_max)
    }

    /// True when iteration `i` sits at a cycle minimum (snapshot point).
    pub fn at_minimum(&self, i: usize) -> bool {
        i % self.cycle_len == self.cycle_len / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_endpoints() {
        let s = CosineSchedule::new(0.003, 0.00003, 100);
        assert!((s.lr_at(0) - 0.003).abs() < 1e-9);
        assert!((s.lr_at(100) - 0.00003).abs() < 1e-9);
        assert!((s.lr_at(1000) - 0.00003).abs() < 1e-9, "clamps past the end");
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = CosineSchedule::new(0.01, 0.0001, 50);
        let mut prev = f32::INFINITY;
        for i in 0..=50 {
            let lr = s.lr_at(i);
            assert!(lr <= prev + 1e-9, "increase at iter {i}");
            prev = lr;
        }
    }

    #[test]
    fn cosine_midpoint_is_average() {
        let s = CosineSchedule::new(0.01, 0.002, 10);
        assert!((s.lr_at(5) - 0.006).abs() < 1e-6);
    }

    #[test]
    fn cyclic_repeats_and_dips() {
        let s = CyclicSchedule::new(0.01, 0.001, 10);
        assert!((s.lr_at(0) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(5) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(10) - 0.01).abs() < 1e-9);
        assert!(s.at_minimum(5) && s.at_minimum(15));
        assert!(!s.at_minimum(4));
    }

    #[test]
    fn cyclic_stays_in_bounds() {
        let s = CyclicSchedule::new(0.02, 0.0005, 8);
        for i in 0..64 {
            let lr = s.lr_at(i);
            assert!((0.0005..=0.02).contains(&lr), "lr {lr} at iter {i}");
        }
    }
}
