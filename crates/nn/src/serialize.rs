//! Plain-text, bit-exact parameter serialisation.
//!
//! The format is line-oriented and self-describing: each parameter records
//! its name, shape, and values as hexadecimal IEEE-754 bit patterns, so a
//! round-trip is *bit-exact* (no decimal-formatting drift) while the files
//! stay diffable and debuggable. No external serialisation crate is needed.
//!
//! ```text
//! stuq-params v1
//! count 3
//! param agcrn.embedding 2 34 4
//! 3d4ccccd bd4ccccd …
//! param …
//! ```

use crate::params::ParamSet;
use std::io::{self, BufRead, Write};
use stuq_tensor::Tensor;

const MAGIC: &str = "stuq-params v1";
/// Hex words per line (keeps lines short for diffing).
const WORDS_PER_LINE: usize = 16;

/// Writes every parameter of `ps` to `w`.
pub fn write_params(ps: &ParamSet, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "count {}", ps.len())?;
    for slot in 0..ps.len() {
        let t = ps.get(slot);
        let name = ps.name(slot);
        assert!(
            !name.contains(char::is_whitespace),
            "parameter name {name:?} must not contain whitespace"
        );
        write!(w, "param {name} {}", t.shape().len())?;
        for d in t.shape() {
            write!(w, " {d}")?;
        }
        writeln!(w)?;
        for chunk in t.data().chunks(WORDS_PER_LINE) {
            let line: Vec<String> = chunk.iter().map(|v| format!("{:08x}", v.to_bits())).collect();
            writeln!(w, "{}", line.join(" "))?;
        }
    }
    Ok(())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads a parameter list written by [`write_params`].
pub fn read_params(r: &mut impl BufRead) -> io::Result<Vec<(String, Tensor)>> {
    let mut lines = r.lines();
    let mut next = || lines.next().ok_or_else(|| bad("unexpected end of file"))?;
    let magic = next()?;
    if magic.trim() != MAGIC {
        return Err(bad(format!("bad magic: {magic:?}")));
    }
    let count_line = next()?;
    let count: usize = count_line
        .trim()
        .strip_prefix("count ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad count line: {count_line:?}")))?;

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let header = next()?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("param") {
            return Err(bad(format!("expected param header, got {header:?}")));
        }
        let name = parts.next().ok_or_else(|| bad("missing param name"))?.to_string();
        let ndim: usize =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("missing ndim"))?;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("missing dimension"))?,
            );
        }
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let line = next()?;
            for word in line.split_whitespace() {
                let bits = u32::from_str_radix(word, 16)
                    .map_err(|_| bad(format!("bad hex word {word:?}")))?;
                data.push(f32::from_bits(bits));
            }
        }
        if data.len() != numel {
            return Err(bad(format!(
                "parameter {name}: expected {numel} values, read {}",
                data.len()
            )));
        }
        out.push((name, Tensor::from_vec(data, &shape)));
    }
    Ok(out)
}

/// Loads parameters into an existing [`ParamSet`], validating names and
/// shapes slot-by-slot.
pub fn load_into(ps: &mut ParamSet, entries: &[(String, Tensor)]) -> io::Result<()> {
    if entries.len() != ps.len() {
        return Err(bad(format!(
            "parameter count mismatch: file {}, model {}",
            entries.len(),
            ps.len()
        )));
    }
    for (slot, (name, t)) in entries.iter().enumerate() {
        if ps.name(slot) != name {
            return Err(bad(format!(
                "parameter {slot} name mismatch: file {name:?}, model {:?}",
                ps.name(slot)
            )));
        }
        if ps.get(slot).shape() != t.shape() {
            return Err(bad(format!(
                "parameter {name} shape mismatch: file {:?}, model {:?}",
                t.shape(),
                ps.get(slot).shape()
            )));
        }
    }
    for (slot, (_, t)) in entries.iter().enumerate() {
        *ps.get_mut(slot) = t.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_tensor::StuqRng;

    fn sample_params() -> ParamSet {
        let mut rng = StuqRng::new(1);
        let mut ps = ParamSet::new();
        ps.add("layer.w", Tensor::randn(&[3, 5], 1.0, &mut rng));
        ps.add("layer.b", Tensor::randn(&[1, 5], 1.0, &mut rng));
        ps.add("embed", Tensor::randn(&[40, 4], 0.1, &mut rng));
        ps
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ps = sample_params();
        let mut buf = Vec::new();
        write_params(&ps, &mut buf).unwrap();
        let entries = read_params(&mut buf.as_slice()).unwrap();
        assert_eq!(entries.len(), 3);
        for (slot, (name, tensor)) in entries.iter().enumerate() {
            assert_eq!(name, ps.name(slot));
            assert_eq!(tensor.shape(), ps.get(slot).shape());
            for (a, b) in tensor.data().iter().zip(ps.get(slot).data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round-trip");
            }
        }
    }

    #[test]
    fn special_values_survive() {
        let mut ps = ParamSet::new();
        ps.add(
            "specials",
            Tensor::from_vec(vec![0.0, -0.0, f32::MIN_POSITIVE, f32::MAX, -1.5e-38], &[1, 5]),
        );
        let mut buf = Vec::new();
        write_params(&ps, &mut buf).unwrap();
        let entries = read_params(&mut buf.as_slice()).unwrap();
        for (a, b) in entries[0].1.data().iter().zip(ps.get(0).data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn load_into_validates_names_and_shapes() {
        let ps = sample_params();
        let mut buf = Vec::new();
        write_params(&ps, &mut buf).unwrap();
        let entries = read_params(&mut buf.as_slice()).unwrap();

        let mut ok = sample_params();
        load_into(&mut ok, &entries).unwrap();

        // Wrong name.
        let mut renamed = ParamSet::new();
        renamed.add("other.w", Tensor::zeros(&[3, 5]));
        renamed.add("layer.b", Tensor::zeros(&[1, 5]));
        renamed.add("embed", Tensor::zeros(&[40, 4]));
        assert!(load_into(&mut renamed, &entries).is_err());

        // Wrong shape.
        let mut reshaped = ParamSet::new();
        reshaped.add("layer.w", Tensor::zeros(&[5, 3]));
        reshaped.add("layer.b", Tensor::zeros(&[1, 5]));
        reshaped.add("embed", Tensor::zeros(&[40, 4]));
        assert!(load_into(&mut reshaped, &entries).is_err());
    }

    #[test]
    fn corrupted_file_is_rejected() {
        let ps = sample_params();
        let mut buf = Vec::new();
        write_params(&ps, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(read_params(&mut "garbage".as_bytes()).is_err());
        let truncated = &text[..text.len() / 2];
        assert!(read_params(&mut truncated.as_bytes()).is_err());
        let corrupted = text.replace("param layer.b", "param zzz.b");
        let entries = read_params(&mut corrupted.as_bytes()).unwrap();
        let mut model = sample_params();
        assert!(load_into(&mut model, &entries).is_err());
    }
}
