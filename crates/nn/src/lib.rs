//! Neural-network building blocks on the DeepSTUQ autodiff tape.
//!
//! The paper's models are assembled from a small set of components, all
//! implemented here from scratch:
//!
//! * [`params::ParamSet`] — named parameter storage with snapshot/restore
//!   (needed by SWA-style weight averaging and FGE snapshot ensembles);
//! * [`layers`] — `Linear`, a standard GRU cell, and the NAPL adaptive graph
//!   convolution GRU cell of AGCRN (paper Eq. 5–6), plus dropout plumbing for
//!   MC-dropout (Eq. 11–13);
//! * [`loss`] — MAE/MSE, the heteroscedastic Gaussian NLL (Eq. 8), the
//!   paper's weighted combined loss (Eq. 9 / Eq. 14) and the pinball loss for
//!   the quantile baseline;
//! * [`opt`] — SGD and Adam with L2 weight decay (the `λ_W/2p‖w‖²` term of
//!   Eq. 12), plus gradient clipping helpers;
//! * [`sched`] — the cosine schedule of AWA re-training (Eq. 16) and the
//!   cyclic schedule used by the FGE baseline;
//! * [`swa`] — running weight averaging (Eq. 15);
//! * [`lbfgs`] — a dense L-BFGS minimiser used by temperature-scaling
//!   calibration (Eq. 18).

pub mod init;
pub mod layers;
pub mod lbfgs;
pub mod loss;
pub mod opt;
pub mod params;
pub mod sched;
pub mod serialize;
pub mod swa;

pub use layers::FwdCtx;
pub use params::ParamSet;
