//! Loss functions on the tape.
//!
//! All losses return a scalar (`1×1`) node. Targets are passed as tape nodes
//! so callers can choose whether gradients flow into them (they normally
//! register targets as constants).

use stuq_tensor::{NodeId, Tape};

/// Bounds on the predicted log-variance; keeps `exp` finite and the NLL
/// well-conditioned early in training.
pub const LOGVAR_MIN: f32 = -8.0;
/// See [`LOGVAR_MIN`].
pub const LOGVAR_MAX: f32 = 8.0;

/// Mean absolute error.
pub fn mae(tape: &mut Tape, pred: NodeId, target: NodeId) -> NodeId {
    let d = tape.sub(pred, target);
    let a = tape.abs(d);
    tape.mean_all(a)
}

/// Mean squared error.
pub fn mse(tape: &mut Tape, pred: NodeId, target: NodeId) -> NodeId {
    let d = tape.sub(pred, target);
    let s = tape.square(d);
    tape.mean_all(s)
}

/// Heteroscedastic Gaussian negative log-likelihood (paper Eq. 8, up to the
/// constant `½ log 2π` and the global factor `½`):
/// `mean(logvar + (y − μ)² · exp(−logvar))`.
///
/// `logvar` is clamped to [`LOGVAR_MIN`, `LOGVAR_MAX`] with straight-through
/// zero gradients outside the range.
pub fn gaussian_nll(tape: &mut Tape, mu: NodeId, logvar: NodeId, target: NodeId) -> NodeId {
    let lv = tape.clamp(logvar, LOGVAR_MIN, LOGVAR_MAX);
    let d = tape.sub(target, mu);
    let sq = tape.square(d);
    let neg_lv = tape.neg(lv);
    let inv_var = tape.exp(neg_lv);
    let fit = tape.mul(sq, inv_var);
    let total = tape.add(lv, fit);
    tape.mean_all(total)
}

/// The paper's weighted aleatoric loss (Eq. 9):
/// `λ · NLL + (1 − λ) · MAE`, with `0 < λ < 1`.
///
/// The `λ_W/2p‖w‖²` term of the combined loss (Eq. 14) is realised as L2
/// weight decay in the optimiser, which has the identical gradient.
pub fn combined(
    tape: &mut Tape,
    mu: NodeId,
    logvar: NodeId,
    target: NodeId,
    lambda: f32,
) -> NodeId {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let nll = gaussian_nll(tape, mu, logvar, target);
    let l1 = mae(tape, mu, target);
    let a = tape.scale(nll, lambda);
    let b = tape.scale(l1, 1.0 - lambda);
    tape.add(a, b)
}

/// Pinball (quantile) loss at level `q`:
/// `mean(max(q·(y−ŷ), (q−1)·(y−ŷ)))`.
pub fn pinball(tape: &mut Tape, pred: NodeId, target: NodeId, q: f32) -> NodeId {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let d = tape.sub(target, pred);
    let hi = tape.scale(d, q);
    let lo = tape.scale(d, q - 1.0);
    let m = tape.max_elem(hi, lo);
    tape.mean_all(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuq_tensor::{gradcheck::check_grads, StuqRng, Tensor};

    #[test]
    fn mae_matches_manual() {
        let mut tape = Tape::new();
        let p = tape.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let t = tape.constant(Tensor::from_vec(vec![3.0, 1.0], &[1, 2]));
        let l = mae(&mut tape, p, t);
        assert!((tape.value(l).get(0, 0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn nll_is_minimised_at_true_variance() {
        // For fixed residual r², NLL(logvar) = logvar + r²·e^{−logvar} is
        // minimised at logvar = ln r².
        let r2 = 4.0f32;
        let eval = |lv: f32| {
            let mut tape = Tape::new();
            let mu = tape.constant(Tensor::scalar(0.0));
            let lvn = tape.constant(Tensor::scalar(lv));
            let y = tape.constant(Tensor::scalar(r2.sqrt()));
            let l = gaussian_nll(&mut tape, mu, lvn, y);
            tape.value(l).get(0, 0)
        };
        let at_opt = eval(r2.ln());
        for lv in [-1.0, 0.5, 2.5, 4.0] {
            assert!(eval(lv) >= at_opt - 1e-6, "NLL({lv}) < NLL(ln r²)");
        }
    }

    #[test]
    fn combined_interpolates() {
        let mut rng = StuqRng::new(1);
        let mu = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let lv = Tensor::zeros(&[2, 3]);
        let y = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let eval = |lambda: f32| {
            let mut tape = Tape::new();
            let m = tape.constant(mu.clone());
            let l = tape.constant(lv.clone());
            let t = tape.constant(y.clone());
            let c = combined(&mut tape, m, l, t, lambda);
            tape.value(c).get(0, 0) as f64
        };
        let nll = eval(1.0);
        let l1 = eval(0.0);
        let mid = eval(0.25);
        assert!((mid - (0.25 * nll + 0.75 * l1)).abs() < 1e-5);
    }

    #[test]
    fn pinball_asymmetry() {
        // Under-prediction is penalised q/(1−q) times more than equal
        // over-prediction at quantile q.
        let eval = |pred: f32, q: f32| {
            let mut tape = Tape::new();
            let p = tape.constant(Tensor::scalar(pred));
            let t = tape.constant(Tensor::scalar(0.0));
            let l = pinball(&mut tape, p, t, q);
            tape.value(l).get(0, 0)
        };
        let under = eval(-1.0, 0.9); // y − ŷ = +1 → q·1
        let over = eval(1.0, 0.9); // y − ŷ = −1 → (1−q)·1
        assert!((under / over - 9.0).abs() < 1e-4, "ratio {}", under / over);
    }

    #[test]
    fn gradcheck_combined_loss() {
        let mut rng = StuqRng::new(2);
        let mu = Tensor::randn(&[2, 3], 0.5, &mut rng);
        let lv = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let y = Tensor::randn(&[2, 3], 0.5, &mut rng);
        check_grads(
            move |tape, ps| {
                let m = tape.param(0, ps[0].clone());
                let l = tape.param(1, ps[1].clone());
                let t = tape.constant(y.clone());
                combined(tape, m, l, t, 0.3)
            },
            &[mu, lv],
            1e-3,
            3e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_pinball() {
        let mut rng = StuqRng::new(3);
        // Keep residuals away from the kink at 0.
        let pred = Tensor::rand_uniform(&[2, 4], 0.5, 1.5, &mut rng);
        let y = Tensor::rand_uniform(&[2, 4], -1.5, -0.5, &mut rng);
        check_grads(
            move |tape, ps| {
                let p = tape.param(0, ps[0].clone());
                let t = tape.constant(y.clone());
                pinball(tape, p, t, 0.975)
            },
            &[pred],
            1e-3,
            3e-3,
        )
        .unwrap();
    }
}
