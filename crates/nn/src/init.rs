//! Weight initialisation schemes.

use stuq_tensor::{StuqRng, Tensor};

/// Glorot/Xavier uniform: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, shape: &[usize], rng: &mut StuqRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// He/Kaiming normal: `N(0, sqrt(2 / fan_in))` — for ReLU stacks.
pub fn he_normal(fan_in: usize, shape: &[usize], rng: &mut StuqRng) -> Tensor {
    Tensor::randn(shape, (2.0 / fan_in as f32).sqrt(), rng)
}

/// Small-scale normal for node embeddings (AGCRN initialises `E` this way).
pub fn embedding_init(shape: &[usize], rng: &mut StuqRng) -> Tensor {
    Tensor::randn(shape, 0.1, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_bounds() {
        let mut rng = StuqRng::new(1);
        let t = glorot_uniform(100, 100, &[100, 100], &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        assert!(t.mean().abs() < 0.01);
    }

    #[test]
    fn he_normal_variance() {
        let mut rng = StuqRng::new(2);
        let t = he_normal(50, &[200, 50], &mut rng);
        let var = t.data().iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / t.len() as f64;
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }
}
