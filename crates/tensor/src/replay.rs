//! Static-schedule replay of the backward pass (DESIGN.md §14).
//!
//! Training re-traces a structurally identical tape every batch: same ops,
//! same parents, same shapes — only the floats change. The level-scheduled
//! engine ([`Tape::backward_levels`]) nevertheless re-derives the whole
//! schedule (levels, consumer lists, edge arena, buckets) on every call,
//! which is exactly the constant factor BENCH_PR3 measured losing to the
//! seed's serial walk. This module compiles that schedule **once** into a
//! [`ReplayPlan`] keyed on [`Tape::structural_sig`] and replays it on every
//! later batch with preallocated scratch, frozen per-level chunk assignments
//! and zero graph analysis.
//!
//! On top of the frozen schedule, the compiler fuses chains of adjacent
//! unary element-wise adjoints (negate/scale/σ′/tanh′/ReLU′/dropout-mask …)
//! into a single [`Step`]-interpreter task that transforms one gradient
//! buffer in place, eliminating the interior nodes' per-op tensor
//! allocations and edge-slot traffic entirely.
//!
//! Bit-identity with [`Tape::backward_serial`] is preserved because the plan
//! never reorders a single float addition: gradients are assembled from
//! consumer deltas in the serial walk's order (descending consumer id, then
//! input declaration order), parameter slots reduce in descending node-id
//! order, and every fused step applies the exact per-element expression of
//! the corresponding [`Tape::node_adjoints`] arm. Chunk boundaries are part
//! of the plan, not of the thread count, so results are identical at any
//! `STUQ_THREADS`.
//!
//! Knobs: `STUQ_REPLAY=0|off|false` disables the cache process-wide;
//! [`with_replay_disabled`] disables it for a scope on the current thread.

use crate::tape::{GradStore, NodeId, OpKind, Tape};
use crate::tensor::Tensor;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::OnceLock;
use stuq_parallel::{SendPtr, StaticSchedule};

/// Compiled plans kept per thread; training loops touch at most two graph
/// shapes (full batch + final partial batch), MC inference a third.
const PLAN_CACHE_CAP: usize = 8;

/// Target gradient elements per frozen chunk. Levels whose tasks sum to less
/// run as a single inline chunk; heavyweight adjoints (the GRU matmuls) get
/// chunks of their own.
const CHUNK_COST: u64 = 8192;

/// One fused unary adjoint applied in place to the running gradient buffer.
///
/// Node ids refer to the *live* tape passed to [`ReplayPlan::run`], so a plan
/// reused across batches reads each batch's own activations and dropout
/// masks. Each variant's expression is copied verbatim from the matching
/// [`Tape::node_adjoints`] arm — that is the bit-identity argument.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// `Neg` (c = -1) and `Scale(c)`.
    MulScalar(f32),
    /// `σ'`: reads the sigmoid node's own output.
    Sigmoid(NodeId),
    /// `tanh'`: reads the tanh node's own output.
    Tanh(NodeId),
    /// Gradient gate on the *parent* (pre-activation) value.
    Relu(NodeId),
    LeakyRelu(NodeId, f32),
    /// Reads the exp node's own output.
    Exp(NodeId),
    /// Reads the parent value.
    Ln(NodeId),
    Abs(NodeId),
    /// Reads the sqrt node's own output.
    Sqrt(NodeId),
    Clamp(NodeId, f32, f32),
    /// Multiplies by the dropout node's stored mask.
    Dropout(NodeId),
}

/// Where a fused chain delivers its finished gradient buffer.
#[derive(Clone, Copy, Debug)]
enum Tail {
    /// Deliver to the last fused node's single parent `dest`, which has
    /// other consumers: the level path writes arena slot `slot` for later
    /// assembly, the serial path accumulates into `dest`'s gradient
    /// directly. `skip` marks a `Constant` parent (delta discarded).
    Edge { slot: usize, dest: NodeId, skip: bool },
    /// The parent is a single-consumer `Param`: the buffer *is* its whole
    /// gradient — deposit it directly, skipping assembly.
    Param(NodeId),
    /// The parent is a single-consumer non-fusable op: its upstream gradient
    /// *is* the buffer, so its adjoints run inside this task too.
    Op(NodeId),
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    /// `Param` leaf: assembled gradient goes to the parameter scratch.
    Param,
    /// Generic op: assemble, call [`Tape::node_adjoints`], scatter deltas.
    Node,
    /// Fused unary chain: assemble at the head, run `steps`, dispatch `tail`.
    Fused { steps: (u32, u32), tail: Tail },
}

#[derive(Clone, Copy, Debug)]
struct Task {
    id: NodeId,
    kind: Kind,
}

fn fusable(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Neg
            | OpKind::Scale(_)
            | OpKind::AddScalar(_)
            | OpKind::Sigmoid
            | OpKind::Tanh
            | OpKind::Relu
            | OpKind::LeakyRelu(_)
            | OpKind::Exp
            | OpKind::Ln
            | OpKind::Abs
            | OpKind::Sqrt
            | OpKind::Clamp(_, _)
            | OpKind::Dropout(_)
    )
}

/// The step for a fusable node, or `None` for `AddScalar` (identity adjoint).
fn make_step(tape: &Tape, id: NodeId) -> Option<Step> {
    let node = &tape.nodes[id];
    let pid = node.parents[0];
    Some(match &node.op {
        OpKind::Neg => Step::MulScalar(-1.0),
        OpKind::Scale(c) => Step::MulScalar(*c),
        OpKind::AddScalar(_) => return None,
        OpKind::Sigmoid => Step::Sigmoid(id),
        OpKind::Tanh => Step::Tanh(id),
        OpKind::Relu => Step::Relu(pid),
        OpKind::LeakyRelu(a) => Step::LeakyRelu(pid, *a),
        OpKind::Exp => Step::Exp(id),
        OpKind::Ln => Step::Ln(pid),
        OpKind::Abs => Step::Abs(pid),
        OpKind::Sqrt => Step::Sqrt(id),
        OpKind::Clamp(lo, hi) => Step::Clamp(pid, *lo, *hi),
        OpKind::Dropout(_) => Step::Dropout(id),
        _ => unreachable!("make_step called on a non-fusable op"),
    })
}

/// Applies one fused step in place. Every per-element expression matches the
/// corresponding [`Tape::node_adjoints`] arm exactly; element-wise maps have
/// no cross-element data flow, so in-place evaluation is bit-identical to
/// the serial walk's allocate-and-zip.
fn apply_step(step: &Step, tape: &Tape, buf: &mut Tensor) {
    match *step {
        Step::MulScalar(c) => {
            for g in buf.data_mut() {
                *g *= c;
            }
        }
        Step::Sigmoid(id) => {
            for (g, &s) in buf.data_mut().iter_mut().zip(tape.nodes[id].value.data()) {
                *g = *g * s * (1.0 - s);
            }
        }
        Step::Tanh(id) => {
            for (g, &t) in buf.data_mut().iter_mut().zip(tape.nodes[id].value.data()) {
                *g *= 1.0 - t * t;
            }
        }
        Step::Relu(pid) => {
            for (g, &x) in buf.data_mut().iter_mut().zip(tape.nodes[pid].value.data()) {
                if x <= 0.0 {
                    *g = 0.0;
                }
            }
        }
        Step::LeakyRelu(pid, a) => {
            for (g, &x) in buf.data_mut().iter_mut().zip(tape.nodes[pid].value.data()) {
                if x <= 0.0 {
                    *g *= a;
                }
            }
        }
        Step::Exp(id) => {
            for (g, &y) in buf.data_mut().iter_mut().zip(tape.nodes[id].value.data()) {
                *g *= y;
            }
        }
        Step::Ln(pid) => {
            for (g, &x) in buf.data_mut().iter_mut().zip(tape.nodes[pid].value.data()) {
                *g /= x;
            }
        }
        Step::Abs(pid) => {
            for (g, &x) in buf.data_mut().iter_mut().zip(tape.nodes[pid].value.data()) {
                if x < 0.0 {
                    *g = -*g;
                }
            }
        }
        Step::Sqrt(id) => {
            for (g, &s) in buf.data_mut().iter_mut().zip(tape.nodes[id].value.data()) {
                *g = *g * 0.5 / s.max(1e-12);
            }
        }
        Step::Clamp(pid, lo, hi) => {
            for (g, &x) in buf.data_mut().iter_mut().zip(tape.nodes[pid].value.data()) {
                if !(x > lo && x < hi) {
                    *g = 0.0;
                }
            }
        }
        Step::Dropout(id) => {
            let OpKind::Dropout(mask) = &tape.nodes[id].op else {
                unreachable!("Dropout step points at a non-dropout node")
            };
            for (g, &m) in buf.data_mut().iter_mut().zip(mask.data()) {
                *g *= m;
            }
        }
    }
}

/// A compiled static schedule for one tape structure.
///
/// Compile once per graph shape with [`ReplayPlan::compile`]; replay any
/// structurally identical tape (checked via [`ReplayPlan::matches`]) with
/// [`ReplayPlan::run`]. The scratch arenas are owned by the plan and reused
/// across runs, so steady-state replay performs no scheduling allocations.
pub struct ReplayPlan {
    sig: u64,
    loss: NodeId,
    n_nodes: usize,
    /// CSR offsets into the edge-delta arena: node `id`'s slots are
    /// `edge_off[id]..edge_off[id + 1]`, one per parent (same layout as
    /// `backward_levels`).
    edge_off: Vec<usize>,
    /// Arena slots whose parent is a `Constant` — never written, keeping the
    /// scratch all-`None` between runs without a sweep.
    skip_edge: Vec<bool>,
    /// All tasks, concatenated in ascending level order.
    tasks: Vec<Task>,
    /// `(first task index, frozen chunk schedule)` per level.
    levels: Vec<(usize, StaticSchedule)>,
    /// Task indices in descending *effect-id* order — the exact positions
    /// at which the serial walk performs each task's final scatter (chain
    /// interiors collapse into their head task, whose effect id is the
    /// chain's last write). Every delta a task consumes is produced by tasks
    /// with strictly greater effect ids, so this order needs no level
    /// barriers; the single-thread path (`run_serial`) walks it with direct
    /// per-node gradient accumulation, restoring the serial walk's
    /// produce-then-immediately-consume locality and live-set profile.
    serial_order: Vec<u32>,
    /// Per-task consumer edge slots in the serial accumulation order
    /// (descending consumer id, then input declaration order).
    cons_off: Vec<usize>,
    cons_slots: Vec<usize>,
    /// Fused-chain step pool, referenced by `Kind::Fused` ranges.
    steps: Vec<Step>,
    /// Reachable `Param` nodes as `(node id, slot)`, descending id — the
    /// serial walk's reduction order.
    param_order: Vec<(NodeId, usize)>,
    /// Reusable scratch; all-`None` between runs. `edge_deltas` backs the
    /// level path (one slot per consumer edge), `node_grads` the serial path
    /// (one accumulator per node, like the seed walk's `grads` vector).
    edge_deltas: Vec<Option<Tensor>>,
    node_grads: Vec<Option<Tensor>>,
    param_grads: Vec<Option<Tensor>>,
    fused_chains: usize,
    fused_nodes: usize,
}

impl ReplayPlan {
    /// Derives the full static schedule for `tape`'s current structure.
    #[allow(clippy::too_many_lines)]
    pub fn compile(tape: &Tape, loss: NodeId) -> Self {
        assert_eq!(tape.nodes[loss].value.len(), 1, "backward() needs a scalar loss node");
        const UNREACHED: usize = usize::MAX;
        let n = loss + 1;

        // Longest-path levels over the reverse graph (cf. backward_levels).
        let mut level = vec![UNREACHED; n];
        level[loss] = 0;
        let mut n_levels = 0usize;
        for id in (0..=loss).rev() {
            if level[id] == UNREACHED {
                continue;
            }
            n_levels = n_levels.max(level[id] + 1);
            let l1 = level[id] + 1;
            for &p in &tape.nodes[id].parents {
                level[p] = if level[p] == UNREACHED { l1 } else { level[p].max(l1) };
            }
        }

        // Edge-delta arena layout: one slot per (reachable op node, parent).
        let mut edge_off = vec![0usize; n + 1];
        for id in 0..=loss {
            let slots = match tape.nodes[id].op {
                OpKind::Constant | OpKind::Param(_) => 0,
                _ if level[id] == UNREACHED => 0,
                _ => tape.nodes[id].parents.len(),
            };
            edge_off[id + 1] = edge_off[id] + slots;
        }
        let n_slots = edge_off[n];

        let mut skip_edge = vec![false; n_slots];
        for id in 0..=loss {
            if edge_off[id + 1] == edge_off[id] {
                continue;
            }
            for (k, &p) in tape.nodes[id].parents.iter().enumerate() {
                if matches!(tape.nodes[p].op, OpKind::Constant) {
                    skip_edge[edge_off[id] + k] = true;
                }
            }
        }

        // Consumer edges per node in the serial accumulation order.
        let mut consumers: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
        for id in (0..=loss).rev() {
            if edge_off[id + 1] > edge_off[id] {
                for (k, &p) in tape.nodes[id].parents.iter().enumerate() {
                    consumers[p].push((id, k));
                }
            }
        }

        // Fused-chain discovery. A chain *head* is a reachable fusable node
        // that is not itself absorbed (absorbed = its only reachable
        // consumer is fusable). From the head we extend downward through
        // single-consumer fusable parents, then classify the terminating
        // parent. Membership depends only on consumer counts and op kinds,
        // so chains are unique and non-overlapping by construction.
        let single_fusable_consumer =
            |id: NodeId| consumers[id].len() == 1 && fusable(&tape.nodes[consumers[id][0].0].op);
        let mut absorbed = vec![false; n];
        // (step range start, end, tail, effect id). The *effect id* is the
        // node whose serial-walk scatter the chain performs last: the lowest
        // chain member for an `Edge` tail (its parent write), the absorbed
        // parent itself for `Op`/`Param` tails.
        let mut chain_info: Vec<Option<(u32, u32, Tail, NodeId)>> = vec![None; n];
        let mut steps: Vec<Step> = Vec::new();
        let mut fused_chains = 0usize;
        let mut fused_nodes = 0usize;
        for id in (0..=loss).rev() {
            if level[id] == UNREACHED || !fusable(&tape.nodes[id].op) || single_fusable_consumer(id)
            {
                continue;
            }
            let mut chain = vec![id];
            loop {
                let p = tape.nodes[*chain.last().unwrap()].parents[0];
                if consumers[p].len() == 1 && fusable(&tape.nodes[p].op) {
                    chain.push(p);
                } else {
                    break;
                }
            }
            let last = *chain.last().unwrap();
            let p = tape.nodes[last].parents[0];
            let tail = match &tape.nodes[p].op {
                OpKind::Constant => Tail::Edge { slot: edge_off[last], dest: p, skip: true },
                OpKind::Param(_) if consumers[p].len() == 1 => Tail::Param(p),
                _ if consumers[p].len() == 1 => Tail::Op(p),
                _ => Tail::Edge { slot: edge_off[last], dest: p, skip: false },
            };
            // A single fusable node feeding a shared edge gains nothing over
            // the generic task; fuse only when ≥ 2 nodes merge.
            if chain.len() == 1 && matches!(tail, Tail::Edge { .. }) {
                continue;
            }
            let start = steps.len() as u32;
            for &cid in &chain {
                if let Some(s) = make_step(tape, cid) {
                    steps.push(s);
                }
            }
            let end = steps.len() as u32;
            for &cid in &chain[1..] {
                absorbed[cid] = true;
            }
            let effect = if let Tail::Param(q) | Tail::Op(q) = tail {
                absorbed[q] = true;
                q
            } else {
                last
            };
            chain_info[id] = Some((start, end, tail, effect));
            fused_chains += 1;
            fused_nodes += chain.len() + usize::from(matches!(tail, Tail::Param(_) | Tail::Op(_)));
        }

        // Schedulable work per level, ascending id within a level.
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); n_levels];
        for id in 0..=loss {
            if level[id] != UNREACHED
                && !matches!(tape.nodes[id].op, OpKind::Constant)
                && !absorbed[id]
            {
                buckets[level[id]].push(id);
            }
        }

        let mut tasks = Vec::new();
        let mut levels = Vec::with_capacity(n_levels);
        let mut cons_off = vec![0usize];
        let mut cons_slots = Vec::new();
        let mut effects = Vec::new();
        for bucket in &buckets {
            let start = tasks.len();
            let mut costs = Vec::with_capacity(bucket.len());
            for &id in bucket {
                let kind = if let Some((s, e, tail, effect)) = chain_info[id] {
                    effects.push(effect);
                    Kind::Fused { steps: (s, e), tail }
                } else if matches!(tape.nodes[id].op, OpKind::Param(_)) {
                    effects.push(id);
                    Kind::Param
                } else {
                    effects.push(id);
                    Kind::Node
                };
                for &(c, k) in &consumers[id] {
                    cons_slots.push(edge_off[c] + k);
                }
                cons_off.push(cons_slots.len());
                let elems = tape.nodes[id].value.len() as u64;
                let span = match kind {
                    Kind::Fused { steps: (s, e), .. } => 1 + u64::from(e - s),
                    _ => 1,
                };
                costs.push((elems * span).max(1));
                tasks.push(Task { id, kind });
            }
            levels.push((start, StaticSchedule::balanced(&costs, CHUNK_COST)));
        }
        // Descending effect-id order: every task runs exactly where the
        // serial walk performs its last scatter, so direct per-node gradient
        // accumulation reproduces the walk's float order (see `run_serial`).
        let mut serial_order: Vec<u32> = (0..tasks.len() as u32).collect();
        serial_order.sort_unstable_by(|&a, &b| effects[b as usize].cmp(&effects[a as usize]));

        let mut param_order = Vec::new();
        for id in (0..=loss).rev() {
            if level[id] == UNREACHED {
                continue;
            }
            if let OpKind::Param(slot) = tape.nodes[id].op {
                param_order.push((id, slot));
            }
        }

        Self {
            sig: tape.structural_sig(),
            loss,
            n_nodes: tape.len(),
            edge_off,
            skip_edge,
            tasks,
            levels,
            serial_order,
            cons_off,
            cons_slots,
            steps,
            param_order,
            edge_deltas: (0..n_slots).map(|_| None).collect(),
            node_grads: (0..n).map(|_| None).collect(),
            param_grads: (0..n).map(|_| None).collect(),
            fused_chains,
            fused_nodes,
        }
    }

    /// True when `tape` has the structure this plan was compiled for.
    pub fn matches(&self, tape: &Tape, loss: NodeId) -> bool {
        self.sig == tape.structural_sig() && self.loss == loss && self.n_nodes == tape.len()
    }

    /// Number of fused chains in the plan.
    pub fn fused_chains(&self) -> usize {
        self.fused_chains
    }

    /// Total nodes absorbed into fused chains (interiors, heads and tails).
    pub fn fused_nodes(&self) -> usize {
        self.fused_nodes
    }

    /// Number of dependency levels in the frozen schedule.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of scheduled tasks (after fusion).
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Replays the plan against a structurally identical tape.
    ///
    /// Bit-identical to [`Tape::backward_serial`] on the same tape, at any
    /// thread count. Panics if the tape does not match the plan.
    pub fn run(&mut self, tape: &Tape) -> GradStore {
        assert!(self.matches(tape, self.loss), "replay plan does not match this tape");
        let mut param_grads = std::mem::take(&mut self.param_grads);
        // A panic in a previous run can strand deltas in the scratch; clear
        // rather than trust the all-None invariant.
        for s in &mut param_grads {
            if s.is_some() {
                *s = None;
            }
        }
        if stuq_parallel::num_threads() == 1 || stuq_parallel::serial_forced() {
            self.run_serial(tape, &mut param_grads);
        } else {
            self.run_levels(tape, &mut param_grads);
        }
        // Slot-ordered reduction in descending node-id order — the serial
        // walk's parameter accumulation order.
        let mut store = GradStore::default();
        for &(id, slot) in &self.param_order {
            let g = param_grads[id].take().expect("param gradient missing after replay");
            store.accumulate_slot(slot, g);
        }
        self.param_grads = param_grads;
        store
    }

    /// Single-thread replay: one flat sweep over `serial_order` with direct
    /// per-node gradient accumulation — the seed walk's own storage
    /// discipline, so each pending node holds exactly one live accumulator
    /// and every delta is added the moment it is produced (cache-hot), with
    /// fused chains layered on top.
    ///
    /// Bit-identity: tasks execute at descending *effect id*, the position
    /// where the serial walk performs the same scatter, and deltas a task
    /// consumes come only from tasks with strictly greater effect ids (a
    /// plain consumer scatters at its own id, which exceeds its parent's; a
    /// chain delivering into node `x` does so at the chain member whose
    /// parent is `x`, again `> x`). Multi-consumer accumulators therefore
    /// receive their additions in exactly the serial walk's order.
    fn run_serial(&mut self, tape: &Tape, param_grads: &mut [Option<Tensor>]) {
        let mut node_grads = std::mem::take(&mut self.node_grads);
        for s in &mut node_grads {
            if s.is_some() {
                *s = None;
            }
        }
        for &ti in &self.serial_order {
            let task = &self.tasks[ti as usize];
            let mut grad = if task.id == self.loss {
                Tensor::scalar(1.0)
            } else {
                node_grads[task.id].take().expect("node gradient missing in serial replay")
            };
            match &task.kind {
                Kind::Param => param_grads[task.id] = Some(grad),
                Kind::Node => self.scatter_direct(tape, task.id, &grad, &mut node_grads),
                Kind::Fused { steps: (s, e), tail } => {
                    for step in &self.steps[*s as usize..*e as usize] {
                        apply_step(step, tape, &mut grad);
                    }
                    match tail {
                        Tail::Edge { dest, skip, .. } => {
                            if !skip {
                                Self::accumulate(&mut node_grads, *dest, grad);
                            }
                        }
                        Tail::Param(q) => param_grads[*q] = Some(grad),
                        Tail::Op(q) => self.scatter_direct(tape, *q, &grad, &mut node_grads),
                    }
                }
            }
        }
        self.node_grads = node_grads;
    }

    /// Computes `id`'s adjoints and accumulates each delta into its parent's
    /// gradient slot, in declaration order — the serial walk's scatter.
    /// Deltas for `Constant` parents are dropped (their slots stay `None`).
    fn scatter_direct(
        &self,
        tape: &Tape,
        id: NodeId,
        grad: &Tensor,
        node_grads: &mut [Option<Tensor>],
    ) {
        for (k, delta) in tape.node_adjoints(id, grad).into_iter().enumerate() {
            if !self.skip_edge[self.edge_off[id] + k] {
                Self::accumulate(node_grads, tape.nodes[id].parents[k], delta);
            }
        }
    }

    fn accumulate(node_grads: &mut [Option<Tensor>], id: NodeId, delta: Tensor) {
        match &mut node_grads[id] {
            Some(g) => g.add_assign(&delta),
            empty @ None => *empty = Some(delta),
        }
    }

    /// Multi-thread replay: frozen level chunks over the edge-delta arena
    /// (see `exec_task` for the disjointness contract).
    fn run_levels(&mut self, tape: &Tape, param_grads: &mut [Option<Tensor>]) {
        let mut edge_deltas = std::mem::take(&mut self.edge_deltas);
        for s in &mut edge_deltas {
            if s.is_some() {
                *s = None;
            }
        }
        {
            let eptr = SendPtr::new(edge_deltas.as_mut_ptr());
            let pptr = SendPtr::new(param_grads.as_mut_ptr());
            for (start, sched) in &self.levels {
                let start = *start;
                sched.run(|r: Range<usize>| {
                    for li in r {
                        // SAFETY: tasks address disjoint scratch slots; see
                        // exec_task.
                        unsafe { self.exec_task(tape, start + li, &eptr, &pptr) };
                    }
                });
            }
        }
        self.edge_deltas = edge_deltas;
    }

    /// Runs one task: assemble the head's gradient from its consumer slots
    /// (serial order), then either deposit it (`Param`), compute adjoints
    /// (`Node`), or interpret the fused chain.
    ///
    /// # Safety
    ///
    /// Caller must run tasks level by level with a barrier between levels
    /// (as `run` does): each edge slot is written by exactly one task and
    /// read (taken) by exactly one task in a strictly later level, and each
    /// `param_grads` entry is written by exactly one task.
    unsafe fn exec_task(
        &self,
        tape: &Tape,
        ti: usize,
        eptr: &SendPtr<Option<Tensor>>,
        pptr: &SendPtr<Option<Tensor>>,
    ) {
        let task = &self.tasks[ti];
        let mut grad = if task.id == self.loss {
            Tensor::scalar(1.0)
        } else {
            let mut acc: Option<Tensor> = None;
            for &slot in &self.cons_slots[self.cons_off[ti]..self.cons_off[ti + 1]] {
                // SAFETY: slot was written when its consumer ran in an
                // earlier level; this task is its only reader.
                let delta =
                    unsafe { &mut *eptr.get().add(slot) }.take().expect("consumer delta missing");
                match &mut acc {
                    Some(g) => g.add_assign(&delta),
                    empty @ None => *empty = Some(delta),
                }
            }
            acc.expect("reachable node received no deltas")
        };
        let scatter = |id: NodeId, grad: &Tensor| {
            for (k, delta) in tape.node_adjoints(id, grad).into_iter().enumerate() {
                let off = self.edge_off[id] + k;
                if !self.skip_edge[off] {
                    // SAFETY: node `id`'s slots are written only by this task.
                    unsafe { *eptr.get().add(off) = Some(delta) };
                }
            }
        };
        match &task.kind {
            // SAFETY: each param node is deposited by exactly one task.
            Kind::Param => unsafe { *pptr.get().add(task.id) = Some(grad) },
            Kind::Node => scatter(task.id, &grad),
            Kind::Fused { steps: (s, e), tail } => {
                for step in &self.steps[*s as usize..*e as usize] {
                    apply_step(step, tape, &mut grad);
                }
                match tail {
                    Tail::Edge { slot, skip, .. } => {
                        if !skip {
                            // SAFETY: this chain's last edge slot is written
                            // only here.
                            unsafe { *eptr.get().add(*slot) = Some(grad) };
                        }
                    }
                    // SAFETY: a tail param is absorbed by exactly one chain.
                    Tail::Param(q) => unsafe { *pptr.get().add(*q) = Some(grad) },
                    Tail::Op(q) => scatter(*q, &grad),
                }
            }
        }
    }
}

thread_local! {
    static PLAN_CACHE: RefCell<VecDeque<ReplayPlan>> = const { RefCell::new(VecDeque::new()) };
    static DISABLE_DEPTH: Cell<u32> = const { Cell::new(0) };
    static HITS: Cell<u64> = const { Cell::new(0) };
    static COMPILES: Cell<u64> = const { Cell::new(0) };
}

/// True unless replay is switched off by `STUQ_REPLAY=0|off|false` or a
/// surrounding [`with_replay_disabled`] scope on this thread.
pub fn replay_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    let on = *ENV.get_or_init(|| {
        std::env::var("STUQ_REPLAY").map_or(true, |v| {
            let v = v.to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "false")
        })
    });
    on && DISABLE_DEPTH.with(Cell::get) == 0
}

/// Runs `f` with replay disabled on the current thread; [`Tape::backward`]
/// falls back to the pre-replay engine dispatch inside the scope. Nests.
pub fn with_replay_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            DISABLE_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    DISABLE_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

/// `(plan cache hits, plan compiles)` on the current thread.
pub fn replay_stats() -> (u64, u64) {
    (HITS.with(Cell::get), COMPILES.with(Cell::get))
}

/// Zeroes the current thread's replay counters (test support).
pub fn reset_replay_stats() {
    HITS.with(|c| c.set(0));
    COMPILES.with(|c| c.set(0));
}

/// Drops every cached plan on the current thread (test support).
pub fn clear_replay_cache() {
    PLAN_CACHE.with(|c| {
        if let Ok(mut cache) = c.try_borrow_mut() {
            cache.clear();
        }
    });
}

/// Backward via the thread-local plan cache: reuse a matching compiled plan
/// or compile one, run it, and keep it for the next structurally identical
/// tape (MRU-first, capacity [`PLAN_CACHE_CAP`]).
///
/// Returns `None` when the cache is unavailable — a `Custom` op's backward
/// is re-entering `Tape::backward` while a replay holds the cache — in which
/// case the caller falls back to the classic engines.
pub(crate) fn cached_backward(tape: &Tape, loss: NodeId) -> Option<GradStore> {
    let slot = PLAN_CACHE.with(|c| {
        let mut cache = c.try_borrow_mut().ok()?;
        let found = cache.iter().position(|p| p.matches(tape, loss)).and_then(|i| cache.remove(i));
        Some(found)
    })?;
    let mut plan = match slot {
        Some(plan) => {
            HITS.with(|c| c.set(c.get() + 1));
            if stuq_obs::summary_enabled() {
                stuq_obs::metrics().replay_hits.inc();
            }
            plan
        }
        None => {
            let plan = ReplayPlan::compile(tape, loss);
            COMPILES.with(|c| c.set(c.get() + 1));
            if stuq_obs::summary_enabled() {
                let m = stuq_obs::metrics();
                m.replay_compiles.inc();
                m.replay_fused_chains.add(plan.fused_chains() as u64);
                m.replay_fused_nodes.add(plan.fused_nodes() as u64);
            }
            plan
        }
    };
    let store = plan.run(tape);
    PLAN_CACHE.with(|c| {
        if let Ok(mut cache) = c.try_borrow_mut() {
            cache.push_front(plan);
            while cache.len() > PLAN_CACHE_CAP {
                cache.pop_back();
            }
        }
    });
    Some(store)
}
