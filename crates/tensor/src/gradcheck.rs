//! Finite-difference gradient checking.
//!
//! Every tape op's adjoint is verified by comparing analytic gradients with
//! central finite differences. The builder closure must register each entry
//! of `params` as `tape.param(i, params[i].clone())` and return the scalar
//! loss node; the checker re-runs it with perturbed parameters.

use crate::tape::{NodeId, Tape};
use crate::tensor::Tensor;

/// Result of a gradient check: the worst absolute/relative discrepancy seen.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f64,
    /// Largest relative difference (scaled by gradient magnitude).
    pub max_rel_err: f64,
}

/// Checks analytic gradients of `build` against central finite differences.
///
/// Returns `Err` with a description of the first offending element when any
/// entry differs by more than `tol` in both absolute and relative terms.
pub fn check_grads(
    mut build: impl FnMut(&mut Tape, &[Tensor]) -> NodeId,
    params: &[Tensor],
    eps: f64,
    tol: f64,
) -> Result<GradCheckReport, String> {
    let mut tape = Tape::new();
    let loss = build(&mut tape, params);
    let analytic = tape.backward(loss);

    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0 };
    let mut work: Vec<Tensor> = params.to_vec();
    for (pi, param) in params.iter().enumerate() {
        let zero = Tensor::zeros(param.shape());
        let a = analytic.get(pi).unwrap_or(&zero);
        for ei in 0..param.len() {
            let orig = param.data()[ei];
            work[pi].data_mut()[ei] = orig + eps as f32;
            let up = eval(&mut build, &work);
            work[pi].data_mut()[ei] = orig - eps as f32;
            let down = eval(&mut build, &work);
            work[pi].data_mut()[ei] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let ana = a.data()[ei] as f64;
            let abs_err = (numeric - ana).abs();
            let rel_err = abs_err / numeric.abs().max(ana.abs()).max(1e-8);
            report.max_abs_err = report.max_abs_err.max(abs_err);
            report.max_rel_err = report.max_rel_err.max(rel_err);
            if abs_err > tol && rel_err > tol {
                return Err(format!(
                    "param {pi} element {ei}: analytic {ana:.6e} vs numeric {numeric:.6e} \
                     (abs err {abs_err:.3e}, rel err {rel_err:.3e})"
                ));
            }
        }
    }
    Ok(report)
}

fn eval(build: &mut impl FnMut(&mut Tape, &[Tensor]) -> NodeId, params: &[Tensor]) -> f64 {
    let mut tape = Tape::new();
    let loss = build(&mut tape, params);
    tape.value(loss).get(0, 0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StuqRng;

    fn p2(rng: &mut StuqRng, shape: &[usize]) -> Tensor {
        // Keep magnitudes moderate so finite differences are well-conditioned.
        Tensor::randn(shape, 0.5, rng)
    }

    #[test]
    fn gradcheck_add_sub_mul() {
        let mut rng = StuqRng::new(100);
        let params = vec![p2(&mut rng, &[3, 4]), p2(&mut rng, &[3, 4])];
        check_grads(
            |tape, ps| {
                let a = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let s = tape.add(a, b);
                let d = tape.sub(s, b);
                let m = tape.mul(d, s);
                tape.mean_all(m)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_matmul_transpose() {
        let mut rng = StuqRng::new(101);
        let params = vec![p2(&mut rng, &[3, 4]), p2(&mut rng, &[4, 2])];
        check_grads(
            |tape, ps| {
                let a = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let y = tape.matmul(a, b);
                let t = tape.transpose(y);
                tape.mean_all(t)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_matmul_tb() {
        let mut rng = StuqRng::new(102);
        let params = vec![p2(&mut rng, &[3, 4]), p2(&mut rng, &[5, 4])];
        check_grads(
            |tape, ps| {
                let a = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let y = tape.matmul_tb(a, b);
                let sq = tape.square(y);
                tape.mean_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_activations() {
        let mut rng = StuqRng::new(103);
        let params = vec![p2(&mut rng, &[2, 5])];
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let s = tape.sigmoid(x);
                let t = tape.tanh(s);
                let l = tape.leaky_relu(t, 0.1);
                tape.mean_all(l)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_exp_ln_sqrt() {
        let mut rng = StuqRng::new(104);
        // Strictly positive inputs for ln/sqrt.
        let t = Tensor::rand_uniform(&[2, 4], 0.5, 2.0, &mut rng);
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let e = tape.exp(x);
                let l = tape.ln(e);
                let s = tape.sqrt(l);
                tape.mean_all(s)
            },
            &[t],
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_softmax_rows() {
        let mut rng = StuqRng::new(105);
        let params = vec![p2(&mut rng, &[3, 4])];
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let s = tape.softmax_rows(x);
                let sq = tape.square(s);
                tape.sum_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_concat_slice() {
        let mut rng = StuqRng::new(106);
        let params = vec![p2(&mut rng, &[3, 2]), p2(&mut rng, &[3, 3])];
        check_grads(
            |tape, ps| {
                let a = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let c = tape.concat_cols(a, b);
                let s = tape.slice_cols(c, 1, 4);
                let sq = tape.square(s);
                tape.mean_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_slice_rows() {
        let mut rng = StuqRng::new(112);
        let params = vec![p2(&mut rng, &[5, 3])];
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let s = tape.slice_rows(x, 1, 4);
                let sq = tape.square(s);
                tape.sum_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_strided_slice() {
        let mut rng = StuqRng::new(107);
        let params = vec![p2(&mut rng, &[2, 8])];
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let s = tape.slice_cols_strided(x, 1, 3, 3);
                let sq = tape.square(s);
                tape.sum_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_row_broadcast_bias() {
        let mut rng = StuqRng::new(108);
        let params = vec![p2(&mut rng, &[4, 3]), p2(&mut rng, &[1, 3])];
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let y = tape.add_row_broadcast(x, b);
                let sq = tape.square(y);
                tape.mean_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_rowwise_matmul() {
        let mut rng = StuqRng::new(109);
        let (n, ci, co) = (3, 2, 4);
        let params = vec![p2(&mut rng, &[n, ci]), p2(&mut rng, &[n, ci * co])];
        check_grads(
            |tape, ps| {
                let z = tape.param(0, ps[0].clone());
                let w = tape.param(1, ps[1].clone());
                let y = tape.rowwise_matmul(z, w, ci, co);
                let sq = tape.square(y);
                tape.mean_all(sq)
            },
            &params,
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_abs_max_elem() {
        let mut rng = StuqRng::new(110);
        // Shift away from 0 where |·| and max are non-differentiable.
        let a = Tensor::rand_uniform(&[3, 3], 0.2, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[3, 3], -1.0, -0.2, &mut rng);
        check_grads(
            |tape, ps| {
                let x = tape.param(0, ps[0].clone());
                let y = tape.param(1, ps[1].clone());
                let ax = tape.abs(y);
                let m = tape.max_elem(x, ax);
                tape.mean_all(m)
            },
            &[a, b],
            1e-3,
            2e-3,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_gaussian_nll_composition() {
        // The aleatoric loss of the paper (Eq. 9) built from primitives:
        // mean(logvar + (y-mu)^2 * exp(-logvar)).
        let mut rng = StuqRng::new(111);
        let mu = p2(&mut rng, &[2, 3]);
        let logvar = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let y = p2(&mut rng, &[2, 3]);
        check_grads(
            |tape, ps| {
                let mu = tape.param(0, ps[0].clone());
                let lv = tape.param(1, ps[1].clone());
                let y = tape.param(2, ps[2].clone());
                let diff = tape.sub(y, mu);
                let sq = tape.square(diff);
                let neg_lv = tape.neg(lv);
                let inv_var = tape.exp(neg_lv);
                let term = tape.mul(sq, inv_var);
                let total = tape.add(lv, term);
                tape.mean_all(total)
            },
            &[mu, logvar, y],
            1e-3,
            2e-3,
        )
        .unwrap();
    }
}
