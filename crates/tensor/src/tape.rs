//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records a topologically-ordered list of nodes; each node holds
//! its forward value and the operation (plus parent indices) that produced
//! it. [`Tape::backward`] seeds the scalar loss with gradient `1` and sweeps
//! the tape in reverse, accumulating gradients into a [`GradStore`] keyed by
//! parameter slot.
//!
//! The design trades generality for predictability: the op set is exactly
//! what the DeepSTUQ models need, each op has a hand-derived adjoint, and all
//! adjoints are validated against central finite differences in
//! `tests/gradcheck.rs`. Fused domain kernels (e.g. the NAPL row-wise matmul
//! of AGCRN, Eq. 5 of the paper) are first-class ops so that a GRU step stays
//! a handful of tape nodes instead of dozens.
//!
//! The reverse sweep has two interchangeable engines (DESIGN.md §9):
//! [`Tape::backward_serial`], the plain descending-id walk, and
//! [`Tape::backward_levels`], which extracts topological levels from the
//! reverse graph and dispatches each level's independent adjoints onto the
//! `stuq-parallel` pool. Both accumulate every gradient in the *same* fixed
//! order (children by descending id, inputs in declaration order, parameter
//! slots by descending node id), so their results are bit-identical for any
//! thread count; [`Tape::backward`] picks between them automatically.

use crate::rng::StuqRng;
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Index of a node on the tape.
pub type NodeId = usize;

/// A user-defined fused operation.
///
/// The forward value is computed by the caller and pushed with
/// [`Tape::custom`]; the tape only needs the adjoint.
pub trait CustomOp: std::fmt::Debug + Send + Sync {
    /// Human-readable kernel name (for debugging).
    fn name(&self) -> &'static str;
    /// Given `d loss / d output`, the inputs and the output value, returns
    /// `d loss / d input_i` for every input, in order.
    fn backward(&self, grad: &Tensor, inputs: &[&Tensor], output: &Tensor) -> Vec<Tensor>;
}

#[derive(Debug)]
pub(crate) enum OpKind {
    /// A value with no gradient (data, fixed adjacency, …).
    Constant,
    /// A learnable parameter; gradient is reported under this slot id.
    Param(usize),
    Add,
    Sub,
    Mul,
    /// Element-wise maximum; gradient follows the winning side (ties → lhs).
    MaxElem,
    Neg,
    Scale(f32),
    /// The offset is kept for Debug output; the adjoint is the identity.
    AddScalar(#[allow(dead_code)] f32),
    Matmul,
    /// `A @ B^T` without materialising the transpose.
    MatmulTB,
    Transpose,
    Sigmoid,
    Tanh,
    Relu,
    LeakyRelu(f32),
    Exp,
    Ln,
    Abs,
    Sqrt,
    /// Clamp with straight-through-zero gradient outside the range.
    Clamp(f32, f32),
    SoftmaxRows,
    ConcatCols,
    SliceCols(usize, usize),
    SliceRows(usize, usize),
    /// Strided column gather: columns `start, start+stride, …` (`count` of them).
    SliceColsStrided {
        start: usize,
        stride: usize,
        count: usize,
    },
    MeanAll,
    SumAll,
    /// `X (m×n) + b (1×n)` broadcast over rows.
    AddRowBroadcast,
    /// Per-row matmul: `z (N×ci)`, `w (N×ci·co)` → `out (N×co)` where each row
    /// of `w` is that node's private `ci×co` weight (NAPL, paper Eq. 5).
    RowwiseMatmul {
        c_in: usize,
        c_out: usize,
    },
    /// Inverted dropout; the mask (entries `0` or `1/(1-p)`) is stored.
    Dropout(Tensor),
    Custom(Box<dyn CustomOp>),
}

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) op: OpKind,
    pub(crate) parents: Vec<NodeId>,
}

/// Below this many tape nodes the level scheduler's bookkeeping costs more
/// than the fan-out buys; [`Tape::backward`] stays on the serial walk.
const PAR_BACKWARD_MIN_NODES: usize = 48;

/// Gradients produced by [`Tape::backward`], keyed by parameter slot.
#[derive(Debug, Default)]
pub struct GradStore {
    grads: HashMap<usize, Tensor>,
}

impl GradStore {
    /// Gradient for a parameter slot, if that parameter influenced the loss.
    pub fn get(&self, slot: usize) -> Option<&Tensor> {
        self.grads.get(&slot)
    }

    /// Iterates over `(slot, gradient)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Tensor)> {
        self.grads.iter().map(|(&k, v)| (k, v))
    }

    /// Number of parameters that received a gradient.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Adds `g` into a slot's gradient (or installs it if the slot is new).
    pub fn accumulate_slot(&mut self, slot: usize, g: Tensor) {
        match self.grads.get_mut(&slot) {
            Some(acc) => acc.add_assign(&g),
            None => {
                self.grads.insert(slot, g);
            }
        }
    }

    /// Merges another gradient store into this one (summing overlaps).
    pub fn merge(&mut self, other: GradStore) {
        for (slot, g) in other.grads {
            match self.grads.get_mut(&slot) {
                Some(acc) => acc.add_assign(&g),
                None => {
                    self.grads.insert(slot, g);
                }
            }
        }
    }

    /// Scales every gradient by `c` (used to average over mini-batches).
    pub fn scale(&mut self, c: f32) {
        for g in self.grads.values_mut() {
            g.map_inplace(|x| x * c);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn global_norm(&self) -> f64 {
        self.grads.values().map(|g| g.norm().powi(2)).sum::<f64>().sqrt()
    }

    /// Clips all gradients so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale((max_norm / norm) as f32);
        }
    }
}

/// A reverse-mode autodiff tape.
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    /// Incremental structural signature (see [`Tape::structural_sig`]).
    sig: u64,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64-bit offset basis / prime, folding whole `u64` words at a time.
const SIG_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const SIG_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn sig_fold(sig: &mut u64, word: u64) {
    *sig = (*sig ^ word).wrapping_mul(SIG_PRIME);
}

/// Folds the *adjoint-relevant* identity of an op into the signature: the op
/// discriminant plus every constant the backward pass reads. Data values
/// (tensor contents, dropout mask draws) are deliberately excluded — two
/// tapes that differ only in values share a replay plan.
fn sig_fold_op(sig: &mut u64, op: &OpKind) {
    match op {
        OpKind::Constant => sig_fold(sig, 1),
        OpKind::Param(slot) => {
            sig_fold(sig, 2);
            sig_fold(sig, *slot as u64);
        }
        OpKind::Add => sig_fold(sig, 3),
        OpKind::Sub => sig_fold(sig, 4),
        OpKind::Mul => sig_fold(sig, 5),
        OpKind::MaxElem => sig_fold(sig, 6),
        OpKind::Neg => sig_fold(sig, 7),
        OpKind::Scale(c) => {
            sig_fold(sig, 8);
            sig_fold(sig, u64::from(c.to_bits()));
        }
        // The offset never enters the adjoint (identity gradient).
        OpKind::AddScalar(_) => sig_fold(sig, 9),
        OpKind::Matmul => sig_fold(sig, 10),
        OpKind::MatmulTB => sig_fold(sig, 11),
        OpKind::Transpose => sig_fold(sig, 12),
        OpKind::Sigmoid => sig_fold(sig, 13),
        OpKind::Tanh => sig_fold(sig, 14),
        OpKind::Relu => sig_fold(sig, 15),
        OpKind::LeakyRelu(a) => {
            sig_fold(sig, 16);
            sig_fold(sig, u64::from(a.to_bits()));
        }
        OpKind::Exp => sig_fold(sig, 17),
        OpKind::Ln => sig_fold(sig, 18),
        OpKind::Abs => sig_fold(sig, 19),
        OpKind::Sqrt => sig_fold(sig, 20),
        OpKind::Clamp(lo, hi) => {
            sig_fold(sig, 21);
            sig_fold(sig, u64::from(lo.to_bits()));
            sig_fold(sig, u64::from(hi.to_bits()));
        }
        OpKind::SoftmaxRows => sig_fold(sig, 22),
        OpKind::ConcatCols => sig_fold(sig, 23),
        OpKind::SliceCols(from, to) => {
            sig_fold(sig, 24);
            sig_fold(sig, *from as u64);
            sig_fold(sig, *to as u64);
        }
        OpKind::SliceRows(from, to) => {
            sig_fold(sig, 25);
            sig_fold(sig, *from as u64);
            sig_fold(sig, *to as u64);
        }
        OpKind::SliceColsStrided { start, stride, count } => {
            sig_fold(sig, 26);
            sig_fold(sig, *start as u64);
            sig_fold(sig, *stride as u64);
            sig_fold(sig, *count as u64);
        }
        OpKind::MeanAll => sig_fold(sig, 27),
        OpKind::SumAll => sig_fold(sig, 28),
        OpKind::AddRowBroadcast => sig_fold(sig, 29),
        OpKind::RowwiseMatmul { c_in, c_out } => {
            sig_fold(sig, 30);
            sig_fold(sig, *c_in as u64);
            sig_fold(sig, *c_out as u64);
        }
        // The mask's *values* are data; its shape is folded with the node
        // shape below. Mask-value differences across batches are exactly
        // what plan reuse must tolerate.
        OpKind::Dropout(_) => sig_fold(sig, 31),
        OpKind::Custom(op) => {
            sig_fold(sig, 32);
            for b in op.name().bytes() {
                sig_fold(sig, u64::from(b));
            }
        }
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(256), sig: SIG_BASIS }
    }

    /// Structural signature of the recorded graph: a 64-bit hash over every
    /// node's op discriminant, adjoint-relevant constants, parent ids and
    /// value shape — maintained incrementally by [`Tape::push`]. Two tapes
    /// with equal signatures (and equal lengths) describe the same backward
    /// *schedule*, even when their data differ; the replay cache
    /// (DESIGN.md §14) keys compiled plans on it.
    pub fn structural_sig(&self) -> u64 {
        self.sig
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    fn push(&mut self, value: Tensor, op: OpKind, parents: Vec<NodeId>) -> NodeId {
        sig_fold_op(&mut self.sig, &op);
        sig_fold(&mut self.sig, parents.len() as u64);
        for &p in &parents {
            sig_fold(&mut self.sig, p as u64);
        }
        sig_fold(&mut self.sig, value.shape().len() as u64);
        for &d in value.shape() {
            sig_fold(&mut self.sig, d as u64);
        }
        self.nodes.push(Node { value, op, parents });
        self.nodes.len() - 1
    }

    /// Registers a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.push(value, OpKind::Constant, vec![])
    }

    /// Registers a parameter leaf; its gradient is reported under `slot`.
    pub fn param(&mut self, slot: usize, value: Tensor) -> NodeId {
        self.push(value, OpKind::Param(slot), vec![])
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        self.push(v, OpKind::Add, vec![a, b])
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.sub(&self.nodes[b].value);
        self.push(v, OpKind::Sub, vec![a, b])
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.mul(&self.nodes[b].value);
        self.push(v, OpKind::Mul, vec![a, b])
    }

    /// Element-wise maximum.
    pub fn max_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.zip(&self.nodes[b].value, f32::max);
        self.push(v, OpKind::MaxElem, vec![a, b])
    }

    /// Negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.scale(-1.0);
        self.push(v, OpKind::Neg, vec![a])
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.nodes[a].value.scale(c);
        self.push(v, OpKind::Scale(c), vec![a])
    }

    /// Addition of a constant scalar.
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| x + c);
        self.push(v, OpKind::AddScalar(c), vec![a])
    }

    /// `1 - a`, a common idiom in gate updates (paper Eq. 6d).
    pub fn one_minus(&mut self, a: NodeId) -> NodeId {
        let n = self.neg(a);
        self.add_scalar(n, 1.0)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(v, OpKind::Matmul, vec![a, b])
    }

    /// Matrix product with the second operand transposed.
    pub fn matmul_tb(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul_tb(&self.nodes[b].value);
        self.push(v, OpKind::MatmulTB, vec![a, b])
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.transpose();
        self.push(v, OpKind::Transpose, vec![a])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = if crate::kernels::reference_mode() {
            self.nodes[a].value.map(|x| 1.0 / (1.0 + (-x).exp()))
        } else {
            self.nodes[a].value.map(crate::fastmath::sigmoid_f32)
        };
        self.push(v, OpKind::Sigmoid, vec![a])
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = if crate::kernels::reference_mode() {
            self.nodes[a].value.map(f32::tanh)
        } else {
            self.nodes[a].value.map(crate::fastmath::tanh_f32)
        };
        self.push(v, OpKind::Tanh, vec![a])
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(v, OpKind::Relu, vec![a])
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: NodeId, alpha: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(v, OpKind::LeakyRelu(alpha), vec![a])
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::exp);
        self.push(v, OpKind::Exp, vec![a])
    }

    /// Element-wise natural logarithm.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::ln);
        self.push(v, OpKind::Ln, vec![a])
    }

    /// Element-wise absolute value.
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::abs);
        self.push(v, OpKind::Abs, vec![a])
    }

    /// Element-wise square root.
    pub fn sqrt(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::sqrt);
        self.push(v, OpKind::Sqrt, vec![a])
    }

    /// Element-wise square.
    pub fn square(&mut self, a: NodeId) -> NodeId {
        self.mul(a, a)
    }

    /// Clamp to `[lo, hi]` (gradient is zero outside the range).
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.clamp(lo, hi));
        self.push(v, OpKind::Clamp(lo, hi), vec![a])
    }

    /// Row-wise soft-max.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.softmax_rows();
        self.push(v, OpKind::SoftmaxRows, vec![a])
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.concat_cols(&self.nodes[b].value);
        self.push(v, OpKind::ConcatCols, vec![a, b])
    }

    /// Column slice `[from, to)`.
    pub fn slice_cols(&mut self, a: NodeId, from: usize, to: usize) -> NodeId {
        let v = self.nodes[a].value.slice_cols(from, to);
        self.push(v, OpKind::SliceCols(from, to), vec![a])
    }

    /// Row slice `[from, to)`.
    pub fn slice_rows(&mut self, a: NodeId, from: usize, to: usize) -> NodeId {
        let v = self.nodes[a].value.slice_rows(from, to);
        self.push(v, OpKind::SliceRows(from, to), vec![a])
    }

    /// Strided column gather (`count` columns starting at `start`, step `stride`).
    pub fn slice_cols_strided(
        &mut self,
        a: NodeId,
        start: usize,
        stride: usize,
        count: usize,
    ) -> NodeId {
        let src = &self.nodes[a].value;
        let (m, n) = (src.rows(), src.cols());
        assert!(stride > 0, "stride must be positive");
        assert!(
            count == 0 || start + (count - 1) * stride < n,
            "strided slice out of bounds: start {start}, stride {stride}, count {count}, cols {n}"
        );
        let mut out = Tensor::zeros(&[m, count]);
        for i in 0..m {
            for j in 0..count {
                out.set(i, j, src.get(i, start + j * stride));
            }
        }
        self.push(out, OpKind::SliceColsStrided { start, stride, count }, vec![a])
    }

    /// Mean over all elements (a `1×1` node).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a].value.mean() as f32);
        self.push(v, OpKind::MeanAll, vec![a])
    }

    /// Sum over all elements (a `1×1` node).
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a].value.sum() as f32);
        self.push(v, OpKind::SumAll, vec![a])
    }

    /// Adds a `1×n` bias row to every row of an `m×n` matrix.
    pub fn add_row_broadcast(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xv = &self.nodes[x].value;
        let bv = &self.nodes[bias].value;
        assert_eq!(bv.rows(), 1, "bias must be a 1×n row");
        assert_eq!(xv.cols(), bv.cols(), "bias width mismatch");
        let (m, n) = (xv.rows(), xv.cols());
        let mut out = xv.clone();
        for i in 0..m {
            for j in 0..n {
                let v = out.get(i, j) + bv.get(0, j);
                out.set(i, j, v);
            }
        }
        self.push(out, OpKind::AddRowBroadcast, vec![x, bias])
    }

    /// NAPL row-wise matmul (paper Eq. 5): row `n` of the output is
    /// `z[n, :] @ W_n` where `W_n` is `w[n, :]` reshaped to `c_in × c_out`.
    pub fn rowwise_matmul(&mut self, z: NodeId, w: NodeId, c_in: usize, c_out: usize) -> NodeId {
        let zv = &self.nodes[z].value;
        let wv = &self.nodes[w].value;
        let n = zv.rows();
        assert_eq!(zv.cols(), c_in, "rowwise_matmul: z cols != c_in");
        assert_eq!(wv.rows(), n, "rowwise_matmul: row count mismatch");
        assert_eq!(wv.cols(), c_in * c_out, "rowwise_matmul: w cols != c_in*c_out");
        let data = crate::kernels::rowwise_matmul(zv.data(), wv.data(), n, c_in, c_out);
        let out = Tensor::from_vec(data, &[n, c_out]);
        self.push(out, OpKind::RowwiseMatmul { c_in, c_out }, vec![z, w])
    }

    /// Inverted dropout with keep-probability `1 - p`.
    ///
    /// With `p == 0` this is the identity. At Monte-Carlo inference time the
    /// same entry point is used — MC dropout (paper §IV-C2) is precisely
    /// "dropout left on at test time".
    pub fn dropout(&mut self, a: NodeId, p: f32, rng: &mut StuqRng) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        if p == 0.0 {
            return self.scale(a, 1.0);
        }
        let keep = 1.0 - p;
        let shape = self.nodes[a].value.shape().to_vec();
        let numel: usize = shape.iter().product();
        let mask_data: Vec<f32> =
            (0..numel).map(|_| if rng.bernoulli(keep as f64) { 1.0 / keep } else { 0.0 }).collect();
        let mask = Tensor::from_vec(mask_data, &shape);
        let v = self.nodes[a].value.mul(&mask);
        self.push(v, OpKind::Dropout(mask), vec![a])
    }

    /// Pushes a fused [`CustomOp`] whose forward value was computed by the caller.
    pub fn custom(&mut self, op: Box<dyn CustomOp>, parents: Vec<NodeId>, value: Tensor) -> NodeId {
        self.push(value, OpKind::Custom(op), parents)
    }

    /// Runs the reverse sweep from the scalar node `loss`.
    ///
    /// Dispatch (DESIGN.md §14): tapes large enough to amortise scheduling
    /// go through the thread-local replay cache — a compiled
    /// [`crate::replay::ReplayPlan`] keyed on [`Tape::structural_sig`], so
    /// the static schedule is derived once per graph shape and replayed with
    /// preallocated buffers on every later batch. With replay disabled
    /// (`STUQ_REPLAY=0` or [`crate::replay::with_replay_disabled`]) the
    /// pre-replay dispatch applies: [`Tape::backward_levels`] on a
    /// multi-thread pool, [`Tape::backward_serial`] otherwise. Inside
    /// [`crate::kernels::with_reference_kernels`] the seed's serial walk
    /// always runs, so benchmark baselines time the genuine pre-engine code
    /// path. Every engine is bit-identical to [`Tape::backward_serial`], so
    /// the choice never changes a result.
    ///
    /// Panics if `loss` is not a `1×1` tensor.
    pub fn backward(&self, loss: NodeId) -> GradStore {
        if stuq_obs::summary_enabled() {
            stuq_obs::metrics().backward_runs.inc();
        }
        if crate::kernels::reference_mode() || loss + 1 < PAR_BACKWARD_MIN_NODES {
            return self.backward_serial(loss);
        }
        if crate::replay::replay_enabled() {
            if let Some(store) = crate::replay::cached_backward(self, loss) {
                return store;
            }
        }
        if stuq_parallel::num_threads() == 1 || stuq_parallel::serial_forced() {
            self.backward_serial(loss)
        } else {
            self.backward_levels(loss)
        }
    }

    /// The seed's reverse sweep: one descending-id pass, accumulating each
    /// node's gradient in place as its consumers are visited.
    ///
    /// Panics if `loss` is not a `1×1` tensor.
    pub fn backward_serial(&self, loss: NodeId) -> GradStore {
        assert_eq!(self.nodes[loss].value.len(), 1, "backward() needs a scalar loss node");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss] = Some(Tensor::scalar(1.0));

        let mut store = GradStore::default();
        for id in (0..=loss).rev() {
            let Some(grad) = grads[id].take() else { continue };
            let node = &self.nodes[id];
            match &node.op {
                OpKind::Constant => {}
                OpKind::Param(slot) => store.accumulate_slot(*slot, grad),
                _ => {
                    for (pid, delta) in node.parents.iter().zip(self.node_adjoints(id, &grad)) {
                        Self::accumulate(&mut grads, *pid, delta);
                    }
                }
            }
        }
        store
    }

    /// Branch-parallel reverse sweep: walks the reverse graph in topological
    /// levels and fans each level's independent adjoints out onto the
    /// `stuq-parallel` pool.
    ///
    /// Level extraction: `level(loss) = 0` and `level(n)` is the longest
    /// reverse-path distance from the loss, so no node shares a level with
    /// any of its consumers — by the time a level runs, every consumer's
    /// delta is final. Each node's task (a) assembles its upstream gradient
    /// by summing the per-edge deltas of its consumers in the *serial walk's
    /// order* (descending consumer id, inputs in declaration order) and (b)
    /// computes its own parent deltas into private slots. Parameter
    /// gradients are reduced into the [`GradStore`] afterwards in descending
    /// node-id order per slot — again the serial order. Every float is
    /// therefore added in exactly the sequence the serial walk uses, which
    /// makes the result bit-identical to [`Tape::backward_serial`] for any
    /// thread count (property-tested in `tests/backward_determinism.rs`).
    ///
    /// Panics if `loss` is not a `1×1` tensor.
    #[allow(clippy::too_many_lines)]
    pub fn backward_levels(&self, loss: NodeId) -> GradStore {
        assert_eq!(self.nodes[loss].value.len(), 1, "backward() needs a scalar loss node");
        const UNREACHED: usize = usize::MAX;
        let n = loss + 1;

        // Longest-path levels over the reverse graph. Consumers have higher
        // ids than their inputs, so one descending pass finalises each
        // node's level before its inputs are bumped.
        let mut level = vec![UNREACHED; n];
        level[loss] = 0;
        let mut n_levels = 0usize;
        for id in (0..=loss).rev() {
            if level[id] == UNREACHED {
                continue;
            }
            n_levels = n_levels.max(level[id] + 1);
            let l1 = level[id] + 1;
            for &p in &self.nodes[id].parents {
                level[p] = if level[p] == UNREACHED { l1 } else { level[p].max(l1) };
            }
        }

        // One delta slot per (op node, input) edge, in a flat arena so tasks
        // can address disjoint slots through a single base pointer.
        let mut edge_off = vec![0usize; n + 1];
        for id in 0..=loss {
            let slots = match self.nodes[id].op {
                OpKind::Constant | OpKind::Param(_) => 0,
                _ if level[id] == UNREACHED => 0,
                _ => self.nodes[id].parents.len(),
            };
            edge_off[id + 1] = edge_off[id] + slots;
        }
        let mut edge_deltas: Vec<Option<Tensor>> = (0..edge_off[n]).map(|_| None).collect();

        // Consumer edges per node, recorded in the serial accumulation
        // order: descending consumer id, then input declaration order.
        let mut consumers: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
        for id in (0..=loss).rev() {
            if edge_off[id + 1] > edge_off[id] {
                for (k, &p) in self.nodes[id].parents.iter().enumerate() {
                    consumers[p].push((id, k));
                }
            }
        }

        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); n_levels];
        for id in 0..=loss {
            if level[id] != UNREACHED && !matches!(self.nodes[id].op, OpKind::Constant) {
                buckets[level[id]].push(id);
            }
        }

        if stuq_obs::summary_enabled() {
            let m = stuq_obs::metrics();
            m.backward_levels.add(n_levels as u64);
            m.backward_nodes.add(buckets.iter().map(|b| b.len() as u64).sum());
            m.backward_edge_slots.add(edge_off[n] as u64);
        }

        let mut param_grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let eptr = stuq_parallel::SendPtr::new(edge_deltas.as_mut_ptr());
        let pptr = stuq_parallel::SendPtr::new(param_grads.as_mut_ptr());
        for bucket in &buckets {
            // Single-node levels run inline inside the pool's fast path;
            // wider levels are where the branch parallelism lives.
            stuq_parallel::par_for(bucket.len(), |bi| {
                let id = bucket[bi];
                let grad = if id == loss {
                    Tensor::scalar(1.0)
                } else {
                    let mut acc: Option<Tensor> = None;
                    for &(c, k) in &consumers[id] {
                        // SAFETY: slot (c, k) was written when consumer `c`
                        // ran in an earlier level, and `id` is the only node
                        // that reads it (it is input `k` of `c`).
                        let slot = unsafe { &mut *eptr.get().add(edge_off[c] + k) };
                        let delta = slot.take().expect("consumer delta missing");
                        match &mut acc {
                            Some(g) => g.add_assign(&delta),
                            empty @ None => *empty = Some(delta),
                        }
                    }
                    acc.expect("reachable node received no deltas")
                };
                match &self.nodes[id].op {
                    OpKind::Constant => unreachable!("constants are never scheduled"),
                    OpKind::Param(_) => {
                        // SAFETY: each node id is processed by exactly one task.
                        unsafe { *pptr.get().add(id) = Some(grad) };
                    }
                    _ => {
                        for (k, delta) in self.node_adjoints(id, &grad).into_iter().enumerate() {
                            // SAFETY: this node's slots are written only here.
                            unsafe { *eptr.get().add(edge_off[id] + k) = Some(delta) };
                        }
                    }
                }
            });
        }

        // Slot-ordered reduction: per parameter slot, contributions combine
        // in descending node-id order — the serial walk's order exactly.
        let mut store = GradStore::default();
        for id in (0..=loss).rev() {
            if let Some(g) = param_grads[id].take() {
                let OpKind::Param(slot) = self.nodes[id].op else {
                    unreachable!("only Param nodes store gradients")
                };
                store.accumulate_slot(slot, g);
            }
        }
        store
    }

    fn accumulate(grads: &mut [Option<Tensor>], id: NodeId, delta: Tensor) {
        match &mut grads[id] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Computes `d loss / d input_k` for every input of node `id`, in input
    /// declaration order, given the node's fully-accumulated upstream
    /// gradient. Pure with respect to the tape — all three backward engines
    /// (serial, levels, replay) call this, which is what keeps them
    /// numerically interchangeable.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn node_adjoints(&self, id: NodeId, grad: &Tensor) -> Vec<Tensor> {
        let node = &self.nodes[id];
        let p = &node.parents;
        let val = |nid: NodeId| &self.nodes[nid].value;
        match &node.op {
            OpKind::Constant | OpKind::Param(_) => unreachable!("handled by caller"),
            OpKind::Add => vec![grad.clone(), grad.clone()],
            OpKind::Sub => vec![grad.clone(), grad.scale(-1.0)],
            OpKind::Mul => vec![grad.mul(val(p[1])), grad.mul(val(p[0]))],
            OpKind::MaxElem => {
                let a = val(p[0]);
                let b = val(p[1]);
                let ga = grad.zip(&a.zip(b, |x, y| if x >= y { 1.0 } else { 0.0 }), |g, m| g * m);
                let gb = grad.zip(&a.zip(b, |x, y| if x >= y { 0.0 } else { 1.0 }), |g, m| g * m);
                vec![ga, gb]
            }
            OpKind::Neg => vec![grad.scale(-1.0)],
            OpKind::Scale(c) => vec![grad.scale(*c)],
            OpKind::AddScalar(_) => vec![grad.clone()],
            OpKind::Matmul => {
                // y = a b  ⇒  da = g bᵀ, db = aᵀ g
                vec![grad.matmul_tb(val(p[1])), val(p[0]).matmul_ta(grad)]
            }
            OpKind::MatmulTB => {
                // y = a bᵀ  ⇒  da = g b, db = gᵀ a
                vec![grad.matmul(val(p[1])), grad.matmul_ta(val(p[0]))]
            }
            OpKind::Transpose => vec![grad.transpose()],
            OpKind::Sigmoid => {
                let y = &node.value;
                vec![grad.zip(y, |g, s| g * s * (1.0 - s))]
            }
            OpKind::Tanh => {
                let y = &node.value;
                vec![grad.zip(y, |g, t| g * (1.0 - t * t))]
            }
            OpKind::Relu => {
                let x = val(p[0]);
                vec![grad.zip(x, |g, xv| if xv > 0.0 { g } else { 0.0 })]
            }
            OpKind::LeakyRelu(alpha) => {
                let x = val(p[0]);
                let a = *alpha;
                vec![grad.zip(x, |g, xv| if xv > 0.0 { g } else { a * g })]
            }
            OpKind::Exp => vec![grad.mul(&node.value)],
            OpKind::Ln => {
                let x = val(p[0]);
                vec![grad.zip(x, |g, xv| g / xv)]
            }
            OpKind::Abs => {
                let x = val(p[0]);
                vec![grad.zip(x, |g, xv| if xv >= 0.0 { g } else { -g })]
            }
            OpKind::Sqrt => {
                let y = &node.value;
                vec![grad.zip(y, |g, s| g * 0.5 / s.max(1e-12))]
            }
            OpKind::Clamp(lo, hi) => {
                let x = val(p[0]);
                let (lo, hi) = (*lo, *hi);
                vec![grad.zip(x, |g, xv| if xv > lo && xv < hi { g } else { 0.0 })]
            }
            OpKind::SoftmaxRows => {
                let y = &node.value;
                let (m, n) = (y.rows(), y.cols());
                let mut dx = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    let mut dot = 0.0f32;
                    for j in 0..n {
                        dot += grad.get(i, j) * y.get(i, j);
                    }
                    for j in 0..n {
                        dx.set(i, j, y.get(i, j) * (grad.get(i, j) - dot));
                    }
                }
                vec![dx]
            }
            OpKind::ConcatCols => {
                let ca = val(p[0]).cols();
                let cb = val(p[1]).cols();
                vec![grad.slice_cols(0, ca), grad.slice_cols(ca, ca + cb)]
            }
            OpKind::SliceCols(from, to) => {
                let src = val(p[0]);
                let (m, n) = (src.rows(), src.cols());
                let mut dx = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    for (jj, j) in (*from..*to).enumerate() {
                        dx.set(i, j, grad.get(i, jj));
                    }
                }
                vec![dx]
            }
            OpKind::SliceRows(from, to) => {
                let src = val(p[0]);
                let (m, n) = (src.rows(), src.cols());
                let mut dx = Tensor::zeros(&[m, n]);
                for (ii, i) in (*from..*to).enumerate() {
                    for j in 0..n {
                        dx.set(i, j, grad.get(ii, j));
                    }
                }
                vec![dx]
            }
            OpKind::SliceColsStrided { start, stride, count } => {
                let src = val(p[0]);
                let (m, n) = (src.rows(), src.cols());
                let mut dx = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    for j in 0..*count {
                        dx.set(i, start + j * stride, grad.get(i, j));
                    }
                }
                vec![dx]
            }
            OpKind::MeanAll => {
                let src = val(p[0]);
                let g = grad.get(0, 0) / src.len() as f32;
                vec![Tensor::full(src.shape(), g)]
            }
            OpKind::SumAll => {
                let src = val(p[0]);
                vec![Tensor::full(src.shape(), grad.get(0, 0))]
            }
            OpKind::AddRowBroadcast => vec![grad.clone(), grad.sum_rows()],
            OpKind::RowwiseMatmul { c_in, c_out } => {
                let z = val(p[0]);
                let w = val(p[1]);
                let n = z.rows();
                let (ci, co) = (*c_in, *c_out);
                let (dz, dw) =
                    crate::kernels::rowwise_matmul_grad(z.data(), w.data(), grad.data(), n, ci, co);
                vec![Tensor::from_vec(dz, &[n, ci]), Tensor::from_vec(dw, &[n, ci * co])]
            }
            OpKind::Dropout(mask) => vec![grad.mul(mask)],
            OpKind::Custom(op) => {
                let inputs: Vec<&Tensor> = p.iter().map(|&pid| val(pid)).collect();
                let deltas = op.backward(grad, &inputs, &node.value);
                assert_eq!(
                    deltas.len(),
                    p.len(),
                    "custom op {} returned {} grads for {} inputs",
                    op.name(),
                    deltas.len(),
                    p.len()
                );
                deltas
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_gradient() {
        // loss = mean(3 * x) over 4 elements ⇒ d/dx = 3/4 each.
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::ones(&[2, 2]));
        let s = tape.scale(x, 3.0);
        let loss = tape.mean_all(s);
        let grads = tape.backward(loss);
        let g = grads.get(0).unwrap();
        for &v in g.data() {
            assert!((v - 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn param_used_twice_accumulates() {
        // loss = sum(x + x) ⇒ d/dx = 2.
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::ones(&[1, 3]));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        for &v in grads.get(0).unwrap().data() {
            assert!((v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_receives_no_grad() {
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::ones(&[1, 1]));
        let x = tape.param(0, Tensor::ones(&[1, 1]));
        let y = tape.mul(c, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.len(), 1);
        assert!(grads.get(0).is_some());
    }

    #[test]
    fn matmul_grad_matches_formula() {
        // loss = sum(A B); dA = 1 Bᵀ, dB = Aᵀ 1.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let mut tape = Tape::new();
        let ai = tape.param(0, a.clone());
        let bi = tape.param(1, b.clone());
        let y = tape.matmul(ai, bi);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let ones = Tensor::ones(&[2, 2]);
        let da = ones.matmul_tb(&b);
        let db = a.transpose().matmul(&ones);
        assert_eq!(grads.get(0).unwrap().data(), da.data());
        assert_eq!(grads.get(1).unwrap().data(), db.data());
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = StuqRng::new(3);
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let d = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(tape.value(d).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut rng = StuqRng::new(11);
        let n = 20_000;
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, n]));
        let d = tape.dropout(x, 0.3, &mut rng);
        let mean = tape.value(d).mean();
        assert!((mean - 1.0).abs() < 0.02, "inverted dropout mean {mean}");
    }

    #[test]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::ones(&[2, 2]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(x);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn grad_clip_bounds_global_norm() {
        let mut store = GradStore::default();
        store.grads.insert(0, Tensor::full(&[2, 2], 10.0));
        store.grads.insert(1, Tensor::full(&[2, 2], -10.0));
        store.clip_global_norm(1.0);
        assert!((store.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rowwise_matmul_forward() {
        // Two nodes, c_in=2, c_out=1: out[r] = z[r,0]*w[r,0] + z[r,1]*w[r,1].
        let mut tape = Tape::new();
        let z = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let w = tape.constant(Tensor::from_vec(vec![10.0, 1.0, 0.5, 2.0], &[2, 2]));
        let y = tape.rowwise_matmul(z, w, 2, 1);
        assert_eq!(tape.value(y).data(), &[12.0, 9.5]);
    }

    #[test]
    fn strided_slice_gathers_expected_columns() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 6]));
        let y = tape.slice_cols_strided(x, 1, 2, 3);
        assert_eq!(tape.value(y).data(), &[1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
    }
}
