//! Vectorizable elementwise transcendentals.
//!
//! `f32::tanh` and friends go through libm — one scalar call per element,
//! opaque to the autovectorizer. The gate activations of the recurrent
//! encoder apply tanh/sigmoid to every element of every gate at every step,
//! which makes those calls a measurable slice of inference wall-clock (see
//! BENCH_PR1.json). The rational approximations here inline into straight
//! FMA/divide sequences the compiler vectorizes like any other map kernel.
//!
//! Accuracy: `tanh_f32` is the classic degree-13/6 minimax rational on the
//! saturation range (the same approximation family used by mainstream linear
//! algebra libraries), accurate to a few f32 ulps; `sigmoid_f32` derives
//! from it via `σ(x) = (1 + tanh(x/2)) / 2`. Tests bound the error against
//! libm at 1e-6 absolute.

// The coefficients below keep the published minimax-fit digits even where
// they exceed f32 precision; they round to the intended values.
#![allow(clippy::excessive_precision)]

/// Fast `tanh`, accurate to a few ulps of `f32` everywhere.
#[inline]
pub fn tanh_f32(x: f32) -> f32 {
    // tanh saturates to ±1 (in f32) past this point; clamping first also
    // keeps the polynomial in its fitted range.
    const CLAMP: f32 = 7.905_311_5;
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297_1e-8;
    const A9: f32 = -8.604_671_7e-11;
    const A11: f32 = 2.000_187_9e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525_2e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347_1e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = x2.mul_add(A13, A11);
    p = x2.mul_add(p, A9);
    p = x2.mul_add(p, A7);
    p = x2.mul_add(p, A5);
    p = x2.mul_add(p, A3);
    p = x2.mul_add(p, A1);
    let p = x * p;
    let mut q = x2.mul_add(B6, B4);
    q = x2.mul_add(q, B2);
    q = x2.mul_add(q, B0);
    p / q
}

/// Fast logistic sigmoid via `σ(x) = (1 + tanh(x/2)) / 2`.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    0.5 * (1.0 + tanh_f32(0.5 * x))
}

/// Fast `exp`, Cephes-style: split `x = m·ln2 + r`, evaluate a degree-6
/// polynomial for `exp(r)` on `[-ln2/2, ln2/2]`, then scale by `2^m` through
/// the exponent bits. Accurate to a few f32 ulps over the clamped range.
#[inline]
pub fn exp_f32(x: f32) -> f32 {
    // exp underflows to 0 / overflows to inf just past these; clamping keeps
    // the biased exponent `m + 127` inside [1, 254].
    const LO: f32 = -87.0;
    const HI: f32 = 88.0;
    const C1: f32 = 0.693_359_375; // ln2 split high…
    const C2: f32 = -2.121_944_4e-4; // …and low part, for an exact reduction
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 5.000_000_1e-1;
    let c = x.clamp(LO, HI);
    let m = c.mul_add(std::f32::consts::LOG2_E, 0.5).floor();
    let r = m.mul_add(-C1, c);
    let r = m.mul_add(-C2, r);
    let mut p = r.mul_add(P0, P1);
    p = r.mul_add(p, P2);
    p = r.mul_add(p, P3);
    p = r.mul_add(p, P4);
    p = r.mul_add(p, P5);
    let y = p.mul_add(r * r, r) + 1.0;
    // `m as i32` saturates NaN to 0, so NaN inputs still propagate via `y`.
    let scale = f32::from_bits((((m as i32) + 127) as u32) << 23);
    y * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        for i in -100_000..=100_000 {
            let x = i as f32 * 1e-4; // [-10, 10]
            let err = (tanh_f32(x) - x.tanh()).abs();
            worst = worst.max(err);
        }
        assert!(worst < 1e-6, "worst tanh error {worst}");
    }

    #[test]
    fn sigmoid_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        for i in -100_000..=100_000 {
            let x = i as f32 * 2e-4; // [-20, 20]
            let exact = 1.0 / (1.0 + (-x).exp());
            worst = worst.max((sigmoid_f32(x) - exact).abs());
        }
        assert!(worst < 1e-6, "worst sigmoid error {worst}");
    }

    #[test]
    fn saturation_and_symmetry() {
        // At the clamp point the rational evaluates to 1 - O(1e-7), not an
        // exact 1.0 — the guarantee is "within 1e-6 of libm", not bit-equality.
        assert!((tanh_f32(40.0) - 1.0).abs() < 1e-6);
        assert!((tanh_f32(-40.0) + 1.0).abs() < 1e-6);
        assert_eq!(tanh_f32(0.0), 0.0);
        for x in [0.1f32, 0.9, 3.7] {
            assert_eq!(tanh_f32(-x), -tanh_f32(x));
        }
        assert!((sigmoid_f32(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid_f32(50.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid_f32(-50.0).abs() < 1e-6);
        assert!(sigmoid_f32(-50.0) >= 0.0);
    }

    #[test]
    fn exp_matches_libm_within_1e6_relative() {
        let mut worst = 0.0f32;
        for i in -80_000..=80_000 {
            let x = i as f32 * 1e-3; // [-80, 80]
            let exact = x.exp();
            let rel = ((exp_f32(x) - exact) / exact.max(f32::MIN_POSITIVE)).abs();
            worst = worst.max(rel);
        }
        assert!(worst < 1e-6, "worst exp relative error {worst}");
        assert_eq!(exp_f32(0.0), 1.0);
        assert!(exp_f32(-200.0) < 1e-37); // clamped to exp(-87)
        assert!(exp_f32(200.0) > 1e37);
    }

    #[test]
    fn nan_propagates() {
        assert!(tanh_f32(f32::NAN).is_nan());
        assert!(exp_f32(f32::NAN).is_nan());
    }
}
