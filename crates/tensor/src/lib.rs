//! Dense f32 tensor algebra and reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate of the DeepSTUQ reproduction. It
//! provides:
//!
//! * [`Tensor`] — a row-major, heap-allocated `f32` tensor with the linear
//!   algebra needed by graph recurrent networks (mat-mul, transposition,
//!   element-wise maps, row soft-max, …);
//! * [`StuqRng`] — a small, fully deterministic `xoshiro256**` generator with
//!   Box–Muller normal sampling, so that every experiment in the repository is
//!   bit-reproducible from a single seed;
//! * [`Tape`] — a reverse-mode autodiff tape recording a computation graph of
//!   tensor ops and computing gradients with respect to registered parameters.
//!
//! The tape is deliberately minimal: it supports exactly the operations the
//! paper's models need (GRU gates, adaptive graph convolutions, Gaussian
//! negative log-likelihood losses) plus a [`CustomOp`] escape hatch for fused
//! kernels. Gradients of every op are validated against central finite
//! differences in the `gradcheck` tests.
//!
//! # Example
//!
//! ```
//! use stuq_tensor::{Tape, Tensor};
//!
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let w = Tensor::from_vec(vec![0.5, -0.5, 1.0, 1.5], &[2, 2]);
//!
//! let mut tape = Tape::new();
//! let xi = tape.constant(x);
//! let wi = tape.param(0, w);
//! let h = tape.matmul(xi, wi);
//! let y = tape.sigmoid(h);
//! let loss = tape.mean_all(y);
//! let grads = tape.backward(loss);
//! assert!(grads.get(0).is_some());
//! ```

pub mod fastmath;
pub mod gradcheck;
pub mod kernels;
pub mod replay;
pub mod rng;
pub mod tape;
pub mod tensor;

pub use replay::{replay_enabled, replay_stats, with_replay_disabled, ReplayPlan};
pub use rng::{RngState, StuqRng};
pub use tape::{CustomOp, GradStore, NodeId, Tape};
pub use tensor::Tensor;
