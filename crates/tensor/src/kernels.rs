//! Blocked, autovectorizable compute kernels with deterministic parallel
//! dispatch.
//!
//! Every kernel here obeys the workspace determinism contract (DESIGN.md
//! "Threading & determinism"): the floating-point evaluation order of each
//! output element is fixed by the *kernel structure* — k-panels of four,
//! eight-lane dot accumulators, fixed-size reduction blocks — and never by
//! the thread count. Parallel dispatch only distributes disjoint output row
//! ranges (or fixed reduction blocks) across the pool, so a result is
//! bit-identical whether it was computed by one thread or many.
//!
//! Sizing: small operands stay serial (`PAR_FLOPS_MIN`, `PAR_ELEMS_MIN`)
//! because fan-out costs more than the work saved below those points.

use std::cell::Cell;

use stuq_parallel::{par_map, par_ranges, SendPtr};

thread_local! {
    static REFERENCE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Routes the matmul-family kernels on the *current thread* through the
/// seed's scalar reference implementations — and the tape's tanh/sigmoid
/// activations back to libm — for the duration of `f`.
///
/// This is a benchmark hook: `stuq-bench` uses it (combined with
/// [`stuq_parallel::with_serial`]) to time a seed-equivalent baseline for
/// whole-model inference in-process, so BENCH_PR1.json reports speedups
/// against the actual pre-engine code path rather than a synthetic stand-in.
pub fn with_reference_kernels<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            REFERENCE_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    REFERENCE_DEPTH.with(|d| d.set(d.get() + 1));
    let _g = Guard;
    f()
}

pub(crate) fn reference_mode() -> bool {
    REFERENCE_DEPTH.with(|d| d.get()) > 0
}

/// Minimum `m·k·n` before a matmul fans out to the pool.
pub const PAR_FLOPS_MIN: usize = 1 << 18;
/// Minimum element count before an elementwise op fans out.
pub const PAR_ELEMS_MIN: usize = 1 << 16;
/// Output rows per parallel matmul chunk (fixed: never thread-dependent).
pub const ROW_CHUNK: usize = 16;
/// Elements per parallel elementwise chunk.
pub const ELEM_CHUNK: usize = 1 << 14;
/// Elements per reduction block; partial sums are combined in block order.
pub const SUM_BLOCK: usize = 1 << 12;
/// Square tile edge for the cache-blocked transpose.
pub const TRANSPOSE_TILE: usize = 32;

/// Columns per register tile: the accumulators for a 4-row group are
/// `4 × J_TILE` floats, sized to stay in vector registers on AVX-512/NEON.
const J_TILE: usize = 32;

/// Scalar-panel fallback for the trailing `n % J_TILE` columns of one row.
///
/// `orow` is the tail slice `out[row][j0..n]`; `b` is the full `k × n`
/// right-hand side, entered at column offset `j0`.
fn mm_row_tail(arow: &[f32], b: &[f32], orow: &mut [f32], k: usize, n: usize, j0: usize) {
    let width = n - j0;
    if width < 8 {
        // Narrow tail (1–2 columns is common for the model's gate widths):
        // the row-major panel below would leave too few independent outputs
        // in flight and serialize into k-long dependent FMA chains. Go
        // column-major with four accumulator chains per output instead.
        for (o, j) in orow.iter_mut().zip(j0..n) {
            let col = &b[j..];
            let mut s = [0.0f32; 4];
            let mut kk = 0;
            while kk + 4 <= k {
                s[0] = arow[kk].mul_add(col[kk * n], s[0]);
                s[1] = arow[kk + 1].mul_add(col[(kk + 1) * n], s[1]);
                s[2] = arow[kk + 2].mul_add(col[(kk + 2) * n], s[2]);
                s[3] = arow[kk + 3].mul_add(col[(kk + 3) * n], s[3]);
                kk += 4;
            }
            while kk < k {
                s[0] = arow[kk].mul_add(col[kk * n], s[0]);
                kk += 1;
            }
            *o = (s[0] + s[1]) + (s[2] + s[3]);
        }
        return;
    }
    // Wide tail: row-major k-panels of four vectorize across the columns,
    // and the many outputs in flight hide the per-element chain latency.
    let mut kk = 0;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
        let b0 = &b[kk * n + j0..kk * n + n];
        let b1 = &b[(kk + 1) * n + j0..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n + j0..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n + j0..(kk + 3) * n + n];
        for ((((o, &x0), &x1), &x2), &x3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o = a3.mul_add(x3, a2.mul_add(x2, a1.mul_add(x1, a0.mul_add(x0, *o))));
        }
        kk += 4;
    }
    while kk < k {
        let aik = arow[kk];
        let brow = &b[kk * n + j0..kk * n + n];
        for (o, &x) in orow.iter_mut().zip(brow) {
            *o = aik.mul_add(x, *o);
        }
        kk += 1;
    }
}

/// Register-tiled single row: full `J_TILE` column tiles, k unrolled by two
/// into independent accumulator sets (combined in a fixed order at the end).
fn mm_row_tiles(arow: &[f32], b: &[f32], orow: &mut [f32], k: usize, n: usize) {
    for (t, otile) in orow.chunks_exact_mut(J_TILE).enumerate() {
        let jb = t * J_TILE;
        let mut acc_e = [0.0f32; J_TILE];
        let mut acc_o = [0.0f32; J_TILE];
        let mut kk = 0;
        while kk + 2 <= k {
            let be: &[f32; J_TILE] = b[kk * n + jb..kk * n + jb + J_TILE].try_into().unwrap();
            let bo: &[f32; J_TILE] =
                b[(kk + 1) * n + jb..(kk + 1) * n + jb + J_TILE].try_into().unwrap();
            let (xe, xo) = (arow[kk], arow[kk + 1]);
            for l in 0..J_TILE {
                acc_e[l] = xe.mul_add(be[l], acc_e[l]);
                acc_o[l] = xo.mul_add(bo[l], acc_o[l]);
            }
            kk += 2;
        }
        if kk < k {
            let bv: &[f32; J_TILE] = b[kk * n + jb..kk * n + jb + J_TILE].try_into().unwrap();
            let x = arow[kk];
            for l in 0..J_TILE {
                acc_e[l] = x.mul_add(bv[l], acc_e[l]);
            }
        }
        for (o, l) in otile.iter_mut().zip(0..J_TILE) {
            *o = acc_e[l] + acc_o[l];
        }
    }
}

/// `C[rows] = A[rows] @ B` for a contiguous block of rows.
///
/// `a` holds `rows·k` elements, `out` holds `rows·n`; `b` is the full
/// `k × n` right-hand side, and `out` must be zeroed on entry (the register
/// tiles overwrite their columns outright — sparing a read pass of `out` —
/// but the wide-tail path and the `k == 0` early return rely on the zeros).
/// Rows are processed in groups of four with a
/// `4 × J_TILE` register tile: the output accumulators live in vector
/// registers for the whole k-loop, so each loaded `B` vector feeds four FMAs
/// and the output is touched once per tile — the seed kernel's
/// load-FMA-store round-trip per `(k, j)` step is what limited it. There is
/// deliberately no zero-skip branch (the seed's `if aik == 0.0 { continue }`
/// defeated vectorization on dense data — see BENCH_PR1.json for the
/// measured cost).
///
/// Tiling is fixed by position in the block (parallel callers hand over row
/// ranges aligned to [`ROW_CHUNK`], a multiple of four), so the per-element
/// evaluation order never depends on the thread count.
fn mm_block(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 || n == 0 {
        return;
    }
    let rows = a.len() / k;
    let jt = n - n % J_TILE;
    let mut r = 0;
    while r + 4 <= rows {
        let (arows, orows) = (&a[r * k..(r + 4) * k], &mut out[r * n..(r + 4) * n]);
        let (a0, arest) = arows.split_at(k);
        let (a1, arest) = arest.split_at(k);
        let (a2, a3) = arest.split_at(k);
        let (o0, orest) = orows.split_at_mut(n);
        let (o1, orest) = orest.split_at_mut(n);
        let (o2, o3) = orest.split_at_mut(n);
        for t in 0..jt / J_TILE {
            let jb = t * J_TILE;
            let mut c0 = [0.0f32; J_TILE];
            let mut c1 = [0.0f32; J_TILE];
            let mut c2 = [0.0f32; J_TILE];
            let mut c3 = [0.0f32; J_TILE];
            for kk in 0..k {
                let bv: &[f32; J_TILE] = b[kk * n + jb..kk * n + jb + J_TILE].try_into().unwrap();
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                for l in 0..J_TILE {
                    c0[l] = x0.mul_add(bv[l], c0[l]);
                    c1[l] = x1.mul_add(bv[l], c1[l]);
                    c2[l] = x2.mul_add(bv[l], c2[l]);
                    c3[l] = x3.mul_add(bv[l], c3[l]);
                }
            }
            o0[jb..jb + J_TILE].copy_from_slice(&c0);
            o1[jb..jb + J_TILE].copy_from_slice(&c1);
            o2[jb..jb + J_TILE].copy_from_slice(&c2);
            o3[jb..jb + J_TILE].copy_from_slice(&c3);
        }
        if jt < n {
            mm_row_tail(a0, b, &mut o0[jt..], k, n, jt);
            mm_row_tail(a1, b, &mut o1[jt..], k, n, jt);
            mm_row_tail(a2, b, &mut o2[jt..], k, n, jt);
            mm_row_tail(a3, b, &mut o3[jt..], k, n, jt);
        }
        r += 4;
    }
    while r < rows {
        let arow = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        mm_row_tiles(arow, b, &mut orow[..jt], k, n);
        if jt < n {
            mm_row_tail(arow, b, &mut orow[jt..], k, n, jt);
        }
        r += 1;
    }
}

/// `A (m×k) @ B (k×n)`, row-parallel above [`PAR_FLOPS_MIN`].
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().kernel_matmul.inc();
    }
    if reference_mode() {
        return matmul_reference(a, b, m, k, n);
    }
    let t_start = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let mut out = vec![0.0f32; m * n];
    if m.saturating_mul(k).saturating_mul(n) >= PAR_FLOPS_MIN && m > ROW_CHUNK {
        let optr = SendPtr::new(out.as_mut_ptr());
        par_ranges(m, ROW_CHUNK, |r| {
            // SAFETY: row ranges are disjoint, so the output slices never alias.
            let ob = unsafe {
                std::slice::from_raw_parts_mut(optr.get().add(r.start * n), (r.end - r.start) * n)
            };
            mm_block(&a[r.start * k..r.end * k], b, ob, k, n);
        });
    } else {
        mm_block(a, b, &mut out, k, n);
    }
    if let Some(t) = t_start {
        record_gflops(m, k, n, t);
    }
    out
}

/// Sets the traced GFLOP/s gauge for a `2·m·k·n`-flop kernel dispatch.
fn record_gflops(m: usize, k: usize, n: usize, start: std::time::Instant) {
    let secs = start.elapsed().as_secs_f64();
    if secs > 0.0 {
        let flops = 2.0 * (m as f64) * (k as f64) * (n as f64);
        stuq_obs::metrics().kernel_gflops.set(flops / secs / 1e9);
    }
}

/// Eight-lane dot product with a fixed lane-reduction order.
#[inline]
pub fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 8;
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f32; L];
    let whole = x.len() - x.len() % L;
    let mut i = 0;
    while i < whole {
        let xs = &x[i..i + L];
        let ys = &y[i..i + L];
        for l in 0..L {
            lanes[l] = xs[l].mul_add(ys[l], lanes[l]);
        }
        i += L;
    }
    let mut tail = 0.0f32;
    for (xv, yv) in x[whole..].iter().zip(&y[whole..]) {
        tail += xv * yv;
    }
    (((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7])))
        + tail
}

/// Flop count (`m·k·n`) below which `matmul_tb` keeps the dot-product loop:
/// the tiled path pays an up-front `O(n·k)` transpose of `b`, which only
/// amortizes once there is real arithmetic behind it.
pub const TB_TILE_MIN: usize = 1 << 14;

fn mm_tb_block(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        debug_assert_eq!(b.len(), n * k);
        for (o, brow) in orow.iter_mut().zip(b.chunks_exact(k)) {
            *o = dot_f32(arow, brow);
        }
    }
}

/// `A (m×k) @ Bᵀ` where `b` is stored as `n × k`.
///
/// Above [`TB_TILE_MIN`] flops this transposes `b` once (cache-blocked) and
/// runs the same register-tiled `4 × J_TILE` micro-kernel as [`matmul`] —
/// each loaded `B` vector feeds four FMAs instead of one eight-lane dot per
/// output — with deterministic [`ROW_CHUNK`] row parallelism above
/// [`PAR_FLOPS_MIN`]. Below it the eight-lane dot loop stays, since a
/// transpose would dominate. Both thresholds depend only on the shape, so
/// the evaluation order — hence the result, bit-for-bit — never depends on
/// the thread count.
pub fn matmul_tb(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().kernel_matmul_tb.inc();
    }
    if reference_mode() {
        return matmul_tb_reference(a, b, m, k, n);
    }
    let flops = m.saturating_mul(k).saturating_mul(n);
    let mut out = vec![0.0f32; m * n];
    if flops < TB_TILE_MIN {
        mm_tb_block(a, b, &mut out, k, n);
        return out;
    }
    let t_start = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let bt = transpose(b, n, k); // k × n: the layout the tiled kernel wants
    if flops >= PAR_FLOPS_MIN && m > ROW_CHUNK {
        let optr = SendPtr::new(out.as_mut_ptr());
        par_ranges(m, ROW_CHUNK, |r| {
            // SAFETY: disjoint output row ranges.
            let ob = unsafe {
                std::slice::from_raw_parts_mut(optr.get().add(r.start * n), (r.end - r.start) * n)
            };
            mm_block(&a[r.start * k..r.end * k], &bt, ob, k, n);
        });
    } else {
        mm_block(a, &bt, &mut out, k, n);
    }
    if let Some(t) = t_start {
        record_gflops(m, k, n, t);
    }
    out
}

/// `Aᵀ (m×k from a k×m input) @ B (k×n)` — the transposed-A product both
/// matmul adjoints need (`db = aᵀ g` and `db = gᵀ a`).
///
/// `a` is stored `ar × ac` row-major; the result is `ac × n`. The kernel is
/// the cache-blocked [`transpose`] followed by the same register-tiled
/// dispatch as [`matmul`] with `m = ac, k = ar` — element for element the
/// arithmetic the previous `a.transpose().matmul(g)` composition performed
/// (the transpose is pure data movement), just as a single kernel entry
/// with its own dispatch counter instead of an intermediate tensor. The
/// reference path is likewise transpose + [`matmul_reference`], so the seed
/// baseline is unchanged too.
pub fn matmul_ta(a: &[f32], b: &[f32], ar: usize, ac: usize, n: usize) -> Vec<f32> {
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().kernel_matmul_ta.inc();
    }
    let at = transpose(a, ar, ac); // ac × ar
    let (m, k) = (ac, ar);
    if reference_mode() {
        return matmul_reference(&at, b, m, k, n);
    }
    let t_start = stuq_obs::trace_enabled().then(std::time::Instant::now);
    let mut out = vec![0.0f32; m * n];
    if m.saturating_mul(k).saturating_mul(n) >= PAR_FLOPS_MIN && m > ROW_CHUNK {
        let optr = SendPtr::new(out.as_mut_ptr());
        par_ranges(m, ROW_CHUNK, |r| {
            // SAFETY: row ranges are disjoint, so the output slices never alias.
            let ob = unsafe {
                std::slice::from_raw_parts_mut(optr.get().add(r.start * n), (r.end - r.start) * n)
            };
            mm_block(&at[r.start * k..r.end * k], b, ob, k, n);
        });
    } else {
        mm_block(&at, b, &mut out, k, n);
    }
    if let Some(t) = t_start {
        record_gflops(m, k, n, t);
    }
    out
}

/// NAPL row-wise matmul forward (paper Eq. 5): output row `r` is
/// `z[r, :] @ W_r` with `W_r = w[r, :]` viewed as `ci × co`. Row-parallel;
/// each row reuses the blocked [`mm_block`] micro-kernel.
pub fn rowwise_matmul(z: &[f32], w: &[f32], rows: usize, ci: usize, co: usize) -> Vec<f32> {
    if stuq_obs::summary_enabled() {
        stuq_obs::metrics().kernel_rowwise.inc();
    }
    if reference_mode() {
        return rowwise_matmul_reference(z, w, rows, ci, co);
    }
    let mut out = vec![0.0f32; rows * co];
    let per_row = |row: usize, orow: &mut [f32]| {
        mm_block(
            &z[row * ci..(row + 1) * ci],
            &w[row * ci * co..(row + 1) * ci * co],
            orow,
            ci,
            co,
        );
    };
    if rows.saturating_mul(ci).saturating_mul(co) >= PAR_FLOPS_MIN && rows > ROW_CHUNK {
        let optr = SendPtr::new(out.as_mut_ptr());
        par_ranges(rows, ROW_CHUNK, |r| {
            for row in r {
                // SAFETY: each row's output slice is disjoint.
                let orow = unsafe { std::slice::from_raw_parts_mut(optr.get().add(row * co), co) };
                per_row(row, orow);
            }
        });
    } else {
        for (row, orow) in out.chunks_exact_mut(co).enumerate() {
            per_row(row, orow);
        }
    }
    out
}

/// NAPL row-wise matmul backward: given upstream grad `g` (`rows × co`),
/// returns `(dz, dw)` with `dz[r, i] = g[r, :] · W_r[i, :]` and
/// `dw[r, i·co + j] = z[r, i] · g[r, j]`. Row-parallel (rows are disjoint in
/// both outputs).
pub fn rowwise_matmul_grad(
    z: &[f32],
    w: &[f32],
    g: &[f32],
    rows: usize,
    ci: usize,
    co: usize,
) -> (Vec<f32>, Vec<f32>) {
    let mut dz = vec![0.0f32; rows * ci];
    let mut dw = vec![0.0f32; rows * ci * co];
    let per_row = |row: usize, dz_row: &mut [f32], dw_row: &mut [f32]| {
        let g_row = &g[row * co..(row + 1) * co];
        let z_row = &z[row * ci..(row + 1) * ci];
        let w_row = &w[row * ci * co..(row + 1) * ci * co];
        for i in 0..ci {
            let w_chunk = &w_row[i * co..(i + 1) * co];
            let dw_chunk = &mut dw_row[i * co..(i + 1) * co];
            let zri = z_row[i];
            dz_row[i] = dot_f32(g_row, w_chunk);
            for (dwv, &gv) in dw_chunk.iter_mut().zip(g_row) {
                *dwv = zri * gv;
            }
        }
    };
    if rows.saturating_mul(ci).saturating_mul(co) >= PAR_FLOPS_MIN && rows > ROW_CHUNK {
        let zptr = SendPtr::new(dz.as_mut_ptr());
        let wptr = SendPtr::new(dw.as_mut_ptr());
        par_ranges(rows, ROW_CHUNK, |r| {
            for row in r {
                // SAFETY: per-row slices of dz and dw are disjoint.
                let (dz_row, dw_row) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(zptr.get().add(row * ci), ci),
                        std::slice::from_raw_parts_mut(wptr.get().add(row * ci * co), ci * co),
                    )
                };
                per_row(row, dz_row, dw_row);
            }
        });
    } else {
        for row in 0..rows {
            per_row(
                row,
                &mut dz[row * ci..(row + 1) * ci],
                &mut dw[row * ci * co..(row + 1) * ci * co],
            );
        }
    }
    (dz, dw)
}

/// The seed's scalar i-k-j matmul, zero-skip branch included.
///
/// Kept verbatim as the reference implementation: correctness property tests
/// compare the blocked kernels against it, and `stuq-bench` measures the
/// speedup over it (it *is* the pre-parallel-engine baseline).
pub fn matmul_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    out
}

/// The seed's scalar `A @ Bᵀ` (`b` stored `n × k`): one plain dot per output.
pub fn matmul_tb_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// The seed's scalar NAPL row-wise matmul: per row, a naive i-j loop.
pub fn rowwise_matmul_reference(
    z: &[f32],
    w: &[f32],
    rows: usize,
    ci: usize,
    co: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * co];
    for row in 0..rows {
        let z_row = &z[row * ci..(row + 1) * ci];
        let w_row = &w[row * ci * co..(row + 1) * ci * co];
        let o_row = &mut out[row * co..(row + 1) * co];
        for (i, &zv) in z_row.iter().enumerate() {
            if zv == 0.0 {
                continue;
            }
            let w_chunk = &w_row[i * co..(i + 1) * co];
            for (o, &wv) in o_row.iter_mut().zip(w_chunk) {
                *o += zv * wv;
            }
        }
    }
    out
}

/// Cache-blocked transpose of an `m × n` row-major matrix.
pub fn transpose(src: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    let t = TRANSPOSE_TILE;
    for ib in (0..m).step_by(t) {
        let i_end = (ib + t).min(m);
        for jb in (0..n).step_by(t) {
            let j_end = (jb + t).min(n);
            for i in ib..i_end {
                for j in jb..j_end {
                    out[j * m + i] = src[i * n + j];
                }
            }
        }
    }
    out
}

/// Elementwise map into a fresh buffer, chunk-parallel above [`PAR_ELEMS_MIN`].
pub fn map_elems(src: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; src.len()];
    if src.len() >= PAR_ELEMS_MIN {
        let optr = SendPtr::new(out.as_mut_ptr());
        par_ranges(src.len(), ELEM_CHUNK, |r| {
            // SAFETY: disjoint output ranges.
            let ob = unsafe { std::slice::from_raw_parts_mut(optr.get().add(r.start), r.len()) };
            for (o, &v) in ob.iter_mut().zip(&src[r]) {
                *o = f(v);
            }
        });
    } else {
        for (o, &v) in out.iter_mut().zip(src) {
            *o = f(v);
        }
    }
    out
}

/// Elementwise binary map into a fresh buffer, chunk-parallel.
pub fn zip_elems(x: &[f32], y: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    debug_assert_eq!(x.len(), y.len());
    let mut out = vec![0.0f32; x.len()];
    if x.len() >= PAR_ELEMS_MIN {
        let optr = SendPtr::new(out.as_mut_ptr());
        par_ranges(x.len(), ELEM_CHUNK, |r| {
            // SAFETY: disjoint output ranges.
            let ob = unsafe { std::slice::from_raw_parts_mut(optr.get().add(r.start), r.len()) };
            for ((o, &a), &b) in ob.iter_mut().zip(&x[r.clone()]).zip(&y[r]) {
                *o = f(a, b);
            }
        });
    } else {
        for ((o, &a), &b) in out.iter_mut().zip(x).zip(y) {
            *o = f(a, b);
        }
    }
    out
}

/// In-place elementwise map, chunk-parallel.
pub fn map_inplace_elems(dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    if dst.len() >= PAR_ELEMS_MIN {
        let len = dst.len();
        let dptr = SendPtr::new(dst.as_mut_ptr());
        par_ranges(len, ELEM_CHUNK, |r| {
            // SAFETY: disjoint ranges of dst.
            let db = unsafe { std::slice::from_raw_parts_mut(dptr.get().add(r.start), r.len()) };
            for v in db {
                *v = f(*v);
            }
        });
    } else {
        for v in dst {
            *v = f(*v);
        }
    }
}

/// `dst[i] = f(dst[i], src[i])`, chunk-parallel (covers `+=` and AXPY).
pub fn zip_assign_elems(dst: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(dst.len(), src.len());
    if dst.len() >= PAR_ELEMS_MIN {
        let len = dst.len();
        let dptr = SendPtr::new(dst.as_mut_ptr());
        par_ranges(len, ELEM_CHUNK, |r| {
            // SAFETY: disjoint ranges of dst.
            let db = unsafe { std::slice::from_raw_parts_mut(dptr.get().add(r.start), r.len()) };
            for (d, &s) in db.iter_mut().zip(&src[r]) {
                *d = f(*d, s);
            }
        });
    } else {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = f(*d, s);
        }
    }
}

/// Sum of `map(x[i])` accumulated in `f64` over fixed [`SUM_BLOCK`]-sized
/// blocks; block partials are combined in block order, so the result is
/// independent of the thread count.
pub fn blocked_sum(x: &[f32], map: impl Fn(f32) -> f64 + Sync) -> f64 {
    if x.len() <= SUM_BLOCK {
        return x.iter().map(|&v| map(v)).sum();
    }
    let n_blocks = x.len().div_ceil(SUM_BLOCK);
    let partials = par_map(n_blocks, |b| {
        let start = b * SUM_BLOCK;
        x[start..(start + SUM_BLOCK).min(x.len())].iter().map(|&v| map(v)).sum::<f64>()
    });
    partials.iter().sum()
}

/// Row softmax with the max-subtraction trick; rows are independent, so the
/// loop is row-parallel above [`PAR_ELEMS_MIN`] without affecting the
/// per-row summation order. Outside [`with_reference_kernels`] the exp calls
/// go through [`crate::fastmath::exp_f32`] — the adaptive-adjacency softmax
/// is a full `n × n` pass per forward, and libm `exp` is a measurable slice
/// of it.
pub fn softmax_rows(src: &[f32], m: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(src.len(), m * n);
    let mut out = vec![0.0f32; m * n];
    if n == 0 {
        return out;
    }
    let refmode = reference_mode();
    let one_row = |row: &[f32], orow: &mut [f32]| {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        if refmode {
            for (o, &x) in orow.iter_mut().zip(row) {
                let e = (x - mx).exp();
                *o = e;
                denom += e;
            }
            for o in orow {
                *o /= denom;
            }
        } else {
            for (o, &x) in orow.iter_mut().zip(row) {
                let e = crate::fastmath::exp_f32(x - mx);
                *o = e;
                denom += e;
            }
            let inv = 1.0 / denom;
            for o in orow {
                *o *= inv;
            }
        }
    };
    if m * n >= PAR_ELEMS_MIN && m > 1 {
        let optr = SendPtr::new(out.as_mut_ptr());
        let rows_per_chunk = (ELEM_CHUNK / n).max(1);
        par_ranges(m, rows_per_chunk, |rr| {
            for i in rr {
                // SAFETY: each row index is visited by exactly one chunk.
                let orow = unsafe { std::slice::from_raw_parts_mut(optr.get().add(i * n), n) };
                one_row(&src[i * n..(i + 1) * n], orow);
            }
        });
    } else {
        for (i, orow) in out.chunks_exact_mut(n).enumerate() {
            one_row(&src[i * n..(i + 1) * n], orow);
        }
    }
    out
}

/// Blocked `f64` dot product with the same ordered-reduction guarantee.
pub fn blocked_dot(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let block = |r: std::ops::Range<usize>| {
        x[r.clone()].iter().zip(&y[r]).map(|(&a, &b)| (a as f64) * (b as f64)).sum::<f64>()
    };
    if x.len() <= SUM_BLOCK {
        return block(0..x.len());
    }
    let n_blocks = x.len().div_ceil(SUM_BLOCK);
    let partials = par_map(n_blocks, |b| block(b * SUM_BLOCK..((b + 1) * SUM_BLOCK).min(x.len())));
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StuqRng;

    fn randv(rng: &mut StuqRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.normal_f32()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let denom = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() / denom <= tol, "elem {i}: {x} vs {y}");
        }
    }

    /// Softmax rows: fast-exp path tracks the libm reference closely, rows
    /// sum to 1, and the pooled result is bit-identical to the serial one.
    #[test]
    fn softmax_rows_fast_matches_reference_and_is_deterministic() {
        let mut rng = StuqRng::new(0x50F7);
        for &(m, n) in &[(3usize, 7usize), (307, 307), (1, 513)] {
            let src: Vec<f32> = (0..m * n).map(|_| rng.normal_f32() * 4.0).collect();
            let fast = softmax_rows(&src, m, n);
            let reference = with_reference_kernels(|| softmax_rows(&src, m, n));
            assert_close(&fast, &reference, 1e-5);
            for row in fast.chunks_exact(n) {
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
            }
            let serial = stuq_parallel::with_serial(|| softmax_rows(&src, m, n));
            assert_eq!(fast, serial, "softmax must not depend on thread count");
        }
    }

    /// Property: blocked/parallel matmul matches the scalar reference within
    /// 1e-5 relative tolerance across random shapes (including shapes that
    /// cross the parallel threshold and k % 4 != 0 remainders).
    #[test]
    fn matmul_matches_reference_across_random_shapes() {
        let mut rng = StuqRng::new(0xA11);
        for case in 0..40 {
            let m = 1 + rng.uniform_usize(97);
            let k = 1 + rng.uniform_usize(67);
            let n = 1 + rng.uniform_usize(83);
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let fast = matmul(&a, &b, m, k, n);
            let slow = matmul_reference(&a, &b, m, k, n);
            assert_close(&fast, &slow, 1e-5);
            if case == 0 {
                // One guaranteed-large case above the parallel threshold.
                let (m, k, n) = (307, 64, 307);
                let a = randv(&mut rng, m * k);
                let b = randv(&mut rng, k * n);
                assert_close(&matmul(&a, &b, m, k, n), &matmul_reference(&a, &b, m, k, n), 1e-5);
            }
        }
    }

    #[test]
    fn matmul_tb_matches_reference_across_random_shapes() {
        let mut rng = StuqRng::new(0xB22);
        for case in 0..40 {
            let m = 1 + rng.uniform_usize(70);
            let k = 1 + rng.uniform_usize(90);
            let n = 1 + rng.uniform_usize(60);
            let a = randv(&mut rng, m * k);
            let bt = randv(&mut rng, n * k);
            let b = transpose(&bt, n, k); // k × n
            let fast = matmul_tb(&a, &bt, m, k, n);
            let slow = matmul_reference(&a, &b, m, k, n);
            assert_close(&fast, &slow, 1e-5);
            if case == 0 {
                // One guaranteed-large case: tiled + row-parallel path.
                let (m, k, n) = (307, 64, 307);
                let a = randv(&mut rng, m * k);
                let bt = randv(&mut rng, n * k);
                assert_close(
                    &matmul_tb(&a, &bt, m, k, n),
                    &matmul_tb_reference(&a, &bt, m, k, n),
                    1e-5,
                );
            }
        }
    }

    /// Property: parallel and forced-serial execution are bit-identical.
    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        let mut rng = StuqRng::new(0xC33);
        let (m, k, n) = (307, 64, 307);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let par = matmul(&a, &b, m, k, n);
        let ser = stuq_parallel::with_serial(|| matmul(&a, &b, m, k, n));
        assert_eq!(par, ser, "matmul must not depend on thread count");

        let tb_par = matmul_tb(&a, &a, m, k, m);
        let tb_ser = stuq_parallel::with_serial(|| matmul_tb(&a, &a, m, k, m));
        assert_eq!(tb_par, tb_ser);

        let big = randv(&mut rng, PAR_ELEMS_MIN + 123);
        let mp = map_elems(&big, |v| v * 1.5 - 0.25);
        let ms = stuq_parallel::with_serial(|| map_elems(&big, |v| v * 1.5 - 0.25));
        assert_eq!(mp, ms);

        let sum_p = blocked_sum(&big, |v| v as f64);
        let sum_s = stuq_parallel::with_serial(|| blocked_sum(&big, |v| v as f64));
        assert_eq!(sum_p.to_bits(), sum_s.to_bits(), "ordered reduction must be exact");
    }

    /// The bench hook must route to the reference kernels bit-for-bit and
    /// restore the fast path afterwards (including across a panic).
    #[test]
    fn with_reference_kernels_routes_and_restores() {
        let mut rng = StuqRng::new(0xE55);
        let (m, k, n) = (40, 13, 21);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let routed = with_reference_kernels(|| matmul(&a, &b, m, k, n));
        assert_eq!(routed, matmul_reference(&a, &b, m, k, n), "must be the same code path");
        let bt = transpose(&b, k, n);
        let routed_tb = with_reference_kernels(|| matmul_tb(&a, &bt, m, k, n));
        assert_eq!(routed_tb, matmul_tb_reference(&a, &bt, m, k, n));
        assert!(!reference_mode(), "guard must pop on exit");
        assert_close(&matmul(&a, &b, m, k, n), &routed, 1e-5);

        let rw = with_reference_kernels(|| rowwise_matmul(&a, &b, 1, 13, 21));
        assert_eq!(rw, rowwise_matmul_reference(&a, &b, 1, 13, 21));
    }

    #[test]
    fn rowwise_reference_matches_blocked() {
        let mut rng = StuqRng::new(0xF66);
        let (rows, ci, co) = (33, 17, 12);
        let z = randv(&mut rng, rows * ci);
        let w = randv(&mut rng, rows * ci * co);
        assert_close(
            &rowwise_matmul(&z, &w, rows, ci, co),
            &rowwise_matmul_reference(&z, &w, rows, ci, co),
            1e-5,
        );
    }

    #[test]
    fn transpose_blocked_matches_naive() {
        let mut rng = StuqRng::new(0xD44);
        for _ in 0..20 {
            let m = 1 + rng.uniform_usize(100);
            let n = 1 + rng.uniform_usize(100);
            let src = randv(&mut rng, m * n);
            let out = transpose(&src, m, n);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(out[j * m + i], src[i * n + j]);
                }
            }
        }
    }

    #[test]
    fn dot_f32_handles_remainders() {
        for len in [0usize, 1, 7, 8, 9, 16, 31] {
            let x: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let y = vec![2.0f32; len];
            let expect: f32 = (0..len).map(|i| 2.0 * i as f32).sum();
            assert!((dot_f32(&x, &y) - expect).abs() < 1e-3);
        }
    }

    #[test]
    fn zip_assign_covers_axpy() {
        let mut d = vec![1.0f32; 100];
        let s: Vec<f32> = (0..100).map(|i| i as f32).collect();
        zip_assign_elems(&mut d, &s, |a, b| a + 0.5 * b);
        assert_eq!(d[10], 6.0);
    }
}
