//! Row-major dense `f32` tensors.
//!
//! [`Tensor`] is intentionally simple: a `Vec<f32>` plus a shape. All tape
//! operations work on 2-D tensors; 1-D tensors are treated as `1 × n` row
//! vectors where a matrix is expected. Reductions accumulate in `f64` to keep
//! long sums stable.

use crate::kernels;
use crate::rng::StuqRng;

/// A dense, row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, …; n={}]", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape. Panics if they disagree.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { data, shape: shape.to_vec() }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self { data: vec![0.0; numel], shape: shape.to_vec() }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self { data: vec![value; numel], shape: shape.to_vec() }
    }

    /// A `1 × 1` tensor holding one scalar.
    pub fn scalar(value: f32) -> Self {
        Self { data: vec![value], shape: vec![1, 1] }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Standard-normal samples scaled by `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut StuqRng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.normal_f32() * std).collect();
        Self { data, shape: shape.to_vec() }
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StuqRng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| lo + (hi - lo) * rng.uniform_f32()).collect();
        Self { data, shape: shape.to_vec() }
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows when viewed as a matrix (1-D tensors are row vectors).
    #[inline]
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            1 => 1,
            2 => self.shape[0],
            _ => panic!("rows() called on {}-d tensor", self.shape.len()),
        }
    }

    /// Number of columns when viewed as a matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        match self.shape.len() {
            1 => self.shape[0],
            2 => self.shape[1],
            _ => panic!("cols() called on {}-d tensor", self.shape.len()),
        }
    }

    /// Raw data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access for a matrix.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows() && c < self.cols());
        self.data[r * self.cols() + c]
    }

    /// Element assignment for a matrix.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let cols = self.cols();
        debug_assert!(r < self.rows() && c < cols);
        self.data[r * cols + c] = v;
    }

    /// Returns a new tensor with the same data and a different shape.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Applies `f` element-wise, producing a new tensor.
    ///
    /// Large tensors are processed chunk-parallel with fixed chunk
    /// boundaries, so the result never depends on the thread count.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        Self { data: kernels::map_elems(&self.data, f), shape: self.shape.clone() }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        kernels::map_inplace_elems(&mut self.data, f);
    }

    /// Element-wise combination of two same-shaped tensors.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32 + Sync) -> Self {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Self { data: kernels::zip_elems(&self.data, &other.data, f), shape: self.shape.clone() }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        kernels::zip_assign_elems(&mut self.data, &other.data, |a, b| a + b);
    }

    /// `self += alpha * other` element-wise (AXPY).
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        kernels::zip_assign_elems(&mut self.data, &other.data, move |a, b| a + alpha * b);
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Self {
        self.map(|x| x * c)
    }

    /// Matrix product `self @ other`.
    ///
    /// Uses the blocked kernel in [`crate::kernels`]: k-panels of four with a
    /// vectorized j-loop, fanned out over disjoint output row chunks on the
    /// global pool when the problem crosses `kernels::PAR_FLOPS_MIN`.
    pub fn matmul(&self, other: &Self) -> Self {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dims: {}x{} @ {}x{}", m, k, k2, n);
        Self { data: kernels::matmul(&self.data, &other.data, m, k, n), shape: vec![m, n] }
    }

    /// The seed's scalar reference matmul (serial, zero-skip branch intact).
    ///
    /// Exists so property tests and `stuq-bench` can compare the blocked
    /// parallel kernel against the original baseline; not for production use.
    pub fn matmul_reference(&self, other: &Self) -> Self {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dims: {}x{} @ {}x{}", m, k, k2, n);
        Self {
            data: kernels::matmul_reference(&self.data, &other.data, m, k, n),
            shape: vec![m, n],
        }
    }

    /// Matrix product `self @ other^T`, avoiding an explicit transpose.
    pub fn matmul_tb(&self, other: &Self) -> Self {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_tb inner dims: {}x{} @ ({}x{})^T", m, k, n, k2);
        Self { data: kernels::matmul_tb(&self.data, &other.data, m, k, n), shape: vec![m, n] }
    }

    /// Matrix product `self^T @ other` — the adjoint-side transposed product
    /// (`aᵀ g` / `gᵀ a`), fused into one kernel dispatch.
    ///
    /// Numerically identical to `self.transpose().matmul(other)` in both the
    /// fast and reference kernel modes (see [`kernels::matmul_ta`]).
    pub fn matmul_ta(&self, other: &Self) -> Self {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_ta inner dims: ({}x{})^T @ {}x{}", k, m, k2, n);
        Self { data: kernels::matmul_ta(&self.data, &other.data, k, m, n), shape: vec![m, n] }
    }

    /// Matrix transpose (cache-blocked tile-wise copy).
    pub fn transpose(&self) -> Self {
        let (m, n) = (self.rows(), self.cols());
        Self { data: kernels::transpose(&self.data, m, n), shape: vec![n, m] }
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Self) -> Self {
        let m = self.rows();
        assert_eq!(m, other.rows(), "concat_cols row mismatch");
        let (ca, cb) = (self.cols(), other.cols());
        let mut out = Vec::with_capacity(m * (ca + cb));
        for i in 0..m {
            out.extend_from_slice(&self.data[i * ca..(i + 1) * ca]);
            out.extend_from_slice(&other.data[i * cb..(i + 1) * cb]);
        }
        Self { data: out, shape: vec![m, ca + cb] }
    }

    /// Vertical concatenation (stacked rows).
    pub fn concat_rows(&self, other: &Self) -> Self {
        let n = self.cols();
        assert_eq!(n, other.cols(), "concat_rows col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self { data, shape: vec![self.rows() + other.rows(), n] }
    }

    /// Copies the column range `[from, to)` into a new matrix.
    pub fn slice_cols(&self, from: usize, to: usize) -> Self {
        let (m, n) = (self.rows(), self.cols());
        assert!(from <= to && to <= n, "slice_cols range {}..{} out of {}", from, to, n);
        let w = to - from;
        let mut out = Vec::with_capacity(m * w);
        for i in 0..m {
            out.extend_from_slice(&self.data[i * n + from..i * n + to]);
        }
        Self { data: out, shape: vec![m, w] }
    }

    /// Copies the row range `[from, to)` into a new matrix.
    pub fn slice_rows(&self, from: usize, to: usize) -> Self {
        let (m, n) = (self.rows(), self.cols());
        assert!(from <= to && to <= m, "slice_rows range {}..{} out of {}", from, to, m);
        Self { data: self.data[from * n..to * n].to_vec(), shape: vec![to - from, n] }
    }

    /// One row as a `1 × n` matrix.
    pub fn row(&self, r: usize) -> Self {
        self.slice_rows(r, r + 1)
    }

    /// Sum of all elements (accumulated in `f64` over fixed blocks, so the
    /// result is independent of the thread count).
    pub fn sum(&self) -> f64 {
        kernels::blocked_sum(&self.data, |x| x as f64)
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest element, or `-inf` when empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element, or `+inf` when empty.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum over rows: produces a `1 × n` row of column sums.
    pub fn sum_rows(&self) -> Self {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(&self.data[i * n..(i + 1) * n]) {
                *o += v;
            }
        }
        Self { data: out, shape: vec![1, n] }
    }

    /// Row-wise soft-max (each row sums to one), numerically stabilised.
    pub fn softmax_rows(&self) -> Self {
        let (m, n) = (self.rows(), self.cols());
        Self { data: kernels::softmax_rows(&self.data, m, n), shape: vec![m, n] }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        kernels::blocked_sum(&self.data, |x| (x as f64) * (x as f64)).sqrt()
    }

    /// Dot product of two same-shaped tensors, accumulated in `f64`.
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        kernels::blocked_dot(&self.data, &other.data)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3, 3]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]);
        let b = Tensor::from_vec(vec![3.0, 1.0, 2.0, 1.0, 1.0, 0.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        let mut rng = StuqRng::new(7);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let lhs = a.matmul_tb(&b);
        let rhs = a.matmul(&b.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StuqRng::new(1);
        let a = Tensor::randn(&[4, 7], 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn concat_and_slice_cols_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let sum: f32 = (0..3).map(|j| s.get(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probability.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_rows_handles_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = t.softmax_rows();
        assert!(s.all_finite());
        assert!((s.get(0, 0) + s.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.sum_rows().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[2, 2]);
        let b = Tensor::full(&[2, 2], 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn randn_has_roughly_unit_variance() {
        let mut rng = StuqRng::new(42);
        let t = Tensor::randn(&[100, 100], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>()
            / (t.len() as f64 - 1.0);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
