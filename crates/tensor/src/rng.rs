//! Deterministic random number generation.
//!
//! Every stochastic component in this repository — weight initialisation,
//! dropout masks, the traffic simulator, Monte-Carlo inference — draws from
//! [`StuqRng`], an `xoshiro256**` generator seeded through SplitMix64. A
//! single `u64` seed therefore pins the whole experiment bit-for-bit, which is
//! what makes the paper-reproduction harness auditable.
//!
//! We implement the generator (and Box–Muller normal sampling) locally rather
//! than depending on `rand`/`rand_distr` so that the exact stream is owned by
//! this repository and can never change under a dependency upgrade; see
//! DESIGN.md §5.

/// A seeded `xoshiro256**` pseudo-random generator.
#[derive(Clone, Debug)]
pub struct StuqRng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller draw.
    spare_normal: Option<f64>,
}

/// The complete serialisable state of a [`StuqRng`].
///
/// The cached Box–Muller spare is part of the stream: dropping it on a
/// checkpoint/restore cycle would shift every subsequent normal draw by one,
/// breaking the bit-for-bit resume guarantee. It is carried as raw `f64`
/// bits so the round-trip is exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngState {
    /// xoshiro256** state words.
    pub s: [u64; 4],
    /// `to_bits()` of the cached Box–Muller spare, when one is pending.
    pub spare_normal_bits: Option<u64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StuqRng {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s, spare_normal: None }
    }

    /// Captures the full generator state for checkpointing.
    pub fn export_state(&self) -> RngState {
        RngState { s: self.s, spare_normal_bits: self.spare_normal.map(f64::to_bits) }
    }

    /// Reconstructs a generator from an exported state; the stream continues
    /// exactly where [`StuqRng::export_state`] left off.
    pub fn from_state(state: RngState) -> Self {
        Self { s: state.s, spare_normal: state.spare_normal_bits.map(f64::from_bits) }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forking instead of sharing one generator keeps components independent:
    /// adding an extra dropout draw in one module does not perturb the data
    /// sampled by another.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        self.uniform_f64() as f32
    }

    /// Uniform integer in `[0, n)` via rejection-free Lemire reduction.
    #[inline]
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize(0)");
        // 128-bit multiply keeps the modulo bias below 2^-64: negligible.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Standard-normal `f64` via Box–Muller (caching the paired draw).
    pub fn normal_f64(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0, 1] so that ln(u1) is finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Standard-normal `f32`.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        self.normal_f64() as f32
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StuqRng::new(123);
        let mut b = StuqRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StuqRng::new(1);
        let mut b = StuqRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StuqRng::new(9);
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_usize_covers_all_buckets() {
        let mut rng = StuqRng::new(5);
        let mut seen = [0usize; 7];
        for _ in 0..7_000 {
            seen[rng.uniform_usize(7)] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 700, "bucket {i} only hit {c} times");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = StuqRng::new(2024);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let z = rng.normal_f64();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_tail_mass_is_plausible() {
        let mut rng = StuqRng::new(7);
        let n = 100_000;
        let beyond2 = (0..n).filter(|_| rng.normal_f64().abs() > 1.96).count();
        let frac = beyond2 as f64 / n as f64;
        // P(|Z| > 1.96) = 5%.
        assert!((frac - 0.05).abs() < 0.005, "frac {frac}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = StuqRng::new(10);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn state_roundtrip_continues_stream_exactly() {
        let mut rng = StuqRng::new(42);
        // Leave a Box–Muller spare pending so the hardest case is covered.
        let _ = rng.normal_f64();
        let state = rng.export_state();
        assert!(state.spare_normal_bits.is_some(), "spare should be cached");
        let mut resumed = StuqRng::from_state(state);
        for _ in 0..64 {
            assert_eq!(rng.normal_f64().to_bits(), resumed.normal_f64().to_bits());
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StuqRng::new(77);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should not stay sorted");
    }
}
