//! Edge-case and stress tests for the autodiff tape, beyond the per-op
//! gradchecks in the library.

use stuq_tensor::{CustomOp, StuqRng, Tape, Tensor};

#[test]
fn deep_chain_gradient_is_exact() {
    // y = ((((x·2)+1)·2)+1)… 50 times; dy/dx = 2^50 over one scalar — checks
    // long chains neither vanish bookkeeping-wise nor accumulate error.
    let mut tape = Tape::new();
    let x = tape.param(0, Tensor::scalar(0.5));
    let mut y = x;
    for _ in 0..50 {
        y = tape.scale(y, 2.0);
        y = tape.add_scalar(y, 1.0);
    }
    // Normalise so the seed gradient stays representable.
    let loss = tape.scale(y, 1.0 / 2f32.powi(50));
    let grads = tape.backward(loss);
    let g = grads.get(0).unwrap().get(0, 0);
    assert!((g - 1.0).abs() < 1e-5, "gradient {g}");
}

#[test]
fn diamond_graph_accumulates_both_paths() {
    // loss = sum(x ⊙ x + x) uses x three times through two paths.
    let mut tape = Tape::new();
    let x = tape.param(0, Tensor::from_vec(vec![2.0, -1.0], &[1, 2]));
    let sq = tape.square(x);
    let sum = tape.add(sq, x);
    let loss = tape.sum_all(sum);
    let grads = tape.backward(loss);
    // d/dx (x² + x) = 2x + 1.
    assert_eq!(grads.get(0).unwrap().data(), &[5.0, -1.0]);
}

#[test]
fn unused_branches_receive_no_gradient() {
    let mut tape = Tape::new();
    let used = tape.param(0, Tensor::scalar(1.0));
    let unused = tape.param(1, Tensor::scalar(1.0));
    let dead = tape.scale(unused, 3.0); // recorded but never reaches the loss
    let _ = dead;
    let loss = tape.square(used);
    let loss = tape.sum_all(loss);
    let grads = tape.backward(loss);
    assert!(grads.get(0).is_some());
    assert!(grads.get(1).is_none(), "dead branch must not appear in the store");
}

#[test]
fn backward_twice_from_different_losses_on_one_tape() {
    // Two heads sharing a trunk (exactly the μ / log σ² decoder situation):
    // gradients from each head's loss are independent sweeps.
    let mut tape = Tape::new();
    let x = tape.param(0, Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
    let head_a = tape.scale(x, 2.0);
    let head_b = tape.scale(x, -1.0);
    let loss_a = tape.sum_all(head_a);
    let loss_b = tape.sum_all(head_b);
    let ga = tape.backward(loss_a);
    let gb = tape.backward(loss_b);
    assert_eq!(ga.get(0).unwrap().data(), &[2.0, 2.0]);
    assert_eq!(gb.get(0).unwrap().data(), &[-1.0, -1.0]);
}

#[test]
fn custom_op_round_trips_gradients() {
    // A user-defined "double" kernel via the CustomOp escape hatch.
    #[derive(Debug)]
    struct Double;
    impl CustomOp for Double {
        fn name(&self) -> &'static str {
            "double"
        }
        fn backward(&self, grad: &Tensor, _inputs: &[&Tensor], _out: &Tensor) -> Vec<Tensor> {
            vec![grad.scale(2.0)]
        }
    }
    let mut tape = Tape::new();
    let x = tape.param(0, Tensor::from_vec(vec![3.0, 4.0], &[1, 2]));
    let value = tape.value(x).scale(2.0);
    let y = tape.custom(Box::new(Double), vec![x], value);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    assert_eq!(tape.value(y).data(), &[6.0, 8.0]);
    assert_eq!(grads.get(0).unwrap().data(), &[2.0, 2.0]);
}

#[test]
fn gradients_of_composed_graph_convolution_are_finite_at_scale() {
    // A realistic-size AGCRN-ish subgraph: support (I+Â) from an embedding,
    // 12 recurrent-ish steps, Gaussian NLL — gradients stay finite.
    let mut rng = StuqRng::new(9);
    let n = 40;
    let d = 6;
    let h = 16;
    let mut tape = Tape::new();
    let e = tape.param(0, Tensor::randn(&[n, d], 0.3, &mut rng));
    // A registered-but-unused parameter exercises sparse gradient stores.
    let _unused = tape.param(1, Tensor::randn(&[2, 2], 1.0, &mut rng));
    let sim = tape.matmul_tb(e, e);
    let rel = tape.relu(sim);
    let a_hat = tape.softmax_rows(rel);
    let eye = tape.constant(Tensor::eye(n));
    let support = tape.add(eye, a_hat);
    let wm = tape.param(2, Tensor::randn(&[1, h], 0.3, &mut rng));
    let mut state = tape.constant(Tensor::zeros(&[n, h]));
    for _ in 0..12 {
        let x = tape.constant(Tensor::randn(&[n, 1], 1.0, &mut rng));
        let lifted = tape.matmul(x, wm);
        let mixed = tape.matmul(support, lifted);
        let cand = tape.add(mixed, state);
        state = tape.tanh(cand);
    }
    let sq = tape.square(state);
    let loss = tape.mean_all(sq);
    let grads = tape.backward(loss);
    for (_, g) in grads.iter() {
        assert!(g.all_finite());
    }
    assert!(grads.get(0).is_some() && grads.get(2).is_some());
    assert!(grads.get(1).is_none(), "unused placeholder gets no gradient");
}

#[test]
fn grad_store_merge_and_scale() {
    let mut tape = Tape::new();
    let x = tape.param(0, Tensor::scalar(2.0));
    let y = tape.square(x);
    let loss = tape.sum_all(y);
    let mut g1 = tape.backward(loss);
    let g2 = tape.backward(loss);
    g1.merge(g2);
    g1.scale(0.5);
    // (4 + 4) / 2 = 4 = original gradient.
    assert_eq!(g1.get(0).unwrap().get(0, 0), 4.0);
}

#[test]
fn softmax_rows_gradient_sums_to_zero() {
    // Soft-max outputs are shift-invariant, so its Jacobian rows sum to 0:
    // the gradient of any loss w.r.t. a uniform shift of the logits is 0.
    let mut rng = StuqRng::new(11);
    let mut tape = Tape::new();
    let x = tape.param(0, Tensor::randn(&[3, 5], 1.0, &mut rng));
    let s = tape.softmax_rows(x);
    let w = tape.constant(Tensor::randn(&[3, 5], 1.0, &mut rng));
    let weighted = tape.mul(s, w);
    let loss = tape.sum_all(weighted);
    let grads = tape.backward(loss);
    let g = grads.get(0).unwrap();
    for r in 0..3 {
        let row_sum: f32 = (0..5).map(|c| g.get(r, c)).sum();
        assert!(row_sum.abs() < 1e-5, "row {r} grad sum {row_sum}");
    }
}
