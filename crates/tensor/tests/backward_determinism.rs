//! Property tests for the branch-parallel backward pass (DESIGN.md §9) and
//! the static-schedule replay engine (DESIGN.md §14).
//!
//! The level scheduler ([`Tape::backward_levels`]) and the compiled
//! [`ReplayPlan`] must be *bit-identical* to the serial descending-id walk
//! ([`Tape::backward_serial`]) on any tape and any thread count — that is
//! the contract the CI determinism gate enforces by re-running this suite at
//! `STUQ_THREADS=1,2,4`. The tests here are hand-rolled proptest loops in
//! the style of the kernel suite: a seeded generator builds randomized DAG
//! tapes (fan-out, fan-in, shared parameter slots, matmul/matmul_tb grads)
//! and every gradient is compared bit for bit. The DAG generator draws
//! *structure* and *values* from separate streams so replay tests can build
//! two structurally identical tapes with different data — the exact reuse
//! pattern of batches within a training epoch.

use stuq_tensor::replay::{clear_replay_cache, replay_stats, reset_replay_stats};
use stuq_tensor::{GradStore, ReplayPlan, StuqRng, Tape, Tensor};

fn randt(rng: &mut StuqRng, shape: &[usize]) -> Tensor {
    let len = shape.iter().product();
    Tensor::from_vec((0..len).map(|_| rng.normal_f32()).collect(), shape)
}

/// Asserts two gradient stores hold the same slots with bitwise-equal data.
fn assert_bit_identical(a: &GradStore, b: &GradStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: slot count differs");
    for (slot, ga) in a.iter() {
        let gb = b.get(slot).unwrap_or_else(|| panic!("{what}: slot {slot} missing"));
        assert_eq!(ga.shape(), gb.shape(), "{what}: slot {slot} shape differs");
        for (i, (x, y)) in ga.data().iter().zip(gb.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: slot {slot} elem {i}: {x} vs {y}");
        }
    }
}

/// Builds a random DAG tape of same-shaped nodes: a few parameters (with one
/// slot deliberately registered twice — shared weights), then a mix of unary
/// and binary ops whose operands are drawn from *all* earlier nodes, which
/// produces both fan-out (one node consumed many times) and fan-in. Returns
/// the tape and a scalar loss node.
///
/// Structure (op choices, operand wiring) is drawn from `srng`; tensor
/// *values* from `vrng`. Replaying the same structure seed with a different
/// value seed yields a structurally identical tape with different data.
fn random_dag(
    srng: &mut StuqRng,
    vrng: &mut StuqRng,
    n_ops: usize,
    r: usize,
    c: usize,
) -> (Tape, usize) {
    let mut tape = Tape::new();
    let mut pool = Vec::new();
    let n_params = 2 + srng.uniform_usize(4);
    for slot in 0..n_params {
        pool.push(tape.param(slot, randt(vrng, &[r, c])));
    }
    // Shared slot: the same parameter slot mounted at a second tape node.
    pool.push(tape.param(0, randt(vrng, &[r, c])));
    pool.push(tape.constant(randt(vrng, &[r, c])));

    for _ in 0..n_ops {
        let a = pool[srng.uniform_usize(pool.len())];
        let b = pool[srng.uniform_usize(pool.len())];
        let node = match srng.uniform_usize(8) {
            0 => tape.add(a, b),
            1 => tape.sub(a, b),
            2 => tape.mul(a, b),
            3 => tape.tanh(a),
            4 => tape.sigmoid(a),
            5 => tape.relu(a),
            6 => tape.scale(a, 0.5),
            _ => tape.max_elem(a, b),
        };
        pool.push(node);
    }
    // Fold the last few nodes together so several branches feed the loss.
    let mut acc = *pool.last().unwrap();
    for _ in 0..3 {
        let other = pool[srng.uniform_usize(pool.len())];
        acc = tape.add(acc, other);
    }
    let loss = tape.mean_all(acc);
    (tape, loss)
}

/// Property: the level scheduler matches the serial walk bit-for-bit on
/// randomized elementwise DAGs of many shapes and sizes (including tapes
/// below the dispatcher's size threshold, where `backward_levels` is called
/// directly).
#[test]
fn random_dags_levels_match_serial_bitwise() {
    let mut rng = StuqRng::new(0x9E7E1);
    let mut vrng = StuqRng::new(0x9E7E2);
    for case in 0..40 {
        let r = 1 + rng.uniform_usize(6);
        let c = 1 + rng.uniform_usize(6);
        let n_ops = 4 + rng.uniform_usize(60);
        let (tape, loss) = random_dag(&mut rng, &mut vrng, n_ops, r, c);
        let serial = tape.backward_serial(loss);
        let levels = tape.backward_levels(loss);
        assert_bit_identical(&serial, &levels, &format!("case {case}"));
        // The public entry point must agree with both, whichever engine it
        // picked for this tape size and pool configuration.
        let auto = tape.backward(loss);
        assert_bit_identical(&serial, &auto, &format!("case {case} (auto)"));
    }
}

/// A handcrafted diamond with heavy fan-out: one shared parameter feeds
/// three branches that later fan back in, plus the same slot mounted twice.
/// Exercises the multi-consumer delta assembly order explicitly.
#[test]
fn diamond_fanout_shared_params_bitwise() {
    let mut rng = StuqRng::new(0xD1A);
    let mut tape = Tape::new();
    let w = tape.param(0, randt(&mut rng, &[5, 5]));
    let w_again = tape.param(0, randt(&mut rng, &[5, 5]));
    let u = tape.param(1, randt(&mut rng, &[5, 5]));
    // Three branches off the same node (fan-out of w = 4, counting reuse).
    let b1 = tape.tanh(w);
    let b2 = tape.mul(w, u);
    let b3 = tape.sigmoid(w);
    let sq = tape.square(w_again); // same node consumed twice by one op
                                   // Fan back in.
    let m1 = tape.add(b1, b2);
    let m2 = tape.add(b3, sq);
    let top = tape.mul(m1, m2);
    let loss = tape.sum_all(top);
    let serial = tape.backward_serial(loss);
    let levels = tape.backward_levels(loss);
    assert_bit_identical(&serial, &levels, "diamond");
    assert_eq!(serial.len(), 2, "two parameter slots");
}

/// Property: matmul / matmul_tb adjoints (which themselves run the tiled,
/// row-parallel kernels) are bit-identical between the two engines, on tapes
/// large enough that [`Tape::backward`] really picks the level scheduler.
#[test]
fn matmul_grads_match_across_engines_bitwise() {
    let mut rng = StuqRng::new(0x3A7B);
    for case in 0..6 {
        let n = 24 + 8 * rng.uniform_usize(4);
        let mut tape = Tape::new();
        let a = tape.param(0, randt(&mut rng, &[n, n]));
        let b = tape.param(1, randt(&mut rng, &[n, n]));
        let c = tape.param(2, randt(&mut rng, &[n, n]));
        // Two independent matmul branches plus a matmul_tb branch, padded
        // with elementwise ops so the tape crosses the dispatcher threshold.
        let mut p = tape.matmul(a, b);
        let mut q = tape.matmul_tb(b, c);
        let mut s = tape.tanh(a);
        for _ in 0..10 {
            p = tape.scale(p, 0.9);
            q = tape.tanh(q);
            s = tape.mul(s, s);
        }
        let pq = tape.add(p, q);
        let top = tape.add(pq, s);
        let loss = tape.mean_all(top);
        let serial = tape.backward_serial(loss);
        let levels = tape.backward_levels(loss);
        assert_bit_identical(&serial, &levels, &format!("matmul case {case}"));
        let auto = tape.backward(loss);
        assert_bit_identical(&serial, &auto, &format!("matmul case {case} (auto)"));
        // And the whole thing must be invariant under a forced-serial pool.
        let forced = stuq_parallel::with_serial(|| tape.backward(loss));
        assert_bit_identical(&serial, &forced, &format!("matmul case {case} (forced)"));
    }
}

/// Property: a compiled [`ReplayPlan`] matches the serial walk bit-for-bit
/// on randomized DAGs — both on the tape it was compiled from and when
/// *reused* on a structurally identical tape with different values (the
/// batch-to-batch reuse pattern replay exists for).
#[test]
fn replay_matches_serial_bitwise_on_random_dags() {
    let mut meta = StuqRng::new(0x5E7A1);
    for case in 0u64..25 {
        let r = 1 + meta.uniform_usize(6);
        let c = 1 + meta.uniform_usize(6);
        let n_ops = 4 + meta.uniform_usize(60);
        let sseed = meta.next_u64();

        let (tape_a, loss_a) =
            random_dag(&mut StuqRng::new(sseed), &mut StuqRng::new(0xA + case), n_ops, r, c);
        let mut plan = ReplayPlan::compile(&tape_a, loss_a);
        let fresh = plan.run(&tape_a);
        assert_bit_identical(
            &tape_a.backward_serial(loss_a),
            &fresh,
            &format!("case {case} fresh"),
        );

        // Same structure stream, different value stream: the plan must both
        // match and replay bit-identically against the new data.
        let (tape_b, loss_b) =
            random_dag(&mut StuqRng::new(sseed), &mut StuqRng::new(0xB00 + case), n_ops, r, c);
        assert_eq!(
            tape_a.structural_sig(),
            tape_b.structural_sig(),
            "case {case}: same structure must hash equal"
        );
        assert!(plan.matches(&tape_b, loss_b), "case {case}: warm plan must match");
        let warm = plan.run(&tape_b);
        assert_bit_identical(&tape_b.backward_serial(loss_b), &warm, &format!("case {case} warm"));

        // A second warm run on the same tape (scratch reuse round-trip).
        let again = plan.run(&tape_b);
        assert_bit_identical(&warm, &again, &format!("case {case} rerun"));

        // The forced-serial pool is the engine-serial path the bench gate
        // times; it must not change a bit either.
        let forced = stuq_parallel::with_serial(|| plan.run(&tape_b));
        assert_bit_identical(&warm, &forced, &format!("case {case} forced-serial"));
    }
}

/// Plan invalidation: a tape with a different shape (the trainer's partial
/// final batch) hashes to a different signature, is rejected by
/// [`ReplayPlan::matches`], and forces a fresh compile through the cached
/// dispatcher rather than a stale replay.
#[test]
fn replay_plan_invalidated_on_shape_change() {
    let seed = 0xBA7C4;
    let (full, loss_full) = random_dag(&mut StuqRng::new(seed), &mut StuqRng::new(1), 60, 6, 5);
    let (partial, loss_partial) =
        random_dag(&mut StuqRng::new(seed), &mut StuqRng::new(2), 60, 3, 5);
    assert_ne!(
        full.structural_sig(),
        partial.structural_sig(),
        "shape change must change the signature"
    );
    let mut plan = ReplayPlan::compile(&full, loss_full);
    assert!(plan.matches(&full, loss_full));
    assert!(!plan.matches(&partial, loss_partial), "shape-changed tape must not match");
    let fresh = plan.run(&full);
    assert_bit_identical(&full.backward_serial(loss_full), &fresh, "full batch");

    // Through the public dispatcher: two structures → two compiles, then
    // alternating batches are all cache hits.
    if stuq_tensor::replay_enabled() {
        clear_replay_cache();
        reset_replay_stats();
        let a = full.backward(loss_full);
        let b = partial.backward(loss_partial);
        let a2 = full.backward(loss_full);
        let b2 = partial.backward(loss_partial);
        assert_bit_identical(&a, &a2, "full batch replayed");
        assert_bit_identical(&b, &b2, "partial batch replayed");
        assert_bit_identical(&full.backward_serial(loss_full), &a, "full vs serial");
        assert_bit_identical(&partial.backward_serial(loss_partial), &b, "partial vs serial");
        let (hits, compiles) = replay_stats();
        assert_eq!(compiles, 2, "one compile per structure");
        assert_eq!(hits, 2, "later batches hit the cache");
    }
}

/// Fused-chain gradients: a tape built almost entirely from single-consumer
/// unary chains (the GRU gate idiom `1 - z`, stacked activations, dropout)
/// must actually fuse — and still be bit-identical to the serial walk,
/// including chains terminating in a `Param` (direct deposit) and in a
/// multi-consumer node (edge write).
#[test]
fn fused_chain_gradients_match_serial_bitwise() {
    let mut rng = StuqRng::new(0xF05E);
    let mut tape = Tape::new();
    let w = tape.param(0, randt(&mut rng, &[6, 6]));
    let u = tape.param(1, randt(&mut rng, &[6, 6]));
    let x = tape.constant(randt(&mut rng, &[6, 6]));

    // Chain ending in a Param: sigmoid → one_minus (neg + add_scalar) → scale.
    let s = tape.sigmoid(u);
    let om = tape.one_minus(s);
    let g1 = tape.scale(om, 0.5);

    // Chain ending in a multi-consumer node: w feeds two branches, one of
    // which is a tanh → dropout → neg stack.
    let t = tape.tanh(w);
    let mut drng = StuqRng::new(7);
    let d = tape.dropout(t, 0.25, &mut drng);
    let n = tape.neg(d);
    let other = tape.mul(w, x); // second consumer of w

    // Chain ending in a non-fusable single-consumer op (matmul): its
    // adjoints run inside the fused task (Tail::Op).
    let mm = tape.matmul(w, u);
    let act = tape.relu(mm);
    let cl = tape.clamp(act, -2.0, 2.0);
    let e = tape.exp(cl);

    let mut acc = tape.add(g1, n);
    acc = tape.add(acc, other);
    acc = tape.add(acc, e);
    // Pad with an alternating unary stack so the tape crosses the
    // dispatcher's size threshold.
    for i in 0..40 {
        acc = if i % 2 == 0 { tape.tanh(acc) } else { tape.scale(acc, 1.01) };
    }
    let loss = tape.mean_all(acc);

    let mut plan = ReplayPlan::compile(&tape, loss);
    assert!(plan.fused_chains() > 0, "this tape must produce fused chains");
    assert!(plan.fused_nodes() >= 2 * plan.fused_chains(), "chains merge ≥ 2 nodes each");
    assert!(plan.n_tasks() < tape.len(), "fusion must shrink the schedule");
    let serial = tape.backward_serial(loss);
    assert_bit_identical(&serial, &plan.run(&tape), "fused plan");
    // And through the public dispatcher (replay or classic, must agree).
    assert_bit_identical(&serial, &tape.backward(loss), "dispatcher");
}

/// The structural signature ignores values (plan reuse across batches) but
/// is sensitive to every adjoint-relevant constant.
#[test]
fn structural_sig_ignores_values_but_not_constants() {
    let build = |scale: f32, value: f32| {
        let mut tape = Tape::new();
        let p = tape.param(0, Tensor::full(&[4, 4], value));
        let s = tape.scale(p, scale);
        let loss = tape.mean_all(s);
        (tape, loss)
    };
    let (a, _) = build(0.5, 1.0);
    let (b, _) = build(0.5, 2.0);
    let (c, _) = build(0.75, 1.0);
    assert_eq!(a.structural_sig(), b.structural_sig(), "values must not affect the sig");
    assert_ne!(a.structural_sig(), c.structural_sig(), "op constants must affect the sig");
}

/// Replay on vs. off through the public dispatcher: bit-identical, and the
/// disable scope restores replay afterwards.
#[test]
fn replay_disabled_scope_matches_enabled() {
    let (tape, loss) = random_dag(&mut StuqRng::new(0xD15), &mut StuqRng::new(3), 70, 5, 5);
    let on = tape.backward(loss);
    let off = stuq_tensor::with_replay_disabled(|| {
        assert!(!stuq_tensor::replay_enabled());
        tape.backward(loss)
    });
    assert_bit_identical(&on, &off, "replay on vs off");
}
