//! Property tests for the branch-parallel backward pass (DESIGN.md §9).
//!
//! The level scheduler ([`Tape::backward_levels`]) must be *bit-identical*
//! to the serial descending-id walk ([`Tape::backward_serial`]) on any tape
//! and any thread count — that is the contract the CI determinism gate
//! enforces by re-running this suite at `STUQ_THREADS=1,2,4`. The tests here
//! are hand-rolled proptest loops in the style of the kernel suite: a seeded
//! generator builds randomized DAG tapes (fan-out, fan-in, shared parameter
//! slots, matmul/matmul_tb grads) and every gradient is compared bit for
//! bit.

use stuq_tensor::{GradStore, StuqRng, Tape, Tensor};

fn randt(rng: &mut StuqRng, shape: &[usize]) -> Tensor {
    let len = shape.iter().product();
    Tensor::from_vec((0..len).map(|_| rng.normal_f32()).collect(), shape)
}

/// Asserts two gradient stores hold the same slots with bitwise-equal data.
fn assert_bit_identical(a: &GradStore, b: &GradStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: slot count differs");
    for (slot, ga) in a.iter() {
        let gb = b.get(slot).unwrap_or_else(|| panic!("{what}: slot {slot} missing"));
        assert_eq!(ga.shape(), gb.shape(), "{what}: slot {slot} shape differs");
        for (i, (x, y)) in ga.data().iter().zip(gb.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: slot {slot} elem {i}: {x} vs {y}");
        }
    }
}

/// Builds a random DAG tape of same-shaped nodes: a few parameters (with one
/// slot deliberately registered twice — shared weights), then a mix of unary
/// and binary ops whose operands are drawn from *all* earlier nodes, which
/// produces both fan-out (one node consumed many times) and fan-in. Returns
/// the tape and a scalar loss node.
fn random_dag(rng: &mut StuqRng, n_ops: usize, r: usize, c: usize) -> (Tape, usize) {
    let mut tape = Tape::new();
    let mut pool = Vec::new();
    let n_params = 2 + rng.uniform_usize(4);
    for slot in 0..n_params {
        pool.push(tape.param(slot, randt(rng, &[r, c])));
    }
    // Shared slot: the same parameter slot mounted at a second tape node.
    pool.push(tape.param(0, randt(rng, &[r, c])));
    pool.push(tape.constant(randt(rng, &[r, c])));

    for _ in 0..n_ops {
        let a = pool[rng.uniform_usize(pool.len())];
        let b = pool[rng.uniform_usize(pool.len())];
        let node = match rng.uniform_usize(8) {
            0 => tape.add(a, b),
            1 => tape.sub(a, b),
            2 => tape.mul(a, b),
            3 => tape.tanh(a),
            4 => tape.sigmoid(a),
            5 => tape.relu(a),
            6 => tape.scale(a, 0.5),
            _ => tape.max_elem(a, b),
        };
        pool.push(node);
    }
    // Fold the last few nodes together so several branches feed the loss.
    let mut acc = *pool.last().unwrap();
    for _ in 0..3 {
        let other = pool[rng.uniform_usize(pool.len())];
        acc = tape.add(acc, other);
    }
    let loss = tape.mean_all(acc);
    (tape, loss)
}

/// Property: the level scheduler matches the serial walk bit-for-bit on
/// randomized elementwise DAGs of many shapes and sizes (including tapes
/// below the dispatcher's size threshold, where `backward_levels` is called
/// directly).
#[test]
fn random_dags_levels_match_serial_bitwise() {
    let mut rng = StuqRng::new(0x9E7E1);
    for case in 0..40 {
        let r = 1 + rng.uniform_usize(6);
        let c = 1 + rng.uniform_usize(6);
        let n_ops = 4 + rng.uniform_usize(60);
        let (tape, loss) = random_dag(&mut rng, n_ops, r, c);
        let serial = tape.backward_serial(loss);
        let levels = tape.backward_levels(loss);
        assert_bit_identical(&serial, &levels, &format!("case {case}"));
        // The public entry point must agree with both, whichever engine it
        // picked for this tape size and pool configuration.
        let auto = tape.backward(loss);
        assert_bit_identical(&serial, &auto, &format!("case {case} (auto)"));
    }
}

/// A handcrafted diamond with heavy fan-out: one shared parameter feeds
/// three branches that later fan back in, plus the same slot mounted twice.
/// Exercises the multi-consumer delta assembly order explicitly.
#[test]
fn diamond_fanout_shared_params_bitwise() {
    let mut rng = StuqRng::new(0xD1A);
    let mut tape = Tape::new();
    let w = tape.param(0, randt(&mut rng, &[5, 5]));
    let w_again = tape.param(0, randt(&mut rng, &[5, 5]));
    let u = tape.param(1, randt(&mut rng, &[5, 5]));
    // Three branches off the same node (fan-out of w = 4, counting reuse).
    let b1 = tape.tanh(w);
    let b2 = tape.mul(w, u);
    let b3 = tape.sigmoid(w);
    let sq = tape.square(w_again); // same node consumed twice by one op
                                   // Fan back in.
    let m1 = tape.add(b1, b2);
    let m2 = tape.add(b3, sq);
    let top = tape.mul(m1, m2);
    let loss = tape.sum_all(top);
    let serial = tape.backward_serial(loss);
    let levels = tape.backward_levels(loss);
    assert_bit_identical(&serial, &levels, "diamond");
    assert_eq!(serial.len(), 2, "two parameter slots");
}

/// Property: matmul / matmul_tb adjoints (which themselves run the tiled,
/// row-parallel kernels) are bit-identical between the two engines, on tapes
/// large enough that [`Tape::backward`] really picks the level scheduler.
#[test]
fn matmul_grads_match_across_engines_bitwise() {
    let mut rng = StuqRng::new(0x3A7B);
    for case in 0..6 {
        let n = 24 + 8 * rng.uniform_usize(4);
        let mut tape = Tape::new();
        let a = tape.param(0, randt(&mut rng, &[n, n]));
        let b = tape.param(1, randt(&mut rng, &[n, n]));
        let c = tape.param(2, randt(&mut rng, &[n, n]));
        // Two independent matmul branches plus a matmul_tb branch, padded
        // with elementwise ops so the tape crosses the dispatcher threshold.
        let mut p = tape.matmul(a, b);
        let mut q = tape.matmul_tb(b, c);
        let mut s = tape.tanh(a);
        for _ in 0..10 {
            p = tape.scale(p, 0.9);
            q = tape.tanh(q);
            s = tape.mul(s, s);
        }
        let pq = tape.add(p, q);
        let top = tape.add(pq, s);
        let loss = tape.mean_all(top);
        let serial = tape.backward_serial(loss);
        let levels = tape.backward_levels(loss);
        assert_bit_identical(&serial, &levels, &format!("matmul case {case}"));
        let auto = tape.backward(loss);
        assert_bit_identical(&serial, &auto, &format!("matmul case {case} (auto)"));
        // And the whole thing must be invariant under a forced-serial pool.
        let forced = stuq_parallel::with_serial(|| tape.backward(loss));
        assert_bit_identical(&serial, &forced, &format!("matmul case {case} (forced)"));
    }
}
