//! Zero-dependency data-parallel runtime for the DeepSTUQ workspace.
//!
//! The build environment is fully offline, so `rayon` cannot be vendored;
//! this crate supplies the small slice of rayon that the hot paths need — a
//! persistent pool of worker threads plus chunked fan-out primitives — on top
//! of `std` alone. The API is deliberately deterministic: work is split into
//! chunks whose *boundaries* never depend on the thread count, each chunk is
//! processed by exactly one worker with a fixed internal order, and ordered
//! reduction is left to the caller. A kernel built on these primitives
//! therefore produces bit-identical output whether it runs on one thread or
//! sixteen (see DESIGN.md "Threading & determinism").
//!
//! Thread count resolution, checked once at first use:
//! 1. `STUQ_THREADS` (the training/CI knob),
//! 2. `STUQ_NUM_THREADS` (this repo's original spelling, kept working),
//! 3. `RAYON_NUM_THREADS` (honoured for drop-in familiarity),
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested calls never deadlock: a `par_*` call issued while another fan-out
//! is in flight (including from inside a worker) simply runs inline on the
//! calling thread.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, TryLockError};
use std::thread::JoinHandle;

/// A broadcast task handed to the workers.
///
/// The raw pointers reference stack data owned by the thread inside
/// [`Pool::run`]; they stay valid because `run` does not return until every
/// worker has reported completion of this generation.
#[derive(Clone, Copy)]
struct TaskRef {
    f: *const (dyn Fn(usize) + Sync),
    next: *const AtomicUsize,
    panicked: *const AtomicBool,
    n_chunks: usize,
}

// SAFETY: the pointers are only dereferenced while the submitting thread is
// blocked in `Pool::run`, which keeps the pointees alive; the pointee types
// themselves are Sync.
unsafe impl Send for TaskRef {}

struct Ctrl {
    generation: u64,
    task: Option<TaskRef>,
    /// Workers that have not yet finished the current generation.
    workers_left: usize,
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    start: Condvar,
    done: Condvar,
}

/// A persistent pool of `threads - 1` workers; the submitting thread is the
/// remaining participant. `threads == 1` means every task runs inline.
pub struct Pool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises submitters; a failed `try_lock` means another fan-out is in
    /// flight and the caller should run inline instead of queueing.
    submit: Mutex<()>,
    threads: usize,
}

impl Pool {
    /// Creates a pool that runs tasks on `threads` threads in total.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(Shared {
            ctrl: Mutex::new(Ctrl { generation: 0, task: None, workers_left: 0, shutdown: false }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stuq-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn stuq-parallel worker")
            })
            .collect();
        Self { shared, handles, submit: Mutex::new(()), threads }
    }

    /// Total number of threads (workers + the submitting thread).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0) … f(n_chunks - 1)` across the pool and returns when all
    /// chunks are done. Which thread runs which chunk is unspecified; callers
    /// must make chunks write disjoint data. Panics (once, on the submitting
    /// thread) if any chunk panicked.
    pub fn run(&self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        // Telemetry is observational only: counters/timing never influence
        // scheduling, so enabling it cannot perturb determinism.
        let telemetry = stuq_obs::summary_enabled();
        if telemetry {
            let m = stuq_obs::metrics();
            m.pool_fanouts.inc();
            m.pool_chunks.add(n_chunks as u64);
        }
        if self.handles.is_empty() || n_chunks == 1 || in_serial_region() {
            if telemetry {
                stuq_obs::metrics().pool_inline.inc();
            }
            run_inline(n_chunks, f);
            return;
        }
        // A held submit lock means a fan-out is already in flight (possibly
        // ours, transitively): degrade to inline execution, never deadlock.
        let guard = match self.submit.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                if telemetry {
                    stuq_obs::metrics().pool_inline.inc();
                }
                run_inline(n_chunks, f);
                return;
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let t_start = stuq_obs::trace_enabled().then(std::time::Instant::now);

        let next = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        // SAFETY: erases the borrow's lifetime. Sound because `run` blocks
        // below until every worker has finished with the pointer.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let task = TaskRef {
            f: f_erased as *const _,
            next: &next as *const _,
            panicked: &panicked as *const _,
            n_chunks,
        };
        {
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.generation += 1;
            ctrl.task = Some(task);
            ctrl.workers_left = self.handles.len();
            self.shared.start.notify_all();
        }
        // The submitter works too.
        drain_chunks(f, &next, &panicked, n_chunks);
        {
            let mut ctrl = lock(&self.shared.ctrl);
            while ctrl.workers_left > 0 {
                ctrl =
                    self.shared.done.wait(ctrl).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            ctrl.task = None;
        }
        drop(guard);
        if let Some(t) = t_start {
            stuq_obs::metrics().pool_run_seconds.record(t.elapsed().as_secs_f64());
        }
        assert!(!panicked.load(Ordering::SeqCst), "stuq-parallel: a worker chunk panicked");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn lock(m: &Mutex<Ctrl>) -> std::sync::MutexGuard<'_, Ctrl> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut ctrl = lock(&shared.ctrl);
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.generation != seen {
                    seen = ctrl.generation;
                    break ctrl.task.expect("generation bumped without a task");
                }
                ctrl = shared.start.wait(ctrl).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: the submitter blocks in `Pool::run` until we decrement
        // `workers_left` below, so the pointees outlive this use.
        let (f, next, panicked) = unsafe { (&*task.f, &*task.next, &*task.panicked) };
        drain_chunks(f, next, panicked, task.n_chunks);
        let mut ctrl = lock(&shared.ctrl);
        ctrl.workers_left -= 1;
        if ctrl.workers_left == 0 {
            shared.done.notify_all();
        }
    }
}

fn drain_chunks(
    f: &(dyn Fn(usize) + Sync),
    next: &AtomicUsize,
    panicked: &AtomicBool,
    n_chunks: usize,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            return;
        }
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            panicked.store(true, Ordering::SeqCst);
        }
    }
}

fn run_inline(n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    for i in 0..n_chunks {
        f(i);
    }
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The configured global thread count (resolved once).
pub fn num_threads() -> usize {
    global().num_threads()
}

/// The process-wide pool used by [`par_for`] and friends.
pub fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = env_threads("STUQ_THREADS")
            .or_else(|| env_threads("STUQ_NUM_THREADS"))
            .or_else(|| env_threads("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            });
        Pool::new(n)
    })
}

thread_local! {
    static SERIAL_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn in_serial_region() -> bool {
    SERIAL_DEPTH.with(std::cell::Cell::get) > 0
}

/// True while the current thread is inside a [`with_serial`] scope.
///
/// Schedulers that *restructure* work for parallel execution (rather than
/// merely fanning out identical chunks) consult this so a `with_serial`
/// baseline really exercises the serial code path end to end.
pub fn serial_forced() -> bool {
    in_serial_region()
}

/// Runs `f` with all `par_*` calls on this thread forced inline.
///
/// Used by tests (and benches) to compare the one-thread and N-thread
/// executions of the same code path within a single process.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    SERIAL_DEPTH.with(|d| d.set(d.get() + 1));
    let out = f();
    SERIAL_DEPTH.with(|d| d.set(d.get() - 1));
    out
}

/// Fans `f(0) … f(n_chunks - 1)` out over the global pool.
pub fn par_for(n_chunks: usize, f: impl Fn(usize) + Sync) {
    global().run(n_chunks, &f);
}

/// Splits `0..len` into fixed `chunk`-sized ranges and fans them out.
///
/// Chunk boundaries depend only on `len` and `chunk`, never on the thread
/// count — the cornerstone of the determinism contract.
pub fn par_ranges(len: usize, chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    par_for(n_chunks, |c| {
        let start = c * chunk;
        f(start..(start + chunk).min(len));
    });
}

/// Computes `[f(0), …, f(n - 1)]` in parallel, returned in index order.
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots = SendPtr::new(out.as_mut_ptr());
    par_for(n, |i| {
        // SAFETY: each index is written by exactly one chunk.
        unsafe { *slots.get().add(i) = Some(f(i)) };
    });
    out.into_iter().map(|s| s.expect("par_map chunk skipped")).collect()
}

/// A precomputed fan-out schedule: chunk boundaries decided once, replayed
/// on every [`StaticSchedule::run`].
///
/// [`par_ranges`] re-derives its chunking on every call; schedulers that
/// dispatch the *same* index space many times (the tape-replay backward,
/// DESIGN.md §14) build the chunk list once — optionally cost-balanced via
/// [`StaticSchedule::balanced`] — and replay it with zero per-call
/// bookkeeping. Boundaries depend only on the construction inputs, never on
/// the thread count, so the determinism contract is inherited unchanged.
#[derive(Clone, Debug)]
pub struct StaticSchedule {
    chunks: Vec<(usize, usize)>,
}

impl StaticSchedule {
    /// Fixed `chunk`-sized ranges over `0..len` ([`par_ranges`]'s split,
    /// frozen).
    pub fn fixed(len: usize, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        Self {
            chunks: (0..len.div_ceil(chunk))
                .map(|c| (c * chunk, ((c + 1) * chunk).min(len)))
                .collect(),
        }
    }

    /// Cost-balanced ranges over `0..costs.len()`: consecutive items are
    /// grouped until a chunk's summed cost reaches `target_cost`, so many
    /// light items share one dispatch while a heavy item gets its own.
    /// Boundaries are a pure function of `costs` and `target_cost`.
    pub fn balanced(costs: &[u64], target_cost: u64) -> Self {
        let target = target_cost.max(1);
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &c) in costs.iter().enumerate() {
            acc = acc.saturating_add(c);
            if acc >= target {
                chunks.push((start, i + 1));
                start = i + 1;
                acc = 0;
            }
        }
        if start < costs.len() {
            chunks.push((start, costs.len()));
        }
        Self { chunks }
    }

    /// Number of chunks in the schedule.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// True when the schedule covers no items.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Fans `f(range)` out over the global pool, one call per frozen chunk.
    /// Single-chunk schedules run inline via the pool's fast path.
    pub fn run(&self, f: impl Fn(Range<usize>) + Sync) {
        par_for(self.chunks.len(), |c| {
            let (s, e) = self.chunks[c];
            f(s..e);
        });
    }
}

/// A raw pointer that asserts cross-thread shareability.
///
/// For kernels whose chunks write *disjoint* regions of one buffer (e.g.
/// distinct output rows of a matmul): wrap the base pointer, hand it to
/// [`par_for`], and offset per chunk. The caller is responsible for
/// disjointness — that is the `unsafe` contract of [`SendPtr::get`].
pub struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Wraps a base pointer for use inside a parallel region.
    pub fn new(p: *mut T) -> Self {
        Self(p)
    }

    /// The wrapped pointer. Callers must ensure writes through it from
    /// different chunks never alias.
    ///
    /// # Safety contract
    /// Marked safe for call-site ergonomics; every dereference of the
    /// returned pointer is itself `unsafe` and must uphold disjointness.
    pub fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: SendPtr is a capability assertion made by the constructor's caller;
// see the type-level docs.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_chunk_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn pool_is_reusable_across_generations() {
        let pool = Pool::new(3);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run(round + 1, &|i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            let n = round + 1;
            assert_eq!(sum.load(Ordering::SeqCst), n * (n + 1) / 2);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let main_id = std::thread::current().id();
        pool.run(8, &|_| assert_eq!(std::thread::current().id(), main_id));
    }

    #[test]
    fn nested_par_for_degrades_to_inline_without_deadlock() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        pool.run(8, &|_| {
            // Inner fan-out while the outer one holds the submit lock.
            global().run(8, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let out = par_map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn par_ranges_covers_len_with_fixed_boundaries() {
        let len = 1003;
        let mut seen = vec![false; len];
        let flags = SendPtr::new(seen.as_mut_ptr());
        par_ranges(len, 64, |r| {
            assert_eq!(r.start % 64, 0, "boundaries must sit on fixed multiples");
            for i in r {
                unsafe { *flags.get().add(i) = true };
            }
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn with_serial_forces_inline_execution() {
        let pool = Pool::new(4);
        let main_id = std::thread::current().id();
        with_serial(|| {
            pool.run(16, &|_| assert_eq!(std::thread::current().id(), main_id));
        });
    }

    #[test]
    fn static_schedule_fixed_matches_par_ranges_boundaries() {
        let sched = StaticSchedule::fixed(1003, 64);
        let mut seen = vec![false; 1003];
        let flags = SendPtr::new(seen.as_mut_ptr());
        sched.run(|r| {
            assert_eq!(r.start % 64, 0, "boundaries must sit on fixed multiples");
            for i in r {
                unsafe { *flags.get().add(i) = true };
            }
        });
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sched.n_chunks(), 1003usize.div_ceil(64));
    }

    #[test]
    fn static_schedule_balanced_groups_by_cost() {
        // Light items coalesce; the heavy item closes its chunk on its own.
        let sched = StaticSchedule::balanced(&[1, 1, 1, 100, 1, 1], 10);
        let mut covered = vec![false; 6];
        let flags = SendPtr::new(covered.as_mut_ptr());
        sched.run(|r| {
            for i in r {
                unsafe { *flags.get().add(i) = true };
            }
        });
        assert!(covered.iter().all(|&s| s));
        // (0..4) crosses the target at the heavy item, (4..6) is the tail.
        assert_eq!(sched.n_chunks(), 2);
        assert!(StaticSchedule::balanced(&[], 10).is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let pool = Pool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| assert!(i != 2, "boom"));
        }));
        assert!(res.is_err());
        // Pool stays usable after a panicked generation.
        let sum = AtomicUsize::new(0);
        pool.run(4, &|i| {
            sum.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }
}
