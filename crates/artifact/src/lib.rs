//! Crash-safe artifact I/O shared by every on-disk format in the workspace.
//!
//! Two failure modes threaten a long training run's artifacts:
//!
//! 1. **partial writes** — the process (or machine) dies mid-`write`, leaving
//!    a truncated file that a later load misparses or, worse, half-parses;
//! 2. **silent corruption** — a flipped bit anywhere in the payload changes a
//!    hex-encoded float without breaking the line structure, so the artifact
//!    still *loads* but the model it describes is garbage.
//!
//! [`write_atomic`] defeats the first: the payload goes to a temporary file in
//! the *same directory* (same filesystem, so `rename` is atomic), is fsynced,
//! and only then renamed over the destination. Readers therefore observe
//! either the old complete file or the new complete file, never a mixture.
//!
//! [`write_atomic_checksummed`] / [`read_verified`] defeat the second: the
//! payload is terminated by a `checksum fnv1a64 <16 hex digits>` trailer line
//! covering every preceding byte. [`read_verified`] distinguishes a missing
//! trailer (truncation) from a mismatching digest (corruption) so tests and
//! operators can tell the failure modes apart.
//!
//! The digest is FNV-1a 64 — not cryptographic, but implemented in ~5 lines
//! with no dependencies (the build environment is offline; DESIGN.md §5) and
//! more than strong enough to catch truncation, bit flips and editor mangling.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// The trailer-line prefix appended by [`write_atomic_checksummed`].
pub const CHECKSUM_PREFIX: &str = "checksum fnv1a64 ";

/// FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename, best-effort directory fsync. Creates parent directories.
///
/// A reader racing this call sees either the previous file content or the
/// full new content — never a torn write. A crash mid-call leaves at worst a
/// stale `.tmp` file beside the (untouched) destination.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            p.to_path_buf()
        }
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| invalid(format!("cannot write to {path:?}: no file name")))?;
    // Suffix with the pid so concurrent writers in tests don't clobber each
    // other's temp files; the final rename still serialises correctly.
    let tmp = parent.join(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
    let result = (|| {
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Persist the rename itself. Directory fsync is not supported on every
    // platform/filesystem, so failures here are tolerated.
    if let Ok(dir) = File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

/// Atomically writes `payload` followed by a checksum trailer line covering
/// every payload byte. Read it back with [`read_verified`].
pub fn write_atomic_checksummed(path: impl AsRef<Path>, payload: &[u8]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(payload.len() + CHECKSUM_PREFIX.len() + 17);
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(format!("{CHECKSUM_PREFIX}{:016x}\n", fnv1a64(payload)).as_bytes());
    write_atomic(path, &bytes)
}

/// Appends a checksum trailer to an in-memory payload (for callers that need
/// to stage bytes without touching disk, e.g. corruption tests).
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + CHECKSUM_PREFIX.len() + 17);
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(format!("{CHECKSUM_PREFIX}{:016x}\n", fnv1a64(payload)).as_bytes());
    bytes
}

/// Verifies the checksum trailer of `bytes` and returns the payload slice.
///
/// Errors are distinct per failure mode: a file with no trailer (truncated
/// before the final line) reports `missing checksum trailer`; a trailer whose
/// digest disagrees with the payload reports `checksum mismatch`.
pub fn verify(bytes: &[u8]) -> io::Result<&[u8]> {
    // The trailer is the final newline-terminated line.
    let without_nl = match bytes.last() {
        Some(b'\n') => &bytes[..bytes.len() - 1],
        _ => return Err(invalid("missing checksum trailer (file truncated?)")),
    };
    let line_start = without_nl.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    let trailer = std::str::from_utf8(&without_nl[line_start..])
        .map_err(|_| invalid("missing checksum trailer (file truncated?)"))?;
    let digest_hex = trailer
        .strip_prefix(CHECKSUM_PREFIX)
        .ok_or_else(|| invalid("missing checksum trailer (file truncated?)"))?;
    let expected = u64::from_str_radix(digest_hex.trim(), 16)
        .map_err(|_| invalid(format!("malformed checksum trailer {trailer:?}")))?;
    let payload = &bytes[..line_start];
    let actual = fnv1a64(payload);
    if actual != expected {
        return Err(invalid(format!(
            "checksum mismatch: file says {expected:016x}, payload hashes to {actual:016x}"
        )));
    }
    Ok(payload)
}

/// Reads `path` and verifies its checksum trailer, returning the payload.
pub fn read_verified(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let payload = verify(&bytes).map_err(|e| invalid(format!("{}: {e}", path.display())))?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join("stuq_artifact_test").join(name)
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn atomic_write_roundtrip() {
        let p = tmp("plain.txt");
        write_atomic(&p, b"hello\nworld\n").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"hello\nworld\n");
        // Overwrite is also atomic and replaces content fully.
        write_atomic(&p, b"second\n").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second\n");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn no_temp_file_survives() {
        let p = tmp("clean.txt");
        write_atomic(&p, b"x").unwrap();
        let dir = p.parent().unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("clean.txt.tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn checksummed_roundtrip() {
        let p = tmp("sealed.txt");
        let payload = b"line one\nline two\n";
        write_atomic_checksummed(&p, payload).unwrap();
        let back = read_verified(&p).unwrap();
        assert_eq!(back, payload);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn truncation_reports_missing_trailer() {
        let p = tmp("trunc.txt");
        write_atomic_checksummed(&p, b"payload line\n").unwrap();
        let bytes = fs::read(&p).unwrap();
        // Drop the trailer line entirely — simulates a crash before the
        // final write (pre-atomic-write behaviour).
        fs::write(&p, &bytes[..bytes.len() - (CHECKSUM_PREFIX.len() + 17)]).unwrap();
        let err = read_verified(&p).unwrap_err();
        assert!(err.to_string().contains("missing checksum trailer"), "{err}");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn bit_flip_reports_checksum_mismatch() {
        let p = tmp("flip.txt");
        write_atomic_checksummed(&p, b"3f800000 40000000\n").unwrap();
        let mut bytes = fs::read(&p).unwrap();
        bytes[2] ^= 0x01; // flip one payload bit
        fs::write(&p, &bytes).unwrap();
        let err = read_verified(&p).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn seal_then_verify_is_identity() {
        let sealed = seal(b"abc\n");
        assert_eq!(verify(&sealed).unwrap(), b"abc\n");
    }

    #[test]
    fn empty_file_is_rejected() {
        let p = tmp("empty.txt");
        write_atomic(&p, b"").unwrap();
        assert!(read_verified(&p).is_err());
        fs::remove_file(&p).ok();
    }
}
