//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line in, one response line per request out. Every
//! response is typed by its `"type"` field — `forecast` (normal or
//! degraded), `rejected`, `fallback`, `error`, `health`, `ack` — so a
//! client can always dispatch on one closed enum, whatever state the
//! server is in. See README "Serving" for a transcript and DESIGN.md §11
//! for the contract.
//!
//! Matrices are nested arrays: request `x` is time-major `[t_h][n_nodes]`
//! (the same layout as a dataset window); response `mu`/`sigma`/`lower`/
//! `upper` are node-major `[n_nodes][horizon]`. Non-finite floats use the
//! `"NaN"`/`"inf"`/`"-inf"` marker strings, as in the event log.
//!
//! ## Cluster additions (DESIGN.md §13)
//!
//! The sharded cluster speaks the *same* protocol — a router looks like a
//! server to clients and like a client to its workers — plus a handful of
//! internal control requests and response annotations:
//!
//! * requests `ping` (liveness), `assign {shard, shards}` (shard-map
//!   replay on spawn/rejoin), and the two-phase reload trio
//!   `prepare_reload` / `commit_reload` / `abort_reload`, each answered
//!   with an `ack`;
//! * every `forecast` response carries `"model"`: the checksum of the
//!   artifact that produced it, so a mixed-version window is visible as a
//!   non-uniform `model` field (the router turns any skewed shard slice
//!   into a typed fallback rather than merging it);
//! * router-merged forecasts carry `"partial"` (plus a `"shards"` detail
//!   array with one `{shard, status, reason}` entry per non-ok shard), and
//!   router-side rejections carry the failing `"shard"` — worker-typed
//!   reasons (`queue_full`, `breaker_open`, …) are forwarded verbatim,
//!   never flattened into a generic error. [`strip_cluster_meta`] removes
//!   the annotation block for byte-identity comparisons, exactly as
//!   [`strip_batch_meta`] does for the batching annotations.
//!
//! ## Trace context (DESIGN.md §15)
//!
//! When tracing is on, requests and scatter RPCs may carry two optional
//! string fields, `"trace"` and `"span"` — each a 16-hex-digit id
//! ([`stuq_obs::trace::fmt_id`]). On a scatter sub-request `trace` is the
//! request's trace id and `span` the router's per-shard span, which becomes
//! the parent of the worker's own spans. Forecast/fallback responses from a
//! tracing server are annotated with the same two fields so a client can
//! join its response to the reconstructed timeline; [`strip_trace_meta`]
//! removes that fixed-width block, and traced vs untraced responses are
//! byte-identical through it.
//!
//! Telemetry scrape requests: `{"type":"metrics"}` asks a worker for its
//! raw counters (answered `{"type":"metrics","counters":{…}}`);
//! `{"type":"cluster-metrics"}` asks a *router* for the cluster-merged
//! Prometheus export (counters summed across itself and every live worker).

use crate::json::{escape, parse, Json};
use stuq_tensor::Tensor;

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Run a forecast.
    Forecast(ForecastReq),
    /// Report health/readiness.
    Healthz {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Validate + swap the watched model artifact now.
    Reload {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Stop admitting forecasts; finish what is queued.
    Drain {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Drain, then exit the serve loop.
    Shutdown {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Cluster liveness probe (supervisor → worker); answered with an ack.
    Ping {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Shard-map assignment, replayed to a worker on spawn and rejoin.
    Assign {
        /// Echoed request id.
        id: Option<String>,
        /// This worker's shard index.
        shard: usize,
        /// Total shard count in the cluster.
        shards: usize,
    },
    /// Phase one of the cluster-wide reload: validate + stage the artifact,
    /// swap nothing yet.
    PrepareReload {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Phase two: swap the staged candidate in (bumps the cache generation).
    CommitReload {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Drop the staged candidate without swapping (no generation bump).
    AbortReload {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Dump this process's raw metric counters (router → worker scrape).
    Metrics {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Serve the cluster-merged Prometheus export (client → router).
    ClusterMetrics {
        /// Echoed request id.
        id: Option<String>,
    },
}

/// A forecast request.
#[derive(Debug)]
pub struct ForecastReq {
    /// Client-chosen id, echoed on the response.
    pub id: Option<String>,
    /// Input window, time-major `[t_h][n_nodes]`, raw units.
    pub x: Vec<Vec<f32>>,
    /// Per-request deadline in (logical) milliseconds.
    pub deadline_ms: Option<u64>,
    /// MC sample-count override.
    pub mc: Option<usize>,
    /// Per-request RNG seed (makes the response independent of arrival
    /// order; defaults to the server seed forked by the request counter).
    pub seed: Option<u64>,
    /// Data tick the window was observed at. Seedless requests with a tick
    /// derive their RNG from (server seed, tick), so same-tick requests for
    /// the same window share MC samples when co-batched and are cacheable.
    pub tick: Option<u64>,
    /// Node subset to answer for (indices into the model's sensor set, in
    /// the requested order). The forecast is still computed — or cached —
    /// over the full grid; this only slices the response.
    pub nodes: Option<Vec<usize>>,
    /// Horizon prefix to answer (1..=model horizon); response-slicing only.
    pub horizon: Option<usize>,
    /// Trace context: the request's trace id, carried on scatter RPCs so a
    /// worker's spans join the router's timeline. Purely observational —
    /// never touches the forecast.
    pub trace: Option<u64>,
    /// Trace context: the parent span for this hop (the router's per-shard
    /// span on a scatter RPC).
    pub span: Option<u64>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub struct ParseError {
    /// Id, when it could still be extracted.
    pub id: Option<String>,
    /// Human-readable cause.
    pub detail: String,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let v = parse(line).map_err(|detail| ParseError { id: None, detail })?;
    let id = v.get("id").and_then(Json::as_str).map(str::to_owned);
    let err = |detail: String| ParseError { id: id.clone(), detail };
    let ty = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing request field \"type\"".into()))?;
    match ty {
        "healthz" => Ok(Request::Healthz { id }),
        "reload" => Ok(Request::Reload { id }),
        "drain" => Ok(Request::Drain { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "ping" => Ok(Request::Ping { id }),
        "prepare_reload" => Ok(Request::PrepareReload { id }),
        "commit_reload" => Ok(Request::CommitReload { id }),
        "abort_reload" => Ok(Request::AbortReload { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "cluster-metrics" => Ok(Request::ClusterMetrics { id }),
        "assign" => {
            let shard = v
                .get("shard")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("\"assign\" needs a \"shard\" index".into()))?
                as usize;
            let shards = v
                .get("shards")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("\"assign\" needs a \"shards\" count".into()))?
                as usize;
            if shards == 0 {
                return Err(err("\"shards\" must be at least 1".into()));
            }
            if shard >= shards {
                return Err(err(format!("\"shard\" {shard} out of range ({shards} shards)")));
            }
            Ok(Request::Assign { id, shard, shards })
        }
        "forecast" => {
            let rows = v
                .get("x")
                .and_then(Json::as_arr)
                .ok_or_else(|| err("forecast request needs a matrix field \"x\"".into()))?;
            if rows.is_empty() {
                return Err(err("\"x\" must have at least one row".into()));
            }
            let mut x = Vec::with_capacity(rows.len());
            let mut width = None;
            for (i, row) in rows.iter().enumerate() {
                let cells =
                    row.as_arr().ok_or_else(|| err(format!("\"x\" row {i} is not an array")))?;
                match width {
                    None => width = Some(cells.len()),
                    Some(w) if w != cells.len() => {
                        return Err(err(format!(
                            "\"x\" is ragged: row {i} has {} cells, row 0 has {w}",
                            cells.len()
                        )));
                    }
                    _ => {}
                }
                let mut out = Vec::with_capacity(cells.len());
                for (j, c) in cells.iter().enumerate() {
                    let f = c
                        .as_f64()
                        .ok_or_else(|| err(format!("\"x\"[{i}][{j}] is not a number")))?;
                    out.push(f as f32);
                }
                x.push(out);
            }
            if width == Some(0) {
                return Err(err("\"x\" rows must not be empty".into()));
            }
            let deadline_ms =
                match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(d) => Some(d.as_u64().ok_or_else(|| {
                        err("\"deadline_ms\" must be a non-negative integer".into())
                    })?),
                };
            let mc = match v.get("mc") {
                None | Some(Json::Null) => None,
                Some(m) => {
                    let m = m
                        .as_u64()
                        .ok_or_else(|| err("\"mc\" must be a positive integer".into()))?;
                    if m == 0 {
                        return Err(err("\"mc\" must be at least 1".into()));
                    }
                    Some(m as usize)
                }
            };
            let seed = match v.get("seed") {
                None | Some(Json::Null) => None,
                Some(s) => Some(
                    s.as_u64()
                        .ok_or_else(|| err("\"seed\" must be a non-negative integer".into()))?,
                ),
            };
            let tick = match v.get("tick") {
                None | Some(Json::Null) => None,
                Some(t) => Some(
                    t.as_u64()
                        .ok_or_else(|| err("\"tick\" must be a non-negative integer".into()))?,
                ),
            };
            let nodes = match v.get("nodes") {
                None | Some(Json::Null) => None,
                Some(n) => {
                    let arr = n
                        .as_arr()
                        .ok_or_else(|| err("\"nodes\" must be an array of indices".into()))?;
                    if arr.is_empty() {
                        return Err(err("\"nodes\" must not be empty".into()));
                    }
                    let mut out = Vec::with_capacity(arr.len());
                    for (k, c) in arr.iter().enumerate() {
                        let idx = c.as_u64().ok_or_else(|| {
                            err(format!("\"nodes\"[{k}] is not a non-negative integer"))
                        })?;
                        out.push(idx as usize);
                    }
                    Some(out)
                }
            };
            let horizon = match v.get("horizon") {
                None | Some(Json::Null) => None,
                Some(h) => {
                    let h = h
                        .as_u64()
                        .ok_or_else(|| err("\"horizon\" must be a positive integer".into()))?;
                    if h == 0 {
                        return Err(err("\"horizon\" must be at least 1".into()));
                    }
                    Some(h as usize)
                }
            };
            let trace_ctx = |key: &str| match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(t) => t
                    .as_str()
                    .and_then(stuq_obs::trace::parse_id)
                    .map(Some)
                    .ok_or_else(|| err(format!("{key:?} must be a 16-hex-digit id"))),
            };
            let trace = trace_ctx("trace")?;
            let span = trace_ctx("span")?;
            Ok(Request::Forecast(ForecastReq {
                id,
                x,
                deadline_ms,
                mc,
                seed,
                tick,
                nodes,
                horizon,
                trace,
                span,
            }))
        }
        other => Err(err(format!("unknown request type {other:?}"))),
    }
}

/// Formats one f32 for the wire (non-finite values become markers).
pub fn fmt_f32(v: f32) -> String {
    if v.is_nan() {
        "\"NaN\"".into()
    } else if v == f32::INFINITY {
        "\"inf\"".into()
    } else if v == f32::NEG_INFINITY {
        "\"-inf\"".into()
    } else {
        format!("{v}")
    }
}

/// Renders a `[rows, cols]` tensor as a nested JSON array.
pub fn render_matrix(t: &Tensor) -> String {
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    let mut out = String::with_capacity(rows * cols * 8);
    out.push('[');
    for r in 0..rows {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for c in 0..cols {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&fmt_f32(t.get(r, c)));
        }
        out.push(']');
    }
    out.push(']');
    out
}

fn push_id(out: &mut String, id: &Option<String>) {
    if let Some(id) = id {
        out.push_str(",\"id\":");
        out.push_str(&escape(id));
    }
}

/// Interval payload shared by `forecast` and `fallback` responses.
pub struct Intervals<'a> {
    /// Predictive mean `[n_nodes][horizon]`, raw units.
    pub mu: &'a Tensor,
    /// Total predictive σ, raw units.
    pub sigma: &'a Tensor,
    /// 95 % lower bound.
    pub lower: &'a Tensor,
    /// 95 % upper bound.
    pub upper: &'a Tensor,
}

fn push_intervals(out: &mut String, iv: &Intervals<'_>) {
    out.push_str(",\"mu\":");
    out.push_str(&render_matrix(iv.mu));
    out.push_str(",\"sigma\":");
    out.push_str(&render_matrix(iv.sigma));
    out.push_str(",\"lower\":");
    out.push_str(&render_matrix(iv.lower));
    out.push_str(",\"upper\":");
    out.push_str(&render_matrix(iv.upper));
}

/// Batching/caching accounting on a forecast response. These three fields
/// are *annotations*: they describe how the answer was produced, never what
/// it is. Byte-identity guarantees between the batched and unbatched serve
/// paths are therefore stated modulo this block — [`strip_batch_meta`]
/// removes it for such comparisons (DESIGN.md §12).
#[derive(Clone, Copy, Debug)]
pub struct ForecastMeta {
    /// True when the request was co-processed with at least one other.
    pub batched: bool,
    /// Number of requests in the processed batch (1 on the solo path).
    pub batch_size: usize,
    /// True when the response was answered from the forecast cache without
    /// touching the model.
    pub cache_hit: bool,
}

impl ForecastMeta {
    /// The solo, uncached path (sync mode and batch-of-one).
    pub fn solo() -> Self {
        ForecastMeta { batched: false, batch_size: 1, cache_hit: false }
    }
}

fn push_forecast_head(
    out: &mut String,
    id: &Option<String>,
    samples_used: usize,
    samples_requested: usize,
    model: &str,
) {
    let degraded = samples_used < samples_requested;
    let inflation = samples_requested as f32 / samples_used as f32;
    out.push_str("{\"type\":\"forecast\"");
    push_id(out, id);
    out.push_str(&format!(
        ",\"degraded\":{degraded},\"samples_used\":{samples_used},\"samples_requested\":{samples_requested},\"variance_inflation\":{}",
        fmt_f32(inflation)
    ));
    out.push_str(&format!(",\"model\":{}", escape(model)));
}

/// A normal or degraded forecast response. `model` is the checksum of the
/// artifact that produced it — in a cluster, a router can prove every merged
/// slice came from the same model version by comparing this field.
pub fn resp_forecast(
    id: &Option<String>,
    samples_used: usize,
    samples_requested: usize,
    model: &str,
    meta: &ForecastMeta,
    iv: &Intervals<'_>,
) -> String {
    let mut out = String::with_capacity(256);
    push_forecast_head(&mut out, id, samples_used, samples_requested, model);
    out.push_str(&format!(
        ",\"batched\":{},\"batch_size\":{},\"cache_hit\":{}",
        meta.batched, meta.batch_size, meta.cache_hit
    ));
    push_intervals(&mut out, iv);
    out.push('}');
    out
}

/// Removes the contiguous `"batched"/"batch_size"/"cache_hit"` annotation
/// block from a response line, leaving the semantic payload. Tests and the
/// bench binary compare batched-vs-unbatched streams through this — the
/// annotations exist precisely to tell the execution paths apart, so they
/// are excluded from the byte-identity contract. Non-forecast lines pass
/// through unchanged.
pub fn strip_batch_meta(line: &str) -> String {
    let Some(start) = line.find(",\"batched\":") else {
        return line.to_string();
    };
    let tail = &line[start..];
    // The block ends after the "cache_hit" boolean.
    let Some(ch) = tail.find(",\"cache_hit\":") else {
        return line.to_string();
    };
    let after_key = &tail[ch + ",\"cache_hit\":".len()..];
    let bool_len = if after_key.starts_with("true") {
        4
    } else if after_key.starts_with("false") {
        5
    } else {
        return line.to_string();
    };
    let end = start + ch + ",\"cache_hit\":".len() + bool_len;
    format!("{}{}", &line[..start], &line[end..])
}

/// Appends the trace annotation to a rendered response line (before its
/// closing brace): `,"trace":"<16hex>","span":"<16hex>"`. Like the batching
/// annotations this describes how the answer was traced, never what it is —
/// [`strip_trace_meta`] removes it for byte-identity comparisons.
pub fn push_trace_meta(line: &mut String, trace: u64, span: u64) {
    debug_assert!(line.ends_with('}'), "trace meta goes on a rendered object");
    line.pop();
    line.push_str(&format!(
        ",\"trace\":\"{}\",\"span\":\"{}\"}}",
        stuq_obs::trace::fmt_id(trace),
        stuq_obs::trace::fmt_id(span)
    ));
}

/// Width of the [`push_trace_meta`] block: `,"trace":"` + 16 hex + `"` (27)
/// plus `,"span":"` + 16 hex + `"` (26).
const TRACE_META_LEN: usize = 53;

/// Removes the fixed-width trace annotation appended by [`push_trace_meta`],
/// leaving the semantic payload. Traced-on vs traced-off responses are
/// byte-identical through this (the tracing determinism contract,
/// DESIGN.md §15). Untraced lines pass through unchanged.
pub fn strip_trace_meta(line: &str) -> String {
    let Some(start) = line.find(",\"trace\":\"") else {
        return line.to_string();
    };
    if line.len() < start + TRACE_META_LEN {
        return line.to_string();
    }
    format!("{}{}", &line[..start], &line[start + TRACE_META_LEN..])
}

/// Removes the router's `"partial"`/`"shards"` annotation block (and, via
/// [`strip_batch_meta`], the worker batching block), leaving the semantic
/// payload. A router-merged full response and a solo server's response to
/// the same request compare byte-equal through this. Lines without the
/// blocks pass through unchanged.
pub fn strip_cluster_meta(line: &str) -> String {
    let line = strip_batch_meta(line);
    let Some(start) = line.find(",\"partial\":") else {
        return line;
    };
    // The block ends where the interval payload begins.
    let Some(rel_end) = line[start..].find(",\"mu\":") else {
        return line;
    };
    format!("{}{}", &line[..start], &line[start + rel_end..])
}

/// Per-shard annotation on a router-merged response: how one shard's slice
/// was produced. `status` is `"ok"` (live forecast) or `"fallback"`
/// (persistence slice); non-ok entries carry the *worker's* typed reason
/// (`queue_full`, `breaker_open`, `model_fault`, `draining`) or a
/// router-observed one (`worker_down`, `rpc_timeout`, `version_skew`,
/// `worker_error`).
///
/// Replicated clusters (DESIGN.md §16) add two optional wire fields, both
/// inside the [`strip_cluster_meta`] window:
///
/// * `"replica"` — which replica produced the slice. Present only on
///   multi-replica clusters; single-replica responses render byte-identical
///   to pre-replica builds.
/// * `"attempts"` — the failover chain: each replica the router tried and
///   gave up on *before* this outcome, as `{"replica":R,"reason":"…"}` with
///   the same typed reason vocabulary as above (per-attempt reasons are
///   always router-observed transport classifications — a worker-typed
///   refusal ends the chain instead of advancing it, so it appears as the
///   note's own `reason`, never inside `attempts`).
///
/// A note is rendered when it is *noteworthy*: degraded (`status != "ok"`)
/// or annotated (non-empty `attempts`). A slice served live by a backup
/// replica after a failover is therefore recorded in `shards` while the
/// response stays `partial: false` — full fidelity, with the failover
/// attributed.
#[derive(Clone, Debug)]
pub struct ShardNote {
    /// Shard index.
    pub shard: usize,
    /// `"ok"` or `"fallback"`.
    pub status: &'static str,
    /// Typed reason when status is not `"ok"`.
    pub reason: Option<String>,
    /// Replica that produced the slice (multi-replica clusters only).
    pub replica: Option<usize>,
    /// Failed attempts the router advanced past: `(replica, typed reason)`.
    pub attempts: Vec<(usize, String)>,
}

impl ShardNote {
    /// A live slice with no annotations.
    pub fn ok(shard: usize) -> ShardNote {
        ShardNote { shard, status: "ok", reason: None, replica: None, attempts: Vec::new() }
    }

    /// A degraded slice with its typed reason.
    pub fn fallback(shard: usize, reason: &str) -> ShardNote {
        ShardNote { reason: Some(reason.to_string()), status: "fallback", ..ShardNote::ok(shard) }
    }

    /// True when the note must surface on the wire: the slice degraded, or
    /// a failover chain produced it.
    pub fn noteworthy(&self) -> bool {
        self.status != "ok" || !self.attempts.is_empty()
    }
}

fn push_shard_notes(out: &mut String, notes: &[ShardNote]) {
    out.push_str(",\"shards\":[");
    let mut first = true;
    for nt in notes.iter().filter(|n| n.noteworthy()) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{{\"shard\":{},\"status\":{}", nt.shard, escape(nt.status)));
        if let Some(r) = &nt.reason {
            out.push_str(&format!(",\"reason\":{}", escape(r)));
        }
        if let Some(r) = nt.replica {
            out.push_str(&format!(",\"replica\":{r}"));
        }
        if !nt.attempts.is_empty() {
            out.push_str(",\"attempts\":[");
            for (i, (replica, reason)) in nt.attempts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"replica\":{replica},\"reason\":{}}}", escape(reason)));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push(']');
}

/// A router-merged forecast. `partial` is true iff any shard's slice is a
/// fallback; the `shards` array lists every noteworthy shard — degraded
/// slices with their typed reasons, plus full-fidelity slices that went
/// through a replica failover (annotated but `partial: false`).
/// `samples_used` is the minimum over the live shards — the honest number,
/// since the weakest slice bounds the whole answer.
pub fn resp_cluster_forecast(
    id: &Option<String>,
    samples_used: usize,
    samples_requested: usize,
    model: &str,
    notes: &[ShardNote],
    iv: &Intervals<'_>,
) -> String {
    let partial = notes.iter().any(|n| n.status != "ok");
    let mut out = String::with_capacity(256);
    push_forecast_head(&mut out, id, samples_used, samples_requested, model);
    out.push_str(&format!(",\"partial\":{partial}"));
    if notes.iter().any(|n| n.noteworthy()) {
        push_shard_notes(&mut out, notes);
    }
    push_intervals(&mut out, iv);
    out.push('}');
    out
}

/// The cluster-wide fallback: *no* shard produced a live forecast, but every
/// shard could still be answered from persistence history. `reason` is the
/// first failing shard's reason; the `shards` array has the rest.
pub fn resp_cluster_fallback(
    id: &Option<String>,
    reason: &str,
    notes: &[ShardNote],
    iv: &Intervals<'_>,
) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"type\":\"fallback\"");
    push_id(&mut out, id);
    out.push_str(&format!(",\"reason\":{}", escape(reason)));
    push_shard_notes(&mut out, notes);
    push_intervals(&mut out, iv);
    out.push('}');
    out
}

/// A router-side rejection that names the shard whose typed refusal (or
/// outage, before any fallback history exists) killed the whole request.
pub fn resp_rejected_shard(id: &Option<String>, reason: &str, shard: usize) -> String {
    let mut out = String::with_capacity(80);
    out.push_str("{\"type\":\"rejected\"");
    push_id(&mut out, id);
    out.push_str(&format!(",\"reason\":{},\"shard\":{shard}}}", escape(reason)));
    out
}

/// The sliced interval payload a worker answered with, parsed back into
/// tensors. f32 values survive the wire exactly: they are rendered with the
/// shortest round-trip form, parsed as f64, and cast back — so a router can
/// re-render a merged matrix byte-for-byte.
pub struct OwnedIntervals {
    /// Predictive mean `[nodes][horizon]`.
    pub mu: Tensor,
    /// Total predictive σ.
    pub sigma: Tensor,
    /// 95 % lower bound.
    pub lower: Tensor,
    /// 95 % upper bound.
    pub upper: Tensor,
}

/// A worker's response line, as the router sees it.
pub enum WorkerResp {
    /// A live (possibly degraded) forecast slice.
    Forecast {
        /// MC samples the worker actually drew.
        samples_used: usize,
        /// MC samples the sub-request asked for.
        samples_requested: usize,
        /// Checksum of the model that produced the slice.
        model: String,
        /// The sliced intervals.
        iv: OwnedIntervals,
    },
    /// The worker's own persistence fallback (its breaker is open or the
    /// run faulted); carries the worker's typed reason.
    Fallback {
        /// Worker-typed reason (`breaker_open`, `model_fault`).
        reason: String,
        /// Widened persistence intervals.
        iv: OwnedIntervals,
    },
    /// A typed refusal (`queue_full`, `draining`, `breaker_open`,
    /// `model_fault`).
    Rejected {
        /// Worker-typed reason.
        reason: String,
    },
    /// A request-level failure (router bug or version skew).
    Error {
        /// Error class.
        reason: String,
        /// Human-readable cause.
        detail: String,
    },
    /// A control acknowledgement.
    Ack {
        /// Acknowledged action.
        action: String,
        /// Outcome (actions without an `ok` field report true).
        ok: bool,
        /// Artifact checksum, on reload-family acks.
        checksum: Option<String>,
        /// Failure reason, when `ok` is false.
        reason: Option<String>,
    },
    /// A health report.
    Health {
        /// Coarse status string.
        status: String,
    },
    /// A raw counter dump answering a `metrics` scrape, in catalog order.
    Metrics {
        /// `(exposition name, value)` pairs.
        counters: Vec<(String, u64)>,
    },
}

fn parse_matrix(v: &Json, key: &str) -> Result<Tensor, String> {
    let rows =
        v.get(key).and_then(Json::as_arr).ok_or_else(|| format!("missing matrix {key:?}"))?;
    if rows.is_empty() {
        return Err(format!("{key:?} is empty"));
    }
    let mut data = Vec::new();
    let mut cols = None;
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_arr().ok_or_else(|| format!("{key:?} row {i} is not an array"))?;
        match cols {
            None => cols = Some(cells.len()),
            Some(c) if c != cells.len() => return Err(format!("{key:?} is ragged at row {i}")),
            _ => {}
        }
        for (j, c) in cells.iter().enumerate() {
            let f = c.as_f64().ok_or_else(|| format!("{key:?}[{i}][{j}] is not a number"))?;
            data.push(f as f32);
        }
    }
    let c = cols.unwrap_or(0);
    if c == 0 {
        return Err(format!("{key:?} rows must not be empty"));
    }
    Ok(Tensor::from_vec(data, &[rows.len(), c]))
}

fn parse_intervals(v: &Json) -> Result<OwnedIntervals, String> {
    Ok(OwnedIntervals {
        mu: parse_matrix(v, "mu")?,
        sigma: parse_matrix(v, "sigma")?,
        lower: parse_matrix(v, "lower")?,
        upper: parse_matrix(v, "upper")?,
    })
}

/// Parses one worker response line into the closed [`WorkerResp`] set.
pub fn parse_worker_resp(line: &str) -> Result<WorkerResp, String> {
    let v = parse(line)?;
    let ty = v.get("type").and_then(Json::as_str).ok_or("worker response has no \"type\"")?;
    let str_field = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_owned);
    match ty {
        "forecast" => Ok(WorkerResp::Forecast {
            samples_used: v
                .get("samples_used")
                .and_then(Json::as_u64)
                .ok_or("forecast without \"samples_used\"")? as usize,
            samples_requested: v
                .get("samples_requested")
                .and_then(Json::as_u64)
                .ok_or("forecast without \"samples_requested\"")?
                as usize,
            model: str_field("model").ok_or("forecast without \"model\"")?,
            iv: parse_intervals(&v)?,
        }),
        "fallback" => Ok(WorkerResp::Fallback {
            reason: str_field("reason").ok_or("fallback without \"reason\"")?,
            iv: parse_intervals(&v)?,
        }),
        "rejected" => Ok(WorkerResp::Rejected {
            reason: str_field("reason").ok_or("rejection without \"reason\"")?,
        }),
        "error" => Ok(WorkerResp::Error {
            reason: str_field("reason").unwrap_or_else(|| "error".into()),
            detail: str_field("detail").unwrap_or_default(),
        }),
        "ack" => Ok(WorkerResp::Ack {
            action: str_field("action").ok_or("ack without \"action\"")?,
            ok: matches!(v.get("ok"), None | Some(Json::Bool(true))),
            checksum: str_field("checksum"),
            reason: str_field("reason"),
        }),
        "health" => Ok(WorkerResp::Health {
            status: str_field("status").unwrap_or_else(|| "unknown".into()),
        }),
        "metrics" => {
            let Some(Json::Obj(pairs)) = v.get("counters") else {
                return Err("metrics without a \"counters\" object".into());
            };
            let mut counters = Vec::with_capacity(pairs.len());
            for (k, cv) in pairs {
                let n = cv
                    .as_u64()
                    .ok_or_else(|| format!("counter {k:?} is not a non-negative integer"))?;
                counters.push((k.clone(), n));
            }
            Ok(WorkerResp::Metrics { counters })
        }
        other => Err(format!("unknown worker response type {other:?}")),
    }
}

/// A shed/refused request. `reason` ∈ {queue_full, draining, breaker_open,
/// model_fault} — the last two only before any healthy response exists (with
/// healthy history the same conditions serve a `fallback` instead).
pub fn resp_rejected(id: &Option<String>, reason: &str) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"type\":\"rejected\"");
    push_id(&mut out, id);
    out.push_str(&format!(",\"reason\":{}}}", escape(reason)));
    out
}

/// The documented breaker fallback: a persistence forecast with widened
/// intervals. `reason` ∈ {breaker_open, model_fault}.
pub fn resp_fallback(id: &Option<String>, reason: &str, iv: &Intervals<'_>) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"type\":\"fallback\"");
    push_id(&mut out, id);
    out.push_str(&format!(",\"reason\":{}", escape(reason)));
    push_intervals(&mut out, iv);
    out.push('}');
    out
}

/// A request-level failure (the connection stays up).
/// `reason` ∈ {bad_request, non_finite_input, shape_mismatch}.
pub fn resp_error(id: &Option<String>, reason: &str, detail: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"error\"");
    push_id(&mut out, id);
    out.push_str(&format!(",\"reason\":{},\"detail\":{}}}", escape(reason), escape(detail)));
    out
}

/// A raw counter dump for a `metrics` scrape. Counters render in the order
/// given (the catalog's exposition order), so two dumps from the same build
/// are positionally comparable.
pub fn resp_metrics(id: &Option<String>, counters: &[(&str, u64)]) -> String {
    let mut out = String::with_capacity(64 + counters.len() * 32);
    out.push_str("{\"type\":\"metrics\"");
    push_id(&mut out, id);
    out.push_str(",\"counters\":{");
    for (i, (k, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{v}", escape(k)));
    }
    out.push_str("}}");
    out
}

/// [`resp_metrics`] over owned names (the router's merged dump).
pub fn resp_metrics_owned(id: &Option<String>, counters: &[(String, u64)]) -> String {
    let borrowed: Vec<(&str, u64)> = counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    resp_metrics(id, &borrowed)
}

/// An acknowledgement for control requests (drain/shutdown/reload).
pub fn resp_ack(id: &Option<String>, action: &str, fields: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"ack\"");
    push_id(&mut out, id);
    out.push_str(&format!(",\"action\":{}", escape(action)));
    for (k, v) in fields {
        out.push_str(&format!(",{}:{}", escape(k), v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_request_roundtrip() {
        let r = parse_request(
            r#"{"type":"forecast","id":"r7","x":[[1,2],[3,"NaN"]],"deadline_ms":8,"mc":4,"seed":9}"#,
        )
        .unwrap();
        let Request::Forecast(f) = r else { panic!("wrong variant") };
        assert_eq!(f.id.as_deref(), Some("r7"));
        assert_eq!(f.x.len(), 2);
        assert!(f.x[1][1].is_nan());
        assert_eq!(f.deadline_ms, Some(8));
        assert_eq!(f.mc, Some(4));
        assert_eq!(f.seed, Some(9));
        assert_eq!(f.tick, None);
        assert_eq!(f.nodes, None);
        assert_eq!(f.horizon, None);
    }

    #[test]
    fn batching_request_fields_parse_and_validate() {
        let r = parse_request(
            r#"{"type":"forecast","id":"b1","x":[[1,2]],"tick":12,"nodes":[1,0,1],"horizon":2}"#,
        )
        .unwrap();
        let Request::Forecast(f) = r else { panic!("wrong variant") };
        assert_eq!(f.tick, Some(12));
        assert_eq!(f.nodes, Some(vec![1, 0, 1]));
        assert_eq!(f.horizon, Some(2));
        let e = parse_request(r#"{"type":"forecast","x":[[1]],"nodes":[]}"#).unwrap_err();
        assert!(e.detail.contains("\"nodes\""));
        let e = parse_request(r#"{"type":"forecast","x":[[1]],"nodes":[-1]}"#).unwrap_err();
        assert!(e.detail.contains("\"nodes\"[0]"));
        let e = parse_request(r#"{"type":"forecast","x":[[1]],"horizon":0}"#).unwrap_err();
        assert!(e.detail.contains("\"horizon\""));
        let e = parse_request(r#"{"type":"forecast","x":[[1]],"tick":"soon"}"#).unwrap_err();
        assert!(e.detail.contains("\"tick\""));
    }

    #[test]
    fn strip_batch_meta_removes_only_the_annotation_block() {
        let id = Some("q".to_string());
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let iv = Intervals { mu: &m, sigma: &m, lower: &m, upper: &m };
        let solo = resp_forecast(&id, 8, 8, "ck0", &ForecastMeta::solo(), &iv);
        let meta = ForecastMeta { batched: true, batch_size: 5, cache_hit: false };
        let co = resp_forecast(&id, 8, 8, "ck0", &meta, &iv);
        assert_ne!(solo, co, "annotations must distinguish the paths");
        assert_eq!(strip_batch_meta(&solo), strip_batch_meta(&co));
        assert!(!strip_batch_meta(&co).contains("batch_size"));
        assert!(crate::json::parse(&strip_batch_meta(&co)).is_ok());
        // Non-forecast lines pass through untouched.
        let rej = resp_rejected(&id, "queue_full");
        assert_eq!(strip_batch_meta(&rej), rej);
    }

    #[test]
    fn control_requests_parse() {
        assert!(matches!(parse_request(r#"{"type":"healthz"}"#), Ok(Request::Healthz { .. })));
        assert!(matches!(parse_request(r#"{"type":"drain","id":"d"}"#), Ok(Request::Drain { .. })));
        assert!(matches!(parse_request(r#"{"type":"shutdown"}"#), Ok(Request::Shutdown { .. })));
        assert!(matches!(parse_request(r#"{"type":"reload"}"#), Ok(Request::Reload { .. })));
    }

    #[test]
    fn cluster_control_requests_parse() {
        assert!(matches!(parse_request(r#"{"type":"ping","id":"p"}"#), Ok(Request::Ping { .. })));
        assert!(matches!(
            parse_request(r#"{"type":"prepare_reload"}"#),
            Ok(Request::PrepareReload { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"type":"commit_reload"}"#),
            Ok(Request::CommitReload { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"type":"abort_reload"}"#),
            Ok(Request::AbortReload { .. })
        ));
        let r = parse_request(r#"{"type":"assign","shard":2,"shards":3}"#).unwrap();
        assert!(matches!(r, Request::Assign { shard: 2, shards: 3, .. }));
        let e = parse_request(r#"{"type":"assign","shard":3,"shards":3}"#).unwrap_err();
        assert!(e.detail.contains("out of range"));
        let e = parse_request(r#"{"type":"assign","shards":3}"#).unwrap_err();
        assert!(e.detail.contains("\"shard\""));
    }

    #[test]
    fn bad_requests_keep_the_id_when_extractable() {
        let e = parse_request(r#"{"type":"forecast","id":"r9"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r9"));
        assert!(e.detail.contains("\"x\""));
        let e = parse_request("not json at all").unwrap_err();
        assert_eq!(e.id, None);
        let e = parse_request(r#"{"type":"forecast","id":"rg","x":[[1],[2,3]]}"#).unwrap_err();
        assert!(e.detail.contains("ragged"));
        let e = parse_request(r#"{"type":"launch_missiles"}"#).unwrap_err();
        assert!(e.detail.contains("unknown request type"));
    }

    #[test]
    fn responses_are_valid_json_with_stable_types() {
        let id = Some("q".to_string());
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let iv = Intervals { mu: &m, sigma: &m, lower: &m, upper: &m };
        let note = ShardNote::fallback(1, "worker_down");
        for (line, ty) in [
            (resp_forecast(&id, 3, 8, "ck", &ForecastMeta::solo(), &iv), "forecast"),
            (resp_rejected(&id, "queue_full"), "rejected"),
            (resp_fallback(&id, "breaker_open", &iv), "fallback"),
            (resp_error(&None, "bad_request", "nope"), "error"),
            (resp_ack(&id, "drain", &[]), "ack"),
            (resp_cluster_forecast(&id, 3, 8, "ck", std::slice::from_ref(&note), &iv), "forecast"),
            (resp_cluster_fallback(&id, "worker_down", &[note], &iv), "fallback"),
            (resp_rejected_shard(&id, "queue_full", 2), "rejected"),
        ] {
            let v = crate::json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("type").and_then(Json::as_str), Some(ty));
        }
        let deg = resp_forecast(&id, 3, 8, "ck", &ForecastMeta::solo(), &iv);
        assert!(deg.contains("\"degraded\":true"));
        assert!(deg.contains("\"samples_used\":3"));
        assert!(deg.contains("\"model\":\"ck\""));
        assert!(deg.contains("\"batched\":false,\"batch_size\":1,\"cache_hit\":false"));
        let v = crate::json::parse(&deg).unwrap();
        let infl = v.get("variance_inflation").and_then(Json::as_f64).unwrap();
        assert!((infl - 8.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn cluster_meta_strips_down_to_the_solo_payload() {
        let id = Some("c".to_string());
        let m = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[2, 2]);
        let iv = Intervals { mu: &m, sigma: &m, lower: &m, upper: &m };
        let solo = resp_forecast(&id, 8, 8, "ck", &ForecastMeta::solo(), &iv);
        let full = resp_cluster_forecast(&id, 8, 8, "ck", &[], &iv);
        assert!(full.contains("\"partial\":false"));
        assert!(!full.contains("\"shards\""));
        assert_eq!(strip_cluster_meta(&solo), strip_cluster_meta(&full));
        let note = ShardNote::fallback(0, "queue_full");
        let partial = resp_cluster_forecast(&id, 8, 8, "ck", &[note], &iv);
        assert!(partial.contains("\"partial\":true"));
        assert!(partial.contains(r#"{"shard":0,"status":"fallback","reason":"queue_full"}"#));
        assert_eq!(strip_cluster_meta(&solo), strip_cluster_meta(&partial));
        let rej = resp_rejected_shard(&id, "draining", 1);
        assert!(rej.contains("\"shard\":1"));
        assert_eq!(strip_cluster_meta(&rej), rej);
    }

    #[test]
    fn failover_annotations_stay_inside_the_cluster_meta_window() {
        let id = Some("f".to_string());
        let m = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[2, 2]);
        let iv = Intervals { mu: &m, sigma: &m, lower: &m, upper: &m };
        let solo = resp_forecast(&id, 8, 8, "ck", &ForecastMeta::solo(), &iv);
        // A slice served live by a backup after a failover: annotated in
        // `shards`, yet the response stays full fidelity.
        let mut note = ShardNote::ok(1);
        note.replica = Some(1);
        note.attempts = vec![(0, "rpc_timeout".to_string())];
        assert!(note.noteworthy(), "a failover chain must surface on the wire");
        let hed = resp_cluster_forecast(&id, 8, 8, "ck", &[note], &iv);
        assert!(hed.contains("\"partial\":false"), "failover is not degradation");
        assert!(hed.contains(
            r#"{"shard":1,"status":"ok","replica":1,"attempts":[{"replica":0,"reason":"rpc_timeout"}]}"#
        ));
        assert_eq!(strip_cluster_meta(&solo), strip_cluster_meta(&hed));
        // An exhausted chain: degraded note carrying both the terminal
        // reason and the prior attempts.
        let mut dead = ShardNote::fallback(0, "worker_down");
        dead.attempts = vec![(1, "rpc_timeout".to_string())];
        let part = resp_cluster_forecast(&id, 8, 8, "ck", &[dead], &iv);
        assert!(part.contains("\"partial\":true"));
        assert!(part.contains(
            r#"{"shard":0,"status":"fallback","reason":"worker_down","attempts":[{"replica":1,"reason":"rpc_timeout"}]}"#
        ));
        assert_eq!(strip_cluster_meta(&solo), strip_cluster_meta(&part));
    }

    #[test]
    fn worker_responses_roundtrip_bit_exactly() {
        let id = None;
        // Awkward floats: shortest-roundtrip f32 rendering survives an
        // f64 parse + f32 cast exactly.
        let m = Tensor::from_vec(vec![0.1, 1.0 / 3.0, -2.7182817, 1e-7], &[2, 2]);
        let iv = Intervals { mu: &m, sigma: &m, lower: &m, upper: &m };
        let line = resp_forecast(&id, 5, 8, "ck9", &ForecastMeta::solo(), &iv);
        let Ok(WorkerResp::Forecast { samples_used, samples_requested, model, iv: own }) =
            parse_worker_resp(&line)
        else {
            panic!("wrong variant for {line}");
        };
        assert_eq!((samples_used, samples_requested), (5, 8));
        assert_eq!(model, "ck9");
        assert_eq!(render_matrix(&own.mu), render_matrix(&m), "f32 wire roundtrip is exact");
        assert_eq!(own.mu.data(), m.data());

        let fb = resp_fallback(&id, "model_fault", &iv);
        assert!(matches!(
            parse_worker_resp(&fb),
            Ok(WorkerResp::Fallback { reason, .. }) if reason == "model_fault"
        ));
        assert!(matches!(
            parse_worker_resp(r#"{"type":"rejected","reason":"queue_full"}"#),
            Ok(WorkerResp::Rejected { reason }) if reason == "queue_full"
        ));
        let ack = resp_ack(&id, "prepare_reload", &[("ok", "true".into())]);
        assert!(matches!(
            parse_worker_resp(&ack),
            Ok(WorkerResp::Ack { ok: true, action, .. }) if action == "prepare_reload"
        ));
        let nack = resp_ack(&id, "prepare_reload", &[("ok", "false".into())]);
        assert!(matches!(parse_worker_resp(&nack), Ok(WorkerResp::Ack { ok: false, .. })));
        assert!(parse_worker_resp("garbage").is_err());
    }

    #[test]
    fn trace_context_parses_and_rejects_malformed_ids() {
        let r = parse_request(
            r#"{"type":"forecast","x":[[1]],"trace":"00000000deadbeef","span":"0000000000000001"}"#,
        )
        .unwrap();
        let Request::Forecast(f) = r else { panic!("wrong variant") };
        assert_eq!(f.trace, Some(0xdead_beef));
        assert_eq!(f.span, Some(1));
        let r = parse_request(r#"{"type":"forecast","x":[[1]]}"#).unwrap();
        let Request::Forecast(f) = r else { panic!("wrong variant") };
        assert_eq!((f.trace, f.span), (None, None));
        let e = parse_request(r#"{"type":"forecast","x":[[1]],"trace":"beef"}"#).unwrap_err();
        assert!(e.detail.contains("16-hex"), "{}", e.detail);
        let e = parse_request(r#"{"type":"forecast","x":[[1]],"span":12}"#).unwrap_err();
        assert!(e.detail.contains("\"span\""), "{}", e.detail);
    }

    #[test]
    fn trace_meta_is_fixed_width_and_strips_exactly() {
        let id = Some("t".to_string());
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let iv = Intervals { mu: &m, sigma: &m, lower: &m, upper: &m };
        let plain = resp_forecast(&id, 8, 8, "ck", &ForecastMeta::solo(), &iv);
        let mut traced = plain.clone();
        push_trace_meta(&mut traced, 0xdead_beef, 1);
        assert_eq!(traced.len(), plain.len() + TRACE_META_LEN);
        assert!(traced.contains(",\"trace\":\"00000000deadbeef\",\"span\":\"0000000000000001\""));
        assert!(crate::json::parse(&traced).is_ok());
        assert_eq!(strip_trace_meta(&traced), plain);
        // Untraced lines pass through untouched, and stripping composes with
        // the other annotation strippers.
        assert_eq!(strip_trace_meta(&plain), plain);
        let mut cluster = resp_cluster_forecast(&id, 8, 8, "ck", &[], &iv);
        push_trace_meta(&mut cluster, 7, 9);
        assert_eq!(strip_cluster_meta(&strip_trace_meta(&cluster)), strip_cluster_meta(&plain));
    }

    #[test]
    fn metrics_scrape_roundtrips() {
        assert!(matches!(parse_request(r#"{"type":"metrics"}"#), Ok(Request::Metrics { .. })));
        assert!(matches!(
            parse_request(r#"{"type":"cluster-metrics","id":"m"}"#),
            Ok(Request::ClusterMetrics { .. })
        ));
        let line = resp_metrics(
            &Some("m".into()),
            &[("stuq_serve_requests_total", 41), ("stuq_serve_shed_total", 0)],
        );
        assert!(crate::json::parse(&line).is_ok(), "{line}");
        let Ok(WorkerResp::Metrics { counters }) = parse_worker_resp(&line) else {
            panic!("wrong variant for {line}");
        };
        assert_eq!(
            counters,
            vec![
                ("stuq_serve_requests_total".to_string(), 41),
                ("stuq_serve_shed_total".to_string(), 0)
            ]
        );
        assert!(parse_worker_resp(r#"{"type":"metrics"}"#).is_err());
        assert!(parse_worker_resp(r#"{"type":"metrics","counters":{"a":-1}}"#).is_err());
    }

    #[test]
    fn nonfinite_floats_render_as_markers() {
        let m = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, -1.5, 0.0], &[2, 2]);
        let s = render_matrix(&m);
        assert_eq!(s, r#"[["NaN","inf"],[-1.5,0]]"#);
        assert!(crate::json::parse(&s).is_ok());
    }
}
