//! Injectable monotonic clock driving deadlines and breaker cooldowns.
//!
//! The serving contract requires *deterministic* degradation in tests: a
//! request with an 8 ms deadline must use the same number of MC samples on
//! every run and at every `STUQ_THREADS` setting. Wall time cannot provide
//! that, so every time read in the serving runtime goes through [`Clock`],
//! which has two modes:
//!
//! * **real** — milliseconds since server start ([`std::time::Instant`]);
//! * **fake** — a logical clock that starts at 0 and advances by a fixed
//!   step *on every read*. Time is then a pure function of how many clock
//!   reads happened, which the request pipeline performs in a fixed pattern,
//!   so deadline cuts land on the same sample index every run.
//!
//! The fake mode is selected by the `STUQ_FAKE_CLOCK` environment variable:
//! its value is the per-read step in milliseconds (`STUQ_FAKE_CLOCK=1`
//! advances 1 ms per read; an unset or invalid value keeps the real clock).

use std::time::Instant;

/// Name of the fake-clock environment variable.
pub const FAKE_CLOCK_ENV: &str = "STUQ_FAKE_CLOCK";

/// A monotonic millisecond clock, real or logical.
#[derive(Debug)]
pub enum Clock {
    /// Wall time since construction.
    Real(Instant),
    /// Logical time: starts at 0, advances `step_ms` per read.
    Fake {
        /// Milliseconds added on every [`Clock::now_ms`] call.
        step_ms: u64,
        /// Next value to return.
        now_ms: u64,
    },
}

impl Clock {
    /// A wall clock starting now.
    pub fn real() -> Self {
        Clock::Real(Instant::now())
    }

    /// A logical clock advancing `step_ms` per read.
    pub fn fake(step_ms: u64) -> Self {
        Clock::Fake { step_ms, now_ms: 0 }
    }

    /// Reads `STUQ_FAKE_CLOCK`; a parseable value selects the fake clock.
    pub fn from_env() -> Self {
        match std::env::var(FAKE_CLOCK_ENV).ok().and_then(|v| v.parse::<u64>().ok()) {
            Some(step) => Clock::fake(step),
            None => Clock::real(),
        }
    }

    /// True for the logical clock.
    pub fn is_fake(&self) -> bool {
        matches!(self, Clock::Fake { .. })
    }

    /// Current time in milliseconds. The fake clock returns its current
    /// value and then advances, so the first read is always 0.
    pub fn now_ms(&mut self) -> u64 {
        match self {
            Clock::Real(t0) => t0.elapsed().as_millis() as u64,
            Clock::Fake { step_ms, now_ms } => {
                let t = *now_ms;
                *now_ms = now_ms.saturating_add(*step_ms);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_advances_per_read() {
        let mut c = Clock::fake(3);
        assert!(c.is_fake());
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.now_ms(), 3);
        assert_eq!(c.now_ms(), 6);
    }

    #[test]
    fn zero_step_freezes_time() {
        let mut c = Clock::fake(0);
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.now_ms(), 0);
    }

    #[test]
    fn real_clock_is_monotone() {
        let mut c = Clock::real();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
