//! Per-tick forecast cache (DESIGN.md §12).
//!
//! The cache fronts the model: a hit answers a forecast request without a
//! single forward pass. Entries hold the *full grid* — raw-unit μ and total
//! σ over every node and the whole horizon — so one computed forecast
//! serves any node-subset / horizon-prefix slice of itself (the per-node
//! part of the key from the issue becomes response slicing, strictly more
//! sharing than keying per subset).
//!
//! A key is `(model generation, data tick, window hash, seed derivation,
//! n_samples)`. Only requests whose RNG is a pure function of their fields
//! (an explicit `seed` or a `tick` to derive one from) are cacheable —
//! legacy seedless requests draw from the arrival-indexed server fork, so
//! two of them never produce the same bytes and caching them would be a
//! correctness bug, not an optimisation. Hash collisions are ruled out by
//! storing the window's exact bit pattern and comparing it on every hit.
//!
//! Staleness is handled three ways, all required by the serving contract:
//! the TTL (`--cache-ttl-ms`, the data cadence) expires entries against the
//! *server* clock — under `STUQ_FAKE_CLOCK` that is logical time, so expiry
//! is as deterministic as everything else; the generation field keys every
//! entry to the model artifact that produced it; and the whole cache is
//! dropped on a hot-reload swap and on breaker-open, so a stale generation
//! can never leak even within a tick.

use std::collections::{HashMap, VecDeque};

use stuq_tensor::Tensor;

/// How a cacheable request's RNG was derived (part of the cache key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeedDerivation {
    /// The request carried its own `seed`.
    Explicit(u64),
    /// Seedless with a `tick`: forked from (server seed, tick).
    FromTick(u64),
}

/// Full cache key. `x_hash` is FNV-1a over the window's f32 bit pattern;
/// exactness comes from the entry-side bit comparison, not the hash.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Reload generation of the model that computed the entry.
    pub generation: u64,
    /// Data tick the request declared (None for explicitly-seeded requests
    /// without one).
    pub tick: Option<u64>,
    /// Hash of the input window bits.
    pub x_hash: u64,
    /// RNG derivation.
    pub seed: SeedDerivation,
    /// Requested MC sample count.
    pub n_samples: usize,
}

/// A cached full-grid forecast in raw units.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Exact input-window bits, collision guard for `x_hash`.
    pub x_bits: Vec<u32>,
    /// Predictive mean `[N, τ]`, raw units.
    pub mu_raw: Tensor,
    /// Total predictive σ `[N, τ]`, raw units (envelope already applied).
    pub sigma_raw: Tensor,
    /// Samples the cached run used (uncut, so == requested).
    pub samples_used: usize,
    /// Samples the cached run was asked for.
    pub samples_requested: usize,
    /// Server-clock insertion time, for TTL expiry.
    pub at_ms: u64,
}

/// FNV-1a over the bit pattern of a float slice. Stable across platforms
/// and runs — part of the determinism surface, so no `DefaultHasher`.
pub fn hash_window(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Bounded TTL cache with FIFO eviction. Insertion order drives eviction —
/// never map iteration order — so behaviour is deterministic.
pub struct ForecastCache {
    cap: usize,
    ttl_ms: u64,
    map: HashMap<CacheKey, CacheEntry>,
    order: VecDeque<CacheKey>,
}

impl ForecastCache {
    /// A cache holding at most `cap` entries, each living `ttl_ms`.
    pub fn new(cap: usize, ttl_ms: u64) -> Self {
        ForecastCache { cap: cap.max(1), ttl_ms, map: HashMap::new(), order: VecDeque::new() }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a key at server time `now_ms`. Expired entries and hash
    /// collisions (key matches, window bits do not) both miss; an expired
    /// entry is dropped on the spot.
    pub fn get(&mut self, key: &CacheKey, x_bits: &[u32], now_ms: u64) -> Option<&CacheEntry> {
        let expired = match self.map.get(key) {
            None => return None,
            Some(e) => now_ms.saturating_sub(e.at_ms) >= self.ttl_ms,
        };
        if expired {
            self.map.remove(key);
            self.order.retain(|k| k != key);
            return None;
        }
        self.map.get(key).filter(|e| e.x_bits == x_bits)
    }

    /// Inserts an entry, evicting the oldest insertion when at capacity.
    /// Returns the number of evictions (0 or 1; re-inserting an existing
    /// key replaces it in place).
    pub fn insert(&mut self, key: CacheKey, entry: CacheEntry) -> usize {
        let mut evicted = 0;
        if self.map.insert(key.clone(), entry).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    evicted += 1;
                } else {
                    break;
                }
            }
        }
        evicted
    }

    /// Drops everything (hot-reload swap, breaker-open). Returns how many
    /// entries were invalidated.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.order.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tick: u64) -> CacheKey {
        CacheKey {
            generation: 1,
            tick: Some(tick),
            x_hash: 42,
            seed: SeedDerivation::FromTick(tick),
            n_samples: 8,
        }
    }

    fn entry(at_ms: u64) -> CacheEntry {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        CacheEntry {
            x_bits: vec![7, 8],
            mu_raw: t.clone(),
            sigma_raw: t,
            samples_used: 8,
            samples_requested: 8,
            at_ms,
        }
    }

    #[test]
    fn hit_requires_exact_window_bits() {
        let mut c = ForecastCache::new(4, 100);
        c.insert(key(1), entry(0));
        assert!(c.get(&key(1), &[7, 8], 10).is_some());
        assert!(c.get(&key(1), &[7, 9], 10).is_none(), "hash collision must miss");
        assert!(c.get(&key(2), &[7, 8], 10).is_none(), "different tick must miss");
    }

    #[test]
    fn ttl_expires_against_the_given_clock() {
        let mut c = ForecastCache::new(4, 50);
        c.insert(key(1), entry(100));
        assert!(c.get(&key(1), &[7, 8], 149).is_some());
        assert!(c.get(&key(1), &[7, 8], 150).is_none(), "age == ttl expires");
        assert_eq!(c.len(), 0, "expired entries are dropped");
    }

    #[test]
    fn capacity_evicts_oldest_insertion_first() {
        let mut c = ForecastCache::new(2, 1000);
        assert_eq!(c.insert(key(1), entry(0)), 0);
        assert_eq!(c.insert(key(2), entry(0)), 0);
        assert_eq!(c.insert(key(3), entry(0)), 1, "third insert evicts");
        assert!(c.get(&key(1), &[7, 8], 1).is_none(), "oldest goes first");
        assert!(c.get(&key(2), &[7, 8], 1).is_some());
        assert!(c.get(&key(3), &[7, 8], 1).is_some());
    }

    #[test]
    fn clear_reports_the_invalidated_count() {
        let mut c = ForecastCache::new(4, 1000);
        c.insert(key(1), entry(0));
        c.insert(key(2), entry(0));
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
        assert!(c.get(&key(1), &[7, 8], 1).is_none());
    }

    #[test]
    fn window_hash_is_stable_and_bit_sensitive() {
        let a = hash_window(&[1.0, 2.0]);
        assert_eq!(a, hash_window(&[1.0, 2.0]));
        let two_next = f32::from_bits(2.0f32.to_bits() + 1);
        assert_ne!(a, hash_window(&[1.0, two_next]), "one ulp must change the hash");
        // 0.0 and -0.0 compare equal as floats but are different windows
        // bit-wise; the cache guards with bits, so the hash may differ.
        assert_ne!(hash_window(&[0.0]), hash_window(&[-0.0]));
    }
}
