//! Deterministic network-fault injection for the cluster transport
//! (DESIGN.md §16).
//!
//! `FaultNet` wraps one replica's [`ShardWorker`] transport and injects
//! faults from a **seeded plan**: a pure function of `(session seed, shard,
//! replica, forecast-RPC index)`. Nothing here rolls real dice — the same
//! seed replays the same drops, delays, truncations, and bit-flips on every
//! rerun, which is what lets tests assert `faultnet_injected_total` exactly
//! and lets CI byte-compare a faulted run against a fault-free control.
//!
//! Scope rules that keep the harness honest:
//!
//! * **Only forecast RPCs are faulted.** Supervision traffic (pings,
//!   assigns, reload phases, metrics scrapes) happens on wall-clock
//!   schedules, so keying faults on it would make the plan depend on
//!   timing. The wrapper keeps its own forecast counter per channel.
//! * **Corruption is guaranteed detectable.** There is no wire checksum, so
//!   a bit-flip in the middle of an interval matrix would merge silently
//!   and poison the byte-determinism contract. Truncation cuts the line in
//!   half (losing the closing brace) and bit-flips land in the first 16
//!   bytes (the `{"type":…` envelope) — both make `parse_worker_resp` fail,
//!   so the router classifies the response as `worker_error` and fails
//!   over.
//! * **Injected failures don't tear down the healthy transport.** When the
//!   router calls [`ShardWorker::fail`] for a fault *we* synthesized, the
//!   wrapper swallows it — the victim replica's process stays up and keeps
//!   absorbing the plan, instead of converting every drop into a restart
//!   cycle.
//!
//! Tests and CI pick one **victim replica per shard** via
//! [`victim_replica`] — also seed-derived — so "any single replica faulted"
//! holds by construction and the acceptance byte-compare is meaningful.

use crate::router::{ShardWorker, SupEvent, WorkerState};
use stuq_obs::Event;
use stuq_tensor::StuqRng;

/// Domain-separation salt: keeps the fault plan's RNG streams disjoint from
/// seed pinning (`StuqRng::new(seed)`) and trace-id derivation.
const FAULT_SALT: u64 = 0xFA17_1E55_C0DE;

/// Named fault profile, parsed from `--faultnet <profile>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// No faults — the wrapper is a transparent pass-through.
    Off,
    /// ~50% of forecast RPCs are swallowed (`rpc_timeout` to the router).
    Drop,
    /// ~50% of forecast RPCs are delayed 20–79 ms before forwarding —
    /// slow-replica behaviour, the profile hedging exists for.
    Delay,
    /// A mix: ~20% dropped, ~15% truncated, ~15% bit-flipped.
    Flaky,
    /// A contiguous outage: forecast RPCs 4..12 on the channel vanish.
    Blackhole,
}

impl Profile {
    /// Parses a profile name (the `--faultnet` argument).
    pub fn parse(s: &str) -> Result<Profile, String> {
        match s {
            "off" => Ok(Profile::Off),
            "drop" => Ok(Profile::Drop),
            "delay" => Ok(Profile::Delay),
            "flaky" => Ok(Profile::Flaky),
            "blackhole" => Ok(Profile::Blackhole),
            other => Err(format!(
                "unknown faultnet profile {other:?} (expected off|drop|delay|flaky|blackhole)"
            )),
        }
    }

    /// The canonical name (inverse of [`Profile::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            Profile::Off => "off",
            Profile::Drop => "drop",
            Profile::Delay => "delay",
            Profile::Flaky => "flaky",
            Profile::Blackhole => "blackhole",
        }
    }
}

/// One planned fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Swallow the RPC: the router sees `rpc_timeout`, the worker never
    /// sees the request.
    Drop,
    /// Sleep this many wall-clock milliseconds, then forward normally.
    Delay(u64),
    /// Forward, then cut the response line in half.
    Truncate,
    /// Forward, then flip one bit in the response envelope; `entropy`
    /// picks the byte (first 16) and bit.
    BitFlip {
        /// Seeded randomness for the byte/bit choice.
        entropy: u64,
    },
}

impl Fault {
    /// Typed reason recorded on the `faultnet_inject` event.
    pub fn reason(&self) -> &'static str {
        match self {
            Fault::Drop => "drop",
            Fault::Delay(_) => "delay",
            Fault::Truncate => "truncate",
            Fault::BitFlip { .. } => "bitflip",
        }
    }
}

/// The replica a profile's faults target for `shard` — a pure function of
/// the session seed, so tests and CI predict (rather than discover) which
/// sibling stays clean.
pub fn victim_replica(seed: u64, shard: usize, replicas: usize) -> usize {
    if replicas <= 1 {
        return 0;
    }
    let mut rng = StuqRng::new(seed ^ FAULT_SALT).fork(shard as u64);
    (rng.next_u64() % replicas as u64) as usize
}

/// The fault (if any) the plan injects on forecast RPC `idx` of channel
/// `(seed, shard, replica)`. Pure: tests recompute expected injection
/// counts with it instead of trusting the wrapper's bookkeeping.
pub fn fault_at(
    profile: Profile,
    seed: u64,
    shard: usize,
    replica: usize,
    idx: u64,
) -> Option<Fault> {
    let mut rng =
        StuqRng::new(seed ^ FAULT_SALT).fork(shard as u64).fork(replica as u64).fork(idx);
    let roll = rng.next_u64() % 100;
    match profile {
        Profile::Off => None,
        Profile::Drop => (roll < 50).then_some(Fault::Drop),
        Profile::Delay => (roll < 50).then(|| Fault::Delay(20 + rng.next_u64() % 60)),
        Profile::Flaky => match roll {
            0..=19 => Some(Fault::Drop),
            20..=34 => Some(Fault::Truncate),
            35..=49 => Some(Fault::BitFlip { entropy: rng.next_u64() }),
            _ => None,
        },
        Profile::Blackhole => ((4..12).contains(&idx)).then_some(Fault::Drop),
    }
}

/// A replica transport with a seeded fault plan spliced into it.
pub struct FaultNet {
    inner: Box<dyn ShardWorker>,
    profile: Profile,
    seed: u64,
    shard: usize,
    replica: usize,
    /// Forecast RPCs seen on this channel — the plan key's last component.
    forecasts: u64,
    /// Set when the last returned failure (or garbage line) was synthetic:
    /// the router's follow-up `fail()` must not reach the healthy inner
    /// transport.
    injected_last: bool,
}

impl FaultNet {
    /// Wraps `inner` as the faulted transport for `(shard, replica)`.
    pub fn wrap(
        inner: Box<dyn ShardWorker>,
        profile: Profile,
        seed: u64,
        shard: usize,
        replica: usize,
    ) -> FaultNet {
        FaultNet { inner, profile, seed, shard, replica, forecasts: 0, injected_last: false }
    }

    fn record(&self, fault: &Fault, idx: u64) {
        stuq_obs::metrics().faultnet_injected.inc();
        stuq_obs::emit(
            Event::new("faultnet_inject")
                .uint("shard", self.shard as u64)
                .uint("replica", self.replica as u64)
                .uint("rpc", idx)
                .str("reason", fault.reason()),
        );
    }
}

/// Flips one envelope bit. The byte lands in the first 16 (the `{"type":…`
/// prefix), so the corrupted line can never parse as a valid worker
/// response — detectability by construction.
fn bit_flip(resp: String, entropy: u64) -> String {
    let mut bytes = resp.into_bytes();
    if bytes.is_empty() {
        return String::new();
    }
    let at = (entropy % bytes.len().min(16) as u64) as usize;
    bytes[at] ^= 1 << ((entropy >> 8) % 8);
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Cuts the line in half — the closing brace is gone, so parsing fails.
fn truncate_half(resp: String) -> String {
    let mut cut = resp.len() / 2;
    while cut > 0 && !resp.is_char_boundary(cut) {
        cut -= 1;
    }
    let mut r = resp;
    r.truncate(cut);
    r
}

impl ShardWorker for FaultNet {
    fn call(&mut self, line: &str, timeout_ms: u64) -> Result<String, String> {
        // Supervision traffic passes through untouched and uncounted.
        if !line.contains("\"type\":\"forecast\"") {
            return self.inner.call(line, timeout_ms);
        }
        let idx = self.forecasts;
        self.forecasts += 1;
        self.injected_last = false;
        match fault_at(self.profile, self.seed, self.shard, self.replica, idx) {
            None => self.inner.call(line, timeout_ms),
            Some(f @ Fault::Drop) => {
                self.record(&f, idx);
                self.injected_last = true;
                Err("rpc_timeout".into())
            }
            Some(f @ Fault::Delay(ms)) => {
                self.record(&f, idx);
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.call(line, timeout_ms)
            }
            Some(f @ Fault::Truncate) => {
                let resp = self.inner.call(line, timeout_ms)?;
                self.record(&f, idx);
                self.injected_last = true;
                Ok(truncate_half(resp))
            }
            Some(f @ Fault::BitFlip { entropy }) => {
                let resp = self.inner.call(line, timeout_ms)?;
                self.record(&f, idx);
                self.injected_last = true;
                Ok(bit_flip(resp, entropy))
            }
        }
    }

    fn state(&self) -> WorkerState {
        self.inner.state()
    }

    fn fail(&mut self, reason: &str) {
        // A synthetic failure must not tear down the healthy transport.
        if std::mem::take(&mut self.injected_last) {
            return;
        }
        self.inner.fail(reason);
    }

    fn tick(&mut self) -> Vec<SupEvent> {
        self.inner.tick()
    }

    fn restarts(&self) -> u64 {
        self.inner.restarts()
    }

    fn last_restart_ms(&self) -> Option<u64> {
        self.inner.last_restart_ms()
    }

    fn settle(&mut self, grace_ms: u64) {
        self.inner.settle(grace_ms)
    }

    // supports_hedge stays false (the trait default): the split send/recv
    // path would bypass injection, letting a hedge dodge the plan.
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal always-up transport answering a fixed forecast line.
    struct Echo {
        calls: u64,
    }

    const RESP: &str = "{\"type\":\"rejected\",\"reason\":\"draining\"}";

    impl ShardWorker for Echo {
        fn call(&mut self, _line: &str, _timeout_ms: u64) -> Result<String, String> {
            self.calls += 1;
            Ok(RESP.to_string())
        }
        fn state(&self) -> WorkerState {
            WorkerState::Up
        }
        fn fail(&mut self, _reason: &str) {
            panic!("synthetic failures must never reach the inner transport");
        }
        fn tick(&mut self) -> Vec<SupEvent> {
            Vec::new()
        }
    }

    #[test]
    fn plans_are_pure_functions_of_their_key() {
        for profile in [Profile::Drop, Profile::Delay, Profile::Flaky, Profile::Blackhole] {
            for idx in 0..64 {
                assert_eq!(
                    fault_at(profile, 11, 1, 0, idx),
                    fault_at(profile, 11, 1, 0, idx),
                    "{profile:?} idx={idx}"
                );
            }
        }
        // Distinct channels get distinct streams (with overwhelming odds
        // some index differs).
        let a: Vec<_> = (0..64).map(|i| fault_at(Profile::Drop, 11, 0, 0, i)).collect();
        let b: Vec<_> = (0..64).map(|i| fault_at(Profile::Drop, 11, 0, 1, i)).collect();
        let c: Vec<_> = (0..64).map(|i| fault_at(Profile::Drop, 12, 0, 0, i)).collect();
        assert_ne!(a, b, "replica changes the plan");
        assert_ne!(a, c, "seed changes the plan");
        assert!(a.iter().any(Option::is_some), "drop profile actually drops");
        assert!(a.iter().any(Option::is_none), "drop profile is not a blackhole");
    }

    #[test]
    fn blackhole_is_a_contiguous_window() {
        for idx in 0..20 {
            let f = fault_at(Profile::Blackhole, 7, 0, 1, idx);
            if (4..12).contains(&idx) {
                assert_eq!(f, Some(Fault::Drop), "idx={idx}");
            } else {
                assert_eq!(f, None, "idx={idx}");
            }
        }
    }

    #[test]
    fn victim_selection_is_seeded_and_in_range() {
        for shard in 0..8 {
            let v = victim_replica(401, shard, 3);
            assert!(v < 3);
            assert_eq!(v, victim_replica(401, shard, 3));
        }
        assert_eq!(victim_replica(401, 0, 1), 0, "solo replica is always the victim");
        let picks: Vec<_> = (0..16).map(|s| victim_replica(401, s, 2)).collect();
        assert!(picks.contains(&0) && picks.contains(&1), "victims vary across shards: {picks:?}");
    }

    #[test]
    fn corruption_is_guaranteed_unparseable() {
        for entropy in 0..256u64 {
            let flipped = bit_flip(RESP.to_string(), entropy);
            assert!(
                crate::proto::parse_worker_resp(&flipped).is_err(),
                "entropy={entropy}: {flipped:?} still parsed"
            );
        }
        let cut = truncate_half(RESP.to_string());
        assert!(crate::proto::parse_worker_resp(&cut).is_err(), "{cut:?} still parsed");
    }

    #[test]
    fn wrapper_matches_the_pure_plan_and_shields_the_inner_transport() {
        let (seed, shard, replica) = (11, 1, 0);
        let mut w = FaultNet::wrap(Box::new(Echo { calls: 0 }), Profile::Drop, seed, shard, replica);
        // Supervision traffic is never faulted or counted.
        assert!(w.call("{\"type\":\"ping\"}", 100).is_ok());
        assert_eq!(w.forecasts, 0);
        let mut dropped = 0;
        for idx in 0..32 {
            let out = w.call("{\"type\":\"forecast\",\"x\":[[0.0]]}", 100);
            match fault_at(Profile::Drop, seed, shard, replica, idx) {
                Some(Fault::Drop) => {
                    assert_eq!(out, Err("rpc_timeout".to_string()), "idx={idx}");
                    dropped += 1;
                    // The router reports the synthetic timeout; Echo::fail
                    // panics if it leaks through.
                    w.fail("rpc_timeout");
                    assert_eq!(w.state(), WorkerState::Up, "victim stays up through drops");
                }
                _ => assert_eq!(out, Ok(RESP.to_string()), "idx={idx}"),
            }
        }
        assert!(dropped > 0, "plan never fired");
    }
}
