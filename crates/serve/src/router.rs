//! Cluster router: scatter/gather over sharded workers (DESIGN.md §13).
//!
//! The router is the client-facing half of the sharded cluster. It owns the
//! deterministic [`ShardMap`](crate::shard::ShardMap), speaks the ordinary
//! NDJSON protocol on its front side, and fans each forecast out to the
//! shards that own the requested nodes. Robustness decisions concentrate
//! here:
//!
//! * **Per-shard circuit breakers** — transport faults (timeout, EOF, I/O
//!   error) open the shard's breaker; while open, that shard is skipped
//!   entirely and its slice degrades. Worker-typed *refusals* (`rejected`,
//!   `fallback`) are healthy transport and never count as faults.
//! * **Graceful partial degradation** — a dead/open/refusing shard turns
//!   into a persistence slice with σ widened from that shard's last live
//!   response, annotated `partial: true` with a typed per-shard reason. A
//!   shard with no live history yet makes the whole request a typed
//!   rejection naming the shard — never silent zeros.
//! * **Two-phase cluster reload** — `reload` validates checksum + shape
//!   once at the router, stages on every worker (`prepare_reload`), and
//!   swaps only on unanimous ack (`commit_reload`); any refusal aborts
//!   everywhere. There is no mixed-version window: every merged response
//!   carries the `model` checksum, and a shard answering with a different
//!   checksum is cut out as `version_skew` instead of being merged.
//! * **Replica failover** (DESIGN.md §16) — with `--replicas R` each shard
//!   is backed by R interchangeable workers, each with its own breaker. The
//!   primary for a request is a pure function of `(session seed, arrival
//!   index, shard)`, so reruns pick the same replicas. A transport fault or
//!   garbage response advances a **failover chain** to the next replica
//!   (each advance is typed, counted, and annotated on the wire); a
//!   worker-typed refusal ends the chain — the *cluster* is answering, just
//!   not with a live slice. Only when every replica fails does the shard
//!   degrade to the widened-σ path. Net effect: any single-replica fault
//!   yields a byte-identical, `partial: false` response.
//! * **Hedged requests** — with `--hedge-ms D` (real clock only; disabled
//!   under `STUQ_FAKE_CLOCK` so determinism tests are untouched) a primary
//!   that hasn't answered within D ms gets a secondary fired at its
//!   sibling; the first complete response wins and the loser's in-flight
//!   reply is abandoned (skipped as stale by the transport).
//!
//! Determinism: all router time flows through the injectable clock — one
//! read per forecast — and slices are scattered, called, and merged in
//! shard order, so under `STUQ_FAKE_CLOCK` the merged byte stream is a pure
//! function of the request stream (and of which workers are up), identical
//! across `STUQ_THREADS` and across reruns.

use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::batcher::{Lanes, Popped};
use crate::breaker::{self, Breaker};
use crate::clock::Clock;
use crate::proto::{self, ForecastReq, OwnedIntervals, Request, ShardNote, WorkerResp};
use crate::shard::{ShardMap, ShardSlice};
use crate::{json, reload, LineOutcome, ServeConfig, ServeSummary, Server};
use stuq_models::Forecaster;
use stuq_obs::{trace, Event};
use stuq_tensor::{StuqRng, Tensor};

/// Router-specific knobs on top of the shared serve configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// The base serving configuration (model/data paths, queue, widening,
    /// breaker thresholds, seed, fake clock — all reused by the router).
    pub serve: ServeConfig,
    /// Shard count; clamped to the node count by the shard map.
    pub shards: usize,
    /// Replicas per shard (clamped ≥ 1 by the shard map). Total worker
    /// count is `shards × replicas`.
    pub replicas: usize,
    /// Real-time grace added to a request's `deadline_ms` to bound each
    /// worker RPC. Generous on purpose: it is a hang backstop, not a
    /// scheduler — fake-clock runs must never trip it spuriously.
    pub rpc_timeout_ms: u64,
    /// Hedged-request delay: fire a secondary at the primary's sibling
    /// after this many real-clock milliseconds without a reply. `None`
    /// disables hedging; it is also inert under a fake clock.
    pub hedge_ms: Option<u64>,
}

impl RouterConfig {
    /// Defaults: 3 shards, single replica, 2 s RPC backstop, no hedging.
    pub fn new(serve: ServeConfig) -> Self {
        RouterConfig { serve, shards: 3, replicas: 1, rpc_timeout_ms: 2000, hedge_ms: None }
    }
}

/// Worker liveness as the router sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Connected and answering.
    Up,
    /// Crashed/hung; the supervisor is backing off toward a restart.
    Down,
}

/// What one supervision tick observed on a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SupEvent {
    /// The worker stopped answering (crash, hang, EOF on ping).
    Down {
        /// Transport-level cause.
        reason: String,
    },
    /// The worker was respawned, reconnected, and re-assigned its shard.
    Restarted {
        /// Lifetime restart count for this shard.
        restarts: u64,
    },
    /// A respawn attempt failed; the next try comes after `backoff_ms`.
    RestartFailed {
        /// Delay before the next attempt.
        backoff_ms: u64,
        /// Why the attempt failed.
        reason: String,
    },
}

/// One shard's transport, as the router drives it. Production uses
/// [`crate::supervisor::ProcWorker`] (a child process behind a Unix
/// socket); tests use [`InProcWorker`] or scripted fakes.
pub trait ShardWorker: Send {
    /// One request line in, one response line out, bounded by a *real-time*
    /// deadline. Any transport failure — timeout, EOF, I/O error — is an
    /// `Err` (and implementations mark themselves down).
    fn call(&mut self, line: &str, timeout_ms: u64) -> Result<String, String>;
    /// Liveness as of the last call or tick.
    fn state(&self) -> WorkerState;
    /// Records a router-observed transport failure.
    fn fail(&mut self, reason: &str);
    /// Supervision tick (real time): ping when idle, restart when due.
    fn tick(&mut self) -> Vec<SupEvent>;
    /// Times this worker has been restarted.
    fn restarts(&self) -> u64 {
        0
    }
    /// Wall-clock milliseconds since the most recent successful restart,
    /// if any — surfaced per replica in `healthz`.
    fn last_restart_ms(&self) -> Option<u64> {
        None
    }
    /// True when this transport implements the split [`ShardWorker::send`]
    /// / [`ShardWorker::recv`] pair hedged requests need. Defaults false:
    /// transports without it are simply never hedged.
    fn supports_hedge(&self) -> bool {
        false
    }
    /// Fire-and-forget half of a hedged RPC: writes the request line
    /// without waiting for the response.
    fn send(&mut self, line: &str) -> Result<(), String> {
        let _ = line;
        Err("hedge_unsupported".into())
    }
    /// Receive half: waits up to `timeout_ms` for the next (non-stale)
    /// response line. `Err("rpc_timeout")` is a soft miss — the caller may
    /// poll again; any other error is a transport failure.
    fn recv(&mut self, timeout_ms: u64) -> Result<String, String> {
        let _ = timeout_ms;
        Err("hedge_unsupported".into())
    }
    /// Marks the outstanding request abandoned (the hedge lost): its
    /// eventual reply is stale and must be skipped, keeping the
    /// request/response pairing on the connection intact.
    fn abandon(&mut self) {}
    /// Waits up to `grace_ms` for an orderly exit after a `shutdown` was
    /// sent — a process worker needs the window to flush its telemetry
    /// sinks (events.jsonl) before the supervisor's Drop kills it. No-op
    /// for in-process workers.
    fn settle(&mut self, grace_ms: u64) {
        let _ = grace_ms;
    }
}

/// A [`Server`] mounted directly in the router process — no sockets, no
/// supervision. The unit-test topology: tests keep a clone of the shared
/// handle to inspect worker state (cache generation, checksum) mid-run.
pub struct InProcWorker {
    server: Arc<Mutex<Server>>,
}

impl InProcWorker {
    /// Wraps a server; [`InProcWorker::shared`] exposes the handle.
    pub fn new(server: Server) -> Self {
        InProcWorker { server: Arc::new(Mutex::new(server)) }
    }

    /// The shared server handle (clone it before boxing the worker).
    pub fn shared(&self) -> Arc<Mutex<Server>> {
        Arc::clone(&self.server)
    }
}

impl ShardWorker for InProcWorker {
    fn call(&mut self, line: &str, _timeout_ms: u64) -> Result<String, String> {
        Ok(self.server.lock().unwrap().handle_line(line).response)
    }

    fn state(&self) -> WorkerState {
        WorkerState::Up
    }

    fn fail(&mut self, _reason: &str) {}

    fn tick(&mut self) -> Vec<SupEvent> {
        Vec::new()
    }
}

/// The `assign` request line for a shard — sent on spawn and replayed on
/// every rejoin, so a restarted worker always knows its slice.
pub fn assign_line(shard: usize, shards: usize) -> String {
    format!("{{\"type\":\"assign\",\"shard\":{shard},\"shards\":{shards}}}")
}

/// A validated forecast, reduced to what the router needs to scatter it.
struct RValid {
    n_req: usize,
    deadline: Option<u64>,
    seed: Option<u64>,
    tick: Option<u64>,
    /// Effective horizon (request override or the model's).
    h: usize,
}

/// What one shard contributed to a merged response.
struct SliceOutcome {
    /// Parsed interval matrices (live forecast *or* worker-side fallback).
    rows: Option<OwnedIntervals>,
    /// MC samples used — `Some` only for a live forecast slice.
    used: Option<usize>,
    note: ShardNote,
}

/// Per-request trace context collected while a forecast is scattered and
/// merged, emitted as spans once the response is final (DESIGN.md §15).
/// Telemetry-only by contract: nothing here feeds the response bytes.
struct ReqTrace {
    trace: u64,
    /// The `request` root span id.
    span: u64,
    parent: u64,
    arrival: u64,
    wall: std::time::Instant,
    /// Queue wait from admission to processing start, when the loop
    /// measured one.
    wait_s: Option<f64>,
    /// Per-shard RPC observations: (shard, seconds, status, reason,
    /// answering replica on multi-replica clusters).
    shards: Vec<(usize, f64, &'static str, Option<String>, Option<usize>)>,
    /// Gather/merge duration, once the merge ran.
    merge_s: Option<f64>,
}

/// The cluster router state machine. [`router_loop`] drives it from a
/// reader; tests drive it line by line through [`Router::handle_line`].
pub struct Router {
    cfg: RouterConfig,
    map: ShardMap,
    workers: Vec<Box<dyn ShardWorker>>,
    breakers: Vec<Breaker>,
    /// Mean σ of each shard's last live slice — the widening base for that
    /// shard's persistence fallback.
    last_good_sigma: Vec<Option<f32>>,
    clock: Clock,
    n_nodes: usize,
    horizon: usize,
    expected_t_h: Option<usize>,
    default_mc: usize,
    model_checksum: String,
    /// Cluster reload generation; bumped once per committed two-phase
    /// reload (each worker bumps its own cache generation on commit).
    generation: u64,
    draining: bool,
    requests_served: u64,
    shed: u64,
    queue_depth: usize,
    shed_reader: u64,
    samples_used_total: u64,
    /// Admission→processing wait measured by the loop for the *next*
    /// forecast (telemetry only; consumed by `handle_forecast`).
    pending_wait: Option<f64>,
}

/// Domain-separation salt for replica selection: keeps the primary-pick
/// RNG stream disjoint from seed pinning and the faultnet plan.
const REPLICA_SALT: u64 = 0x5E1E_C7ED;

impl Router {
    /// Builds the router: reads the model artifact once (dimensions +
    /// checksum only), derives the shard map, and assigns every worker its
    /// shard. Workers are shard-major: `workers[s * replicas + r]` must be
    /// the transport for shard `s`'s replica `r`.
    pub fn new(cfg: RouterConfig, workers: Vec<Box<dyn ShardWorker>>) -> Result<Router, String> {
        let bytes = std::fs::read(&cfg.serve.model_path)
            .map_err(|e| format!("{}: {e}", cfg.serve.model_path.display()))?;
        let model = deepstuq::load_model_bytes(&bytes)
            .map_err(|e| format!("{}: {e}", cfg.serve.model_path.display()))?;
        let model_checksum = reload::file_checksum(&bytes);
        let (n_nodes, horizon) = (model.model().n_nodes(), model.model().horizon());
        let default_mc = model.mc_samples();
        drop(model);
        let expected_t_h = match &cfg.serve.data_path {
            Some(p) => {
                let ds = stuq_traffic::load_split_dataset(p)
                    .map_err(|e| format!("{}: {e}", p.display()))?;
                Some(ds.t_h())
            }
            None => None,
        };
        let map = ShardMap::replicated(n_nodes, cfg.shards, cfg.replicas);
        if workers.len() != map.n_workers() {
            return Err(format!(
                "router got {} workers for {} shards × {} replicas",
                workers.len(),
                map.n_shards(),
                map.n_replicas()
            ));
        }
        let clock = match cfg.serve.fake_clock_step_ms {
            Some(step) => Clock::fake(step),
            None => Clock::from_env(),
        };
        // One breaker per *worker*: replicas fail independently, so their
        // transport history must not be pooled.
        let breakers = (0..map.n_workers())
            .map(|_| {
                Breaker::new(
                    cfg.serve.breaker_threshold,
                    cfg.serve.breaker_cooldown_ms,
                    cfg.serve.breaker_cooldown_max_ms,
                )
            })
            .collect();
        let last_good_sigma = vec![None; map.n_shards()];
        let mut router = Router {
            cfg,
            map,
            workers,
            breakers,
            last_good_sigma,
            clock,
            n_nodes,
            horizon,
            expected_t_h,
            default_mc,
            model_checksum,
            generation: 0,
            draining: false,
            requests_served: 0,
            shed: 0,
            queue_depth: 0,
            shed_reader: 0,
            samples_used_total: 0,
            pending_wait: None,
        };
        for w in 0..router.map.n_workers() {
            router.assign_worker(w);
        }
        stuq_obs::emit(
            Event::new("cluster_start")
                .uint("shards", router.map.n_shards() as u64)
                .uint("replicas", router.map.n_replicas() as u64)
                .uint("nodes", router.n_nodes as u64),
        );
        Ok(router)
    }

    /// Sends the shard assignment to flat worker `w` (idempotent; a
    /// transport failure just marks the worker down — supervision replays
    /// it). Replicas of a shard get the identical assignment: they are
    /// interchangeable by construction.
    fn assign_worker(&mut self, w: usize) {
        let (s, _) = self.map.worker_role(w);
        let line = assign_line(s, self.map.n_shards());
        let timeout = self.cfg.rpc_timeout_ms;
        match self.workers[w].call(&line, timeout) {
            Ok(resp) => {
                if !matches!(proto::parse_worker_resp(&resp), Ok(WorkerResp::Ack { ok: true, .. }))
                {
                    self.workers[w].fail("assign_refused");
                }
            }
            Err(e) => self.workers[w].fail(&e),
        }
    }

    /// The replica that serves shard `s` for arrival index `arrival` — a
    /// pure function of the session seed, so replica selection replays
    /// byte-identically across reruns and thread counts.
    fn primary_replica(&self, arrival: u64, s: usize) -> usize {
        let nr = self.map.n_replicas();
        if nr == 1 {
            return 0;
        }
        let mut rng = StuqRng::new(self.cfg.serve.seed ^ REPLICA_SALT).fork(arrival).fork(s as u64);
        (rng.next_u64() % nr as u64) as usize
    }

    /// The active shard map.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Checksum of the model version the cluster currently serves.
    pub fn model_checksum(&self) -> &str {
        &self.model_checksum
    }

    /// Committed cluster-reload generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True once a `drain` or `shutdown` request was processed.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Sync entry point, mirroring [`Server::handle_line`].
    pub fn handle_line(&mut self, line: &str) -> LineOutcome {
        if self.draining {
            if let Ok(Request::Forecast(req)) = proto::parse_request(line) {
                return LineOutcome { response: self.reject(&req.id, "draining"), done: false };
            }
        }
        self.process_line(line)
    }

    /// Dispatches one already-admitted request line.
    pub fn process_line(&mut self, line: &str) -> LineOutcome {
        match proto::parse_request(line) {
            Err(e) => LineOutcome {
                response: proto::resp_error(&e.id, "bad_request", &e.detail),
                done: false,
            },
            Ok(Request::Forecast(req)) => {
                LineOutcome { response: self.handle_forecast(&req), done: false }
            }
            Ok(Request::Healthz { id }) => LineOutcome { response: self.healthz(&id), done: false },
            Ok(Request::Reload { id }) => {
                LineOutcome { response: self.handle_reload(&id), done: false }
            }
            Ok(Request::Drain { id }) => {
                self.draining = true;
                LineOutcome { response: proto::resp_ack(&id, "drain", &[]), done: false }
            }
            Ok(Request::Shutdown { id }) => {
                self.draining = true;
                self.shutdown_workers();
                LineOutcome { response: proto::resp_ack(&id, "shutdown", &[]), done: true }
            }
            Ok(Request::Ping { id }) => LineOutcome {
                response: proto::resp_ack(&id, "ping", &[("ok", "true".into())]),
                done: false,
            },
            // The router's own counters (the same dump a worker serves).
            Ok(Request::Metrics { id }) => LineOutcome {
                response: proto::resp_metrics(&id, &stuq_obs::metrics().counters()),
                done: false,
            },
            Ok(Request::ClusterMetrics { id }) => {
                LineOutcome { response: self.handle_cluster_metrics(&id), done: false }
            }
            // The internal worker requests stop at the router: clients talk
            // to the cluster through `reload`, never to one shard.
            Ok(
                Request::Assign { id, .. }
                | Request::PrepareReload { id }
                | Request::CommitReload { id }
                | Request::AbortReload { id },
            ) => LineOutcome {
                response: proto::resp_error(
                    &id,
                    "bad_request",
                    "cluster-internal request; send \"reload\" to the router",
                ),
                done: false,
            },
        }
    }

    /// Records a shed and renders the typed rejection.
    fn reject(&mut self, id: &Option<String>, reason: &str) -> String {
        self.shed += 1;
        stuq_obs::metrics().serve_shed.inc();
        stuq_obs::emit(Event::new("serve_rejected").str("reason", reason));
        proto::resp_rejected(id, reason)
    }

    /// Cluster-wide counter scrape (DESIGN.md §15): asks every Up worker
    /// for its counter dump, sums name-by-name on top of the router's own
    /// counters, answers the merged table, and mirrors it as a Prometheus
    /// export (`cluster_metrics.prom`) next to the router's event log.
    fn handle_cluster_metrics(&mut self, id: &Option<String>) -> String {
        let m = stuq_obs::metrics();
        let mut merged: Vec<(String, u64)> =
            m.counters().iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let mut extra: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        let line = "{\"type\":\"metrics\"}";
        let timeout = self.cfg.rpc_timeout_ms;
        let total = self.workers.len();
        let mut scraped = 0usize;
        for s in 0..total {
            if self.workers[s].state() != WorkerState::Up {
                continue;
            }
            match self.workers[s].call(line, timeout) {
                Ok(resp) => match proto::parse_worker_resp(&resp) {
                    Ok(WorkerResp::Metrics { counters }) => {
                        scraped += 1;
                        for (name, value) in counters {
                            match merged.iter_mut().find(|(k, _)| *k == name) {
                                Some((_, slot)) => *slot += value,
                                None => *extra.entry(name).or_insert(0) += value,
                            }
                        }
                    }
                    _ => self.workers[s].fail("bad_metrics_response"),
                },
                Err(e) => self.workers[s].fail(&e),
            }
        }
        // Counter names the router's catalog does not know (a newer worker
        // version) still merge — appended in sorted order for determinism.
        merged.extend(extra);
        m.cluster_scrapes.inc();
        stuq_obs::emit(
            Event::new("cluster_scrape")
                .uint("workers", total as u64)
                .uint("scraped", scraped as u64),
        );
        if let Some(dir) = stuq_obs::telemetry_dir() {
            let mut out = String::with_capacity(merged.len() * 48);
            out.push_str(&format!(
                "# cluster-merged counters: router + {scraped}/{total} workers scraped\n"
            ));
            for (name, value) in &merged {
                out.push_str(&format!("{name} {value}\n"));
            }
            let _ = stuq_artifact::write_atomic(dir.join("cluster_metrics.prom"), out.as_bytes());
        }
        proto::resp_metrics_owned(id, &merged)
    }

    /// Mirrors [`Server`]'s request validation so a router refuses exactly
    /// what a solo server refuses, with the same typed errors.
    fn validate(&self, req: &ForecastReq) -> Result<RValid, String> {
        let t_rows = req.x.len();
        let width = req.x[0].len();
        if width != self.n_nodes {
            return Err(proto::resp_error(
                &req.id,
                "shape_mismatch",
                &format!("expected {} columns (sensors), got {width}", self.n_nodes),
            ));
        }
        if let Some(t_h) = self.expected_t_h {
            if t_rows != t_h {
                return Err(proto::resp_error(
                    &req.id,
                    "shape_mismatch",
                    &format!("expected {t_h} rows (input window), got {t_rows}"),
                ));
            }
        }
        if let Some(nodes) = &req.nodes {
            if let Some(&bad) = nodes.iter().find(|&&i| i >= self.n_nodes) {
                return Err(proto::resp_error(
                    &req.id,
                    "shape_mismatch",
                    &format!("node {bad} out of range (model has {} sensors)", self.n_nodes),
                ));
            }
        }
        if let Some(h) = req.horizon {
            if h > self.horizon {
                return Err(proto::resp_error(
                    &req.id,
                    "shape_mismatch",
                    &format!("horizon {h} beyond model horizon {}", self.horizon),
                ));
            }
        }
        if req.x.iter().flatten().any(|v| !v.is_finite()) {
            return Err(proto::resp_error(
                &req.id,
                "non_finite_input",
                "input window contains non-finite values",
            ));
        }
        let n_req = req.mc.or(self.cfg.serve.mc_samples).unwrap_or(self.default_mc).max(1);
        let deadline = req.deadline_ms.or(self.cfg.serve.default_deadline_ms);
        // Workers must agree on the RNG derivation, and each one counts its
        // own arrivals — so a seedless, tickless request gets an explicit
        // seed pinned here, derived from the router seed and arrival index.
        let (seed, tick) = match (req.seed, req.tick) {
            (None, None) => {
                let mut rng = StuqRng::new(self.cfg.serve.seed).fork(self.requests_served);
                (Some(rng.next_u64()), None)
            }
            (s, t) => (s, t),
        };
        let h = req.horizon.unwrap_or(self.horizon);
        Ok(RValid { n_req, deadline, seed, tick, h })
    }

    /// The sub-request for one shard's slice: the full window plus the
    /// slice's node list, with the seed/tick derivation pinned. `ctx` is
    /// the trace context — `(trace id, this shard's scatter span)` — so the
    /// worker's `serve` span nests under the router's `shard` span.
    fn sub_request(
        req: &ForecastReq,
        v: &RValid,
        slice: &ShardSlice,
        ctx: Option<(u64, u64)>,
    ) -> String {
        let cells: usize = req.x.len() * req.x[0].len();
        let mut s = String::with_capacity(cells * 8 + 96);
        s.push_str("{\"type\":\"forecast\"");
        if let Some(d) = v.deadline {
            s.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        s.push_str(&format!(",\"mc\":{}", v.n_req));
        if let Some(seed) = v.seed {
            s.push_str(&format!(",\"seed\":{seed}"));
        }
        if let Some(tick) = v.tick {
            s.push_str(&format!(",\"tick\":{tick}"));
        }
        if let Some(h) = req.horizon {
            s.push_str(&format!(",\"horizon\":{h}"));
        }
        if let Some((trace_id, span)) = ctx {
            s.push_str(&format!(
                ",\"trace\":\"{}\",\"span\":\"{}\"",
                trace::fmt_id(trace_id),
                trace::fmt_id(span)
            ));
        }
        s.push_str(",\"nodes\":[");
        for (i, n) in slice.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&n.to_string());
        }
        s.push_str("],\"x\":[");
        for (i, row) in req.x.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&proto::fmt_f32(*cell));
            }
            s.push(']');
        }
        s.push_str("]}");
        s
    }

    /// One shard's contribution: a failover chain over its replicas,
    /// starting at the seed-derived primary. Each attempt runs breaker gate
    /// → RPC → typed classification. Transport faults and garbage responses
    /// (`rpc_timeout`, `eof`, `version_skew`, `worker_error`) advance the
    /// chain to the next replica — counted as `cluster_failover` and
    /// annotated on the wire; worker-typed *refusals* (`rejected`,
    /// `fallback`) end it — the transport is healthy and the worker's
    /// reason surfaces verbatim with the shard id (the satellite contract).
    /// Only an exhausted chain degrades the slice.
    ///
    /// Per-worker breakers see transport faults only; refusals and garbage
    /// lines never count (the wire delivered — the breaker's job is the
    /// wire).
    fn call_shard(
        &mut self,
        slice: &ShardSlice,
        req: &ForecastReq,
        v: &RValid,
        now: u64,
        ctx: Option<(u64, u64)>,
        arrival: u64,
    ) -> SliceOutcome {
        let s = slice.shard;
        let nr = self.map.n_replicas();
        let primary = self.primary_replica(arrival, s);
        let line = Self::sub_request(req, v, slice, ctx);
        // Real-time hang backstop: logical deadline plus a generous grace.
        let timeout = v.deadline.unwrap_or(0).saturating_add(self.cfg.rpc_timeout_ms);
        let shape_ok = |iv: &OwnedIntervals| {
            let expect = [slice.nodes.len(), v.h];
            [&iv.mu, &iv.sigma, &iv.lower, &iv.upper].iter().all(|t| t.shape() == expect)
        };
        // Failed attempts the chain advanced past: (replica, typed reason).
        let mut attempts: Vec<(usize, String)> = Vec::new();
        let mut outcome: Option<SliceOutcome> = None;
        for i in 0..nr {
            let r = (primary + i) % nr;
            if let Some(&(from, ref reason)) = attempts.last() {
                // The previous attempt failed and we are about to try
                // another replica: that is one failover.
                stuq_obs::metrics().cluster_failover.inc();
                stuq_obs::emit(
                    Event::new("cluster_failover")
                        .uint("shard", s as u64)
                        .uint("from_replica", from as u64)
                        .uint("to_replica", r as u64)
                        .str("reason", reason.clone()),
                );
            }
            let w = self.map.worker_index(s, r);
            if let Some(t) = self.breakers[w].poll(now) {
                self.note_breaker(s, r, t);
            }
            if self.workers[w].state() == WorkerState::Down {
                attempts.push((r, "worker_down".to_string()));
                continue;
            }
            if self.breakers[w].state() == breaker::State::Open {
                attempts.push((r, "breaker_open".to_string()));
                continue;
            }
            // First attempt may hedge; retries are already late — they go
            // straight to the wire.
            let (ar, result) = if i == 0 {
                self.hedged_or_plain(s, r, &line, timeout)
            } else {
                (r, self.workers[w].call(&line, timeout))
            };
            let aw = self.map.worker_index(s, ar);
            let resp = match result {
                Ok(resp) => resp,
                Err(e) => {
                    self.workers[aw].fail(&e);
                    if let Some(t) = self.breakers[aw].on_fault(now) {
                        self.note_breaker(s, ar, t);
                    }
                    stuq_obs::metrics().cluster_rpc_failures.inc();
                    stuq_obs::emit(
                        Event::new("worker_down")
                            .uint("shard", s as u64)
                            .uint("replica", ar as u64)
                            .str("reason", e.clone()),
                    );
                    // The wire carries classifications, never raw transport
                    // errors (those go to the event log above).
                    let typed = if e == "rpc_timeout" { "rpc_timeout" } else { "worker_down" };
                    attempts.push((ar, typed.to_string()));
                    continue;
                }
            };
            if let Some(t) = self.breakers[aw].on_success() {
                self.note_breaker(s, ar, t);
            }
            let replica = (nr > 1).then_some(ar);
            match proto::parse_worker_resp(&resp) {
                Ok(WorkerResp::Forecast { samples_used, model, iv, .. }) => {
                    if model != self.model_checksum {
                        // A replica on a different model version must never
                        // be merged — that would be the mixed-version
                        // window the two-phase reload exists to prevent.
                        // Its sibling may well be on the right version.
                        attempts.push((ar, "version_skew".to_string()));
                        continue;
                    }
                    if !shape_ok(&iv) {
                        attempts.push((ar, "worker_error".to_string()));
                        continue;
                    }
                    let mean = iv.sigma.data().iter().sum::<f32>() / iv.sigma.len() as f32;
                    self.last_good_sigma[s] = Some(mean);
                    outcome = Some(SliceOutcome {
                        rows: Some(iv),
                        used: Some(samples_used),
                        note: ShardNote { replica, ..ShardNote::ok(s) },
                    });
                }
                Ok(WorkerResp::Fallback { reason, iv }) => {
                    if !shape_ok(&iv) {
                        attempts.push((ar, "worker_error".to_string()));
                        continue;
                    }
                    // The worker already served its documented persistence
                    // fallback — keep its rows, surface its typed reason,
                    // and stop: refusals are healthy transport, not faults.
                    outcome = Some(SliceOutcome {
                        rows: Some(iv),
                        used: None,
                        note: ShardNote { replica, ..ShardNote::fallback(s, &reason) },
                    });
                }
                Ok(WorkerResp::Rejected { reason }) => {
                    outcome = Some(SliceOutcome {
                        rows: None,
                        used: None,
                        note: ShardNote { replica, ..ShardNote::fallback(s, &reason) },
                    });
                }
                Ok(_) | Err(_) => {
                    attempts.push((ar, "worker_error".to_string()));
                    continue;
                }
            }
            break;
        }
        let mut out = outcome.unwrap_or_else(|| {
            // Chain exhausted: every replica failed. The terminal reason is
            // the last attempt's; earlier ones stay in the annotation. A
            // final timeout reads as the worker being gone — the historical
            // single-replica wire bytes say `worker_down`, and the richer
            // `rpc_timeout` detail survives in the attempts annotation.
            let (_, mut reason) = attempts.pop().expect("nr >= 1 attempts on exhaustion");
            if reason == "rpc_timeout" {
                reason = "worker_down".to_string();
            }
            SliceOutcome { rows: None, used: None, note: ShardNote::fallback(s, &reason) }
        });
        if nr > 1 {
            out.note.attempts = attempts;
        }
        out
    }

    /// The first attempt's transport round-trip: plain `call`, unless
    /// hedging is configured, the clock is real, and a serviceable sibling
    /// exists — then the hedged race. Returns `(answering replica, result)`.
    fn hedged_or_plain(
        &mut self,
        s: usize,
        r: usize,
        line: &str,
        timeout_ms: u64,
    ) -> (usize, Result<String, String>) {
        let w = self.map.worker_index(s, r);
        let nr = self.map.n_replicas();
        let plain = |me: &mut Self| (r, me.workers[w].call(line, timeout_ms));
        let Some(hedge_ms) = self.cfg.hedge_ms else {
            return plain(self);
        };
        if self.clock.is_fake() || nr < 2 || !self.workers[w].supports_hedge() {
            return plain(self);
        }
        let partner = (1..nr).map(|i| (r + i) % nr).find(|&h| {
            let hw = self.map.worker_index(s, h);
            self.workers[hw].state() == WorkerState::Up
                && self.breakers[hw].state() != breaker::State::Open
                && self.workers[hw].supports_hedge()
        });
        let Some(h) = partner else {
            return plain(self);
        };
        self.hedged_rpc(s, r, h, line, timeout_ms, hedge_ms)
    }

    /// The hedged race (real clock only): send to the primary; if no reply
    /// within `hedge_ms`, fire the identical request at the sibling and
    /// poll both — first complete line wins, the loser's in-flight reply is
    /// abandoned (its transport skips it as stale). A sibling win is
    /// counted as `cluster_hedge_won`.
    fn hedged_rpc(
        &mut self,
        s: usize,
        rp: usize,
        rh: usize,
        line: &str,
        timeout_ms: u64,
        hedge_ms: u64,
    ) -> (usize, Result<String, String>) {
        let deadline =
            std::time::Instant::now() + Duration::from_millis(timeout_ms.max(hedge_ms).max(1));
        let wp = self.map.worker_index(s, rp);
        let wh = self.map.worker_index(s, rh);
        if let Err(e) = self.workers[wp].send(line) {
            return (rp, Err(e));
        }
        match self.workers[wp].recv(hedge_ms.max(1)) {
            Ok(resp) => return (rp, Ok(resp)),
            Err(e) if e == "rpc_timeout" => {}
            Err(e) => return (rp, Err(e)),
        }
        let hedge_event = |winner: usize| {
            stuq_obs::emit(
                Event::new("cluster_hedge")
                    .uint("shard", s as u64)
                    .uint("primary", rp as u64)
                    .uint("secondary", rh as u64)
                    .uint("winner", winner as u64),
            );
        };
        let mut hedge_live = self.workers[wh].send(line).is_ok();
        let mut primary_err: Option<String> = None;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                if hedge_live {
                    self.workers[wh].abandon();
                }
                return (rp, Err(primary_err.unwrap_or_else(|| "rpc_timeout".into())));
            }
            let slice_ms = (left.as_millis() as u64).clamp(1, 25);
            if primary_err.is_none() {
                match self.workers[wp].recv(slice_ms) {
                    Ok(resp) => {
                        if hedge_live {
                            self.workers[wh].abandon();
                        }
                        hedge_event(rp);
                        return (rp, Ok(resp));
                    }
                    Err(e) if e == "rpc_timeout" => {}
                    Err(e) => primary_err = Some(e),
                }
            }
            if hedge_live {
                match self.workers[wh].recv(slice_ms) {
                    Ok(resp) => {
                        if primary_err.is_none() {
                            self.workers[wp].abandon();
                        }
                        stuq_obs::metrics().cluster_hedge_won.inc();
                        hedge_event(rh);
                        return (rh, Ok(resp));
                    }
                    Err(e) if e == "rpc_timeout" => {}
                    Err(_) => hedge_live = false,
                }
            }
            if !hedge_live && primary_err.is_some() {
                return (rp, Err(primary_err.unwrap()));
            }
        }
    }

    /// Scatter → per-shard calls (shard order) → gather/merge, wrapped in
    /// the request's trace context (DESIGN.md §15): a `request` root span,
    /// one `shard` child per scatter RPC carrying straggler/death
    /// attribution, and a `merge` phase. See the module docs for the
    /// degradation ladder.
    fn handle_forecast(&mut self, req: &ForecastReq) -> String {
        let wait_s = self.pending_wait.take();
        if let Some(w) = wait_s {
            stuq_obs::metrics().serve_admission_seconds.record(w);
        }
        let mut tr = if stuq_obs::trace_enabled() {
            let arrival = self.requests_served;
            let trace_id =
                req.trace.unwrap_or_else(|| trace::derive_trace_id(self.cfg.serve.seed, arrival));
            let parent = req.span.unwrap_or(trace_id);
            Some(ReqTrace {
                trace: trace_id,
                span: trace::derive_span_id(parent, "request", arrival),
                parent,
                arrival,
                wall: std::time::Instant::now(),
                wait_s,
                shards: Vec::new(),
                merge_s: None,
            })
        } else {
            None
        };
        let (mut resp, status) = self.forecast_inner(req, &mut tr);
        if let Some(t) = tr {
            trace::emit_span(trace::start_event(t.trace, t.span, t.parent, "request"));
            if let Some(w) = t.wait_s {
                trace::emit_phase(t.trace, t.span, "admission", t.arrival, w);
            }
            for (shard, seconds, sstatus, reason, replica) in &t.shards {
                let sspan = trace::derive_span_id(t.span, "shard", *shard as u64);
                trace::emit_span(
                    trace::start_event(t.trace, sspan, t.span, "shard")
                        .uint("shard", *shard as u64),
                );
                let mut end = trace::end_event(t.trace, sspan, *seconds)
                    .uint("shard", *shard as u64)
                    .str("status", sstatus.to_string());
                if let Some(r) = reason {
                    end = end.str("reason", r.clone());
                }
                if let Some(r) = replica {
                    end = end.uint("replica", *r as u64);
                }
                trace::emit_span(end);
            }
            if let Some(ms) = t.merge_s {
                trace::emit_phase(t.trace, t.span, "merge", t.arrival, ms);
            }
            let secs = t.wall.elapsed().as_secs_f64();
            let mut end = trace::end_event(t.trace, t.span, secs);
            if status != "ok" {
                end = end.str("status", status.to_string());
            }
            trace::emit_span(end);
            trace::note_request(t.trace, secs);
            proto::push_trace_meta(&mut resp, t.trace, t.span);
        }
        resp
    }

    /// [`Router::handle_forecast`] minus the span emission: returns the
    /// response plus the root-span status, recording per-shard RPC
    /// observations into `tr` along the way.
    fn forecast_inner(
        &mut self,
        req: &ForecastReq,
        tr: &mut Option<ReqTrace>,
    ) -> (String, &'static str) {
        let m = stuq_obs::metrics();
        m.serve_requests.inc();
        let v = match self.validate(req) {
            Ok(v) => v,
            Err(resp) => {
                self.requests_served += 1;
                return (resp, "error");
            }
        };
        // The arrival index pins seedless seeds (in `validate`, above) and
        // replica selection — both pre-increment, both pure in the seed.
        let arrival = self.requests_served;
        self.requests_served += 1;
        let sel_len = req.nodes.as_ref().map_or(self.n_nodes, Vec::len);
        let slices = self.map.scatter(req.nodes.as_deref());
        // One clock read per forecast: every breaker decision in this
        // request shares it, mirroring the solo server's schedule.
        let now = self.clock.now_ms();

        let mut outcomes: Vec<(ShardSlice, SliceOutcome)> = Vec::with_capacity(slices.len());
        for slice in slices {
            let ctx = tr
                .as_ref()
                .map(|t| (t.trace, trace::derive_span_id(t.span, "shard", slice.shard as u64)));
            let rpc_t0 = std::time::Instant::now();
            let outcome = self.call_shard(&slice, req, &v, now, ctx, arrival);
            let rpc_s = rpc_t0.elapsed().as_secs_f64();
            m.cluster_shard_rpc_seconds.record(rpc_s);
            if let Some(t) = tr.as_mut() {
                t.shards.push((
                    slice.shard,
                    rpc_s,
                    outcome.note.status,
                    outcome.note.reason.clone(),
                    outcome.note.replica,
                ));
            }
            outcomes.push((slice, outcome));
        }
        let merge_t0 = std::time::Instant::now();

        // Gather. Live rows and worker fallbacks merge by position; a shard
        // with no rows at all degrades to router-side persistence — unless
        // it has no σ history yet, in which case there is nothing honest to
        // serve and the whole request is rejected naming that shard.
        let h = v.h;
        let t_rows = req.x.len();
        let z = stuq_metrics::Z_95 as f32;
        let mut mu = vec![0.0f32; sel_len * h];
        let mut sigma = vec![0.0f32; sel_len * h];
        let mut lower = vec![0.0f32; sel_len * h];
        let mut upper = vec![0.0f32; sel_len * h];
        let mut notes: Vec<ShardNote> = Vec::with_capacity(outcomes.len());
        let mut min_used: Option<usize> = None;
        let mut first_fail: Option<(usize, String)> = None;
        for (slice, outcome) in &outcomes {
            if outcome.note.status != "ok" && first_fail.is_none() {
                let reason = outcome.note.reason.clone().unwrap_or_else(|| "worker_down".into());
                first_fail = Some((slice.shard, reason));
            }
            match &outcome.rows {
                Some(iv) => {
                    for (k, &pos) in slice.positions.iter().enumerate() {
                        for t in 0..h {
                            mu[pos * h + t] = iv.mu.get(k, t);
                            sigma[pos * h + t] = iv.sigma.get(k, t);
                            lower[pos * h + t] = iv.lower.get(k, t);
                            upper[pos * h + t] = iv.upper.get(k, t);
                        }
                    }
                    if let Some(used) = outcome.used {
                        min_used = Some(min_used.map_or(used, |cur| cur.min(used)));
                        self.samples_used_total += used as u64;
                    }
                }
                None => {
                    let Some(sig0) = self.last_good_sigma[slice.shard] else {
                        let reason =
                            outcome.note.reason.clone().unwrap_or_else(|| "worker_down".into());
                        self.shed += 1;
                        m.serve_shed.inc();
                        stuq_obs::emit(Event::new("serve_rejected").str("reason", reason.as_str()));
                        return (
                            proto::resp_rejected_shard(&req.id, &reason, slice.shard),
                            "rejected",
                        );
                    };
                    let widened = self.cfg.serve.widen_factor * sig0;
                    for (k, &pos) in slice.positions.iter().enumerate() {
                        let last = req.x[t_rows - 1][slice.nodes[k]];
                        for t in 0..h {
                            mu[pos * h + t] = last;
                            sigma[pos * h + t] = widened;
                            lower[pos * h + t] = last - z * widened;
                            upper[pos * h + t] = last + z * widened;
                        }
                    }
                }
            }
            notes.push(outcome.note.clone());
        }

        let partial = notes.iter().any(|n| n.status != "ok");
        if partial {
            let failed = notes.iter().filter(|n| n.status != "ok").count();
            m.serve_partial.inc();
            stuq_obs::emit(Event::new("serve_partial").uint("shards_failed", failed as u64));
        }
        let shape = [sel_len, h];
        let iv = proto::Intervals {
            mu: &Tensor::from_vec(mu, &shape),
            sigma: &Tensor::from_vec(sigma, &shape),
            lower: &Tensor::from_vec(lower, &shape),
            upper: &Tensor::from_vec(upper, &shape),
        };
        let merge_s = merge_t0.elapsed().as_secs_f64();
        m.cluster_merge_seconds.record(merge_s);
        if let Some(t) = tr.as_mut() {
            t.merge_s = Some(merge_s);
        }
        match min_used {
            Some(used) => (
                proto::resp_cluster_forecast(
                    &req.id,
                    used,
                    v.n_req,
                    &self.model_checksum,
                    &notes,
                    &iv,
                ),
                if partial { "partial" } else { "ok" },
            ),
            None => {
                // Every shard degraded, but each one had history to fall
                // back on — the response is a cluster-wide fallback.
                let (_, reason) = first_fail.unwrap_or((0, "worker_down".into()));
                m.serve_fallback.inc();
                (proto::resp_cluster_fallback(&req.id, &reason, &notes, &iv), "fallback")
            }
        }
    }

    /// Two-phase cluster-wide reload. Validation happens exactly once, at
    /// the router; workers then stage (`prepare_reload`) and only a
    /// unanimous ack commits. Any refusal — or any shard down — aborts
    /// everywhere, leaving every worker on the old version with its cache
    /// generation untouched.
    /// Human-readable name for flat worker `w` in reload nack reasons:
    /// `worker 1` on single-replica clusters (the historical wording),
    /// `worker 1/0` with replicas.
    fn worker_label(&self, w: usize) -> String {
        let (s, r) = self.map.worker_role(w);
        if self.map.n_replicas() == 1 {
            format!("worker {s}")
        } else {
            format!("worker {s}/{r}")
        }
    }

    fn handle_reload(&mut self, id: &Option<String>) -> String {
        let m = stuq_obs::metrics();
        let n = self.map.n_workers();
        let nack = |reason: &str| {
            proto::resp_ack(
                id,
                "reload",
                &[("ok", "false".into()), ("reason", json::escape(reason))],
            )
        };
        // Router-side validation: checksum + parse + shape, once.
        let v = reload::validate(&self.cfg.serve.model_path);
        let checksum = v.checksum.clone();
        let precheck = match v.result {
            Err(e) => Err(e),
            Ok(candidate) => {
                let (n1, h1) = (candidate.model().n_nodes(), candidate.model().horizon());
                if (n1, h1) != (self.n_nodes, self.horizon) {
                    Err(format!(
                        "shape mismatch: serving [{} nodes, horizon {}], \
                         candidate [{n1} nodes, horizon {h1}]",
                        self.n_nodes, self.horizon
                    ))
                } else {
                    Ok(())
                }
            }
        };
        if let Err(reason) = precheck {
            m.cluster_reload_aborts.inc();
            stuq_obs::emit(
                Event::new("cluster_reload_abort")
                    .str("checksum", checksum.as_str())
                    .str("reason", reason.as_str()),
            );
            return nack(&reason);
        }
        // A commit must be unanimous, so every worker — every replica of
        // every shard — has to be reachable before anything is staged: a
        // replica that misses the swap would answer `version_skew` slices
        // until its next restart.
        if let Some(w) = (0..n).find(|&w| self.workers[w].state() == WorkerState::Down) {
            let reason = format!("{} down", self.worker_label(w));
            m.cluster_reload_aborts.inc();
            stuq_obs::emit(
                Event::new("cluster_reload_abort")
                    .str("checksum", checksum.as_str())
                    .str("reason", reason.as_str()),
            );
            return nack(&reason);
        }
        // Phase one: stage everywhere; stop at the first refusal.
        let prepare = "{\"type\":\"prepare_reload\"}".to_string();
        let timeout = self.cfg.rpc_timeout_ms;
        let mut acks = 0usize;
        let mut failure: Option<String> = None;
        for w in 0..n {
            let label = self.worker_label(w);
            let outcome = match self.workers[w].call(&prepare, timeout) {
                Err(e) => {
                    self.workers[w].fail(&e);
                    Err(format!("{label}: {e}"))
                }
                Ok(resp) => match proto::parse_worker_resp(&resp) {
                    Ok(WorkerResp::Ack { ok: true, checksum: Some(ck), .. }) if ck == checksum => {
                        Ok(())
                    }
                    Ok(WorkerResp::Ack { ok: true, .. }) => {
                        Err(format!("{label}: staged checksum mismatch"))
                    }
                    Ok(WorkerResp::Ack { reason, .. }) => Err(format!(
                        "{label}: {}",
                        reason.unwrap_or_else(|| "prepare refused".into())
                    )),
                    _ => Err(format!("{label}: unexpected prepare response")),
                },
            };
            match outcome {
                Ok(()) => acks += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        stuq_obs::emit(
            Event::new("cluster_reload_prepare")
                .str("checksum", checksum.as_str())
                .uint("acks", acks as u64),
        );
        if let Some(reason) = failure {
            // Abort everywhere (best effort — a worker that never staged
            // just acks with staged:false).
            let abort = "{\"type\":\"abort_reload\"}".to_string();
            for w in 0..n {
                if self.workers[w].state() == WorkerState::Up {
                    let _ = self.workers[w].call(&abort, timeout);
                }
            }
            m.cluster_reload_aborts.inc();
            stuq_obs::emit(
                Event::new("cluster_reload_abort")
                    .str("checksum", checksum.as_str())
                    .str("reason", reason.as_str()),
            );
            return nack(&reason);
        }
        // Phase two: unanimous — commit everywhere. A transport loss here
        // is tolerable: the restarted worker reloads the *new* artifact
        // from disk, and until then its slices are typed `worker_down`
        // fallbacks, never mixed-version merges.
        let commit = "{\"type\":\"commit_reload\"}".to_string();
        for w in 0..n {
            if let Err(e) = self.workers[w].call(&commit, timeout) {
                self.workers[w].fail(&e);
                let (s, r) = self.map.worker_role(w);
                stuq_obs::emit(
                    Event::new("worker_down")
                        .uint("shard", s as u64)
                        .uint("replica", r as u64)
                        .str("reason", e),
                );
            }
        }
        self.model_checksum = checksum.clone();
        self.generation += 1;
        m.cluster_reload_commits.inc();
        stuq_obs::emit(Event::new("cluster_reload_commit").str("checksum", checksum.as_str()));
        proto::resp_ack(
            id,
            "reload",
            &[
                ("ok", "true".into()),
                ("checksum", json::escape(&checksum)),
                ("generation", self.generation.to_string()),
            ],
        )
    }

    /// Maps a worker-breaker transition onto the event log (`shard` and
    /// `replica` ride along as extra fields on the standard breaker
    /// events).
    fn note_breaker(&mut self, s: usize, r: usize, t: breaker::Transition) {
        let shard = s as u64;
        let replica = r as u64;
        match t {
            breaker::Transition::Opened { consecutive, cooldown_ms } => stuq_obs::emit(
                Event::new("breaker_open")
                    .uint("consecutive_faults", consecutive as u64)
                    .uint("cooldown_ms", cooldown_ms)
                    .uint("shard", shard)
                    .uint("replica", replica),
            ),
            breaker::Transition::HalfOpened { cooldown_ms } => stuq_obs::emit(
                Event::new("breaker_half_open")
                    .uint("cooldown_ms", cooldown_ms)
                    .uint("shard", shard)
                    .uint("replica", replica),
            ),
            breaker::Transition::Closed { cooldown_ms } => stuq_obs::emit(
                Event::new("breaker_close")
                    .uint("cooldown_ms", cooldown_ms)
                    .uint("shard", shard)
                    .uint("replica", replica),
            ),
        }
    }

    /// Idle-tick supervision: drain worker tick events (crash detection,
    /// backed-off restarts, shard-map replay), refresh the workers-up
    /// gauge, and advance real-clock breakers.
    pub fn tick(&mut self) {
        let m = stuq_obs::metrics();
        for wi in 0..self.workers.len() {
            let (s, r) = self.map.worker_role(wi);
            for ev in self.workers[wi].tick() {
                match ev {
                    SupEvent::Down { reason } => {
                        stuq_obs::emit(
                            Event::new("worker_down")
                                .uint("shard", s as u64)
                                .uint("replica", r as u64)
                                .str("reason", reason),
                        );
                    }
                    SupEvent::Restarted { restarts } => {
                        m.cluster_restarts.inc();
                        // Fresh process: its transport history is moot.
                        self.breakers[wi].reset();
                        stuq_obs::emit(
                            Event::new("worker_restart")
                                .uint("shard", s as u64)
                                .uint("replica", r as u64)
                                .uint("restarts", restarts),
                        );
                    }
                    SupEvent::RestartFailed { backoff_ms, reason } => {
                        stuq_obs::emit(
                            Event::new("worker_restart_failed")
                                .uint("shard", s as u64)
                                .uint("replica", r as u64)
                                .uint("backoff_ms", backoff_ms)
                                .str("reason", reason),
                        );
                    }
                }
            }
        }
        let up = self.workers.iter().filter(|w| w.state() == WorkerState::Up).count();
        m.cluster_workers_up.set(up as f64);
        self.poll_breakers_idle();
    }

    /// Real-clock-only idle breaker polls (same contract as the solo
    /// server: no logical-clock reads outside the request pipeline).
    fn poll_breakers_idle(&mut self) {
        if self.clock.is_fake() {
            return;
        }
        let now = self.clock.now_ms();
        for w in 0..self.breakers.len() {
            if let Some(t) = self.breakers[w].poll(now) {
                let (s, r) = self.map.worker_role(w);
                self.note_breaker(s, r, t);
            }
        }
    }

    /// Best-effort worker shutdown (drains each worker's loop), then a
    /// short settle window so process workers can flush their telemetry
    /// sinks; the supervisor's Drop still kills whatever lingers.
    fn shutdown_workers(&mut self) {
        let line = "{\"type\":\"shutdown\"}".to_string();
        let timeout = self.cfg.rpc_timeout_ms;
        for w in 0..self.workers.len() {
            if self.workers[w].state() == WorkerState::Up {
                let _ = self.workers[w].call(&line, timeout);
            }
        }
        for w in &mut self.workers {
            w.settle(2_000);
        }
    }

    /// Aggregate cluster health: `healthy` (every worker up, breaker
    /// closed), `down` (no shard serviceable), `degraded` otherwise, with
    /// per-shard detail. Each shard entry aggregates its replicas —
    /// `state`/`breaker` reflect the best live replica (what the router can
    /// actually use), `restarts` sums, and `fidelity` tracks redundancy:
    /// `full` only while *every* replica is up with a closed breaker, so a
    /// flapping replica shows `degraded` here even though responses stay
    /// full fidelity. Multi-replica clusters add a `replicas` array with
    /// per-replica role (primary = the seed-derived pick for the next
    /// arrival), breaker, restart count, and ms since the last restart.
    fn healthz(&self, id: &Option<String>) -> String {
        let n = self.map.n_shards();
        let nr = self.map.n_replicas();
        let rank = |st: breaker::State| match st {
            breaker::State::Closed => 0u8,
            breaker::State::HalfOpen => 1,
            breaker::State::Open => 2,
        };
        let wup = |w: usize| self.workers[w].state() == WorkerState::Up;
        let replicas_of = |s: usize| (0..nr).map(move |r| s * nr + r);
        let up = |s: usize| replicas_of(s).any(&wup);
        // The breaker the shard effectively presents: the least-severe
        // among live replicas (the chain will reach it), or among all
        // replicas when none are up.
        let agg_breaker = |s: usize| {
            let live = replicas_of(s).filter(|&w| wup(w)).map(|w| self.breakers[w].state());
            let any = replicas_of(s).map(|w| self.breakers[w].state());
            live.min_by_key(|&st| rank(st)).or_else(|| any.min_by_key(|&st| rank(st))).unwrap()
        };
        let serviceable =
            |s: usize| replicas_of(s).any(|w| wup(w) && self.breakers[w].state() != breaker::State::Open);
        let n_up = (0..self.map.n_workers()).filter(|&w| wup(w)).count();
        let n_serviceable = (0..n).filter(|&s| serviceable(s)).count();
        let all_healthy = (0..self.map.n_workers())
            .all(|w| wup(w) && self.breakers[w].state() == breaker::State::Closed);
        let status = if self.draining {
            "draining"
        } else if all_healthy {
            "healthy"
        } else if n_serviceable == 0 {
            "down"
        } else {
            "degraded"
        };
        let ready = !self.draining && n_serviceable > 0;
        let shed = self.shed + self.shed_reader;
        let mut out = String::with_capacity(256);
        out.push_str("{\"type\":\"health\"");
        if let Some(id) = id {
            out.push_str(",\"id\":");
            out.push_str(&json::escape(id));
        }
        out.push_str(&format!(
            ",\"status\":\"{status}\",\"ready\":{ready},\"cluster\":true,\
             \"shards\":{n},\"workers_up\":{n_up},\"queue_depth\":{},\
             \"queue_capacity\":{},\"requests\":{},\"shed\":{shed},\
             \"model_checksum\":\"{}\",\"generation\":{},\"detail\":[",
            self.queue_depth,
            self.cfg.serve.max_queue,
            self.requests_served,
            self.model_checksum,
            self.generation,
        ));
        for s in 0..n {
            if s > 0 {
                out.push(',');
            }
            let restarts: u64 = replicas_of(s).map(|w| self.workers[w].restarts()).sum();
            let fidelity = if replicas_of(s)
                .all(|w| wup(w) && self.breakers[w].state() == breaker::State::Closed)
            {
                "full"
            } else {
                "degraded"
            };
            out.push_str(&format!(
                "{{\"shard\":{s},\"state\":\"{}\",\"breaker\":\"{}\",\"restarts\":{restarts},\
                 \"fidelity\":\"{fidelity}\"",
                if up(s) { "up" } else { "down" },
                agg_breaker(s).as_str(),
            ));
            if nr > 1 {
                let primary = self.primary_replica(self.requests_served, s);
                out.push_str(",\"replicas\":[");
                for r in 0..nr {
                    if r > 0 {
                        out.push(',');
                    }
                    let w = self.map.worker_index(s, r);
                    out.push_str(&format!(
                        "{{\"replica\":{r},\"role\":\"{}\",\"state\":\"{}\",\"breaker\":\"{}\",\
                         \"restarts\":{}",
                        if r == primary { "primary" } else { "backup" },
                        if wup(w) { "up" } else { "down" },
                        self.breakers[w].state().as_str(),
                        self.workers[w].restarts(),
                    ));
                    if let Some(ms) = self.workers[w].last_restart_ms() {
                        out.push_str(&format!(",\"last_restart_ms\":{ms}"));
                    }
                    out.push('}');
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Atomically rewrites `health.json` (same torn-read-free contract as
    /// the solo server — a scrape during a shard flap sees old or new,
    /// never half).
    pub fn write_health(&self) {
        if let Some(dir) = &self.cfg.serve.health_dir {
            let line = self.healthz(&None);
            let _ = stuq_artifact::write_atomic(
                dir.join("health.json"),
                format!("{line}\n").as_bytes(),
            );
        }
    }
}

/// Runs the router loop: the same two-lane admission front as
/// [`crate::serve_loop`] (reader thread sheds `queue_full`/`draining`
/// forecasts with typed rejections), with the worker side scattering each
/// forecast across the cluster. Idle ticks drive supervision and the
/// atomic `health.json` mirror.
pub fn router_loop<R, W>(router: &mut Router, reader: R, writer: W) -> ServeSummary
where
    R: BufRead + Send + 'static,
    W: Write + Send + 'static,
{
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    struct Flags {
        draining: AtomicBool,
        shed: AtomicU64,
    }

    let lanes = Arc::new(Lanes::new(router.cfg.serve.max_queue));
    let flags =
        Arc::new(Flags { draining: AtomicBool::new(router.draining), shed: AtomicU64::new(0) });
    let out = Arc::new(Mutex::new(writer));
    let responses = Arc::new(AtomicU64::new(0));

    let write_line = {
        let out = Arc::clone(&out);
        let responses = Arc::clone(&responses);
        move |line: &str| {
            let mut w = out.lock().unwrap();
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
            responses.fetch_add(1, Ordering::Relaxed);
        }
    };

    let reader_handle = {
        let lanes = Arc::clone(&lanes);
        let flags = Arc::clone(&flags);
        let write_line = write_line.clone();
        std::thread::spawn(move || {
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                match proto::parse_request(&line) {
                    Err(e) => write_line(&proto::resp_error(&e.id, "bad_request", &e.detail)),
                    Ok(Request::Forecast(req)) => {
                        let reason = if flags.draining.load(Ordering::Relaxed) {
                            Some("draining")
                        } else if !lanes.try_push_forecast(line.clone()) {
                            Some("queue_full")
                        } else {
                            None
                        };
                        if let Some(reason) = reason {
                            flags.shed.fetch_add(1, Ordering::Relaxed);
                            stuq_obs::metrics().serve_shed.inc();
                            stuq_obs::emit(Event::new("serve_rejected").str("reason", reason));
                            write_line(&proto::resp_rejected(&req.id, reason));
                        }
                    }
                    Ok(_) => lanes.push_control(line),
                }
            }
            lanes.close();
        })
    };

    let mut requests: u64 = 0;
    let mut done = false;
    let mirror = |router: &mut Router, flags: &Flags, lanes: &Lanes| {
        flags.draining.store(router.draining, Ordering::Relaxed);
        router.queue_depth = lanes.depth();
        router.shed_reader = flags.shed.load(Ordering::Relaxed);
    };

    while !done {
        match lanes.pop(Duration::from_millis(50)) {
            Popped::Control(line) => {
                mirror(router, &flags, &lanes);
                let r = router.process_line(&line);
                write_line(&r.response);
                done = r.done;
                mirror(router, &flags, &lanes);
            }
            Popped::Forecast(line, at) => {
                requests += 1;
                router.pending_wait = Some(at.elapsed().as_secs_f64());
                let r = router.process_line(&line);
                write_line(&r.response);
                mirror(router, &flags, &lanes);
            }
            Popped::TimedOut => {
                router.tick();
                mirror(router, &flags, &lanes);
                router.write_health();
            }
            Popped::Closed => break,
        }
    }
    let drain_and_answer = |router: &mut Router, requests: &mut u64| {
        for item in lanes.drain_now() {
            match item {
                Popped::Control(line) => {
                    let r = router.process_line(&line);
                    write_line(&r.response);
                }
                Popped::Forecast(line, at) => {
                    *requests += 1;
                    router.pending_wait = Some(at.elapsed().as_secs_f64());
                    let r = router.process_line(&line);
                    write_line(&r.response);
                }
                Popped::TimedOut | Popped::Closed => {}
            }
        }
    };
    if done {
        lanes.close();
        drain_and_answer(router, &mut requests);
    }
    let _ = reader_handle.join();
    if done {
        drain_and_answer(router, &mut requests);
    }

    let shed = router.shed + flags.shed.load(Ordering::Relaxed);
    mirror(router, &flags, &lanes);
    router.write_health();
    stuq_obs::emit(Event::new("serve_stop").uint("requests", requests).uint("shed", shed));
    ServeSummary {
        requests,
        shed,
        responses: responses.load(Ordering::Relaxed),
        samples_used: router.samples_used_total,
    }
}
