//! Deterministic node→shard partition of the road network (DESIGN.md §13).
//!
//! The cluster router splits the sensor set across N workers. The map is a
//! pure function of `(n_nodes, n_shards)` — contiguous ranges, with the
//! first `n_nodes % n_shards` shards one node wider — so every router
//! instance, every restarted worker, and every test derives the *same*
//! partition without any coordination or persisted state. That is what lets
//! a supervisor replay the assignment to a rejoining worker and what keeps
//! scatter/gather composition byte-deterministic across reruns.
//!
//! The map also carries a **replica dimension** (DESIGN.md §16): every
//! shard is served by `n_replicas` interchangeable workers. The
//! shard×replica → worker assignment is derived, never stored — workers
//! are laid out shard-major (`worker = shard · R + replica`), so the
//! router, the supervisor, and every test agree on which flat worker index
//! backs which (shard, replica) pair without any coordination. Replicas
//! share the shard's node range; they differ only in which process
//! answers, which is why a replica failover never changes response bytes.

use std::ops::Range;

/// A sub-request destined for one shard: which of the request's node
/// positions that shard owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSlice {
    /// Owning shard index.
    pub shard: usize,
    /// Node indices (model sensor ids) this shard answers, in request order.
    pub nodes: Vec<usize>,
    /// For each entry of `nodes`, its row position in the merged response.
    pub positions: Vec<usize>,
}

/// Contiguous partition of `n_nodes` sensors across `n_shards` shards,
/// each served by `n_replicas` interchangeable workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n_nodes: usize,
    n_shards: usize,
    n_replicas: usize,
}

impl ShardMap {
    /// A map over `n_nodes` sensors and `n_shards` single-replica shards.
    /// Shard count is clamped to `1..=n_nodes` — more workers than sensors
    /// would leave empty shards with nothing to answer.
    pub fn new(n_nodes: usize, n_shards: usize) -> Self {
        Self::replicated(n_nodes, n_shards, 1)
    }

    /// A map with `n_replicas` workers per shard (clamped ≥ 1). The node
    /// partition is independent of the replica count: adding replicas
    /// never moves a sensor.
    pub fn replicated(n_nodes: usize, n_shards: usize, n_replicas: usize) -> Self {
        let n_nodes = n_nodes.max(1);
        ShardMap {
            n_nodes,
            n_shards: n_shards.clamp(1, n_nodes),
            n_replicas: n_replicas.max(1),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of sensors partitioned.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Replicas per shard.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Total worker count (`shards × replicas`).
    pub fn n_workers(&self) -> usize {
        self.n_shards * self.n_replicas
    }

    /// Flat worker index backing `(shard, replica)` — shard-major, the
    /// derived assignment every component recomputes instead of storing.
    pub fn worker_index(&self, shard: usize, replica: usize) -> usize {
        assert!(shard < self.n_shards, "shard {shard} out of range ({})", self.n_shards);
        assert!(replica < self.n_replicas, "replica {replica} out of range ({})", self.n_replicas);
        shard * self.n_replicas + replica
    }

    /// The `(shard, replica)` pair a flat worker index serves.
    pub fn worker_role(&self, worker: usize) -> (usize, usize) {
        assert!(worker < self.n_workers(), "worker {worker} out of range ({})", self.n_workers());
        (worker / self.n_replicas, worker % self.n_replicas)
    }

    /// The contiguous node range shard `s` owns.
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.n_shards, "shard {s} out of range (cluster has {})", self.n_shards);
        let base = self.n_nodes / self.n_shards;
        let extra = self.n_nodes % self.n_shards;
        // Shards [0, extra) are one node wider.
        let lo = s * base + s.min(extra);
        let width = base + usize::from(s < extra);
        lo..lo + width
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        assert!(node < self.n_nodes, "node {node} out of range (map has {})", self.n_nodes);
        let base = self.n_nodes / self.n_shards;
        let extra = self.n_nodes % self.n_shards;
        let wide_span = extra * (base + 1);
        if node < wide_span {
            node / (base + 1)
        } else {
            extra + (node - wide_span) / base
        }
    }

    /// Splits a request's node selection (`None` = the full grid, in natural
    /// order) into per-shard slices, shard-ordered. Empty slices are
    /// omitted: a request touching one shard costs one RPC, not N.
    pub fn scatter(&self, nodes: Option<&[usize]>) -> Vec<ShardSlice> {
        let mut slices: Vec<ShardSlice> = (0..self.n_shards)
            .map(|shard| ShardSlice { shard, nodes: Vec::new(), positions: Vec::new() })
            .collect();
        match nodes {
            None => {
                for node in 0..self.n_nodes {
                    let s = self.shard_of(node);
                    slices[s].nodes.push(node);
                    slices[s].positions.push(node);
                }
            }
            Some(sel) => {
                for (pos, &node) in sel.iter().enumerate() {
                    let s = self.shard_of(node);
                    slices[s].nodes.push(node);
                    slices[s].positions.push(pos);
                }
            }
        }
        slices.retain(|s| !s.nodes.is_empty());
        slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_and_total() {
        for (n, s) in [(10, 3), (621, 4), (7, 7), (5, 1), (3, 8)] {
            let map = ShardMap::new(n, s);
            let mut seen = vec![0usize; n];
            for shard in 0..map.n_shards() {
                for node in map.range(shard) {
                    seen[node] += 1;
                    assert_eq!(map.shard_of(node), shard, "n={n} s={s} node={node}");
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "n={n} s={s}: every node exactly once");
        }
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let map = ShardMap::new(3, 8);
        assert_eq!(map.n_shards(), 3, "no empty shards");
        assert_eq!(ShardMap::new(10, 0).n_shards(), 1);
    }

    #[test]
    fn wide_shards_come_first() {
        let map = ShardMap::new(10, 3); // 4 + 3 + 3
        assert_eq!(map.range(0), 0..4);
        assert_eq!(map.range(1), 4..7);
        assert_eq!(map.range(2), 7..10);
    }

    #[test]
    fn scatter_full_grid_covers_every_position() {
        let map = ShardMap::new(10, 3);
        let slices = map.scatter(None);
        assert_eq!(slices.len(), 3);
        let mut all: Vec<(usize, usize)> = Vec::new();
        for sl in &slices {
            assert_eq!(sl.nodes, sl.positions, "full grid: position == node id");
            all.extend(sl.nodes.iter().zip(&sl.positions).map(|(&n, &p)| (n, p)));
        }
        assert_eq!(all, (0..10).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_subset_preserves_request_positions() {
        let map = ShardMap::new(10, 3); // 0..4 | 4..7 | 7..10
        let slices = map.scatter(Some(&[9, 0, 5, 1]));
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0], ShardSlice { shard: 0, nodes: vec![0, 1], positions: vec![1, 3] });
        assert_eq!(slices[1], ShardSlice { shard: 1, nodes: vec![5], positions: vec![2] });
        assert_eq!(slices[2], ShardSlice { shard: 2, nodes: vec![9], positions: vec![0] });
    }

    #[test]
    fn replica_dimension_is_shard_major_and_round_trips() {
        let map = ShardMap::replicated(10, 3, 2);
        assert_eq!(map.n_replicas(), 2);
        assert_eq!(map.n_workers(), 6);
        for s in 0..3 {
            for r in 0..2 {
                let w = map.worker_index(s, r);
                assert_eq!(w, s * 2 + r);
                assert_eq!(map.worker_role(w), (s, r));
            }
        }
    }

    #[test]
    fn single_replica_map_matches_the_legacy_constructor() {
        let map = ShardMap::new(10, 3);
        assert_eq!(map, ShardMap::replicated(10, 3, 1));
        assert_eq!(map.n_workers(), map.n_shards());
        assert_eq!(map.worker_index(2, 0), 2, "R=1: worker index == shard index");
        assert_eq!(ShardMap::replicated(10, 3, 0).n_replicas(), 1, "replicas clamp to 1");
    }

    #[test]
    fn replicas_never_move_the_node_partition() {
        for r in 1..=4 {
            let map = ShardMap::replicated(621, 4, r);
            let solo = ShardMap::new(621, 4);
            for s in 0..4 {
                assert_eq!(map.range(s), solo.range(s), "replicas={r} shard={s}");
            }
        }
    }

    #[test]
    fn scatter_omits_untouched_shards() {
        let map = ShardMap::new(10, 3);
        let slices = map.scatter(Some(&[4, 5, 6]));
        assert_eq!(slices.len(), 1, "single-shard request costs one RPC");
        assert_eq!(slices[0].shard, 1);
    }
}
