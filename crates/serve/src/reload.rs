//! Hot model reload: validation off the request path, atomic swap on it.
//!
//! A watcher thread polls the model artifact for content changes (FNV-1a
//! checksum of the raw file bytes — the same hash the artifact trailer
//! uses). When the bytes change it runs the *expensive* work right there:
//! checksum verification and a full parse into a candidate [`DeepStuq`].
//! Only the finished [`Validated`] result crosses the channel; the serve
//! worker picks it up between requests, performs the *cheap* work
//! (shape-compatibility check + pointer swap) and emits `reload_ok` /
//! `reload_rollback`. A failed validation never touches the serving model —
//! the rollback is "keep what you have", logged.
//!
//! The watcher remembers the last checksum it inspected, so a corrupt
//! artifact is reported once, not on every poll.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use deepstuq::DeepStuq;

/// A fully validated (or failed) reload candidate.
#[derive(Debug)]
pub struct Validated {
    /// The watched artifact path.
    pub path: PathBuf,
    /// FNV-1a 64 of the file bytes, as 16 hex digits.
    pub checksum: String,
    /// The parsed candidate, or why validation failed.
    pub result: Result<DeepStuq, String>,
}

/// Checksum of a file's raw bytes, as stamped on events and health output.
pub fn file_checksum(bytes: &[u8]) -> String {
    format!("{:016x}", stuq_artifact::fnv1a64(bytes))
}

/// Reads and validates `path` right now (the synchronous `reload` request).
pub fn validate(path: &Path) -> Validated {
    match std::fs::read(path) {
        Err(e) => Validated {
            path: path.to_path_buf(),
            checksum: "0".repeat(16),
            result: Err(format!("read failed: {e}")),
        },
        Ok(bytes) => {
            let checksum = file_checksum(&bytes);
            let result = deepstuq::load_model_bytes(&bytes).map_err(|e| e.to_string());
            Validated { path: path.to_path_buf(), checksum, result }
        }
    }
}

/// The polling watcher thread handle.
#[derive(Debug)]
pub struct Watcher {
    rx: Receiver<Validated>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watcher {
    /// Spawns a watcher polling `path` every `poll_ms` milliseconds.
    /// `initial_checksum` is the checksum of the currently served artifact,
    /// so an unchanged file is never re-validated.
    pub fn spawn(path: PathBuf, poll_ms: u64, initial_checksum: String) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let (tx, rx): (Sender<Validated>, Receiver<Validated>) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut last_seen = initial_checksum;
            let poll = Duration::from_millis(poll_ms.max(1));
            while !stop_flag.load(Ordering::Relaxed) {
                // Sleep in short slices so drop() returns promptly.
                let mut slept = Duration::ZERO;
                while slept < poll && !stop_flag.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(20).min(poll - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(bytes) = std::fs::read(&path) else {
                    continue; // transient: mid-rename or deleted
                };
                let checksum = file_checksum(&bytes);
                if checksum == last_seen {
                    continue;
                }
                last_seen = checksum.clone();
                let result = deepstuq::load_model_bytes(&bytes).map_err(|e| e.to_string());
                if tx.send(Validated { path: path.clone(), checksum, result }).is_err() {
                    break; // server gone
                }
            }
        });
        Self { rx, stop, handle: Some(handle) }
    }

    /// The next validated candidate, if one is waiting. Non-blocking — this
    /// is the only reload call on the request path.
    pub fn try_recv(&self) -> Option<Validated> {
        self.rx.try_recv().ok()
    }
}

impl Drop for Watcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_reports_missing_and_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("stuq_serve_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = validate(&dir.join("nope.stuq"));
        assert!(missing.result.is_err());
        let bad = dir.join("garbage.stuq");
        std::fs::write(&bad, b"definitely not a model").unwrap();
        let v = validate(&bad);
        assert!(v.result.is_err(), "corrupt bytes must be a typed failure");
        assert_eq!(v.checksum.len(), 16);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watcher_reports_content_changes_once() {
        let dir = std::env::temp_dir().join(format!("stuq_serve_watch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.stuq");
        std::fs::write(&path, b"v1").unwrap();
        let initial = file_checksum(b"v1");
        let w = Watcher::spawn(path.clone(), 5, initial);
        assert!(w.try_recv().is_none(), "unchanged file must not be reported");
        std::fs::write(&path, b"v2-corrupt").unwrap();
        let mut got = None;
        for _ in 0..200 {
            if let Some(v) = w.try_recv() {
                got = Some(v);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let v = got.expect("watcher must report the change");
        assert_eq!(v.checksum, file_checksum(b"v2-corrupt"));
        assert!(v.result.is_err());
        // Same bytes again: no duplicate report.
        std::thread::sleep(Duration::from_millis(30));
        assert!(w.try_recv().is_none());
        drop(w);
        std::fs::remove_dir_all(&dir).ok();
    }
}
