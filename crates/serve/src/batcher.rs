//! Request coalescing between admission and the worker (DESIGN.md §12).
//!
//! Three pieces live here:
//!
//! * [`Lanes`] — the two-lane admission queue (moved from the loop module):
//!   a bounded forecast lane and an unbounded control lane with pop
//!   priority.
//! * [`gather`] — the batcher stage: starting from one admitted forecast,
//!   collect co-arriving forecasts into a batch. Under the **fake clock**
//!   a batch closes only on `--batch-max`, end of input, or (empty-lane)
//!   idle — never on a wall-time timeout and never because a control line
//!   arrived — so batch composition is a pure function of request arrival
//!   order, which is what keeps annotated response streams byte-identical
//!   across `STUQ_THREADS` and across replays. On the **real clock** the
//!   window is bounded by `--batch-wait-ms` *and* by the tightest deadline
//!   of any gathered member (a 3 ms request never waits 50 ms for
//!   company), and a control pop closes the batch early so operator
//!   commands keep their latency.
//! * [`SeedSpec`] / [`group_requests`] — the share-key machinery: requests
//!   whose RNG derivation, sample count, and exact window bits coincide
//!   form one *group* and share a single MC run; each member then slices
//!   its nodes/horizon out of the shared result. Arrival-indexed (legacy
//!   seedless) requests get unique specs, so they always compute alone.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::SeedDerivation;

/// What the worker popped from the lanes.
pub(crate) enum Popped {
    /// A control request (healthz/reload/drain/shutdown) — never shed.
    Control(String),
    /// An admitted forecast line, stamped with its admission instant so the
    /// tracer can attribute queue wait (DESIGN.md §15). The stamp feeds
    /// telemetry only — never the logical clock or the response bytes.
    Forecast(String, Instant),
    /// Nothing arrived within the timeout (idle tick).
    TimedOut,
    /// Reader hit end of input and both lanes are empty.
    Closed,
}

/// A forecast-lane-only pop (fake-clock gathering ignores control).
pub(crate) enum ForecastPop {
    /// The next admitted forecast line and its admission instant.
    Line(String, Instant),
    /// Nothing on the forecast lane within the timeout.
    TimedOut,
    /// Input closed and the forecast lane is empty.
    Closed,
}

struct LaneState {
    forecasts: VecDeque<(String, Instant)>,
    control: VecDeque<String>,
    closed: bool,
}

/// Two-lane queue between reader and worker: control requests bypass the
/// bounded forecast lane so a full queue can never wedge a drain/shutdown.
pub(crate) struct Lanes {
    m: Mutex<LaneState>,
    cv: Condvar,
    cap: usize,
}

impl Lanes {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            m: Mutex::new(LaneState {
                forecasts: VecDeque::new(),
                control: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admission: false means the bounded lane is full (shed the request).
    pub(crate) fn try_push_forecast(&self, line: String) -> bool {
        let mut s = self.m.lock().unwrap();
        if s.closed || s.forecasts.len() >= self.cap {
            return false;
        }
        s.forecasts.push_back((line, Instant::now()));
        stuq_obs::metrics().serve_queue_depth.set(s.forecasts.len() as f64);
        self.cv.notify_all();
        true
    }

    pub(crate) fn push_control(&self, line: String) {
        let mut s = self.m.lock().unwrap();
        s.control.push_back(line);
        self.cv.notify_all();
    }

    pub(crate) fn close(&self) {
        self.m.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    pub(crate) fn pop(&self, timeout: Duration) -> Popped {
        let mut s = self.m.lock().unwrap();
        loop {
            if let Some(line) = s.control.pop_front() {
                return Popped::Control(line);
            }
            if let Some((line, at)) = s.forecasts.pop_front() {
                stuq_obs::metrics().serve_queue_depth.set(s.forecasts.len() as f64);
                return Popped::Forecast(line, at);
            }
            if s.closed {
                return Popped::Closed;
            }
            let (next, res) = self.cv.wait_timeout(s, timeout).unwrap();
            s = next;
            if res.timed_out() {
                // Re-check once after the wakeup, then yield an idle tick.
                if s.control.is_empty() && s.forecasts.is_empty() {
                    return if s.closed { Popped::Closed } else { Popped::TimedOut };
                }
            }
        }
    }

    /// Pops from the forecast lane only, leaving control lines queued. The
    /// fake-clock gather path uses this so a racing control line cannot
    /// change where a batch boundary falls.
    pub(crate) fn pop_forecast(&self, timeout: Duration) -> ForecastPop {
        let mut s = self.m.lock().unwrap();
        loop {
            if let Some((line, at)) = s.forecasts.pop_front() {
                stuq_obs::metrics().serve_queue_depth.set(s.forecasts.len() as f64);
                return ForecastPop::Line(line, at);
            }
            if s.closed {
                return ForecastPop::Closed;
            }
            let (next, res) = self.cv.wait_timeout(s, timeout).unwrap();
            s = next;
            if res.timed_out() && s.forecasts.is_empty() {
                return if s.closed { ForecastPop::Closed } else { ForecastPop::TimedOut };
            }
        }
    }

    /// Current forecast-lane depth (the bounded lane the health surfaces
    /// report; the control lane is unbounded and pops first anyway).
    pub(crate) fn depth(&self) -> usize {
        self.m.lock().unwrap().forecasts.len()
    }

    /// Drain whatever is left without waiting (shutdown path).
    pub(crate) fn drain_now(&self) -> Vec<Popped> {
        let mut s = self.m.lock().unwrap();
        let mut out = Vec::new();
        while let Some(line) = s.control.pop_front() {
            out.push(Popped::Control(line));
        }
        while let Some((line, at)) = s.forecasts.pop_front() {
            out.push(Popped::Forecast(line, at));
        }
        stuq_obs::metrics().serve_queue_depth.set(0.0);
        out
    }
}

// ---------------------------------------------------------------------------
// Gathering
// ---------------------------------------------------------------------------

/// Why a gather window closed with work left to hand back to the loop.
pub(crate) enum GatherEnd {
    /// A control line was popped mid-gather (real clock only) — process it
    /// after the batch it interrupted.
    Control(String),
    /// Input closed; the loop should drain and exit after this batch.
    Closed,
}

/// Collects a batch starting from one already-popped forecast line.
///
/// `fake_clock` selects the deterministic policy (see module docs). The
/// returned lines are in admission order with their admission instants;
/// `first` is always element 0.
pub(crate) fn gather(
    lanes: &Lanes,
    first: (String, Instant),
    batch_max: usize,
    batch_wait_ms: u64,
    fake_clock: bool,
) -> (Vec<(String, Instant)>, Option<GatherEnd>) {
    let mut batch = vec![first];
    if batch_max <= 1 {
        return (batch, None);
    }
    if fake_clock {
        while batch.len() < batch_max {
            match lanes.pop_forecast(Duration::from_millis(25)) {
                ForecastPop::Line(line, at) => batch.push((line, at)),
                // Keep waiting: composition must not depend on wall time.
                ForecastPop::TimedOut => continue,
                ForecastPop::Closed => return (batch, Some(GatherEnd::Closed)),
            }
        }
        (batch, None)
    } else {
        let start = std::time::Instant::now();
        let mut window_ms = batch_wait_ms.min(deadline_of(&batch[0].0).unwrap_or(u64::MAX));
        while batch.len() < batch_max {
            let elapsed = start.elapsed().as_millis() as u64;
            if elapsed >= window_ms {
                break;
            }
            match lanes.pop(Duration::from_millis(window_ms - elapsed)) {
                Popped::Forecast(line, at) => {
                    // The tightest member bounds the window for everyone.
                    if let Some(d) = deadline_of(&line) {
                        window_ms = window_ms.min(d);
                    }
                    batch.push((line, at));
                }
                Popped::Control(line) => return (batch, Some(GatherEnd::Control(line))),
                Popped::TimedOut => break,
                Popped::Closed => return (batch, Some(GatherEnd::Closed)),
            }
        }
        (batch, None)
    }
}

/// Wall-clock queue timings the serve loop hands to the batch handler
/// purely for tracing (DESIGN.md §15). Telemetry-only by contract: nothing
/// in the forecast pipeline reads these, so traced and untraced runs stay
/// byte-identical modulo the trace-meta annotation.
pub(crate) struct BatchTiming {
    /// Per-member admission→processing wait in seconds, arrival order.
    pub waits: Vec<f64>,
    /// Gather-window duration shared by the whole batch, in seconds.
    pub dwell_s: f64,
}

/// The deadline a forecast line carries, if any (window bounding only; the
/// batch handler re-parses requests properly).
fn deadline_of(line: &str) -> Option<u64> {
    match crate::proto::parse_request(line) {
        Ok(crate::proto::Request::Forecast(req)) => req.deadline_ms,
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Share keys and grouping
// ---------------------------------------------------------------------------

/// How a request's RNG is derived — the seed component of the share key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SeedSpec {
    /// Request carried its own `seed`.
    Explicit(u64),
    /// Seedless with a `tick`: forked from (server seed, tick).
    FromTick(u64),
    /// Legacy seedless request: forked from the server seed by arrival
    /// index. Unique per request, so never equal to another spec — these
    /// compute alone by construction.
    Arrival(u64),
}

impl SeedSpec {
    /// The cache-key form; `None` for arrival-indexed (uncacheable) specs.
    pub(crate) fn derivation(&self) -> Option<SeedDerivation> {
        match self {
            SeedSpec::Explicit(s) => Some(SeedDerivation::Explicit(*s)),
            SeedSpec::FromTick(t) => Some(SeedDerivation::FromTick(*t)),
            SeedSpec::Arrival(_) => None,
        }
    }
}

/// The fields that must coincide for two requests to share one MC run.
/// Window equality is checked separately (exact bits, via `same_x`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ShareInfo {
    /// FNV-1a over the window bits (prefilter; exactness via `same_x`).
    pub x_hash: u64,
    /// RNG derivation.
    pub seed: SeedSpec,
    /// Requested MC sample count.
    pub n_samples: usize,
}

/// Arrival-ordered grouping of a batch's members.
///
/// `info(i)` returns the share info of member `i`, or `None` when the
/// member needs no compute (validation error or cache hit). `same_x(i, j)`
/// must compare the exact window bits. Groups come back in first-member
/// arrival order, members in arrival order within each group — both facts
/// are load-bearing for determinism (group order fixes the clock-read and
/// breaker-event order).
pub(crate) fn group_requests(
    n: usize,
    info: impl Fn(usize) -> Option<ShareInfo>,
    same_x: impl Fn(usize, usize) -> bool,
) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let Some(mine) = info(i) else { continue };
        let found = groups
            .iter_mut()
            .find(|g| info(g[0]).is_some_and(|lead| lead == mine) && same_x(g[0], i));
        match found {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_specs_never_group() {
        let infos = [
            Some(ShareInfo { x_hash: 1, seed: SeedSpec::Arrival(0), n_samples: 4 }),
            Some(ShareInfo { x_hash: 1, seed: SeedSpec::Arrival(1), n_samples: 4 }),
        ];
        let g = group_requests(2, |i| infos[i], |_, _| true);
        assert_eq!(g, vec![vec![0], vec![1]]);
    }

    #[test]
    fn grouping_respects_seed_samples_and_window_bits() {
        let tick = |t| SeedSpec::FromTick(t);
        let infos = [
            Some(ShareInfo { x_hash: 1, seed: tick(5), n_samples: 8 }), // group A
            Some(ShareInfo { x_hash: 1, seed: tick(5), n_samples: 8 }), // group A
            Some(ShareInfo { x_hash: 1, seed: tick(5), n_samples: 4 }), // mc differs
            Some(ShareInfo { x_hash: 1, seed: tick(6), n_samples: 8 }), // tick differs
            None,                                                       // answered already
            Some(ShareInfo { x_hash: 1, seed: tick(5), n_samples: 8 }), // group A
        ];
        let g = group_requests(6, |i| infos[i], |_, _| true);
        assert_eq!(g, vec![vec![0, 1, 5], vec![2], vec![3]]);
    }

    #[test]
    fn hash_collisions_split_on_exact_window_compare() {
        let info = ShareInfo { x_hash: 9, seed: SeedSpec::Explicit(3), n_samples: 2 };
        let g = group_requests(2, |_| Some(info), |_, _| false);
        assert_eq!(g, vec![vec![0], vec![1]], "same hash, different bits: no sharing");
    }

    fn stamped(line: &str) -> (String, Instant) {
        (line.to_string(), Instant::now())
    }

    fn lines(batch: &[(String, Instant)]) -> Vec<&str> {
        batch.iter().map(|(l, _)| l.as_str()).collect()
    }

    #[test]
    fn gather_returns_singleton_when_batching_disabled() {
        let lanes = Lanes::new(4);
        lanes.try_push_forecast("f2".into());
        let (batch, end) = gather(&lanes, stamped("f1"), 1, 5, true);
        assert_eq!(lines(&batch), vec!["f1"]);
        assert!(end.is_none());
        assert_eq!(lanes.depth(), 1, "nothing else consumed");
    }

    #[test]
    fn fake_clock_gather_fills_to_max_and_ignores_control() {
        let lanes = Lanes::new(8);
        lanes.push_control("c".into());
        for i in 2..=4 {
            lanes.try_push_forecast(format!("f{i}"));
        }
        let (batch, end) = gather(&lanes, stamped("f1"), 3, 5, true);
        assert_eq!(lines(&batch), vec!["f1", "f2", "f3"]);
        assert!(end.is_none());
        // Control is still queued and pops first afterwards.
        assert!(matches!(lanes.pop(Duration::from_millis(1)), Popped::Control(c) if c == "c"));
        assert!(matches!(lanes.pop(Duration::from_millis(1)), Popped::Forecast(f, _) if f == "f4"));
    }

    #[test]
    fn fake_clock_gather_flushes_partial_batch_on_close() {
        let lanes = Lanes::new(8);
        lanes.try_push_forecast("f2".into());
        lanes.close();
        let (batch, end) = gather(&lanes, stamped("f1"), 8, 5, true);
        assert_eq!(batch.len(), 2);
        assert!(matches!(end, Some(GatherEnd::Closed)));
    }

    #[test]
    fn real_clock_gather_closes_on_window_and_control() {
        let lanes = Lanes::new(8);
        // Empty lane: the window expires and the singleton flushes.
        let (batch, end) = gather(&lanes, stamped("f1"), 8, 1, false);
        assert_eq!(batch.len(), 1);
        assert!(end.is_none());
        // A control line ends the window early.
        lanes.push_control("c".into());
        let (batch, end) = gather(&lanes, stamped("f1"), 8, 50, false);
        assert_eq!(batch.len(), 1);
        assert!(matches!(end, Some(GatherEnd::Control(c)) if c == "c"));
    }
}
