//! Circuit breaker over model faults (DESIGN.md §11).
//!
//! A *fault* is a forecast whose outputs fail the guard-style health check
//! (non-finite μ/σ, or |μ| above the configured ceiling — the same
//! ceilings `guard.rs` applies to training losses). The breaker tracks
//! consecutive faults:
//!
//! * **Closed** — requests flow; `threshold` consecutive faults open it;
//! * **Open** — requests are answered with the fallback (or rejected) until
//!   the cooldown elapses, then the breaker half-opens;
//! * **HalfOpen** — exactly one trial request runs against the model. A
//!   healthy result closes the breaker and resets the cooldown to its base;
//!   another fault re-opens it with the cooldown doubled (capped).
//!
//! All time comes from the injectable [`crate::clock::Clock`] via `now_ms`
//! arguments, so breaker trajectories are deterministic under the fake
//! clock. The breaker itself never touches telemetry; the server maps the
//! returned [`Transition`]s onto events and metrics.

/// Breaker position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum State {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: serve fallback until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial request probes the model.
    HalfOpen,
}

impl State {
    /// Stable protocol name.
    pub fn as_str(self) -> &'static str {
        match self {
            State::Closed => "closed",
            State::Open => "open",
            State::HalfOpen => "half_open",
        }
    }

    /// Gauge encoding (0 closed, 1 open, 2 half-open).
    pub fn gauge(self) -> f64 {
        match self {
            State::Closed => 0.0,
            State::Open => 1.0,
            State::HalfOpen => 2.0,
        }
    }
}

/// A state change worth logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Closed/HalfOpen → Open.
    Opened {
        /// Consecutive faults at the moment of opening.
        consecutive: usize,
        /// Cooldown until the next half-open probe.
        cooldown_ms: u64,
    },
    /// Open → HalfOpen (cooldown elapsed).
    HalfOpened {
        /// The cooldown that just elapsed.
        cooldown_ms: u64,
    },
    /// HalfOpen → Closed (trial succeeded).
    Closed {
        /// Cooldown after reset (the base value).
        cooldown_ms: u64,
    },
}

/// The breaker state machine.
#[derive(Debug)]
pub struct Breaker {
    threshold: usize,
    base_cooldown_ms: u64,
    max_cooldown_ms: u64,
    cooldown_ms: u64,
    consecutive: usize,
    state: State,
    open_until_ms: u64,
}

impl Breaker {
    /// A closed breaker. `threshold` is clamped to ≥ 1; the cooldown cap is
    /// clamped to ≥ the base.
    pub fn new(threshold: usize, base_cooldown_ms: u64, max_cooldown_ms: u64) -> Self {
        let base = base_cooldown_ms.max(1);
        Self {
            threshold: threshold.max(1),
            base_cooldown_ms: base,
            max_cooldown_ms: max_cooldown_ms.max(base),
            cooldown_ms: base,
            consecutive: 0,
            state: State::Closed,
            open_until_ms: 0,
        }
    }

    /// Current position.
    pub fn state(&self) -> State {
        self.state
    }

    /// Consecutive faults observed.
    pub fn consecutive(&self) -> usize {
        self.consecutive
    }

    /// Current cooldown length.
    pub fn cooldown_ms(&self) -> u64 {
        self.cooldown_ms
    }

    /// Advances Open → HalfOpen once the cooldown has elapsed. Call before
    /// deciding how to route a request.
    pub fn poll(&mut self, now_ms: u64) -> Option<Transition> {
        if self.state == State::Open && now_ms >= self.open_until_ms {
            self.state = State::HalfOpen;
            return Some(Transition::HalfOpened { cooldown_ms: self.cooldown_ms });
        }
        None
    }

    /// Records a healthy forecast.
    pub fn on_success(&mut self) -> Option<Transition> {
        self.consecutive = 0;
        if self.state == State::HalfOpen {
            self.state = State::Closed;
            self.cooldown_ms = self.base_cooldown_ms;
            return Some(Transition::Closed { cooldown_ms: self.cooldown_ms });
        }
        None
    }

    /// Records a model fault.
    pub fn on_fault(&mut self, now_ms: u64) -> Option<Transition> {
        self.consecutive += 1;
        match self.state {
            State::Closed if self.consecutive >= self.threshold => {
                self.state = State::Open;
                self.open_until_ms = now_ms.saturating_add(self.cooldown_ms);
                Some(Transition::Opened {
                    consecutive: self.consecutive,
                    cooldown_ms: self.cooldown_ms,
                })
            }
            State::HalfOpen => {
                // The trial failed: back off exponentially.
                self.cooldown_ms = (self.cooldown_ms.saturating_mul(2)).min(self.max_cooldown_ms);
                self.state = State::Open;
                self.open_until_ms = now_ms.saturating_add(self.cooldown_ms);
                Some(Transition::Opened {
                    consecutive: self.consecutive,
                    cooldown_ms: self.cooldown_ms,
                })
            }
            _ => None,
        }
    }

    /// Force-closes the breaker (after a successful hot reload: the faulty
    /// model is gone, so its fault history no longer applies).
    pub fn reset(&mut self) {
        self.state = State::Closed;
        self.consecutive = 0;
        self.cooldown_ms = self.base_cooldown_ms;
        self.open_until_ms = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_faults() {
        let mut b = Breaker::new(3, 100, 1000);
        assert_eq!(b.on_fault(0), None);
        assert_eq!(b.on_fault(1), None);
        let t = b.on_fault(2);
        assert_eq!(t, Some(Transition::Opened { consecutive: 3, cooldown_ms: 100 }));
        assert_eq!(b.state(), State::Open);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = Breaker::new(2, 100, 1000);
        b.on_fault(0);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_fault(1), None, "count must restart after a success");
        assert!(b.on_fault(2).is_some());
    }

    #[test]
    fn half_opens_after_cooldown_and_doubles_on_failed_trial() {
        let mut b = Breaker::new(1, 100, 350);
        b.on_fault(10);
        assert_eq!(b.state(), State::Open);
        assert_eq!(b.poll(50), None, "cooldown not elapsed yet");
        assert_eq!(b.poll(110), Some(Transition::HalfOpened { cooldown_ms: 100 }));
        assert_eq!(b.state(), State::HalfOpen);
        // Failed trial: re-open with doubled cooldown.
        assert_eq!(b.on_fault(111), Some(Transition::Opened { consecutive: 2, cooldown_ms: 200 }));
        assert_eq!(b.poll(311), Some(Transition::HalfOpened { cooldown_ms: 200 }));
        // Another failure hits the cap (350, not 400).
        assert_eq!(b.on_fault(312), Some(Transition::Opened { consecutive: 3, cooldown_ms: 350 }));
    }

    #[test]
    fn successful_trial_closes_and_resets_cooldown() {
        let mut b = Breaker::new(1, 100, 1000);
        b.on_fault(0);
        b.poll(100);
        b.on_fault(101); // doubled to 200
        b.poll(301);
        assert_eq!(b.on_success(), Some(Transition::Closed { cooldown_ms: 100 }));
        assert_eq!(b.state(), State::Closed);
        assert_eq!(b.cooldown_ms(), 100, "cooldown resets to base on close");
    }

    #[test]
    fn reset_force_closes() {
        let mut b = Breaker::new(1, 100, 1000);
        b.on_fault(0);
        b.reset();
        assert_eq!(b.state(), State::Closed);
        assert_eq!(b.consecutive(), 0);
    }

    #[test]
    fn state_gauge_encoding_is_stable() {
        assert_eq!(State::Closed.gauge(), 0.0);
        assert_eq!(State::Open.gauge(), 1.0);
        assert_eq!(State::HalfOpen.gauge(), 2.0);
        assert_eq!(State::HalfOpen.as_str(), "half_open");
    }
}
