//! A minimal JSON value parser for request payloads.
//!
//! `stuq-obs` ships a flat-object parser (events never nest), but forecast
//! requests carry nested arrays (`x` is a `[t_h][N]` matrix), so the serving
//! crate needs a real recursive parser. Std-only, hardened for untrusted
//! input: depth-limited recursion, hard errors on trailing garbage,
//! duplicate-tolerant object access (first key wins, matching the obs
//! validator's duplicate-key rejection happening at a different layer).
//!
//! JSON cannot represent non-finite floats; the protocol uses the marker
//! strings `"NaN"`, `"inf"`, `"-inf"` (same convention as the event log).
//! [`Json::as_f64`] resolves the markers so callers see the actual values.

/// Maximum nesting depth accepted from the wire. Forecast requests need 3
/// (object → matrix → row); anything deeper is hostile or corrupt.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key` (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value; resolves the `"NaN"`/`"inf"`/`"-inf"` markers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    let n: f64 = text.parse().map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("number {text:?} overflows f64"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?,
                            16,
                        )
                        .map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("raw control character in string".into()),
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences pass through).
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "non-utf8 string content".to_string())?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos, depth + 1)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_forecast_shaped_payloads() {
        let v =
            parse(r#"{"type":"forecast","id":"r1","x":[[1.5,-2e1],["NaN",0]],"mc":8}"#).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("forecast"));
        assert_eq!(v.get("mc").and_then(Json::as_u64), Some(8));
        let x = v.get("x").and_then(Json::as_arr).unwrap();
        assert_eq!(x.len(), 2);
        assert_eq!(x[0].as_arr().unwrap()[1].as_f64(), Some(-20.0));
        assert!(x[1].as_arr().unwrap()[0].as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_stops_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "deep nesting must be a typed error, not a stack overflow");
        let ok = "[".repeat(4) + "1" + &"]".repeat(4);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(parse(&escape("x\"y\nz")).unwrap().as_str(), Some("x\"y\nz"));
    }

    #[test]
    fn nonfinite_markers_resolve() {
        let v = parse(r#"["NaN","inf","-inf","other"]"#).unwrap();
        let a = v.as_arr().unwrap();
        assert!(a[0].as_f64().unwrap().is_nan());
        assert_eq!(a[1].as_f64(), Some(f64::INFINITY));
        assert_eq!(a[2].as_f64(), Some(f64::NEG_INFINITY));
        assert_eq!(a[3].as_f64(), None);
    }
}
